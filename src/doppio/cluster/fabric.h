//===- doppio/cluster/fabric.h - Cross-tab SimNet fabric ---------*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tab-to-tab extension of browser::SimNet (DESIGN.md §15). One
/// simulated tab is one BrowserEnv with its own event loop, virtual clock,
/// kernel, and SimNet port space; the paper stops there (§3.1: one page,
/// one event loop). Browsix (PAPERS.md) shows the scaling shape beyond it —
/// many isolated execution contexts cooperating over a shared substrate —
/// and this fabric is that substrate: it lets a socket in one tab connect
/// to a port in another tab's SimNet, so an entire doppiod server stack in
/// a shard tab is reachable from a balancer tab over the same
/// length-prefixed frame codec (browser/wire.h byte order throughout).
///
/// Mechanics: every attached tab owns a FIFO mailbox. A cross-tab
/// connection is a pair of endpoints joined by a link id — the originator's
/// Endpoint in the source tab, and a gateway in the destination tab that
/// holds a real SimNet TcpConnection obtained with SimNet::connect (so
/// backlog overflow in the destination tab surfaces as a refused cross-tab
/// connect, exactly like local ECONNREFUSED). Bytes ride Mail records
/// stamped with the sender's virtual send time plus the fabric hop latency;
/// delivery into the destination tab schedules on its kernel's IoCompletion
/// lane no earlier than the stamp. Because each sender's stamps are
/// monotone and each mailbox is FIFO, per-link byte order and FIN-after-
/// data ordering both survive the crossing.
///
/// The fabric is driven — mailboxes pumped into tab loops — by a driver
/// (doppio/cluster/driver.h): deterministic single-thread lockstep for
/// tests and virtual-clock figures, or one host thread per tab for the
/// fig7_cluster bench. All mailbox operations are mutex-guarded so both
/// drivers share one implementation; everything else in a tab stays
/// single-threaded on that tab's thread.
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_DOPPIO_CLUSTER_FABRIC_H
#define DOPPIO_DOPPIO_CLUSTER_FABRIC_H

#include "browser/env.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

namespace doppio {
namespace cluster {

/// Index of an attached tab within the fabric.
using TabId = uint32_t;

/// Cross-tab connection fabric over per-tab mailboxes.
class Fabric {
public:
  struct Costs {
    /// Virtual latency of one tab-to-tab crossing (a postMessage /
    /// SharedWorker hop in browser terms). Defaults to the SimNet TCP
    /// round-trip latency of the chrome profile.
    uint64_t HopLatencyNs = browser::usToNs(300);
  };

  Fabric() : Fabric(Costs()) {}
  explicit Fabric(Costs C) : Cost(C) {}
  ~Fabric();

  Fabric(const Fabric &) = delete;
  Fabric &operator=(const Fabric &) = delete;

  /// One side of an established cross-tab byte-stream connection. API
  /// mirrors browser::TcpConnection; lifetime mirrors it too — the fabric
  /// owns endpoints, and holders must drop their pointer once the link
  /// closes (locally or via the close handler).
  class Endpoint {
  public:
    using DataHandler = std::function<void(const std::vector<uint8_t> &)>;
    using CloseHandler = std::function<void()>;

    /// Sends bytes toward the peer tab; they arrive there as a later
    /// event, no earlier than one fabric hop from now.
    void send(std::vector<uint8_t> Data);

    /// Registers the receive handler; bytes that crossed before a handler
    /// existed are delivered immediately.
    void setOnData(DataHandler H);
    void setOnClose(CloseHandler H) { OnClose = std::move(H); }

    /// Closes the link. The peer's close handler fires after any bytes
    /// already sent (FIN-after-data, like SimNet).
    void close();

    bool isOpen() const { return Open; }
    uint64_t linkId() const { return Link; }
    /// The tab this endpoint lives in / its peer's tab.
    TabId tab() const { return Tab; }
    TabId peerTab() const { return Peer; }

  private:
    friend class Fabric;
    Endpoint(Fabric &Fab, TabId Tab, TabId Peer, uint64_t Link)
        : Fab(Fab), Tab(Tab), Peer(Peer), Link(Link) {}

    void deliver(const std::vector<uint8_t> &Data);

    Fabric &Fab;
    TabId Tab;
    TabId Peer;
    uint64_t Link;
    bool Open = true;
    DataHandler OnData;
    CloseHandler OnClose;
    std::deque<std::vector<uint8_t>> Undelivered;
  };

  /// Attaches \p Env as the next tab. All attaches must happen before any
  /// driver runs.
  TabId attach(browser::BrowserEnv &Env);

  size_t tabCount() const { return Tabs.size(); }
  browser::BrowserEnv &env(TabId T) { return *Tabs[T]->Env; }

  /// Opens a cross-tab connection from tab \p Src to SimNet port \p Port
  /// in tab \p Dst. \p Done runs on \p Src's loop with the originator
  /// endpoint, or null when nothing listens there or the destination
  /// backlog overflowed (cross-tab ECONNREFUSED). Call on Src's thread.
  void connect(TabId Src, TabId Dst, uint16_t Port,
               std::function<void(Endpoint *)> Done);

  /// Delivers \p Payload to tab \p Dst's control handler — the cluster's
  /// control plane (drain/kill commands, shard stat snapshots), encoded
  /// with browser/wire.h helpers by the caller. Same stamping and FIFO
  /// guarantees as data mail.
  void sendControl(TabId Src, TabId Dst, std::vector<uint8_t> Payload);

  /// Registers tab \p T's control-plane handler (runs on T's loop).
  void setControlHandler(
      TabId T, std::function<void(TabId From, std::vector<uint8_t>)> H);

  /// Drains tab \p T's mailbox, scheduling each record on T's loop at its
  /// stamp. Must run on T's thread; drivers call this, user code never
  /// does. Returns the number of records moved.
  size_t pump(TabId T);

  /// True when no mail sits undelivered in any mailbox AND no pumped
  /// record is still awaiting dispatch in a tab loop. With all tab loops
  /// idle this means the whole cluster is quiescent.
  bool quiescent() const { return MailInFlight.load() == 0; }

  bool mailboxEmpty(TabId T);

  /// Blocks until tab \p T has mail or \p TimeoutUs host-microseconds
  /// elapse (threaded driver's idle wait). Returns true if mail arrived.
  bool waitForMail(TabId T, uint64_t TimeoutUs);

  /// Wakes every tab blocked in waitForMail (driver shutdown).
  void wakeAll();

  /// Mail records ever sent across the fabric (data + control + link
  /// management).
  uint64_t crossings() const { return Crossings.load(); }

  const Costs &costs() const { return Cost; }

private:
  struct Mail {
    enum class Kind : uint8_t { Connect, Accepted, Refused, Data, Close,
                                Control };
    Kind K = Kind::Data;
    TabId From = 0;
    uint64_t Link = 0;
    uint16_t Port = 0;
    /// Earliest virtual delivery time at the destination: sender's clock
    /// at send plus one hop.
    uint64_t StampNs = 0;
    std::vector<uint8_t> Data;
  };

  /// Gateway half of a link: the destination-tab side, bridging the link
  /// to a local SimNet TcpConnection.
  struct Gateway {
    browser::TcpConnection *Tcp = nullptr;
    TabId PeerTab = 0;
    uint64_t Link = 0;
  };

  struct Tab {
    browser::BrowserEnv *Env = nullptr;
    TabId Id = 0;
    // Mailbox (cross-thread: mutex-guarded).
    std::mutex MailMu;
    std::condition_variable MailCv;
    std::deque<Mail> Mailbox;
    // Everything below is touched only on this tab's thread.
    std::map<uint64_t, std::unique_ptr<Endpoint>> Links;
    std::map<uint64_t, Gateway> Gateways;
    std::map<uint64_t, std::function<void(Endpoint *)>> PendingConnects;
    std::function<void(TabId, std::vector<uint8_t>)> OnControl;
  };

  void post(TabId Dst, Mail M);
  void dispatch(TabId T, Mail M);
  void openGateway(TabId T, TabId From, uint64_t Link, uint16_t Port);
  void closeGateway(Tab &T, uint64_t Link, bool FromPeer);
  /// Defer-erases an originator endpoint once its link died (the pointer
  /// may still be on the caller's stack).
  void reapEndpoint(TabId T, uint64_t Link);

  Costs Cost;
  std::vector<std::unique_ptr<Tab>> Tabs;
  std::atomic<uint64_t> NextLink{1};
  std::atomic<uint64_t> Crossings{0};
  /// Mail sent but whose delivery event has not yet run.
  std::atomic<int64_t> MailInFlight{0};
};

} // namespace cluster
} // namespace doppio

#endif // DOPPIO_DOPPIO_CLUSTER_FABRIC_H
