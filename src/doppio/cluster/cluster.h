//===- doppio/cluster/cluster.h - Sharded doppiod cluster --------*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cluster facade (DESIGN.md §15): one Fabric, one Balancer tab, N
/// Shard tabs, and the control-plane wiring between them. This is the
/// ROADMAP's "production-scale" shape: clients talk to one front-end port;
/// behind it, whole doppiod server stacks — each a full tab with its own
/// kernel, clock, fs, and process table — scale horizontally, exactly the
/// way a browser would fan work out across SharedWorker-connected tabs.
///
/// Lifecycle APIs: spawnShard() live-adds a shard (consistent hashing
/// keeps remapping to ~1/N of connections); drainShard() removes one
/// gracefully (balancer-led: zero lost requests, the shard's doppiod
/// drains to zero pending kernel work); killShard() removes one abruptly
/// (outstanding requests get error responses, connections re-route).
///
/// Drive the cluster with a LockstepDriver (deterministic tests/figures)
/// or a ThreadedDriver (real-parallelism bench rows); see
/// doppio/cluster/driver.h.
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_DOPPIO_CLUSTER_CLUSTER_H
#define DOPPIO_DOPPIO_CLUSTER_CLUSTER_H

#include "doppio/cluster/balancer.h"
#include "doppio/cluster/control.h"
#include "doppio/cluster/driver.h"
#include "doppio/cluster/fabric.h"
#include "doppio/cluster/shard.h"

#include <map>
#include <memory>

namespace doppio {
namespace cluster {

/// Balancer + shards + fabric, wired.
class Cluster {
public:
  struct Config {
    /// Shards spawned at construction (more via spawnShard()).
    size_t Shards = 4;
    uint16_t ShardBasePort = 7100;
    Balancer::Config Bal;
    /// Per-shard settings; Id and Port are assigned per shard.
    Shard::Config ShardTemplate;
    /// Period of each shard's stat push to the balancer. 0 pushes only at
    /// drain/kill — required for run-to-quiescence tests, since a
    /// repeating timer never quiesces.
    uint64_t StatsPushPeriodNs = 0;
    /// Checkpoint EAGAIN retries a migration source tolerates before
    /// giving up and reporting MigrateDone(error). A guest parked on a
    /// long async wait (Thread.sleep, a blocked read) is perpetually
    /// non-quiescent; without a cap the 100us retry loop spins forever.
    /// Each retry increments the source shard's cluster.migrate_retries
    /// counter. The guest is untouched on failure — it keeps running on
    /// the source shard.
    uint32_t MigrateRetryCap = 200;
    Fabric::Costs Costs;
  };

  explicit Cluster(const browser::Profile &P) : Cluster(P, Config()) {}
  Cluster(const browser::Profile &P, Config Cfg);
  ~Cluster();

  Cluster(const Cluster &) = delete;
  Cluster &operator=(const Cluster &) = delete;

  Fabric &fabric() { return Fab; }
  Balancer &balancer() { return *Bal; }

  size_t shardCount() const { return ShardsById.size(); }
  /// Lookup by shard id; nullptr for unknown (never for drained/killed —
  /// their tabs live on for inspection).
  Shard *shard(uint32_t Id);

  /// Live-adds a shard tab and registers it with the balancer. Must not
  /// race a running ThreadedDriver (lockstep: call between rounds).
  /// Returns the new shard's id.
  uint32_t spawnShard();

  /// Balancer-led graceful drain; \p Done fires (balancer loop) with the
  /// shard's final snapshot. See Balancer::drainShard.
  bool drainShard(uint32_t Id,
                  std::function<void(const ShardSnapshot &)> Done = nullptr);

  /// Abrupt removal. See Balancer::killShard.
  bool killShard(uint32_t Id);

  /// True once the shard's doppiod finished its graceful drain.
  bool shardDrained(uint32_t Id) const;

  /// The shard tab's earliest pending kernel work (nullopt = quiescent).
  /// After a drain completes and the cluster runs to quiescence this must
  /// be nullopt: a drained shard leaves zero pending kernel work.
  std::optional<uint64_t> shardPendingWorkNs(uint32_t Id);

  /// Live-migrates process \p P from shard \p Src to shard \p Dst
  /// (DESIGN.md §16). See Balancer::migrateProcess; \p Done fires on the
  /// balancer loop.
  bool migrateProcess(uint32_t Src, uint32_t Dst, rt::proc::Pid P,
                      std::function<void(const Balancer::MigrationResult &)>
                          Done);

private:
  struct Rec {
    std::unique_ptr<Shard> S;
    browser::TimerHandle PushTimer;
    bool DrainStarted = false;
    bool Drained = false;
    bool Killed = false;
  };

  void wireShard(uint32_t Id);
  void armPush(uint32_t Id);
  /// Source half of a migration: checkpoint (retrying on the shard's
  /// timer until the guest is quiescent, up to Config::MigrateRetryCap
  /// attempts), kill the local copy, ship the blob to the destination
  /// tab. Runs on the source shard's loop.
  void migrateFrom(uint32_t Id, control::MigrateCmd Cmd,
                   uint32_t Attempt = 0);

  const browser::Profile &Prof;
  Config Cfg;
  Fabric Fab;
  std::unique_ptr<Balancer> Bal;
  std::map<uint32_t, Rec> ShardsById;
  uint32_t NextShardId = 0;
};

} // namespace cluster
} // namespace doppio

#endif // DOPPIO_DOPPIO_CLUSTER_CLUSTER_H
