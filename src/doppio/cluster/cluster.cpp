//===- doppio/cluster/cluster.cpp -----------------------------------------==//

#include "doppio/cluster/cluster.h"

#include "doppio/cluster/control.h"

using namespace doppio;
using namespace doppio::cluster;

Cluster::Cluster(const browser::Profile &P, Config Cfg)
    : Prof(P), Cfg(Cfg), Fab(Cfg.Costs) {
  // Balancer first: tab 0, the front end.
  Bal = std::make_unique<Balancer>(Prof, Fab, Cfg.Bal);
  bool Started = Bal->start();
  (void)Started;
  for (size_t I = 0; I < Cfg.Shards; ++I)
    spawnShard();
}

Cluster::~Cluster() {
  // Stat-push timers capture `this`; kill them before members go.
  for (auto &[Id, R] : ShardsById)
    R.PushTimer.cancel();
}

Shard *Cluster::shard(uint32_t Id) {
  auto It = ShardsById.find(Id);
  return It == ShardsById.end() ? nullptr : It->second.S.get();
}

uint32_t Cluster::spawnShard() {
  uint32_t Id = NextShardId++;
  Shard::Config SCfg = Cfg.ShardTemplate;
  SCfg.Id = Id;
  SCfg.Port = static_cast<uint16_t>(Cfg.ShardBasePort + Id);
  Rec R;
  R.S = std::make_unique<Shard>(Prof, Fab, SCfg);
  ShardsById.emplace(Id, std::move(R));
  wireShard(Id);
  Bal->addShard(Id, ShardsById[Id].S->tab(), SCfg.Port);
  armPush(Id);
  return Id;
}

void Cluster::wireShard(uint32_t Id) {
  Rec &R = ShardsById[Id];
  Shard *S = R.S.get();
  TabId ShardTab = S->tab();
  TabId BalTab = Bal->tab();
  // The shard's side of the control plane (runs on the shard's loop).
  Fab.setControlHandler(
      ShardTab, [this, Id, S, BalTab](TabId, std::vector<uint8_t> B) {
        auto M = control::decode(B);
        if (!M)
          return;
        Rec &R = ShardsById[Id];
        switch (M->K) {
        case control::Kind::Drain:
          // Balancer closed every link before sending this (FIFO), so
          // the server's remaining connections are idle: the drain is
          // immediate, cancels the idle sweep, and leaves zero pending
          // kernel work.
          R.DrainStarted = true;
          R.PushTimer.cancel();
          S->server().shutdown([this, Id, S, BalTab] {
            ShardsById[Id].Drained = true;
            Fab.sendControl(S->tab(), BalTab,
                            control::encode(control::Kind::DrainDone,
                                            S->snapshot().encode()));
          });
          break;
        case control::Kind::Kill:
          // Client-facing cleanup already happened balancer-side; the
          // shard just tears its server down and reports a last
          // snapshot.
          R.Killed = true;
          R.PushTimer.cancel();
          S->server().shutdown([this, S, BalTab] {
            Fab.sendControl(S->tab(), BalTab,
                            control::encode(control::Kind::Snapshot,
                                            S->snapshot().encode()));
          });
          break;
        case control::Kind::DrainDone:
        case control::Kind::Snapshot:
          break; // Balancer-bound kinds.
        }
      });
}

void Cluster::armPush(uint32_t Id) {
  if (Cfg.StatsPushPeriodNs == 0)
    return;
  Rec &R = ShardsById[Id];
  if (R.DrainStarted || R.Killed)
    return;
  Shard *S = R.S.get();
  R.PushTimer = S->env().loop().postTimer(
      kernel::Lane::Timer,
      [this, Id, S] {
        S->pushStats(Bal->tab());
        armPush(Id);
      },
      Cfg.StatsPushPeriodNs);
}

bool Cluster::drainShard(uint32_t Id,
                         std::function<void(const ShardSnapshot &)> Done) {
  if (!ShardsById.count(Id))
    return false;
  return Bal->drainShard(Id, std::move(Done));
}

bool Cluster::killShard(uint32_t Id) {
  if (!ShardsById.count(Id))
    return false;
  return Bal->killShard(Id);
}

bool Cluster::shardDrained(uint32_t Id) const {
  auto It = ShardsById.find(Id);
  return It != ShardsById.end() && It->second.Drained;
}

std::optional<uint64_t> Cluster::shardPendingWorkNs(uint32_t Id) {
  auto It = ShardsById.find(Id);
  if (It == ShardsById.end())
    return std::nullopt;
  return It->second.S->env().loop().nextEligibleNs();
}
