//===- doppio/cluster/cluster.cpp -----------------------------------------==//

#include "doppio/cluster/cluster.h"

#include "doppio/cluster/control.h"

using namespace doppio;
using namespace doppio::cluster;

Cluster::Cluster(const browser::Profile &P, Config Cfg)
    : Prof(P), Cfg(Cfg), Fab(Cfg.Costs) {
  // Balancer first: tab 0, the front end.
  Bal = std::make_unique<Balancer>(Prof, Fab, Cfg.Bal);
  bool Started = Bal->start();
  (void)Started;
  for (size_t I = 0; I < Cfg.Shards; ++I)
    spawnShard();
}

Cluster::~Cluster() {
  // Stat-push timers capture `this`; kill them before members go.
  for (auto &[Id, R] : ShardsById)
    R.PushTimer.cancel();
}

Shard *Cluster::shard(uint32_t Id) {
  auto It = ShardsById.find(Id);
  return It == ShardsById.end() ? nullptr : It->second.S.get();
}

uint32_t Cluster::spawnShard() {
  uint32_t Id = NextShardId++;
  Shard::Config SCfg = Cfg.ShardTemplate;
  SCfg.Id = Id;
  SCfg.Port = static_cast<uint16_t>(Cfg.ShardBasePort + Id);
  Rec R;
  R.S = std::make_unique<Shard>(Prof, Fab, SCfg);
  ShardsById.emplace(Id, std::move(R));
  wireShard(Id);
  Bal->addShard(Id, ShardsById[Id].S->tab(), SCfg.Port);
  armPush(Id);
  return Id;
}

void Cluster::wireShard(uint32_t Id) {
  Rec &R = ShardsById[Id];
  Shard *S = R.S.get();
  TabId ShardTab = S->tab();
  TabId BalTab = Bal->tab();
  // The shard's side of the control plane (runs on the shard's loop).
  Fab.setControlHandler(
      ShardTab, [this, Id, S, BalTab](TabId, std::vector<uint8_t> B) {
        auto M = control::decode(B);
        if (!M)
          return;
        Rec &R = ShardsById[Id];
        switch (M->K) {
        case control::Kind::Drain:
          // Balancer closed every link before sending this (FIFO), so
          // the server's remaining connections are idle: the drain is
          // immediate, cancels the idle sweep, and leaves zero pending
          // kernel work.
          R.DrainStarted = true;
          R.PushTimer.cancel();
          S->server().shutdown([this, Id, S, BalTab] {
            ShardsById[Id].Drained = true;
            Fab.sendControl(S->tab(), BalTab,
                            control::encode(control::Kind::DrainDone,
                                            S->snapshot().encode()));
          });
          break;
        case control::Kind::Kill:
          // Client-facing cleanup already happened balancer-side; the
          // shard just tears its server down and reports a last
          // snapshot.
          R.Killed = true;
          R.PushTimer.cancel();
          S->server().shutdown([this, S, BalTab] {
            Fab.sendControl(S->tab(), BalTab,
                            control::encode(control::Kind::Snapshot,
                                            S->snapshot().encode()));
          });
          break;
        case control::Kind::Migrate: {
          // Balancer wants a process moved off this shard. The checkpoint
          // may need retries (EAGAIN until the guest reaches a data-borne
          // quiescent point), so the source half runs as its own routine.
          if (auto Cmd = control::MigrateCmd::decode(M->Payload))
            migrateFrom(Id, *Cmd);
          break;
        }
        case control::Kind::MigrateBlob: {
          // A frozen process arriving from a peer shard: revive it through
          // this shard's restore factories and report the outcome.
          auto BM = control::MigrateBlobMsg::decode(M->Payload);
          if (!BM)
            break;
          control::MigrateDoneMsg D;
          D.RequestId = BM->RequestId;
          D.SrcShard = BM->SrcShard;
          D.DstShard = Id;
          D.CaptureUs = BM->CaptureUs;
          D.BlobBytes = BM->Blob.size();
          uint64_t Before = S->env().clock().nowNs();
          rt::ErrorOr<rt::proc::Pid> P = S->restoreProcess(BM->Blob);
          if (P.ok()) {
            // Revive cost on the destination clock: dominated by image
            // deserialization, so it scales with the blob.
            S->env().chargeCompute(
                browser::usToNs(20 + BM->Blob.size() / 1024));
            D.Ok = true;
            D.NewPid = *P;
          } else {
            D.Error = P.error().message();
          }
          D.RestoreUs = (S->env().clock().nowNs() - Before) / 1000;
          Fab.sendControl(S->tab(), BalTab,
                          control::encode(control::Kind::MigrateDone,
                                          D.encode()));
          break;
        }
        case control::Kind::DrainDone:
        case control::Kind::Snapshot:
        case control::Kind::MigrateDone:
          break; // Balancer-bound kinds.
        }
      });
}

void Cluster::migrateFrom(uint32_t Id, control::MigrateCmd Cmd,
                          uint32_t Attempt) {
  auto It = ShardsById.find(Id);
  if (It == ShardsById.end() || It->second.Killed)
    return;
  Shard *S = It->second.S.get();
  TabId BalTab = Bal->tab();
  uint64_t Before = S->env().clock().nowNs();
  rt::ErrorOr<std::vector<uint8_t>> Blob = S->checkpointProcess(Cmd.Pid);
  if (!Blob.ok()) {
    if (Blob.error().Code == rt::Errno::Again &&
        Attempt < Cfg.MigrateRetryCap) {
      // Not quiescent yet (an in-flight native, a class load, a timed
      // wait): let the guest run on and retry shortly. The retry rides
      // the Resume lane — green-thread slices run there and it outranks
      // Timer, so a Timer-lane retry would starve behind a compute-bound
      // guest until it exits. The handle is dropped on purpose —
      // destruction does not cancel (event_loop.h), and the retry must
      // outlive this frame. A guest that never reaches quiescence (say,
      // parked in a long sleep) exhausts MigrateRetryCap and falls
      // through to the error report below; the retry counter makes the
      // spin observable.
      S->env().metrics().counter("cluster.migrate_retries").inc();
      browser::TimerHandle Retry = S->env().loop().postTimer(
          kernel::Lane::Resume,
          [this, Id, Cmd, Attempt] { migrateFrom(Id, Cmd, Attempt + 1); },
          browser::usToNs(100));
      (void)Retry;
      return;
    }
    control::MigrateDoneMsg D;
    D.RequestId = Cmd.RequestId;
    D.SrcShard = Id;
    D.DstShard = Cmd.DstShard;
    D.Error = Blob.error().Code == rt::Errno::Again
                  ? "not quiescent after " + std::to_string(Attempt) +
                        " checkpoint retries"
                  : Blob.error().message();
    Fab.sendControl(S->tab(), BalTab,
                    control::encode(control::Kind::MigrateDone, D.encode()));
    return;
  }
  // Freeze cost on the source clock: dominated by image serialization.
  S->env().chargeCompute(browser::usToNs(20 + Blob->size() / 1024));
  uint64_t CaptureUs = (S->env().clock().nowNs() - Before) / 1000;
  // The blob is the process now; the local copy dies before the blob is
  // shipped, so exactly one copy ever runs. killNow, not kill: deferred
  // delivery would let an already-queued guest slice run past the
  // checkpoint, and the destination would replay that overlap.
  S->procs().killNow(Cmd.Pid, rt::proc::Signal::Kill);
  control::MigrateBlobMsg BM;
  BM.RequestId = Cmd.RequestId;
  BM.SrcShard = Id;
  BM.DstShard = Cmd.DstShard;
  BM.CaptureUs = CaptureUs;
  BM.Blob = std::move(*Blob);
  Fab.sendControl(S->tab(), Cmd.DstTab,
                  control::encode(control::Kind::MigrateBlob, BM.encode()));
}

bool Cluster::migrateProcess(
    uint32_t Src, uint32_t Dst, rt::proc::Pid P,
    std::function<void(const Balancer::MigrationResult &)> Done) {
  if (!ShardsById.count(Src) || !ShardsById.count(Dst))
    return false;
  return Bal->migrateProcess(Src, Dst, P, std::move(Done));
}

void Cluster::armPush(uint32_t Id) {
  if (Cfg.StatsPushPeriodNs == 0)
    return;
  Rec &R = ShardsById[Id];
  if (R.DrainStarted || R.Killed)
    return;
  Shard *S = R.S.get();
  R.PushTimer = S->env().loop().postTimer(
      kernel::Lane::Timer,
      [this, Id, S] {
        S->pushStats(Bal->tab());
        armPush(Id);
      },
      Cfg.StatsPushPeriodNs);
}

bool Cluster::drainShard(uint32_t Id,
                         std::function<void(const ShardSnapshot &)> Done) {
  if (!ShardsById.count(Id))
    return false;
  return Bal->drainShard(Id, std::move(Done));
}

bool Cluster::killShard(uint32_t Id) {
  if (!ShardsById.count(Id))
    return false;
  return Bal->killShard(Id);
}

bool Cluster::shardDrained(uint32_t Id) const {
  auto It = ShardsById.find(Id);
  return It != ShardsById.end() && It->second.Drained;
}

std::optional<uint64_t> Cluster::shardPendingWorkNs(uint32_t Id) {
  auto It = ShardsById.find(Id);
  if (It == ShardsById.end())
    return std::nullopt;
  return It->second.S->env().loop().nextEligibleNs();
}
