//===- doppio/cluster/balancer.cpp ----------------------------------------==//

#include "doppio/cluster/balancer.h"

#include "doppio/cluster/control.h"
#include "doppio/obs/exposition.h"

#include <cassert>

using namespace doppio;
using namespace doppio::cluster;
using browser::TcpConnection;

static std::vector<uint8_t> bytesOf(const char *S) {
  return std::vector<uint8_t>(S, S + std::char_traits<char>::length(S));
}

/// Encoded Status::Error response frame with \p Why as the body.
static std::vector<uint8_t> errorFrame(const char *Why) {
  return frame::encode(
      frame::encodeResponse({frame::Status::Error, bytesOf(Why)}));
}

Balancer::Balancer(const browser::Profile &P, Fabric &Fab, Config Cfg)
    : Env(P), Fab(Fab), Cfg(Cfg), Ring(Cfg.VNodesPerShard) {
  Tab = Fab.attach(Env);
  bindCells();
  // Control plane in: shard snapshots and drain completions.
  Fab.setControlHandler(Tab, [this](TabId From, std::vector<uint8_t> B) {
    auto M = control::decode(B);
    if (!M)
      return;
    (void)From;
    switch (M->K) {
    case control::Kind::Snapshot:
      if (auto S = ShardSnapshot::decode(M->Payload))
        noteSnapshot(*S);
      break;
    case control::Kind::DrainDone: {
      auto S = ShardSnapshot::decode(M->Payload);
      if (!S)
        break;
      noteSnapshot(*S);
      auto It = Shards.find(S->ShardId);
      if (It == Shards.end())
        break;
      if (It->second.OnDrained) {
        auto Done = std::move(It->second.OnDrained);
        It->second.OnDrained = nullptr;
        Done(*S);
      }
      break;
    }
    case control::Kind::MigrateDone: {
      auto D = control::MigrateDoneMsg::decode(M->Payload);
      if (!D)
        break;
      auto It = MigrationsInFlight.find(D->RequestId);
      if (It == MigrationsInFlight.end())
        break;
      auto Done = std::move(It->second);
      MigrationsInFlight.erase(It);
      (D->Ok ? MigrationsC : MigrationFailuresC)->inc();
      if (Done) {
        MigrationResult R;
        R.SrcShard = D->SrcShard;
        R.DstShard = D->DstShard;
        R.Ok = D->Ok;
        R.NewPid = D->NewPid;
        R.CaptureUs = D->CaptureUs;
        R.RestoreUs = D->RestoreUs;
        R.BlobBytes = D->BlobBytes;
        R.Error = std::move(D->Error);
        Done(R);
      }
      break;
    }
    case control::Kind::Drain:
    case control::Kind::Kill:
    case control::Kind::Migrate:
    case control::Kind::MigrateBlob:
      break; // Shard-bound kinds; ignore if misdelivered.
    }
  });
}

Balancer::~Balancer() {
  Env.net().unlisten(Cfg.Port);
  for (auto &[Id, C] : Conns) {
    if (C->Client) {
      C->Client->setOnData(nullptr);
      C->Client->setOnClose(nullptr);
      C->Client->close();
    }
    if (C->Upstream) {
      C->Upstream->setOnData(nullptr);
      C->Upstream->setOnClose(nullptr);
      C->Upstream->close();
    }
  }
}

void Balancer::bindCells() {
  obs::Registry &Reg = Env.metrics();
  std::string P = Reg.claimPrefix("balancer");
  ConnsAcceptedC = &Reg.counter(P + ".conns_accepted");
  ConnsRefusedC = &Reg.counter(P + ".conns_refused");
  RefusedSaturatedC = &Reg.counter(P + ".refused_saturated");
  RoutedC = &Reg.counter(P + ".routed");
  ReroutedC = &Reg.counter(P + ".rerouted");
  RequestsForwardedC = &Reg.counter(P + ".requests_forwarded");
  ResponsesReturnedC = &Reg.counter(P + ".responses_returned");
  ErrorsSynthesizedC = &Reg.counter(P + ".errors_synthesized");
  MetricsServedC = &Reg.counter(P + ".metrics_served");
  DrainsC = &Reg.counter(P + ".drains");
  KillsC = &Reg.counter(P + ".kills");
  MigrationsC = &Reg.counter(P + ".migrations");
  MigrationFailuresC = &Reg.counter(P + ".migration_failures");
  LiveShardsG = &Reg.gauge(P + ".live_shards");
  UpstreamRttNsH = &Reg.histogram(P + ".upstream_rtt_ns");
  RouteNsH = &Reg.histogram(P + ".route_ns");
}

uint64_t Balancer::nowNs() const {
  return const_cast<browser::BrowserEnv &>(Env).clock().nowNs();
}

bool Balancer::start() {
  if (Running)
    return false;
  Running = Env.net().listen(
      Cfg.Port, [this](TcpConnection &T) { onAccept(T); });
  return Running;
}

void Balancer::addShard(uint32_t Id, TabId ShardTab, uint16_t ShardPort) {
  assert(!Shards.count(Id) && "duplicate shard id");
  ShardInfo Info;
  Info.Id = Id;
  Info.Tab = ShardTab;
  Info.Port = ShardPort;
  // Claimed in registration order: "shard", "shard2", ... — the per-shard
  // namespace the aggregated metrics view exposes.
  Info.Prefix = Env.metrics().claimPrefix("shard");
  Shards.emplace(Id, std::move(Info));
  Ring.add(Id);
  LiveShardsG->set(static_cast<int64_t>(Ring.size()));
}

//===----------------------------------------------------------------------===//
// Client side
//===----------------------------------------------------------------------===//

void Balancer::onAccept(TcpConnection &T) {
  if (Conns.size() >= Cfg.MaxConnections) {
    // Closing inside the accept path refuses the connect (SimNet's
    // backlog-overflow semantics) — the front-door cap.
    ConnsRefusedC->inc();
    T.close();
    return;
  }
  uint64_t Id = NextConnId++;
  auto C = std::make_unique<Conn>();
  C->Id = Id;
  C->Client = &T;
  C->AcceptedNs = nowNs();
  ConnsAcceptedC->inc();
  T.setOnData([this, Id](const std::vector<uint8_t> &D) {
    onClientData(Id, D);
  });
  T.setOnClose([this, Id] { onClientClosed(Id); });
  Conn &Ref = *C;
  Conns.emplace(Id, std::move(C));
  beginWalk(Ref);
}

void Balancer::onClientData(uint64_t Id, const std::vector<uint8_t> &Data) {
  auto It = Conns.find(Id);
  if (It == Conns.end())
    return;
  It->second->FromClient.feed(Data);
  pumpClient(*It->second);
}

void Balancer::pumpClient(Conn &C) {
  while (true) {
    auto Payload = C.FromClient.next();
    if (!Payload) {
      if (C.FromClient.corrupted())
        closeConn(C.Id);
      return;
    }
    Env.chargeCompute(Cfg.RouteComputeNs);
    auto Req = frame::decodeRequest(*Payload);
    if (Req && Req->Handler == "metrics") {
      // Answered here, from the aggregated registry — but slotted into
      // the connection's response order, so pipelined clients still see
      // responses in request order.
      Slot S;
      S.Local = true;
      S.Ready = true;
      S.Frame = localMetricsResponse(*Req);
      C.Slots.push_back(std::move(S));
      MetricsServedC->inc();
      flushSlots(C);
      continue;
    }
    Slot S;
    C.Slots.push_back(std::move(S));
    C.PendingOut.push_back(frame::encode(*Payload));
    forwardPending(C);
  }
}

void Balancer::forwardPending(Conn &C) {
  // Forwarding pauses while the conn has no live upstream (initial
  // candidate walk, or mid-reroute off a draining shard).
  if (!C.Upstream || C.Rerouting)
    return;
  while (!C.PendingOut.empty()) {
    std::vector<uint8_t> F = std::move(C.PendingOut.front());
    C.PendingOut.pop_front();
    // Stamp the first not-yet-forwarded remote slot (they are filled in
    // forward order; forwarded slots always form a prefix).
    for (Slot &S : C.Slots)
      if (!S.Local && !S.Ready && S.ForwardedNs == 0) {
        S.ForwardedNs = nowNs();
        break;
      }
    RequestsForwardedC->inc();
    C.Upstream->send(std::move(F));
  }
}

void Balancer::onClientClosed(uint64_t Id) {
  auto It = Conns.find(Id);
  if (It == Conns.end())
    return;
  It->second->ClientClosed = true;
  closeConn(Id);
}

//===----------------------------------------------------------------------===//
// Upstream side
//===----------------------------------------------------------------------===//

void Balancer::beginWalk(Conn &C) {
  // One snapshot of the ring per walk. connectUpstream must never refill
  // the list itself: a refused-connect completion calls back into it, and
  // a refill there would restart the walk and hammer a saturated fleet
  // with connect attempts forever instead of refusing the client.
  C.Candidates = Ring.candidates(hashKey(C.Id), Ring.size());
  C.NextCandidate = 0;
  connectUpstream(C);
}

void Balancer::connectUpstream(Conn &C) {
  while (C.NextCandidate < C.Candidates.size()) {
    uint32_t SId = C.Candidates[C.NextCandidate];
    auto SIt = Shards.find(SId);
    if (SIt == Shards.end() || SIt->second.Draining || SIt->second.Dead) {
      ++C.NextCandidate;
      continue;
    }
    uint64_t Id = C.Id;
    Fab.connect(Tab, SIt->second.Tab, SIt->second.Port,
                [this, Id, SId](Fabric::Endpoint *Ep) {
                  auto It = Conns.find(Id);
                  if (It == Conns.end()) {
                    if (Ep)
                      Ep->close(); // Client left while we connected.
                    return;
                  }
                  Conn &C = *It->second;
                  if (!Ep) {
                    // Backlog overflow (or drain won the race) in that
                    // shard tab: walk to the next ring candidate.
                    ++C.NextCandidate;
                    connectUpstream(C);
                    return;
                  }
                  auto SIt = Shards.find(SId);
                  if (SIt == Shards.end() || SIt->second.Draining ||
                      SIt->second.Dead) {
                    // Shard left the ring mid-handshake; retry the walk.
                    Ep->close();
                    ++C.NextCandidate;
                    connectUpstream(C);
                    return;
                  }
                  C.ShardId = SId;
                  C.HasShard = true;
                  SIt->second.Conns.insert(Id);
                  bindUpstream(C, Ep);
                });
    return; // Continues from the connect completion.
  }
  // Every live candidate refused (or the ring is empty): the fleet is
  // saturated. Refuse at the front door, visibly.
  RefusedSaturatedC->inc();
  synthesizeErrors(C, C.Candidates.empty() ? "cluster: no shards"
                                           : "cluster: all shards saturated");
  closeConn(C.Id, /*RefusedSaturatedPath=*/true);
}

void Balancer::bindUpstream(Conn &C, Fabric::Endpoint *Ep) {
  C.Upstream = Ep;
  C.Rerouting = false;
  C.FromShard = frame::Decoder();
  RoutedC->inc();
  RouteNsH->record(nowNs() - C.AcceptedNs);
  uint64_t Id = C.Id;
  Ep->setOnData([this, Id](const std::vector<uint8_t> &D) {
    onUpstreamData(Id, D);
  });
  Ep->setOnClose([this, Id] { onUpstreamClosed(Id); });
  forwardPending(C);
}

void Balancer::onUpstreamData(uint64_t Id, const std::vector<uint8_t> &Data) {
  auto It = Conns.find(Id);
  if (It == Conns.end())
    return;
  Conn &C = *It->second;
  C.FromShard.feed(Data);
  while (true) {
    auto Payload = C.FromShard.next();
    if (!Payload)
      break;
    Env.chargeCompute(Cfg.RouteComputeNs);
    // Fill the first outstanding remote slot (responses arrive in
    // forward order).
    bool Filled = false;
    for (Slot &S : C.Slots)
      if (!S.Local && !S.Ready) {
        S.Ready = true;
        S.Frame = frame::encode(*Payload);
        if (S.ForwardedNs)
          UpstreamRttNsH->record(nowNs() - S.ForwardedNs);
        Filled = true;
        break;
      }
    if (!Filled)
      break; // Response with no matching request: drop.
  }
  flushSlots(C);
  // Re-find: flushing can tear the conn down (drained shard + closing
  // client).
  auto It2 = Conns.find(Id);
  if (It2 != Conns.end()) {
    Conn &C2 = *It2->second;
    bool Outstanding = false;
    for (const Slot &S : C2.Slots)
      if (!S.Local && !S.Ready && S.ForwardedNs) {
        Outstanding = true;
        break;
      }
    if (C2.Rerouting && !Outstanding)
      rerouteNow(C2);
  }
}

void Balancer::onUpstreamClosed(uint64_t Id) {
  auto It = Conns.find(Id);
  if (It == Conns.end())
    return;
  Conn &C = *It->second;
  // Shard-initiated close (idle timeout, shard-side teardown). Any
  // response the shard sent first has already been delivered
  // (FIN-after-data across the fabric); unanswered requests die with the
  // link.
  C.Upstream = nullptr;
  synthesizeErrors(C, "cluster: upstream closed");
  flushSlots(C);
  closeConn(Id);
}

//===----------------------------------------------------------------------===//
// Response ordering
//===----------------------------------------------------------------------===//

void Balancer::flushSlots(Conn &C) {
  while (!C.Slots.empty() && C.Slots.front().Ready) {
    if (C.Client && !C.ClientClosed) {
      C.Client->send(std::move(C.Slots.front().Frame));
      ResponsesReturnedC->inc();
    }
    C.Slots.pop_front();
  }
}

std::vector<uint8_t>
Balancer::localMetricsResponse(const frame::Request &Req) {
  std::string Format(Req.Body.begin(), Req.Body.end());
  std::string Body;
  if (Format.empty() || Format == "prom")
    Body = obs::renderPrometheus(Env.metrics());
  else if (Format == "json")
    Body = obs::renderJson(Env.metrics());
  else
    return frame::encode(frame::encodeResponse(
        {frame::Status::BadRequest,
         bytesOf("metrics: unknown format")}));
  return frame::encode(frame::encodeResponse(
      {frame::Status::Ok, std::vector<uint8_t>(Body.begin(), Body.end())}));
}

void Balancer::synthesizeErrors(Conn &C, const char *Why) {
  // The wire protocol has no request ids and responses are strictly
  // ordered, so a dead upstream's unanswered requests must be answered
  // *in place* with errors — otherwise every later response would pair
  // with the wrong request.
  for (Slot &S : C.Slots)
    if (!S.Local && !S.Ready && S.ForwardedNs) {
      S.Ready = true;
      S.Frame = errorFrame(Why);
      ErrorsSynthesizedC->inc();
    }
}

//===----------------------------------------------------------------------===//
// Shard lifecycle
//===----------------------------------------------------------------------===//

bool Balancer::drainShard(uint32_t Id,
                          std::function<void(const ShardSnapshot &)> Done) {
  auto It = Shards.find(Id);
  if (It == Shards.end() || It->second.Draining || It->second.Dead)
    return false;
  ShardInfo &S = It->second;
  S.Draining = true;
  S.OnDrained = std::move(Done);
  DrainsC->inc();
  Ring.remove(Id);
  LiveShardsG->set(static_cast<int64_t>(Ring.size()));
  // Move every connection off the shard: each stops forwarding, finishes
  // its outstanding responses, then re-routes. Snapshot the id set —
  // reroutes mutate it.
  std::vector<uint64_t> ConnIds(S.Conns.begin(), S.Conns.end());
  for (uint64_t CId : ConnIds) {
    auto CIt = Conns.find(CId);
    if (CIt == Conns.end())
      continue;
    beginReroute(*CIt->second, /*Abrupt=*/false);
  }
  maybeFinishDrain(Id);
  return true;
}

bool Balancer::killShard(uint32_t Id) {
  auto It = Shards.find(Id);
  if (It == Shards.end() || It->second.Dead)
    return false;
  ShardInfo &S = It->second;
  S.Dead = true;
  S.Draining = false;
  KillsC->inc();
  if (Ring.contains(Id)) {
    Ring.remove(Id);
    LiveShardsG->set(static_cast<int64_t>(Ring.size()));
  }
  std::vector<uint64_t> ConnIds(S.Conns.begin(), S.Conns.end());
  for (uint64_t CId : ConnIds) {
    auto CIt = Conns.find(CId);
    if (CIt == Conns.end())
      continue;
    beginReroute(*CIt->second, /*Abrupt=*/true);
  }
  S.Conns.clear();
  Fab.sendControl(Tab, S.Tab, control::encode(control::Kind::Kill, {}));
  if (S.OnDrained)
    S.OnDrained = nullptr;
  return true;
}

bool Balancer::migrateProcess(uint32_t SrcShard, uint32_t DstShard,
                              rt::proc::Pid P,
                              std::function<void(const MigrationResult &)>
                                  Done) {
  auto SrcIt = Shards.find(SrcShard);
  auto DstIt = Shards.find(DstShard);
  if (SrcIt == Shards.end() || SrcIt->second.Dead ||
      DstIt == Shards.end() || DstIt->second.Dead || SrcShard == DstShard)
    return false;
  control::MigrateCmd Cmd;
  Cmd.RequestId = NextMigrationId++;
  Cmd.DstShard = DstShard;
  Cmd.DstTab = DstIt->second.Tab;
  Cmd.Pid = P;
  MigrationsInFlight.emplace(Cmd.RequestId, std::move(Done));
  Fab.sendControl(Tab, SrcIt->second.Tab,
                  control::encode(control::Kind::Migrate, Cmd.encode()));
  return true;
}

uint64_t Balancer::migrationsDone() const { return MigrationsC->value(); }

void Balancer::beginReroute(Conn &C, bool Abrupt) {
  C.Rerouting = true; // Forwarding pauses; new requests queue.
  if (Abrupt) {
    // Outstanding requests died with the shard: fill their slots with
    // errors now, then move immediately.
    synthesizeErrors(C, "cluster: shard killed");
    flushSlots(C);
    rerouteNow(C);
    return;
  }
  bool Outstanding = false;
  for (const Slot &S : C.Slots)
    if (!S.Local && !S.Ready && S.ForwardedNs) {
      Outstanding = true;
      break;
    }
  if (!Outstanding)
    rerouteNow(C); // Already idle: move now.
  // Else onUpstreamData completes the move once the last response lands.
}

void Balancer::rerouteNow(Conn &C) {
  if (C.Upstream) {
    C.Upstream->setOnData(nullptr);
    C.Upstream->setOnClose(nullptr);
    C.Upstream->close(); // FIN ordered after anything already sent.
    C.Upstream = nullptr;
  }
  detachFromShard(C);
  C.Rerouting = false;
  ReroutedC->inc();
  // Fresh candidate walk against the current ring; queued requests in
  // PendingOut flow to the new shard once it binds.
  beginWalk(C);
}

void Balancer::detachFromShard(Conn &C) {
  if (!C.HasShard)
    return;
  uint32_t SId = C.ShardId;
  C.HasShard = false;
  auto It = Shards.find(SId);
  if (It == Shards.end())
    return;
  It->second.Conns.erase(C.Id);
  maybeFinishDrain(SId);
}

void Balancer::maybeFinishDrain(uint32_t ShardId) {
  auto It = Shards.find(ShardId);
  if (It == Shards.end())
    return;
  ShardInfo &S = It->second;
  if (!S.Draining || S.Dead || !S.Conns.empty() || S.DrainSent)
    return;
  // Every link is closed, and those closes were mailed before this
  // command (same sender, FIFO): by the time the shard sees Drain, its
  // connections are idle or already gone.
  S.DrainSent = true;
  Fab.sendControl(Tab, S.Tab, control::encode(control::Kind::Drain, {}));
}

void Balancer::closeConn(uint64_t Id, bool RefusedSaturatedPath) {
  auto It = Conns.find(Id);
  if (It == Conns.end())
    return;
  std::unique_ptr<Conn> C = std::move(It->second);
  Conns.erase(It);
  (void)RefusedSaturatedPath;
  detachFromShard(*C);
  if (C->Upstream) {
    C->Upstream->setOnData(nullptr);
    C->Upstream->setOnClose(nullptr);
    C->Upstream->close();
    C->Upstream = nullptr;
  }
  if (C->Client) {
    C->Client->setOnData(nullptr);
    C->Client->setOnClose(nullptr);
    if (!C->ClientClosed)
      C->Client->close();
    C->Client = nullptr;
  }
}

//===----------------------------------------------------------------------===//
// Metrics
//===----------------------------------------------------------------------===//

void Balancer::noteSnapshot(const ShardSnapshot &S) {
  auto It = Shards.find(S.ShardId);
  if (It == Shards.end())
    return;
  Snapshots[S.ShardId] = S;
  obs::Registry &Reg = Env.metrics();
  const std::string &P = It->second.Prefix;
  Reg.gauge(P + ".accepted").set(static_cast<int64_t>(S.Accepted));
  Reg.gauge(P + ".refused").set(static_cast<int64_t>(S.Refused));
  Reg.gauge(P + ".active").set(static_cast<int64_t>(S.Active));
  Reg.gauge(P + ".requests_served")
      .set(static_cast<int64_t>(S.RequestsServed));
  Reg.gauge(P + ".request_errors")
      .set(static_cast<int64_t>(S.RequestErrors));
  Reg.gauge(P + ".bytes_in").set(static_cast<int64_t>(S.BytesIn));
  Reg.gauge(P + ".bytes_out").set(static_cast<int64_t>(S.BytesOut));
  Reg.gauge(P + ".service_p50_ns")
      .set(static_cast<int64_t>(S.ServiceP50Ns));
  Reg.gauge(P + ".service_p99_ns")
      .set(static_cast<int64_t>(S.ServiceP99Ns));
  Reg.gauge(P + ".procs_spawned")
      .set(static_cast<int64_t>(S.ProcsSpawned));
  Reg.gauge(P + ".zombies").set(static_cast<int64_t>(S.Zombies));
}

Balancer::Stats Balancer::stats() const {
  Stats Out;
  Out.ConnsAccepted = ConnsAcceptedC->value();
  Out.ConnsRefused = ConnsRefusedC->value();
  Out.RefusedSaturated = RefusedSaturatedC->value();
  Out.Routed = RoutedC->value();
  Out.Rerouted = ReroutedC->value();
  Out.RequestsForwarded = RequestsForwardedC->value();
  Out.ResponsesReturned = ResponsesReturnedC->value();
  Out.ErrorsSynthesized = ErrorsSynthesizedC->value();
  Out.MetricsServed = MetricsServedC->value();
  Out.UpstreamRttNs = UpstreamRttNsH->samples();
  Out.RouteNs = RouteNsH->samples();
  return Out;
}
