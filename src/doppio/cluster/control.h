//===- doppio/cluster/control.h - Cluster control-plane codec ----*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The balancer <-> shard control-plane messages that ride
/// Fabric::sendControl: one kind byte, then a kind-specific payload
/// (browser/wire.h byte order, like every codec in the tree). Control mail
/// shares the data plane's FIFO and stamping guarantees, which the drain
/// protocol depends on: a Drain command sent *after* the balancer closed
/// its links to a shard arrives after those closes, so the shard only ever
/// drains idle connections.
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_DOPPIO_CLUSTER_CONTROL_H
#define DOPPIO_DOPPIO_CLUSTER_CONTROL_H

#include "browser/wire.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace doppio {
namespace cluster {
namespace control {

enum class Kind : uint8_t {
  /// Balancer -> shard: gracefully drain the doppiod server. Sent only
  /// once every balancer link to the shard is closed.
  Drain = 1,
  /// Shard -> balancer: drain finished; payload is the shard's final
  /// ShardSnapshot.
  DrainDone = 2,
  /// Shard -> balancer: periodic stat push; payload is a ShardSnapshot.
  Snapshot = 3,
  /// Balancer -> shard: abrupt removal. The balancer has already
  /// synthesized error responses and re-routed; the shard just tears
  /// down.
  Kill = 4,
  /// Balancer -> source shard: checkpoint process <pid> and ship it to
  /// the destination shard (DESIGN.md §16). Payload: [u64 request id]
  /// [u32 dst shard id][u32 dst tab][u64 pid]. The shard retries on its
  /// own timer until the program is quiescent.
  Migrate = 5,
  /// Source shard -> destination shard: the frozen process. Payload:
  /// [u64 request id][u32 src shard id][u32 dst shard id]
  /// [u64 capture us][checkpoint blob...].
  MigrateBlob = 6,
  /// Either shard -> balancer: migration finished (or failed). Payload:
  /// [u64 request id][u32 src shard id][u32 dst shard id][u8 ok]
  /// [u64 new pid][u64 capture us][u64 restore us][u64 blob bytes]
  /// [error text...].
  MigrateDone = 7,
};

inline std::vector<uint8_t> encode(Kind K, std::vector<uint8_t> Payload) {
  std::vector<uint8_t> Out;
  Out.reserve(1 + Payload.size());
  Out.push_back(static_cast<uint8_t>(K));
  Out.insert(Out.end(), Payload.begin(), Payload.end());
  return Out;
}

struct Message {
  Kind K;
  std::vector<uint8_t> Payload;
};

inline std::optional<Message> decode(const std::vector<uint8_t> &B) {
  if (B.empty() || B[0] < 1 || B[0] > 7)
    return std::nullopt;
  Message M;
  M.K = static_cast<Kind>(B[0]);
  M.Payload.assign(B.begin() + 1, B.end());
  return M;
}

//===----------------------------------------------------------------------===//
// Migration payloads (DESIGN.md §16)
//===----------------------------------------------------------------------===//

/// Kind::Migrate payload.
struct MigrateCmd {
  uint64_t RequestId = 0;
  uint32_t DstShard = 0;
  uint32_t DstTab = 0;
  int64_t Pid = 0;

  std::vector<uint8_t> encode() const {
    std::vector<uint8_t> Out;
    browser::wire::putU64(Out, RequestId);
    browser::wire::putU32(Out, DstShard);
    browser::wire::putU32(Out, DstTab);
    browser::wire::putU64(Out, static_cast<uint64_t>(Pid));
    return Out;
  }
  static std::optional<MigrateCmd> decode(const std::vector<uint8_t> &B) {
    if (B.size() != 24)
      return std::nullopt;
    MigrateCmd M;
    M.RequestId = browser::wire::getU64(B.data());
    M.DstShard = browser::wire::getU32(B.data() + 8);
    M.DstTab = browser::wire::getU32(B.data() + 12);
    M.Pid = static_cast<int64_t>(browser::wire::getU64(B.data() + 16));
    return M;
  }
};

/// Kind::MigrateBlob payload: header + the opaque checkpoint blob.
struct MigrateBlobMsg {
  uint64_t RequestId = 0;
  uint32_t SrcShard = 0;
  uint32_t DstShard = 0;
  uint64_t CaptureUs = 0;
  std::vector<uint8_t> Blob;

  std::vector<uint8_t> encode() const {
    std::vector<uint8_t> Out;
    browser::wire::putU64(Out, RequestId);
    browser::wire::putU32(Out, SrcShard);
    browser::wire::putU32(Out, DstShard);
    browser::wire::putU64(Out, CaptureUs);
    Out.insert(Out.end(), Blob.begin(), Blob.end());
    return Out;
  }
  static std::optional<MigrateBlobMsg>
  decode(const std::vector<uint8_t> &B) {
    if (B.size() < 24)
      return std::nullopt;
    MigrateBlobMsg M;
    M.RequestId = browser::wire::getU64(B.data());
    M.SrcShard = browser::wire::getU32(B.data() + 8);
    M.DstShard = browser::wire::getU32(B.data() + 12);
    M.CaptureUs = browser::wire::getU64(B.data() + 16);
    M.Blob.assign(B.begin() + 24, B.end());
    return M;
  }
};

/// Kind::MigrateDone payload.
struct MigrateDoneMsg {
  uint64_t RequestId = 0;
  uint32_t SrcShard = 0;
  uint32_t DstShard = 0;
  bool Ok = false;
  int64_t NewPid = 0;
  uint64_t CaptureUs = 0;
  uint64_t RestoreUs = 0;
  uint64_t BlobBytes = 0;
  std::string Error;

  std::vector<uint8_t> encode() const {
    std::vector<uint8_t> Out;
    browser::wire::putU64(Out, RequestId);
    browser::wire::putU32(Out, SrcShard);
    browser::wire::putU32(Out, DstShard);
    Out.push_back(Ok ? 1 : 0);
    browser::wire::putU64(Out, static_cast<uint64_t>(NewPid));
    browser::wire::putU64(Out, CaptureUs);
    browser::wire::putU64(Out, RestoreUs);
    browser::wire::putU64(Out, BlobBytes);
    Out.insert(Out.end(), Error.begin(), Error.end());
    return Out;
  }
  static std::optional<MigrateDoneMsg>
  decode(const std::vector<uint8_t> &B) {
    if (B.size() < 49)
      return std::nullopt;
    MigrateDoneMsg M;
    M.RequestId = browser::wire::getU64(B.data());
    M.SrcShard = browser::wire::getU32(B.data() + 8);
    M.DstShard = browser::wire::getU32(B.data() + 12);
    M.Ok = B[16] == 1;
    M.NewPid = static_cast<int64_t>(browser::wire::getU64(B.data() + 17));
    M.CaptureUs = browser::wire::getU64(B.data() + 25);
    M.RestoreUs = browser::wire::getU64(B.data() + 33);
    M.BlobBytes = browser::wire::getU64(B.data() + 41);
    M.Error.assign(B.begin() + 49, B.end());
    return M;
  }
};

} // namespace control
} // namespace cluster
} // namespace doppio

#endif // DOPPIO_DOPPIO_CLUSTER_CONTROL_H
