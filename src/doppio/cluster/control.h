//===- doppio/cluster/control.h - Cluster control-plane codec ----*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The balancer <-> shard control-plane messages that ride
/// Fabric::sendControl: one kind byte, then a kind-specific payload
/// (browser/wire.h byte order, like every codec in the tree). Control mail
/// shares the data plane's FIFO and stamping guarantees, which the drain
/// protocol depends on: a Drain command sent *after* the balancer closed
/// its links to a shard arrives after those closes, so the shard only ever
/// drains idle connections.
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_DOPPIO_CLUSTER_CONTROL_H
#define DOPPIO_DOPPIO_CLUSTER_CONTROL_H

#include <cstdint>
#include <optional>
#include <vector>

namespace doppio {
namespace cluster {
namespace control {

enum class Kind : uint8_t {
  /// Balancer -> shard: gracefully drain the doppiod server. Sent only
  /// once every balancer link to the shard is closed.
  Drain = 1,
  /// Shard -> balancer: drain finished; payload is the shard's final
  /// ShardSnapshot.
  DrainDone = 2,
  /// Shard -> balancer: periodic stat push; payload is a ShardSnapshot.
  Snapshot = 3,
  /// Balancer -> shard: abrupt removal. The balancer has already
  /// synthesized error responses and re-routed; the shard just tears
  /// down.
  Kill = 4,
};

inline std::vector<uint8_t> encode(Kind K, std::vector<uint8_t> Payload) {
  std::vector<uint8_t> Out;
  Out.reserve(1 + Payload.size());
  Out.push_back(static_cast<uint8_t>(K));
  Out.insert(Out.end(), Payload.begin(), Payload.end());
  return Out;
}

struct Message {
  Kind K;
  std::vector<uint8_t> Payload;
};

inline std::optional<Message> decode(const std::vector<uint8_t> &B) {
  if (B.empty() || B[0] < 1 || B[0] > 4)
    return std::nullopt;
  Message M;
  M.K = static_cast<Kind>(B[0]);
  M.Payload.assign(B.begin() + 1, B.end());
  return M;
}

} // namespace control
} // namespace cluster
} // namespace doppio

#endif // DOPPIO_DOPPIO_CLUSTER_CONTROL_H
