//===- doppio/server/frame.cpp --------------------------------------------==//

#include "doppio/server/frame.h"

#include "browser/wire.h"

#include <cassert>

using namespace doppio;
using namespace doppio::rt::server;
using doppio::browser::wire::getU32;
using doppio::browser::wire::putU32;

std::vector<uint8_t> frame::encode(const std::vector<uint8_t> &Payload) {
  assert(Payload.size() <= MaxPayloadBytes && "frame payload too large");
  std::vector<uint8_t> Out;
  Out.reserve(HeaderBytes + Payload.size());
  putU32(Out, static_cast<uint32_t>(Payload.size()));
  Out.insert(Out.end(), Payload.begin(), Payload.end());
  return Out;
}

void frame::Decoder::feed(const std::vector<uint8_t> &Data) {
  if (Corrupted)
    return;
  Buffer.insert(Buffer.end(), Data.begin(), Data.end());
}

std::optional<std::vector<uint8_t>> frame::Decoder::next() {
  if (Corrupted || Buffer.size() < HeaderBytes)
    return std::nullopt;
  uint32_t Len = getU32(Buffer.data());
  if (Len > MaxPayloadBytes) {
    Corrupted = true;
    Buffer.clear();
    return std::nullopt;
  }
  if (Buffer.size() < HeaderBytes + Len)
    return std::nullopt;
  std::vector<uint8_t> Payload(Buffer.begin() + HeaderBytes,
                               Buffer.begin() + HeaderBytes + Len);
  Buffer.erase(Buffer.begin(), Buffer.begin() + HeaderBytes + Len);
  return Payload;
}

const char *frame::statusName(Status S) {
  switch (S) {
  case Status::Ok:
    return "OK";
  case Status::BadRequest:
    return "BAD_REQUEST";
  case Status::NoHandler:
    return "NO_HANDLER";
  case Status::Error:
    return "ERROR";
  }
  return "UNKNOWN";
}

std::vector<uint8_t> frame::encodeRequest(const Request &R) {
  assert(R.Handler.size() <= MaxHandlerNameBytes && "handler name too long");
  std::vector<uint8_t> Out;
  Out.reserve(1 + R.Handler.size() + R.Body.size());
  Out.push_back(static_cast<uint8_t>(R.Handler.size()));
  Out.insert(Out.end(), R.Handler.begin(), R.Handler.end());
  Out.insert(Out.end(), R.Body.begin(), R.Body.end());
  return Out;
}

std::optional<frame::Request>
frame::decodeRequest(const std::vector<uint8_t> &Payload) {
  if (Payload.empty())
    return std::nullopt;
  size_t NameLen = Payload[0];
  if (NameLen == 0 || Payload.size() < 1 + NameLen)
    return std::nullopt;
  Request R;
  R.Handler.assign(Payload.begin() + 1, Payload.begin() + 1 + NameLen);
  R.Body.assign(Payload.begin() + 1 + NameLen, Payload.end());
  return R;
}

std::vector<uint8_t> frame::encodeResponse(const Response &R) {
  std::vector<uint8_t> Out;
  Out.reserve(1 + R.Body.size());
  Out.push_back(static_cast<uint8_t>(R.S));
  Out.insert(Out.end(), R.Body.begin(), R.Body.end());
  return Out;
}

std::optional<frame::Response>
frame::decodeResponse(const std::vector<uint8_t> &Payload) {
  if (Payload.empty())
    return std::nullopt;
  if (Payload[0] > static_cast<uint8_t>(Status::Error))
    return std::nullopt;
  Response R;
  R.S = static_cast<Status>(Payload[0]);
  R.Body.assign(Payload.begin() + 1, Payload.end());
  return R;
}
