//===- doppio/server/stats.cpp --------------------------------------------==//

#include "doppio/server/stats.h"

#include <algorithm>

namespace doppio {
namespace rt {
namespace server {

uint64_t percentileNs(const std::vector<uint64_t> &SamplesNs, double Pct) {
  if (SamplesNs.empty())
    return 0;
  std::vector<uint64_t> Sorted = SamplesNs;
  size_t Rank = static_cast<size_t>(
      (Pct / 100.0) * static_cast<double>(Sorted.size() - 1) + 0.5);
  if (Rank >= Sorted.size())
    Rank = Sorted.size() - 1;
  std::nth_element(Sorted.begin(), Sorted.begin() + Rank, Sorted.end());
  return Sorted[Rank];
}

} // namespace server
} // namespace rt
} // namespace doppio
