//===- doppio/server/stats.h - doppiod counters -------------------*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The counter block a doppiod server exposes for benchmarks: connection
/// accounting (accepted/refused/active), byte counters, request counters,
/// and per-request service-time samples on the virtual clock from which the
/// fig7 harness reports p50/p99 tail latency.
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_DOPPIO_SERVER_STATS_H
#define DOPPIO_DOPPIO_SERVER_STATS_H

#include <cstdint>
#include <vector>

namespace doppio {
namespace rt {
namespace server {

/// Nearest-rank percentile over \p SamplesNs (0 when empty). \p Pct in
/// [0, 100]. Shared by ServerStats and the traffic generator's report.
uint64_t percentileNs(const std::vector<uint64_t> &SamplesNs, double Pct);

/// Aggregate statistics of one Server.
struct ServerStats {
  // Connections.
  uint64_t Accepted = 0;
  /// Refused at the accept path: backlog overflow, or connects queued
  /// behind a socket that closed. (Connects arriving after shutdown are
  /// refused by the fabric before reaching the server.)
  uint64_t Refused = 0;
  uint64_t Active = 0;
  uint64_t IdleClosed = 0;

  // Traffic.
  uint64_t BytesIn = 0;
  uint64_t BytesOut = 0;

  // Requests.
  uint64_t RequestsServed = 0; // Completed with Status::Ok.
  uint64_t RequestErrors = 0;  // Completed with any other status.

  /// Virtual-clock service time of every completed request (arrival of the
  /// full request frame to response send).
  std::vector<uint64_t> ServiceNs;

  uint64_t p50Ns() const { return percentileNs(ServiceNs, 50.0); }
  uint64_t p99Ns() const { return percentileNs(ServiceNs, 99.0); }
};

} // namespace server
} // namespace rt
} // namespace doppio

#endif // DOPPIO_DOPPIO_SERVER_STATS_H
