//===- doppio/server/stats.h - doppiod counters -------------------*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The counter block a doppiod server exposes for benchmarks: connection
/// accounting (accepted/refused/active), byte counters, request counters,
/// and per-request service-time samples on the virtual clock from which the
/// fig7 harness reports p50/p99 tail latency.
///
/// Since the obs subsystem landed this is a *view*: Server::stats()
/// assembles it from the server's registry cells (`server.*`), and the
/// percentile math lives in obs::percentileNs — the one copy the whole
/// repo shares (the duplicate that used to live here is gone).
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_DOPPIO_SERVER_STATS_H
#define DOPPIO_DOPPIO_SERVER_STATS_H

#include "doppio/obs/metrics.h"

#include <cstdint>
#include <vector>

namespace doppio {
namespace rt {
namespace server {

/// Aggregate statistics of one Server.
struct ServerStats {
  // Connections.
  uint64_t Accepted = 0;
  /// Refused at the accept path: backlog overflow, or connects queued
  /// behind a socket that closed. (Connects arriving after shutdown are
  /// refused by the fabric before reaching the server.)
  uint64_t Refused = 0;
  uint64_t Active = 0;
  uint64_t IdleClosed = 0;

  // Traffic.
  uint64_t BytesIn = 0;
  uint64_t BytesOut = 0;

  // Requests.
  uint64_t RequestsServed = 0; // Completed with Status::Ok.
  uint64_t RequestErrors = 0;  // Completed with any other status.

  /// Virtual-clock service time of every completed request (arrival of the
  /// full request frame to response send).
  std::vector<uint64_t> ServiceNs;

  uint64_t p50Ns() const { return obs::percentileNs(ServiceNs, 50.0); }
  uint64_t p99Ns() const { return obs::percentileNs(ServiceNs, 99.0); }
};

} // namespace server
} // namespace rt
} // namespace doppio

#endif // DOPPIO_DOPPIO_SERVER_STATS_H
