//===- doppio/server/client.h - doppiod frame-protocol client -----*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A client speaking the doppiod frame protocol over a raw SimNet
/// connection — the "native endpoint" view of the server, used by the
/// traffic generator and tests. Requests pipeline: responses arrive in
/// request order, so completions pair up FIFO. Browser-side guests instead
/// reach doppiod through the §5.3 client stack (DoppioSocket -> WebSocket
/// -> websockify -> TCP), framing their payloads with the same codec; the
/// server cannot tell the difference.
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_DOPPIO_SERVER_CLIENT_H
#define DOPPIO_DOPPIO_SERVER_CLIENT_H

#include "browser/simnet.h"
#include "doppio/server/frame.h"

#include <deque>
#include <functional>

namespace doppio {
namespace rt {
namespace server {

/// A doppiod client over SimNet.
class FrameClient {
public:
  explicit FrameClient(browser::SimNet &Net) : Net(Net) {}

  FrameClient(const FrameClient &) = delete;
  FrameClient &operator=(const FrameClient &) = delete;

  using ResponseCb = std::function<void(frame::Response)>;

  /// Connects to \p Port; \p Done receives false on refusal.
  void connect(uint16_t Port, std::function<void(bool)> Done);

  /// Sends one request; \p Done fires with the response, or with
  /// Status::Error if the connection dies first.
  void request(const std::string &Handler, std::vector<uint8_t> Body,
               ResponseCb Done);

  void close();

  bool isOpen() const { return Conn != nullptr; }

  /// Fires when the server (or the fabric) closes the connection.
  void setOnClose(std::function<void()> H) { OnClose = std::move(H); }

  uint64_t bytesReceived() const { return BytesReceived; }

private:
  void onData(const std::vector<uint8_t> &Data);
  void failPending(const char *Why);

  browser::SimNet &Net;
  browser::TcpConnection *Conn = nullptr;
  frame::Decoder Decode;
  std::deque<ResponseCb> Pending;
  std::function<void()> OnClose;
  uint64_t BytesReceived = 0;
};

} // namespace server
} // namespace rt
} // namespace doppio

#endif // DOPPIO_DOPPIO_SERVER_CLIENT_H
