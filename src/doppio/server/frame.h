//===- doppio/server/frame.h - doppiod wire protocol --------------*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The doppiod wire protocol, shared by the server (doppio/server/server.h)
/// and its clients (doppio/server/client.h). A TCP byte stream carries
/// *frames*: a 4-byte big-endian payload length followed by the payload.
/// Frames in turn carry requests and responses:
///
///   request payload  = [u8 handler-name length][handler name][body]
///   response payload = [u8 status][body]
///
/// The codec is incremental — feed arbitrary byte chunks, pop complete
/// frames — because SimNet delivers whatever chunking the sender used and
/// the websockify bridge may coalesce or split writes. Byte-order packing
/// comes from browser/wire.h, the same helpers the RFC6455 WebSocket codec
/// uses.
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_DOPPIO_SERVER_FRAME_H
#define DOPPIO_DOPPIO_SERVER_FRAME_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace doppio {
namespace rt {
namespace server {
namespace frame {

/// Bytes of the length prefix on every frame.
constexpr size_t HeaderBytes = 4;

/// Frames advertising more than this are treated as stream corruption.
constexpr uint32_t MaxPayloadBytes = 16u << 20;

/// Wraps \p Payload in a length-prefixed frame.
std::vector<uint8_t> encode(const std::vector<uint8_t> &Payload);

/// Incremental frame decoder: feed byte chunks, pop complete payloads.
class Decoder {
public:
  void feed(const std::vector<uint8_t> &Data);

  /// Extracts the next complete frame payload, or nullopt if more bytes
  /// are needed. Returns nullopt forever once the stream is corrupted.
  std::optional<std::vector<uint8_t>> next();

  /// True once an oversized length prefix was seen; the connection should
  /// be dropped.
  bool corrupted() const { return Corrupted; }

  size_t bufferedBytes() const { return Buffer.size(); }

private:
  std::vector<uint8_t> Buffer;
  bool Corrupted = false;
};

/// Response status byte.
enum class Status : uint8_t {
  Ok = 0,
  BadRequest = 1, // Malformed request payload.
  NoHandler = 2,  // No handler registered under that name.
  Error = 3,      // Handler failed; body carries the errno-style message.
};

const char *statusName(Status S);

/// A decoded request: which handler, and its argument bytes.
struct Request {
  std::string Handler;
  std::vector<uint8_t> Body;
};

/// A decoded response.
struct Response {
  Status S = Status::Ok;
  std::vector<uint8_t> Body;

  std::string text() const { return std::string(Body.begin(), Body.end()); }
};

/// Handler names are length-prefixed with one byte.
constexpr size_t MaxHandlerNameBytes = 255;

std::vector<uint8_t> encodeRequest(const Request &R);
std::optional<Request> decodeRequest(const std::vector<uint8_t> &Payload);

std::vector<uint8_t> encodeResponse(const Response &R);
std::optional<Response> decodeResponse(const std::vector<uint8_t> &Payload);

} // namespace frame
} // namespace server
} // namespace rt
} // namespace doppio

#endif // DOPPIO_DOPPIO_SERVER_FRAME_H
