//===- doppio/server/server_socket.cpp ------------------------------------==//

#include "doppio/server/server_socket.h"

#include <algorithm>

using namespace doppio;
using namespace doppio::rt::server;
using browser::TcpConnection;

bool ServerSocket::listen(uint16_t ListenPort, size_t ListenBacklog) {
  if (Listening)
    return false;
  if (!Net.listen(ListenPort,
                  [this](TcpConnection &C) { onIncoming(C); }))
    return false;
  Listening = true;
  Port = ListenPort;
  Backlog = ListenBacklog;
  return true;
}

void ServerSocket::onIncoming(TcpConnection &C) {
  if (!Listening) {
    C.close(); // Refused: socket closed under an in-flight connect.
    ++Refused;
    return;
  }
  if (!PendingAccepts.empty()) {
    AcceptCb Done = std::move(PendingAccepts.front());
    PendingAccepts.pop_front();
    Done(&C);
    return;
  }
  if (AcceptQueue.size() >= Backlog) {
    // Backlog overflow: closing inside the accept handler makes SimNet
    // report ECONNREFUSED to the connector.
    C.close();
    ++Refused;
    return;
  }
  AcceptQueue.push_back(&C);
  // A queued connection whose client gives up must leave the queue before
  // its pair is reaped.
  C.setOnClose([this, Conn = &C] { dropFromQueue(Conn); });
}

void ServerSocket::dropFromQueue(TcpConnection *C) {
  auto It = std::find(AcceptQueue.begin(), AcceptQueue.end(), C);
  if (It != AcceptQueue.end())
    AcceptQueue.erase(It);
}

void ServerSocket::accept(AcceptCb Done) {
  if (!Listening && AcceptQueue.empty()) {
    Done(nullptr);
    return;
  }
  if (!AcceptQueue.empty()) {
    TcpConnection *C = AcceptQueue.front();
    AcceptQueue.pop_front();
    C->setOnClose(nullptr); // The acceptor installs its own handler.
    Done(C);
    return;
  }
  PendingAccepts.push_back(std::move(Done));
}

void ServerSocket::close() {
  if (!Listening)
    return;
  Listening = false;
  Net.unlisten(Port);
  for (TcpConnection *C : AcceptQueue) {
    C->setOnClose(nullptr);
    C->close();
    ++Refused;
  }
  AcceptQueue.clear();
  for (AcceptCb &Done : PendingAccepts)
    Done(nullptr);
  PendingAccepts.clear();
}
