//===- doppio/server/server_socket.h - listen/accept sockets ------*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The server half the paper could not build: §5.3 stops at client sockets
/// because "browsers do not permit incoming connections", deferring servers
/// to an external websockify process. Browsix (PAPERS.md) later brought
/// listen/accept into the browser runtime itself; this class is that
/// missing half over the SimNet fabric.
///
/// Unix semantics: listen(port, backlog) claims the port; incoming
/// connections queue until accept() takes them. When the accept queue is
/// full the connection is refused — the SimNet accept path translates the
/// immediate server-side close into ECONNREFUSED at the connector, exactly
/// like a kernel dropping a SYN when the backlog overflows.
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_DOPPIO_SERVER_SERVER_SOCKET_H
#define DOPPIO_DOPPIO_SERVER_SERVER_SOCKET_H

#include "browser/simnet.h"

#include <cstdint>
#include <deque>
#include <functional>

namespace doppio {
namespace rt {
namespace server {

/// A listening socket with an accept queue and a backlog limit.
class ServerSocket {
public:
  explicit ServerSocket(browser::SimNet &Net) : Net(Net) {}
  ~ServerSocket() { close(); }

  ServerSocket(const ServerSocket &) = delete;
  ServerSocket &operator=(const ServerSocket &) = delete;

  /// Callback for one accepted connection; null means the socket closed
  /// while the accept was pending.
  using AcceptCb = std::function<void(browser::TcpConnection *)>;

  /// Claims \p Port with an accept queue of at most \p Backlog pending
  /// connections. Returns false if the port is taken or already listening.
  bool listen(uint16_t Port, size_t Backlog);

  /// Takes the next pending connection, or parks until one arrives.
  /// Accepts are served in arrival order.
  void accept(AcceptCb Done);

  /// Stops listening: releases the port, refuses every queued connection,
  /// and completes parked accepts with null.
  void close();

  bool isListening() const { return Listening; }
  uint16_t port() const { return Port; }

  /// Connections waiting in the accept queue.
  size_t backlogDepth() const { return AcceptQueue.size(); }

  /// Connections refused because the queue was full (plus any queued
  /// connections discarded by close()).
  uint64_t refused() const { return Refused; }

private:
  void onIncoming(browser::TcpConnection &C);
  void dropFromQueue(browser::TcpConnection *C);

  browser::SimNet &Net;
  uint16_t Port = 0;
  size_t Backlog = 0;
  bool Listening = false;
  std::deque<browser::TcpConnection *> AcceptQueue;
  std::deque<AcceptCb> PendingAccepts;
  uint64_t Refused = 0;
};

} // namespace server
} // namespace rt
} // namespace doppio

#endif // DOPPIO_DOPPIO_SERVER_SERVER_SOCKET_H
