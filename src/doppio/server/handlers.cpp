//===- doppio/server/handlers.cpp -----------------------------------------==//

#include "doppio/server/handlers.h"

#include "doppio/fs.h"

#include <cstdio>

using namespace doppio;
using namespace doppio::rt;
using namespace doppio::rt::server;

static std::vector<uint8_t> bytesOf(const std::string &S) {
  return std::vector<uint8_t>(S.begin(), S.end());
}

Router::Handler server::makeEchoHandler() {
  return [](const frame::Request &R, Router::RespondFn Respond) {
    Respond(frame::Status::Ok, R.Body);
  };
}

Router::Handler server::makeStatHandler(fs::FileSystem &Fs) {
  return [&Fs](const frame::Request &R, Router::RespondFn Respond) {
    std::string Path(R.Body.begin(), R.Body.end());
    if (Path.empty()) {
      Respond(frame::Status::BadRequest, bytesOf("stat: empty path"));
      return;
    }
    Fs.stat(Path, [Respond = std::move(Respond)](ErrorOr<fs::Stats> S) {
      if (!S.ok()) {
        Respond(frame::Status::Error, bytesOf(S.error().message()));
        return;
      }
      char Line[64];
      snprintf(Line, sizeof(Line), "%s %llu",
               S->isDirectory() ? "dir" : "file",
               static_cast<unsigned long long>(S->SizeBytes));
      Respond(frame::Status::Ok, bytesOf(Line));
    });
  };
}

Router::Handler server::makeFileHandler(fs::FileSystem &Fs) {
  return [&Fs](const frame::Request &R, Router::RespondFn Respond) {
    std::string Path(R.Body.begin(), R.Body.end());
    if (Path.empty()) {
      Respond(frame::Status::BadRequest, bytesOf("file: empty path"));
      return;
    }
    Fs.readFile(Path, [Respond = std::move(Respond)](
                          ErrorOr<std::vector<uint8_t>> Data) {
      if (!Data.ok()) {
        Respond(frame::Status::Error, bytesOf(Data.error().message()));
        return;
      }
      Respond(frame::Status::Ok, std::move(*Data));
    });
  };
}

void server::installDefaultHandlers(Router &R, fs::FileSystem &Fs) {
  R.handle("echo", makeEchoHandler());
  R.handle("stat", makeStatHandler(Fs));
  R.handle("file", makeFileHandler(Fs));
}
