//===- doppio/server/handlers.cpp -----------------------------------------==//

#include "doppio/server/handlers.h"

#include "doppio/fs.h"
#include "doppio/obs/exposition.h"
#include "doppio/proc/programs.h"

#include <cstdio>

using namespace doppio;
using namespace doppio::rt;
using namespace doppio::rt::server;

static std::vector<uint8_t> bytesOf(const std::string &S) {
  return std::vector<uint8_t>(S.begin(), S.end());
}

Router::Handler server::makeEchoHandler() {
  return [](const frame::Request &R, Router::RespondFn Respond) {
    Respond(frame::Status::Ok, R.Body);
  };
}

Router::Handler server::makeStatHandler(fs::FileSystem &Fs) {
  return [&Fs](const frame::Request &R, Router::RespondFn Respond) {
    std::string Path(R.Body.begin(), R.Body.end());
    if (Path.empty()) {
      Respond(frame::Status::BadRequest, bytesOf("stat: empty path"));
      return;
    }
    Fs.stat(Path, [Respond = std::move(Respond)](ErrorOr<fs::Stats> S) {
      if (!S.ok()) {
        Respond(frame::Status::Error, bytesOf(S.error().message()));
        return;
      }
      char Line[64];
      snprintf(Line, sizeof(Line), "%s %llu",
               S->isDirectory() ? "dir" : "file",
               static_cast<unsigned long long>(S->SizeBytes));
      Respond(frame::Status::Ok, bytesOf(Line));
    });
  };
}

Router::Handler server::makeFileHandler(fs::FileSystem &Fs) {
  return [&Fs](const frame::Request &R, Router::RespondFn Respond) {
    std::string Path(R.Body.begin(), R.Body.end());
    if (Path.empty()) {
      Respond(frame::Status::BadRequest, bytesOf("file: empty path"));
      return;
    }
    Fs.readFile(Path, [Respond = std::move(Respond)](
                          ErrorOr<std::vector<uint8_t>> Data) {
      if (!Data.ok()) {
        Respond(frame::Status::Error, bytesOf(Data.error().message()));
        return;
      }
      Respond(frame::Status::Ok, std::move(*Data));
    });
  };
}

Router::Handler server::makeMetricsHandler(const obs::Registry &Reg) {
  return [&Reg](const frame::Request &R, Router::RespondFn Respond) {
    std::string Format(R.Body.begin(), R.Body.end());
    if (Format.empty() || Format == "prom") {
      Respond(frame::Status::Ok, bytesOf(obs::renderPrometheus(Reg)));
      return;
    }
    if (Format == "json") {
      Respond(frame::Status::Ok, bytesOf(obs::renderJson(Reg)));
      return;
    }
    Respond(frame::Status::BadRequest,
            bytesOf("metrics: unknown format '" + Format + "'"));
  };
}

Router::Handler server::makeSpawnHandler(proc::ProcessTable &Procs,
                                         const proc::ProgramRegistry &Progs) {
  return [&Procs, &Progs](const frame::Request &R,
                          Router::RespondFn Respond) {
    std::string Line(R.Body.begin(), R.Body.end());

    // Split the command line into pipeline stages on '|'.
    std::vector<std::vector<std::string>> Stages;
    size_t Start = 0;
    while (Start <= Line.size()) {
      size_t Bar = Line.find('|', Start);
      std::string Part = Line.substr(
          Start, Bar == std::string::npos ? std::string::npos : Bar - Start);
      Stages.push_back(proc::tokenize(Part));
      if (Bar == std::string::npos)
        break;
      Start = Bar + 1;
    }

    std::vector<proc::ProcessTable::SpawnSpec> Specs;
    for (const auto &Argv : Stages) {
      if (Argv.empty()) {
        Respond(frame::Status::BadRequest, bytesOf("spawn: empty command"));
        return;
      }
      proc::ProcessTable::SpawnSpec S;
      S.Name = Argv[0];
      S.Prog = Progs.create(Argv);
      if (!S.Prog) {
        Respond(frame::Status::BadRequest,
                bytesOf("spawn: unknown program '" + Argv[0] + "'"));
        return;
      }
      Specs.push_back(std::move(S));
    }

    std::vector<proc::Pid> Pids = Procs.spawnPipeline(std::move(Specs));

    // Wait for every stage; respond once the whole pipeline has been
    // reaped. The waiters park before any program starts (starts are
    // posted on the Background lane), so no exit can race past them.
    struct Pending {
      size_t Remaining;
      proc::Pid Last;
      int LastCode = 0;
      Router::RespondFn Respond;
    };
    auto State = std::make_shared<Pending>();
    State->Remaining = Pids.size();
    State->Last = Pids.back();
    State->Respond = std::move(Respond);
    for (proc::Pid P : Pids) {
      Procs.waitpid(1, P, [&Procs, State, P](ErrorOr<proc::WaitResult> W) {
        if (W.ok() && W->P == State->Last)
          State->LastCode = W->ExitCode;
        if (--State->Remaining > 0)
          return;
        proc::Process *LastProc = Procs.find(State->Last);
        std::string Out =
            LastProc ? LastProc->state().capturedStdout() : "";
        if (State->LastCode == 0) {
          State->Respond(frame::Status::Ok, bytesOf(Out));
          return;
        }
        std::string Err =
            LastProc ? LastProc->state().capturedStderr() : "";
        State->Respond(frame::Status::Error,
                       bytesOf("exit " + std::to_string(State->LastCode) +
                               ": " + Err));
      });
    }
  };
}

void server::installDefaultHandlers(Router &R, fs::FileSystem &Fs,
                                    const obs::Registry *Reg,
                                    proc::ProcessTable *Procs,
                                    const proc::ProgramRegistry *Progs) {
  R.handle("echo", makeEchoHandler());
  R.handle("stat", makeStatHandler(Fs));
  R.handle("file", makeFileHandler(Fs));
  if (Reg)
    R.handle("metrics", makeMetricsHandler(*Reg));
  if (Procs && Progs)
    R.handle("spawn", makeSpawnHandler(*Procs, *Progs));
}
