//===- doppio/server/handlers.cpp -----------------------------------------==//

#include "doppio/server/handlers.h"

#include "doppio/fs.h"
#include "doppio/obs/exposition.h"

#include <cstdio>

using namespace doppio;
using namespace doppio::rt;
using namespace doppio::rt::server;

static std::vector<uint8_t> bytesOf(const std::string &S) {
  return std::vector<uint8_t>(S.begin(), S.end());
}

Router::Handler server::makeEchoHandler() {
  return [](const frame::Request &R, Router::RespondFn Respond) {
    Respond(frame::Status::Ok, R.Body);
  };
}

Router::Handler server::makeStatHandler(fs::FileSystem &Fs) {
  return [&Fs](const frame::Request &R, Router::RespondFn Respond) {
    std::string Path(R.Body.begin(), R.Body.end());
    if (Path.empty()) {
      Respond(frame::Status::BadRequest, bytesOf("stat: empty path"));
      return;
    }
    Fs.stat(Path, [Respond = std::move(Respond)](ErrorOr<fs::Stats> S) {
      if (!S.ok()) {
        Respond(frame::Status::Error, bytesOf(S.error().message()));
        return;
      }
      char Line[64];
      snprintf(Line, sizeof(Line), "%s %llu",
               S->isDirectory() ? "dir" : "file",
               static_cast<unsigned long long>(S->SizeBytes));
      Respond(frame::Status::Ok, bytesOf(Line));
    });
  };
}

Router::Handler server::makeFileHandler(fs::FileSystem &Fs) {
  return [&Fs](const frame::Request &R, Router::RespondFn Respond) {
    std::string Path(R.Body.begin(), R.Body.end());
    if (Path.empty()) {
      Respond(frame::Status::BadRequest, bytesOf("file: empty path"));
      return;
    }
    Fs.readFile(Path, [Respond = std::move(Respond)](
                          ErrorOr<std::vector<uint8_t>> Data) {
      if (!Data.ok()) {
        Respond(frame::Status::Error, bytesOf(Data.error().message()));
        return;
      }
      Respond(frame::Status::Ok, std::move(*Data));
    });
  };
}

Router::Handler server::makeMetricsHandler(const obs::Registry &Reg) {
  return [&Reg](const frame::Request &R, Router::RespondFn Respond) {
    std::string Format(R.Body.begin(), R.Body.end());
    if (Format.empty() || Format == "prom") {
      Respond(frame::Status::Ok, bytesOf(obs::renderPrometheus(Reg)));
      return;
    }
    if (Format == "json") {
      Respond(frame::Status::Ok, bytesOf(obs::renderJson(Reg)));
      return;
    }
    Respond(frame::Status::BadRequest,
            bytesOf("metrics: unknown format '" + Format + "'"));
  };
}

void server::installDefaultHandlers(Router &R, fs::FileSystem &Fs,
                                    const obs::Registry *Reg) {
  R.handle("echo", makeEchoHandler());
  R.handle("stat", makeStatHandler(Fs));
  R.handle("file", makeFileHandler(Fs));
  if (Reg)
    R.handle("metrics", makeMetricsHandler(*Reg));
}
