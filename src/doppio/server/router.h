//===- doppio/server/router.h - doppiod request router ------------*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Routes decoded requests to pluggable handlers by name. Handlers complete
/// asynchronously through a respond callback, so a handler may suspend into
/// the Doppio FS (doppio/server/handlers.h) and respond events later —
/// which is exactly how the file handler exercises the paper's OS services
/// under server load.
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_DOPPIO_SERVER_ROUTER_H
#define DOPPIO_DOPPIO_SERVER_ROUTER_H

#include "doppio/server/frame.h"

#include <functional>
#include <map>
#include <string>
#include <vector>

namespace doppio {
namespace rt {
namespace server {

/// Name -> handler dispatch table.
class Router {
public:
  /// Completes a request exactly once.
  using RespondFn = std::function<void(frame::Status, std::vector<uint8_t>)>;
  /// A request handler. May respond inline or from a later event.
  using Handler = std::function<void(const frame::Request &, RespondFn)>;

  /// Registers (or replaces) the handler for \p Name.
  void handle(std::string Name, Handler H) {
    Routes[std::move(Name)] = std::move(H);
  }

  bool has(const std::string &Name) const { return Routes.count(Name); }

  std::vector<std::string> names() const {
    std::vector<std::string> Out;
    for (const auto &[Name, H] : Routes)
      Out.push_back(Name);
    return Out;
  }

  /// Dispatches \p R; an unknown handler name completes immediately with
  /// Status::NoHandler.
  void dispatch(const frame::Request &R, RespondFn Respond) const {
    auto It = Routes.find(R.Handler);
    if (It == Routes.end()) {
      Respond(frame::Status::NoHandler,
              std::vector<uint8_t>(R.Handler.begin(), R.Handler.end()));
      return;
    }
    It->second(R, std::move(Respond));
  }

private:
  std::map<std::string, Handler> Routes;
};

} // namespace server
} // namespace rt
} // namespace doppio

#endif // DOPPIO_DOPPIO_SERVER_ROUTER_H
