//===- doppio/server/server.h - the doppiod connection manager ----*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// doppiod: a multi-client server running *inside* the Doppio runtime.
/// §5.3 emulates only the client side of Unix sockets and leaves serving to
/// an external websockify process; Browsix (PAPERS.md) closed that gap by
/// hosting server sockets in the browser runtime, and this subsystem is the
/// equivalent here — the piece that turns the repo from a client-only
/// runtime into a client+server system the benchmarks can load-test.
///
/// The Server owns a ServerSocket and every accepted connection. Per
/// connection it runs the doppiod frame protocol (doppio/server/frame.h),
/// routes requests through a Router, enforces an idle timeout, and caps
/// concurrent connections with backpressure: at the cap it simply stops
/// accepting, so newcomers queue in the listen backlog and overflow into
/// ECONNREFUSED — never an unbounded connection table.
///
/// Graceful shutdown drains: the listener closes (new connects are
/// refused), idle connections close immediately, busy connections finish
/// their in-flight requests, every response reaches the wire before the FIN
/// (SimNet orders close after data), and the completion callback fires once
/// ServerStats.Active reaches zero. Both drain and destruction cancel the
/// idle-sweep timer, so a drained (or killed) server leaves zero pending
/// kernel work behind — the property a drained cluster shard's quiescence
/// check relies on (doppio/cluster/).
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_DOPPIO_SERVER_SERVER_H
#define DOPPIO_DOPPIO_SERVER_SERVER_H

#include "browser/env.h"
#include "doppio/server/frame.h"
#include "doppio/server/router.h"
#include "doppio/server/server_socket.h"
#include "doppio/server/stats.h"

#include <cstdint>
#include <map>
#include <memory>

namespace doppio {
namespace rt {
namespace server {

/// The doppiod connection manager.
class Server {
public:
  struct Config {
    uint16_t Port = 7000;
    /// Listen backlog: pending connections beyond this are refused.
    size_t Backlog = 16;
    /// Concurrent-connection cap; at the cap the server stops accepting
    /// (backpressure into the backlog).
    size_t MaxConnections = 256;
    /// Connections idle this long (no data, no request in flight) are
    /// closed by the sweep. 0 disables idle reaping.
    uint64_t IdleTimeoutNs = browser::msToNs(100);
  };

  explicit Server(browser::BrowserEnv &Env) : Server(Env, Config()) {}
  Server(browser::BrowserEnv &Env, Config Cfg);
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Handler registration lives on the router.
  Router &router() { return Routes; }

  /// Starts listening. Returns false if the port is taken or the server is
  /// already running.
  bool start();

  bool isRunning() const { return Running; }

  /// Graceful shutdown: refuse new connects, drain in-flight requests,
  /// close every connection, then fire \p Done (immediately if already
  /// idle). Run the event loop to completion for the drain to happen.
  void shutdown(std::function<void()> Done = nullptr);

  /// Counter snapshot (merges the socket's refusal count). Assembled from
  /// this server's `server.*` registry cells; the service-time samples
  /// come back verbatim from the server.service_ns histogram, so p50/p99
  /// stay bit-identical to the pre-registry implementation.
  ServerStats stats() const;

  const Config &config() const { return Cfg; }
  ServerSocket &socket() { return Sock; }

private:
  struct Conn {
    uint64_t Id = 0;
    browser::TcpConnection *Tcp = nullptr;
    frame::Decoder Decode;
    uint64_t LastActiveNs = 0;
    uint32_t InFlight = 0;
    /// The wire protocol has no request ids, so pipelined responses must
    /// leave in request order even when handlers complete out of order:
    /// each request takes a sequence number and completed responses wait
    /// in Ready until their turn.
    uint64_t NextSeq = 0;
    uint64_t NextToSend = 0;
    std::map<uint64_t, std::vector<uint8_t>> Ready;
  };

  enum class CloseReason { PeerClosed, Idle, Shutdown, ProtocolError };

  uint64_t nowNs() const;
  /// Resolves this server's registry cells under a claimed "server"
  /// prefix.
  void bindCells();
  void acceptNext();
  void onAccepted(browser::TcpConnection &T);
  void onData(uint64_t Id, const std::vector<uint8_t> &Data);
  void serveRequest(uint64_t Id, Conn &C, std::vector<uint8_t> Payload);
  void finishRequest(uint64_t Id, uint64_t Seq, uint64_t StartNs,
                     obs::SpanId Span, frame::Status St,
                     std::vector<uint8_t> Body);
  void closeConn(uint64_t Id, CloseReason Why);
  void armIdleSweep();
  void idleSweep();
  void maybeFinishShutdown();

  browser::BrowserEnv &Env;
  Config Cfg;
  ServerSocket Sock;
  Router Routes;
  obs::Counter *AcceptedC = nullptr;
  obs::Counter *RefusedC = nullptr;
  obs::Gauge *ActiveG = nullptr;
  obs::Counter *IdleClosedC = nullptr;
  obs::Counter *BytesInC = nullptr;
  obs::Counter *BytesOutC = nullptr;
  obs::Counter *RequestsServedC = nullptr;
  obs::Counter *RequestErrorsC = nullptr;
  /// Keeps exact samples: ServerStats::ServiceNs is served verbatim from
  /// here, so fig7's percentiles cannot move.
  obs::Histogram *ServiceNsH = nullptr;
  std::map<uint64_t, std::unique_ptr<Conn>> Conns;
  uint64_t NextConnId = 1;
  bool Running = false;
  bool AcceptArmed = false;
  bool Draining = false;
  /// Pending idle-sweep timer. TimerHandle::cancel covers both the heap
  /// entry and a sweep already promoted but not yet run (the
  /// belt-and-braces this server used to hand-roll with a raw handle +
  /// CancelSource + armed flag).
  browser::TimerHandle Sweep;
  std::function<void()> OnDrained;
};

} // namespace server
} // namespace rt
} // namespace doppio

#endif // DOPPIO_DOPPIO_SERVER_SERVER_H
