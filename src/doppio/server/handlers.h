//===- doppio/server/handlers.h - stock doppiod handlers ----------*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The handlers doppiod ships with:
///
///  - "echo": body echoed back (the classic socket smoke test).
///  - "stat": body is a path; responds "file <size>" / "dir <size>" from
///    fs.stat.
///  - "file": body is a path; responds with the file's bytes out of the
///    Doppio FS — the server serving real content through the paper's §5.1
///    file system, which is what the fig7 load benchmark measures.
///  - "metrics": serves the tab's obs registry over the frame codec. An
///    empty body (or "prom") responds with the Prometheus text
///    exposition; "json" responds with the JSON document that also
///    carries recent spans — a client can scrape end-to-end request
///    attribution from the server it is load-testing.
///  - "spawn": body is a command line, optionally a pipeline ("cat /a |
///    grep x | wc"). Each request spawns the guest process(es) out of a
///    ProgramRegistry, waits for every stage, and responds with the last
///    stage's captured stdout (Ok on exit 0, Error with the exit code and
///    stderr otherwise) over the frame codec.
///
/// FS-backed handlers respond asynchronously (the FS API is async-only,
/// §3.2); errors map to Status::Error with the errno-style message as the
/// body.
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_DOPPIO_SERVER_HANDLERS_H
#define DOPPIO_DOPPIO_SERVER_HANDLERS_H

#include "doppio/server/router.h"

namespace doppio {
namespace obs {
class Registry;
} // namespace obs

namespace rt {
namespace fs {
class FileSystem;
} // namespace fs
namespace proc {
class ProcessTable;
class ProgramRegistry;
} // namespace proc

namespace server {

Router::Handler makeEchoHandler();
Router::Handler makeStatHandler(fs::FileSystem &Fs);
Router::Handler makeFileHandler(fs::FileSystem &Fs);
/// Serves \p Reg: Prometheus text for an empty/"prom" body, the JSON
/// document (with spans) for "json"; any other body is a BadRequest.
Router::Handler makeMetricsHandler(const obs::Registry &Reg);

/// Runs one pipeline per request out of \p Progs on \p Procs (both must
/// outlive the router). Stages spawn as children of init with parked
/// waiters, so the table drains zombie-free whether or not clients stay
/// connected.
Router::Handler makeSpawnHandler(proc::ProcessTable &Procs,
                                 const proc::ProgramRegistry &Progs);

/// Registers echo, stat, and file under their stock names; when \p Reg is
/// non-null, also registers metrics; when \p Procs and \p Progs are
/// non-null, also registers spawn.
void installDefaultHandlers(Router &R, fs::FileSystem &Fs,
                            const obs::Registry *Reg = nullptr,
                            proc::ProcessTable *Procs = nullptr,
                            const proc::ProgramRegistry *Progs = nullptr);

} // namespace server
} // namespace rt
} // namespace doppio

#endif // DOPPIO_DOPPIO_SERVER_HANDLERS_H
