//===- doppio/server/server.cpp -------------------------------------------==//

#include "doppio/server/server.h"

#include <algorithm>
#include <cassert>
#include <cstring>

using namespace doppio;
using namespace doppio::rt::server;
using browser::TcpConnection;

static std::vector<uint8_t> bytesOf(const char *S) {
  return std::vector<uint8_t>(S, S + std::strlen(S));
}

Server::Server(browser::BrowserEnv &Env, Config Cfg)
    : Env(Env), Cfg(Cfg), Sock(Env.net()) {
  bindCells();
}

void Server::bindCells() {
  // claimPrefix: sequential or concurrent servers on one tab (the tests
  // build both) get distinct cell sets, so each instance's stats() view
  // stays exact.
  obs::Registry &Reg = Env.metrics();
  std::string P = Reg.claimPrefix("server");
  AcceptedC = &Reg.counter(P + ".accepted");
  RefusedC = &Reg.counter(P + ".refused");
  ActiveG = &Reg.gauge(P + ".active");
  IdleClosedC = &Reg.counter(P + ".idle_closed");
  BytesInC = &Reg.counter(P + ".bytes_in");
  BytesOutC = &Reg.counter(P + ".bytes_out");
  RequestsServedC = &Reg.counter(P + ".requests_served");
  RequestErrorsC = &Reg.counter(P + ".request_errors");
  ServiceNsH = &Reg.histogram(P + ".service_ns");
}

Server::~Server() {
  // A server torn down without a graceful drain (cluster kill-shard, test
  // teardown) must not leave its idle-sweep timer behind: the pending
  // fire captures `this` and would both dangle and count as pending
  // kernel work against the tab's quiescence.
  Sweep.cancel();
  // Detach callbacks so events still in the loop cannot reach a dead
  // server; connections close, the fabric reaps them.
  for (auto &[Id, C] : Conns) {
    C->Tcp->setOnData(nullptr);
    C->Tcp->setOnClose(nullptr);
    C->Tcp->close();
  }
}

uint64_t Server::nowNs() const { return Env.clock().nowNs(); }

bool Server::start() {
  if (Running)
    return false;
  if (!Sock.listen(Cfg.Port, Cfg.Backlog))
    return false;
  Running = true;
  Draining = false;
  acceptNext();
  return true;
}

void Server::acceptNext() {
  if (!Running || AcceptArmed || Conns.size() >= Cfg.MaxConnections)
    return; // At the cap the backlog provides the backpressure.
  AcceptArmed = true;
  Sock.accept([this](TcpConnection *T) {
    AcceptArmed = false;
    if (!T)
      return; // Socket closed.
    onAccepted(*T);
    acceptNext();
  });
}

void Server::onAccepted(TcpConnection &T) {
  uint64_t Id = NextConnId++;
  auto C = std::make_unique<Conn>();
  C->Id = Id;
  C->Tcp = &T;
  C->LastActiveNs = nowNs();
  Conns.emplace(Id, std::move(C));
  AcceptedC->inc();
  ActiveG->add(1);
  T.setOnData([this, Id](const std::vector<uint8_t> &D) { onData(Id, D); });
  T.setOnClose([this, Id] { closeConn(Id, CloseReason::PeerClosed); });
  armIdleSweep();
}

void Server::onData(uint64_t Id, const std::vector<uint8_t> &Data) {
  {
    auto It = Conns.find(Id);
    if (It == Conns.end())
      return;
    Conn &C = *It->second;
    BytesInC->inc(Data.size());
    C.LastActiveNs = nowNs();
    C.Decode.feed(Data);
  }
  // Re-find each round: an inline respond may close and erase the
  // connection mid-drain (e.g. the last response of a draining conn).
  while (true) {
    auto It = Conns.find(Id);
    if (It == Conns.end())
      return;
    Conn &C = *It->second;
    auto Payload = C.Decode.next();
    if (!Payload) {
      if (C.Decode.corrupted())
        closeConn(Id, CloseReason::ProtocolError);
      return;
    }
    serveRequest(Id, C, std::move(*Payload));
  }
}

void Server::serveRequest(uint64_t Id, Conn &C,
                          std::vector<uint8_t> Payload) {
  ++C.InFlight;
  uint64_t Seq = C.NextSeq++;
  uint64_t StartNs = nowNs();
  auto Req = frame::decodeRequest(Payload);
  // One span per request, named for the handler. The span is current
  // while the handler starts work, so fs ops it issues (and every kernel
  // hop they take) parent under it — end-to-end attribution of queue
  // delay, fs time, and handler time.
  obs::SpanStore &Spans = Env.metrics().spans();
  obs::SpanId Span = Spans.begin(
      Req ? "server.req." + Req->Handler : std::string("server.req"));
  auto Respond = [this, Id, Seq, StartNs, Span](frame::Status St,
                                                std::vector<uint8_t> Body) {
    finishRequest(Id, Seq, StartNs, Span, St, std::move(Body));
  };
  obs::SpanStore::Scope Scope(Spans, Span);
  if (!Req) {
    Respond(frame::Status::BadRequest, bytesOf("malformed request"));
    return;
  }
  Routes.dispatch(*Req, std::move(Respond));
}

void Server::finishRequest(uint64_t Id, uint64_t Seq, uint64_t StartNs,
                           obs::SpanId Span, frame::Status St,
                           std::vector<uint8_t> Body) {
  Env.metrics().spans().end(Span);
  auto It = Conns.find(Id);
  if (It == Conns.end())
    return; // Connection died while the handler ran.
  Conn &C = *It->second;
  assert(C.InFlight > 0 && "response without a matching request");
  --C.InFlight;
  uint64_t NowNs = nowNs();
  C.LastActiveNs = NowNs;
  ServiceNsH->record(NowNs - StartNs);
  if (St == frame::Status::Ok)
    RequestsServedC->inc();
  else
    RequestErrorsC->inc();
  // Responses leave in request order; a response completing ahead of an
  // earlier in-flight one parks in Ready until its turn.
  C.Ready.emplace(Seq,
                  frame::encode(frame::encodeResponse({St, std::move(Body)})));
  while (true) {
    auto RIt = C.Ready.find(C.NextToSend);
    if (RIt == C.Ready.end())
      break;
    BytesOutC->inc(RIt->second.size());
    C.Tcp->send(std::move(RIt->second));
    C.Ready.erase(RIt);
    ++C.NextToSend;
  }
  // A draining connection closes once its last response is on the wire;
  // the FIN is ordered after the data, so the client still gets it.
  if (Draining && C.InFlight == 0)
    closeConn(Id, CloseReason::Shutdown);
}

void Server::closeConn(uint64_t Id, CloseReason Why) {
  auto It = Conns.find(Id);
  if (It == Conns.end())
    return;
  std::unique_ptr<Conn> C = std::move(It->second);
  Conns.erase(It);
  if (Why == CloseReason::Idle)
    IdleClosedC->inc();
  C->Tcp->setOnData(nullptr);
  C->Tcp->setOnClose(nullptr);
  C->Tcp->close(); // No-op if the peer closed first.
  assert(ActiveG->value() > 0);
  ActiveG->sub(1);
  if (Draining)
    maybeFinishShutdown();
  else
    acceptNext(); // A slot freed below the cap: resume accepting.
}

void Server::armIdleSweep() {
  if (Cfg.IdleTimeoutNs == 0 || Sweep.armed() || Draining || Conns.empty())
    return;
  uint64_t Period = std::max<uint64_t>(1, Cfg.IdleTimeoutNs / 2);
  Sweep = Env.loop().postTimer(kernel::Lane::Timer, [this] { idleSweep(); },
                               Period);
}

void Server::idleSweep() {
  if (Draining)
    return; // Shutdown handles the remaining connections itself.
  uint64_t NowNs = nowNs();
  std::vector<uint64_t> Idle;
  for (auto &[Id, C] : Conns)
    if (C->InFlight == 0 && NowNs - C->LastActiveNs >= Cfg.IdleTimeoutNs)
      Idle.push_back(Id);
  for (uint64_t Id : Idle)
    closeConn(Id, CloseReason::Idle);
  armIdleSweep();
}

void Server::shutdown(std::function<void()> Done) {
  if (Draining) {
    // A second shutdown during an in-flight drain joins it rather than
    // firing early: both callbacks run once the drain actually finishes.
    if (Done) {
      if (OnDrained)
        OnDrained = [First = std::move(OnDrained),
                     Second = std::move(Done)] {
          First();
          Second();
        };
      else
        OnDrained = std::move(Done);
    }
    return;
  }
  if (!Running) {
    if (Done)
      Done();
    return;
  }
  Running = false;
  Draining = true;
  OnDrained = std::move(Done);
  // Kill the housekeeping timer: TimerHandle::cancel removes the heap
  // entry and fires the token, covering a sweep already promoted but not
  // yet run.
  Sweep.cancel();
  Sock.close(); // Release the port; queued connects are refused.
  std::vector<uint64_t> IdleIds;
  for (auto &[Id, C] : Conns)
    if (C->InFlight == 0)
      IdleIds.push_back(Id);
  for (uint64_t Id : IdleIds)
    closeConn(Id, CloseReason::Shutdown);
  maybeFinishShutdown();
}

void Server::maybeFinishShutdown() {
  if (!Draining || !Conns.empty())
    return;
  Draining = false;
  if (OnDrained) {
    auto Done = std::move(OnDrained);
    OnDrained = nullptr;
    Done();
  }
}

ServerStats Server::stats() const {
  ServerStats Out;
  Out.Accepted = AcceptedC->value();
  Out.Refused = RefusedC->value() + Sock.refused();
  Out.Active = static_cast<uint64_t>(ActiveG->value());
  Out.IdleClosed = IdleClosedC->value();
  Out.BytesIn = BytesInC->value();
  Out.BytesOut = BytesOutC->value();
  Out.RequestsServed = RequestsServedC->value();
  Out.RequestErrors = RequestErrorsC->value();
  Out.ServiceNs = ServiceNsH->samples();
  return Out;
}
