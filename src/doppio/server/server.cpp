//===- doppio/server/server.cpp -------------------------------------------==//

#include "doppio/server/server.h"

#include <algorithm>
#include <cassert>
#include <cstring>

using namespace doppio;
using namespace doppio::rt::server;
using browser::TcpConnection;

static std::vector<uint8_t> bytesOf(const char *S) {
  return std::vector<uint8_t>(S, S + std::strlen(S));
}

Server::~Server() {
  // Detach callbacks so events still in the loop cannot reach a dead
  // server; connections close, the fabric reaps them.
  for (auto &[Id, C] : Conns) {
    C->Tcp->setOnData(nullptr);
    C->Tcp->setOnClose(nullptr);
    C->Tcp->close();
  }
}

uint64_t Server::nowNs() const { return Env.clock().nowNs(); }

bool Server::start() {
  if (Running)
    return false;
  if (!Sock.listen(Cfg.Port, Cfg.Backlog))
    return false;
  Running = true;
  Draining = false;
  acceptNext();
  return true;
}

void Server::acceptNext() {
  if (!Running || AcceptArmed || Conns.size() >= Cfg.MaxConnections)
    return; // At the cap the backlog provides the backpressure.
  AcceptArmed = true;
  Sock.accept([this](TcpConnection *T) {
    AcceptArmed = false;
    if (!T)
      return; // Socket closed.
    onAccepted(*T);
    acceptNext();
  });
}

void Server::onAccepted(TcpConnection &T) {
  uint64_t Id = NextConnId++;
  auto C = std::make_unique<Conn>();
  C->Id = Id;
  C->Tcp = &T;
  C->LastActiveNs = nowNs();
  Conns.emplace(Id, std::move(C));
  ++S.Accepted;
  ++S.Active;
  T.setOnData([this, Id](const std::vector<uint8_t> &D) { onData(Id, D); });
  T.setOnClose([this, Id] { closeConn(Id, CloseReason::PeerClosed); });
  armIdleSweep();
}

void Server::onData(uint64_t Id, const std::vector<uint8_t> &Data) {
  {
    auto It = Conns.find(Id);
    if (It == Conns.end())
      return;
    Conn &C = *It->second;
    S.BytesIn += Data.size();
    C.LastActiveNs = nowNs();
    C.Decode.feed(Data);
  }
  // Re-find each round: an inline respond may close and erase the
  // connection mid-drain (e.g. the last response of a draining conn).
  while (true) {
    auto It = Conns.find(Id);
    if (It == Conns.end())
      return;
    Conn &C = *It->second;
    auto Payload = C.Decode.next();
    if (!Payload) {
      if (C.Decode.corrupted())
        closeConn(Id, CloseReason::ProtocolError);
      return;
    }
    serveRequest(Id, C, std::move(*Payload));
  }
}

void Server::serveRequest(uint64_t Id, Conn &C,
                          std::vector<uint8_t> Payload) {
  ++C.InFlight;
  uint64_t Seq = C.NextSeq++;
  uint64_t StartNs = nowNs();
  auto Respond = [this, Id, Seq, StartNs](frame::Status St,
                                          std::vector<uint8_t> Body) {
    finishRequest(Id, Seq, StartNs, St, std::move(Body));
  };
  auto Req = frame::decodeRequest(Payload);
  if (!Req) {
    Respond(frame::Status::BadRequest, bytesOf("malformed request"));
    return;
  }
  Routes.dispatch(*Req, std::move(Respond));
}

void Server::finishRequest(uint64_t Id, uint64_t Seq, uint64_t StartNs,
                           frame::Status St, std::vector<uint8_t> Body) {
  auto It = Conns.find(Id);
  if (It == Conns.end())
    return; // Connection died while the handler ran.
  Conn &C = *It->second;
  assert(C.InFlight > 0 && "response without a matching request");
  --C.InFlight;
  uint64_t NowNs = nowNs();
  C.LastActiveNs = NowNs;
  S.ServiceNs.push_back(NowNs - StartNs);
  if (St == frame::Status::Ok)
    ++S.RequestsServed;
  else
    ++S.RequestErrors;
  // Responses leave in request order; a response completing ahead of an
  // earlier in-flight one parks in Ready until its turn.
  C.Ready.emplace(Seq,
                  frame::encode(frame::encodeResponse({St, std::move(Body)})));
  while (true) {
    auto RIt = C.Ready.find(C.NextToSend);
    if (RIt == C.Ready.end())
      break;
    S.BytesOut += RIt->second.size();
    C.Tcp->send(std::move(RIt->second));
    C.Ready.erase(RIt);
    ++C.NextToSend;
  }
  // A draining connection closes once its last response is on the wire;
  // the FIN is ordered after the data, so the client still gets it.
  if (Draining && C.InFlight == 0)
    closeConn(Id, CloseReason::Shutdown);
}

void Server::closeConn(uint64_t Id, CloseReason Why) {
  auto It = Conns.find(Id);
  if (It == Conns.end())
    return;
  std::unique_ptr<Conn> C = std::move(It->second);
  Conns.erase(It);
  if (Why == CloseReason::Idle)
    ++S.IdleClosed;
  C->Tcp->setOnData(nullptr);
  C->Tcp->setOnClose(nullptr);
  C->Tcp->close(); // No-op if the peer closed first.
  assert(S.Active > 0);
  --S.Active;
  if (Draining)
    maybeFinishShutdown();
  else
    acceptNext(); // A slot freed below the cap: resume accepting.
}

void Server::armIdleSweep() {
  if (Cfg.IdleTimeoutNs == 0 || SweepArmed || Draining || Conns.empty())
    return;
  SweepArmed = true;
  uint64_t Period = std::max<uint64_t>(1, Cfg.IdleTimeoutNs / 2);
  SweepTimer = Env.loop().postAfter(
      kernel::Lane::Timer,
      [this] {
        SweepArmed = false;
        idleSweep();
      },
      Period, SweepCancel.token());
}

void Server::idleSweep() {
  if (Draining)
    return; // Shutdown handles the remaining connections itself.
  uint64_t NowNs = nowNs();
  std::vector<uint64_t> Idle;
  for (auto &[Id, C] : Conns)
    if (C->InFlight == 0 && NowNs - C->LastActiveNs >= Cfg.IdleTimeoutNs)
      Idle.push_back(Id);
  for (uint64_t Id : Idle)
    closeConn(Id, CloseReason::Idle);
  armIdleSweep();
}

void Server::shutdown(std::function<void()> Done) {
  if (!Running) {
    if (Done)
      Done();
    return;
  }
  Running = false;
  Draining = true;
  OnDrained = std::move(Done);
  // Kill the housekeeping timer: the handle removes it from the kernel's
  // heap; the token covers a sweep already promoted but not yet run.
  SweepCancel.cancel();
  if (SweepArmed) {
    Env.loop().cancelTimer(SweepTimer);
    SweepArmed = false;
  }
  Sock.close(); // Release the port; queued connects are refused.
  std::vector<uint64_t> IdleIds;
  for (auto &[Id, C] : Conns)
    if (C->InFlight == 0)
      IdleIds.push_back(Id);
  for (uint64_t Id : IdleIds)
    closeConn(Id, CloseReason::Shutdown);
  maybeFinishShutdown();
}

void Server::maybeFinishShutdown() {
  if (!Draining || !Conns.empty())
    return;
  Draining = false;
  if (OnDrained) {
    auto Done = std::move(OnDrained);
    OnDrained = nullptr;
    Done();
  }
}

ServerStats Server::stats() const {
  ServerStats Out = S;
  Out.Refused += Sock.refused();
  return Out;
}
