//===- doppio/server/client.cpp -------------------------------------------==//

#include "doppio/server/client.h"

#include <cstring>

using namespace doppio;
using namespace doppio::rt::server;
using browser::TcpConnection;

void FrameClient::connect(uint16_t Port, std::function<void(bool)> Done) {
  Net.connect(Port, [this, Done = std::move(Done)](TcpConnection *C) {
    if (!C) {
      if (Done)
        Done(false);
      return;
    }
    Conn = C;
    Conn->setOnData([this](const std::vector<uint8_t> &D) { onData(D); });
    Conn->setOnClose([this] {
      // Drop the pointer first: the pair may be reaped once both sides
      // are closed.
      Conn = nullptr;
      failPending("connection closed");
      if (OnClose)
        OnClose();
    });
    if (Done)
      Done(true);
  });
}

void FrameClient::request(const std::string &Handler,
                          std::vector<uint8_t> Body, ResponseCb Done) {
  if (!Conn) {
    frame::Response R;
    R.S = frame::Status::Error;
    const char *Msg = "not connected";
    R.Body.assign(Msg, Msg + std::strlen(Msg));
    Done(std::move(R));
    return;
  }
  frame::Request Req;
  Req.Handler = Handler;
  Req.Body = std::move(Body);
  Conn->send(frame::encode(frame::encodeRequest(Req)));
  Pending.push_back(std::move(Done));
}

void FrameClient::onData(const std::vector<uint8_t> &Data) {
  BytesReceived += Data.size();
  Decode.feed(Data);
  while (auto Payload = Decode.next()) {
    auto Resp = frame::decodeResponse(*Payload);
    if (!Resp || Pending.empty()) {
      close();
      failPending("protocol error");
      return;
    }
    ResponseCb Done = std::move(Pending.front());
    Pending.pop_front();
    Done(std::move(*Resp));
  }
  if (Decode.corrupted()) {
    close();
    failPending("corrupt stream");
  }
}

void FrameClient::failPending(const char *Why) {
  std::deque<ResponseCb> Failed;
  Failed.swap(Pending);
  for (ResponseCb &Done : Failed) {
    frame::Response R;
    R.S = frame::Status::Error;
    R.Body.assign(Why, Why + std::strlen(Why));
    Done(std::move(R));
  }
}

void FrameClient::close() {
  if (!Conn)
    return;
  Conn->setOnData(nullptr);
  Conn->setOnClose(nullptr);
  Conn->close();
  Conn = nullptr;
}
