//===- doppio/path.h - Node path module emulation ----------------*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Doppio emulates the Node JS `path` module (§5.1): POSIX-style path
/// string manipulation used by the file system frontend to standardize
/// arguments before they reach a backend.
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_DOPPIO_PATH_H
#define DOPPIO_DOPPIO_PATH_H

#include <string>
#include <string_view>
#include <vector>

namespace doppio {
namespace rt {
namespace path {

/// True if \p P starts with '/'.
bool isAbsolute(std::string_view P);

/// Collapses "//", "." and ".." segments. "" normalizes to ".".
std::string normalize(std::string_view P);

/// Joins segments with '/' and normalizes the result.
std::string join(std::initializer_list<std::string_view> Parts);
std::string join2(std::string_view A, std::string_view B);

/// Resolves \p P against \p Cwd into a normalized absolute path.
std::string resolve(std::string_view Cwd, std::string_view P);

/// Everything before the final segment ("/a/b/c" -> "/a/b"). The dirname
/// of "/" is "/" and of a bare name is ".".
std::string dirname(std::string_view P);

/// The final segment ("/a/b/c.txt" -> "c.txt").
std::string basename(std::string_view P);

/// The extension including the dot ("c.txt" -> ".txt", "c" -> "").
std::string extname(std::string_view P);

/// Splits a normalized absolute path into segments ("/a/b" -> {"a","b"}).
std::vector<std::string> split(std::string_view P);

} // namespace path
} // namespace rt
} // namespace doppio

#endif // DOPPIO_DOPPIO_PATH_H
