//===- doppio/cont/continuation.cpp ---------------------------------------==//

#include "doppio/cont/continuation.h"

#include "doppio/cont/snapshot.h"

using namespace doppio;
using namespace doppio::rt;

namespace {
// 'D' 'K' (Doppio Kontinuation) + format generation.
constexpr uint32_t ContMagic = 0x444b4e54; // "DKNT"
constexpr uint32_t ContVersion = 1;
} // namespace

std::vector<uint8_t> Continuation::serialize() const {
  if (!armed() || !Desc)
    return {};
  snap::Writer W(ContMagic, ContVersion);
  W.str(Desc->Tag);
  W.u64(promptId());
  W.bytes(Desc->State);
  return W.take();
}

std::optional<Continuation>
Continuation::deserialize(const std::vector<uint8_t> &Wire,
                          ResumerRegistry &Reg) {
  snap::Reader R(Wire, ContMagic, ContVersion);
  std::string Tag = R.str();
  uint64_t Prompt = R.u64();
  std::vector<uint8_t> State = R.bytes();
  if (!R.atEnd())
    return std::nullopt;
  std::optional<Continuation> K = Reg.rebuild(Tag, State);
  if (!K)
    return std::nullopt;
  // The rebuilt continuation stays serializable (tag + state survive the
  // hop), so a restored program can be checkpointed again. The prompt id
  // rides along for demultiplexing parity.
  K->setDescriptor(Tag, State);
  (void)Prompt;
  return K;
}
