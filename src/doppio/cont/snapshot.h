//===- doppio/cont/snapshot.h - Versioned snapshot wire form -----*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md and DESIGN.md §16.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Writer/Reader helpers for the continuation-substrate wire forms: the
/// Continuation descriptor, proc checkpoint blobs, and the JVM image all
/// share one framing discipline — a magic + u32 version header, big-endian
/// integers (browser/wire.h), and length-prefixed strings/byte blocks.
/// Readers are bounds-checked cursors: any truncated or oversized field
/// flips a sticky failure bit instead of reading past the end, so a
/// corrupted migration blob is rejected, never interpreted.
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_DOPPIO_CONT_SNAPSHOT_H
#define DOPPIO_DOPPIO_CONT_SNAPSHOT_H

#include "browser/wire.h"

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace doppio {
namespace rt {
namespace snap {

/// Appends framed fields to a byte vector.
class Writer {
public:
  /// Starts a snapshot: [magic u32][version u32].
  Writer(uint32_t Magic, uint32_t Version) {
    browser::wire::putU32(Out, Magic);
    browser::wire::putU32(Out, Version);
  }

  void u8(uint8_t V) { Out.push_back(V); }
  void u32(uint32_t V) { browser::wire::putU32(Out, V); }
  void u64(uint64_t V) { browser::wire::putU64(Out, V); }
  void i64(int64_t V) { u64(static_cast<uint64_t>(V)); }
  void str(const std::string &S) {
    u32(static_cast<uint32_t>(S.size()));
    Out.insert(Out.end(), S.begin(), S.end());
  }
  void bytes(const std::vector<uint8_t> &B) {
    u32(static_cast<uint32_t>(B.size()));
    Out.insert(Out.end(), B.begin(), B.end());
  }

  std::vector<uint8_t> take() { return std::move(Out); }
  size_t size() const { return Out.size(); }

private:
  std::vector<uint8_t> Out;
};

/// Bounds-checked cursor over a snapshot. After any failed read, ok() is
/// false and every further read returns a zero value — callers check ok()
/// once at the end (or at structural boundaries), not per field.
class Reader {
public:
  /// Opens a snapshot, checking [magic][version == Version].
  Reader(const std::vector<uint8_t> &B, uint32_t Magic, uint32_t Version)
      : B(B) {
    if (u32() != Magic || u32() != Version)
      Ok = false;
  }

  bool ok() const { return Ok; }
  bool atEnd() const { return Ok && Pos == B.size(); }

  uint8_t u8() {
    if (!need(1))
      return 0;
    return B[Pos++];
  }
  uint32_t u32() {
    if (!need(4))
      return 0;
    uint32_t V = browser::wire::getU32(B.data() + Pos);
    Pos += 4;
    return V;
  }
  uint64_t u64() {
    if (!need(8))
      return 0;
    uint64_t V = browser::wire::getU64(B.data() + Pos);
    Pos += 8;
    return V;
  }
  int64_t i64() { return static_cast<int64_t>(u64()); }
  std::string str() {
    uint32_t N = u32();
    if (!need(N))
      return std::string();
    std::string S(B.begin() + static_cast<ptrdiff_t>(Pos),
                  B.begin() + static_cast<ptrdiff_t>(Pos + N));
    Pos += N;
    return S;
  }
  std::vector<uint8_t> bytes() {
    uint32_t N = u32();
    if (!need(N))
      return {};
    std::vector<uint8_t> V(B.begin() + static_cast<ptrdiff_t>(Pos),
                           B.begin() + static_cast<ptrdiff_t>(Pos + N));
    Pos += N;
    return V;
  }

private:
  bool need(size_t N) {
    if (!Ok || B.size() - Pos < N) {
      Ok = false;
      return false;
    }
    return true;
  }

  const std::vector<uint8_t> &B;
  size_t Pos = 0;
  bool Ok = true;
};

} // namespace snap
} // namespace rt
} // namespace doppio

#endif // DOPPIO_DOPPIO_CONT_SNAPSHOT_H
