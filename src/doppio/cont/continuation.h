//===- doppio/cont/continuation.h - First-class continuations ----*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md and DESIGN.md §16.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one suspend substrate: a reified, heap-owned delimited continuation.
///
/// Doppio's §4.1–§4.4 mechanisms — suspend-and-resume, green threads, the
/// AsyncBridge — plus the kernel Resume lane and proc parking are five
/// hand-rolled reimplementations of "capture the rest of this computation".
/// Wasm/k ("Delimited Continuations for WebAssembly", PAPERS.md) argues
/// these should be one reified primitive; Stopify shows capture can be made
/// cheap by careful placement. This header is that primitive:
///
///  - rt::Continuation — capture() the rest of the computation as a value,
///    resume() it exactly once, later, from anywhere. One-shot enforcement
///    is accounted (and assert-checked in debug builds): resuming twice is
///    a bug, dropping without resuming is a leak, and both are visible as
///    registry cells shared by every subsystem in a tab
///    (`cont.captured/resumed/dropped/double_resumes/live`).
///
///  - rt::ContinuationOf<T> — the same, carrying a value to the suspended
///    computation on resume (pipe reads/writes, waitpid results).
///
///  - A versioned serialize()/deserialize() wire form. The *host-side*
///    entry of a continuation (a C++ closure) cannot cross a wire; what
///    can is the guest-visible state it delimits (JVM interpreter frames
///    and vm32 frames are explicit heap structures — serialization is
///    frame-walking, not stack-ripping). A serializable continuation
///    therefore carries a (tag, state-bytes) descriptor; deserialization
///    rebinds the tag to a resume entry through a ResumerRegistry on the
///    destination side. proc::checkpoint and cluster migration are built
///    on exactly this split.
///
/// Continuations are move-only values: whoever holds one owns the rest of
/// that computation. Everything is single-threaded over the virtual clock.
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_DOPPIO_CONT_CONTINUATION_H
#define DOPPIO_DOPPIO_CONT_CONTINUATION_H

#include "doppio/obs/registry.h"

#include <cassert>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace doppio {
namespace rt {
namespace cont {

/// The shared accounting cells, resolved by fixed (unprefixed) name so
/// every subsystem in one tab reports into the same counters — the whole
/// point is that there is *one* substrate.
struct Cells {
  obs::Counter *Captured = nullptr;
  obs::Counter *Resumed = nullptr;
  /// Continuations destroyed while still armed (never resumed): leaks.
  obs::Counter *Dropped = nullptr;
  /// resume() calls on an already-resumed continuation: bugs.
  obs::Counter *DoubleResumes = nullptr;
  /// Currently armed (captured, not yet resumed or dropped).
  obs::Gauge *Live = nullptr;

  static Cells resolve(obs::Registry &Reg) {
    Cells C;
    C.Captured = &Reg.counter("cont.captured");
    C.Resumed = &Reg.counter("cont.resumed");
    C.Dropped = &Reg.counter("cont.dropped");
    C.DoubleResumes = &Reg.counter("cont.double_resumes");
    C.Live = &Reg.gauge("cont.live");
    return C;
  }
};

/// Move-only one-shot accounting core shared by Continuation and
/// ContinuationOf<T>: tracks Armed/Resumed across moves and feeds the
/// cells. The resume entries themselves live in the wrappers (they differ
/// in signature).
class Accounting {
public:
  Accounting() = default;
  Accounting(Cells C, const char *Origin, uint64_t PromptId)
      : C(C), Origin(Origin), Prompt(PromptId), Armed(true) {
    if (C.Captured)
      C.Captured->inc();
    if (C.Live)
      C.Live->add(1);
  }

  Accounting(Accounting &&O) noexcept { swap(O); }
  Accounting &operator=(Accounting &&O) noexcept {
    drop();
    swap(O);
    return *this;
  }
  Accounting(const Accounting &) = delete;
  Accounting &operator=(const Accounting &) = delete;

  ~Accounting() { drop(); }

  bool armed() const { return Armed; }
  const char *origin() const { return Origin; }
  /// The delimiter this continuation was captured up to. Subsystems use it
  /// as a demux key (the Suspender's resumption id, a pipe's park slot).
  uint64_t promptId() const { return Prompt; }

  /// Marks the one shot fired. Returns false (and counts a double resume)
  /// if it already was.
  bool fire() {
    if (!Armed) {
      if (C.DoubleResumes)
        C.DoubleResumes->inc();
      assert(!"continuation resumed twice");
      return false;
    }
    Armed = false;
    if (C.Resumed)
      C.Resumed->inc();
    if (C.Live)
      C.Live->add(-1);
    return true;
  }

private:
  void swap(Accounting &O) {
    std::swap(C, O.C);
    std::swap(Origin, O.Origin);
    std::swap(Prompt, O.Prompt);
    std::swap(Armed, O.Armed);
  }
  void drop() {
    if (!Armed)
      return;
    Armed = false;
    if (C.Dropped)
      C.Dropped->inc();
    if (C.Live)
      C.Live->add(-1);
  }

  Cells C;
  const char *Origin = "";
  uint64_t Prompt = 0;
  bool Armed = false;
};

} // namespace cont

class ResumerRegistry;

/// A first-class delimited continuation: "the rest of this computation",
/// captured as a heap-owned value. Resume it exactly once.
class Continuation {
public:
  /// An inert continuation: not armed, resume() is a counted error.
  Continuation() = default;

  /// Captures \p Fn — the rest of the computation from the suspension
  /// point — as a continuation. \p Origin is a static string naming the
  /// capturing subsystem (shows up in leak triage); \p PromptId is the
  /// delimiter key, 0 when the capturer does not demux.
  static Continuation capture(cont::Cells C, std::function<void()> Fn,
                              const char *Origin = "", uint64_t PromptId = 0) {
    Continuation K;
    K.Acct = cont::Accounting(C, Origin, PromptId);
    K.Fn = std::move(Fn);
    return K;
  }
  /// Convenience: resolves the cells from \p Reg (5 name lookups; callers
  /// on hot paths resolve a cont::Cells once instead).
  static Continuation capture(obs::Registry &Reg, std::function<void()> Fn,
                              const char *Origin = "", uint64_t PromptId = 0) {
    return capture(cont::Cells::resolve(Reg), std::move(Fn), Origin, PromptId);
  }

  Continuation(Continuation &&) = default;
  Continuation &operator=(Continuation &&) = default;

  /// True while the one shot is still pending.
  bool armed() const { return Acct.armed(); }
  const char *origin() const { return Acct.origin(); }
  uint64_t promptId() const { return Acct.promptId(); }

  /// Runs the rest of the computation. One-shot: a second call is counted
  /// in `cont.double_resumes`, asserts in debug builds, and is otherwise
  /// ignored.
  void resume() {
    if (!Acct.fire())
      return;
    std::function<void()> F = std::move(Fn);
    Fn = nullptr;
    F();
  }

  //===--------------------------------------------------------------------===//
  // Wire form (serializable continuations)
  //===--------------------------------------------------------------------===//

  /// Attaches a wire descriptor: \p Tag names the resume entry on the
  /// destination side (looked up in a ResumerRegistry), \p State is the
  /// guest-visible state the continuation delimits.
  void setDescriptor(std::string Tag, std::vector<uint8_t> State) {
    Desc = Descriptor{std::move(Tag), std::move(State)};
  }
  bool serializable() const { return Desc.has_value(); }
  const std::string *descriptorTag() const {
    return Desc ? &Desc->Tag : nullptr;
  }

  /// Versioned wire form ([magic][version][tag][state]); empty when the
  /// continuation is unarmed or carries no descriptor.
  std::vector<uint8_t> serialize() const;

  /// Rebuilds a continuation from \p Wire, rebinding its tag to a resume
  /// entry through \p Reg. nullopt on a bad wire form or unknown tag.
  static std::optional<Continuation>
  deserialize(const std::vector<uint8_t> &Wire, ResumerRegistry &Reg);

private:
  struct Descriptor {
    std::string Tag;
    std::vector<uint8_t> State;
  };

  cont::Accounting Acct;
  std::function<void()> Fn;
  std::optional<Descriptor> Desc;
};

/// Destination-side rebinding table for serialized continuations: maps a
/// descriptor tag to a factory that rebuilds the resume entry from the
/// guest state bytes. The factory returns an armed Continuation (captured
/// against the destination's cells).
class ResumerRegistry {
public:
  using Factory =
      std::function<std::optional<Continuation>(const std::vector<uint8_t> &)>;

  explicit ResumerRegistry(obs::Registry &Reg)
      : C(cont::Cells::resolve(Reg)) {}

  void bind(std::string Tag, Factory F) { Tags[std::move(Tag)] = std::move(F); }
  bool bound(const std::string &Tag) const { return Tags.count(Tag) != 0; }

  std::optional<Continuation> rebuild(const std::string &Tag,
                                      const std::vector<uint8_t> &State) {
    auto It = Tags.find(Tag);
    if (It == Tags.end())
      return std::nullopt;
    return It->second(State);
  }

  cont::Cells cells() const { return C; }

private:
  cont::Cells C;
  std::map<std::string, Factory> Tags;
};

/// A continuation expecting a value: resume(V) delivers \p V to the
/// suspended computation (a pipe read's bytes, a waitpid result).
template <typename T> class ContinuationOf {
public:
  ContinuationOf() = default;

  static ContinuationOf capture(cont::Cells C, std::function<void(T)> Fn,
                                const char *Origin = "",
                                uint64_t PromptId = 0) {
    ContinuationOf K;
    K.Acct = cont::Accounting(C, Origin, PromptId);
    K.Fn = std::move(Fn);
    return K;
  }
  static ContinuationOf capture(obs::Registry &Reg, std::function<void(T)> Fn,
                                const char *Origin = "",
                                uint64_t PromptId = 0) {
    return capture(cont::Cells::resolve(Reg), std::move(Fn), Origin, PromptId);
  }

  ContinuationOf(ContinuationOf &&) = default;
  ContinuationOf &operator=(ContinuationOf &&) = default;

  bool armed() const { return Acct.armed(); }
  const char *origin() const { return Acct.origin(); }
  uint64_t promptId() const { return Acct.promptId(); }

  void resume(T V) {
    if (!Acct.fire())
      return;
    std::function<void(T)> F = std::move(Fn);
    Fn = nullptr;
    F(std::move(V));
  }

private:
  cont::Accounting Acct;
  std::function<void(T)> Fn;
};

} // namespace rt
} // namespace doppio

#endif // DOPPIO_DOPPIO_CONT_CONTINUATION_H
