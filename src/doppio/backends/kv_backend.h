//===- doppio/backends/kv_backend.h - FS over a key/value store --*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A complete file system backend built over any AsyncKvStore, covering the
/// paper's localStorage-, IndexedDB-, and Dropbox-backed file systems with
/// one implementation of the nine backend methods (§5.1). File contents
/// live under "f:<path>" keys; the FileIndex utility caches the directory
/// tree in memory and persists it under the reserved "index" key after
/// every mutation, so a page reload can reconstruct the file system.
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_DOPPIO_BACKENDS_KV_BACKEND_H
#define DOPPIO_DOPPIO_BACKENDS_KV_BACKEND_H

#include "doppio/backends/kv_store.h"
#include "doppio/fs_backend.h"

#include <memory>

namespace doppio {
namespace rt {
namespace fs {

/// File system over an asynchronous key/value store.
class KeyValueBackend : public FileSystemBackend {
public:
  KeyValueBackend(browser::BrowserEnv &Env,
                  std::unique_ptr<AsyncKvStore> Store)
      : Env(Env), Store(std::move(Store)) {}

  /// Loads the persisted index (if any). Must complete before use.
  void initialize(CompletionCb Done);

  std::string backendName() const override {
    return "kv:" + Store->storeName();
  }
  bool isReadOnly() const override { return false; }

  void rename(const std::string &OldPath, const std::string &NewPath,
              CompletionCb Done) override;
  void stat(const std::string &Path, ResultCb<Stats> Done) override;
  void open(const std::string &Path, OpenFlags Flags,
            ResultCb<FdPtr> Done) override;
  void unlink(const std::string &Path, CompletionCb Done) override;
  void rmdir(const std::string &Path, CompletionCb Done) override;
  void mkdir(const std::string &Path, CompletionCb Done) override;
  void readdir(const std::string &Path,
               ResultCb<std::vector<std::string>> Done) override;

  const FileIndex &index() const { return Index; }
  AsyncKvStore &store() { return *Store; }

  /// Durability barrier: completes once every acknowledged mutation has
  /// reached the underlying mechanism. Immediate for the write-through
  /// adapters; flushes the write-back cache when one is layered below.
  void sync(CompletionCb Done) { Store->sync(std::move(Done)); }

private:
  static std::string fileKey(const std::string &Path) { return "f:" + Path; }
  void persistIndex(CompletionCb Done);

  browser::BrowserEnv &Env;
  std::unique_ptr<AsyncKvStore> Store;
  FileIndex Index;
};

} // namespace fs
} // namespace rt
} // namespace doppio

#endif // DOPPIO_DOPPIO_BACKENDS_KV_BACKEND_H
