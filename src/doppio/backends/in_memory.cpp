//===- doppio/backends/in_memory.cpp --------------------------------------==//

#include "doppio/backends/in_memory.h"

#include "doppio/path.h"

using namespace doppio;
using namespace doppio::rt;
using namespace doppio::rt::fs;

void InMemoryBackend::stat(const std::string &Path, ResultCb<Stats> Done) {
  Env.chargeIo(200);
  const FileIndex::Meta *Meta = Index.lookup(Path);
  if (!Meta) {
    Done(ApiError(Errno::NoEnt, Path));
    return;
  }
  Stats S;
  S.Type = Meta->Type;
  S.SizeBytes = Meta->SizeBytes;
  S.MtimeNs = Meta->MtimeNs;
  Done(S);
}

void InMemoryBackend::open(const std::string &Path, OpenFlags Flags,
                           ResultCb<FdPtr> Done) {
  Env.chargeIo(400);
  const FileIndex::Meta *Meta = Index.lookup(Path);
  if (Meta && Meta->Type == FileType::Directory) {
    Done(ApiError(Errno::IsDir, Path));
    return;
  }
  if (Meta && Flags.Exclusive) {
    Done(ApiError(Errno::Exists, Path));
    return;
  }
  if (!Meta && !Flags.Create) {
    Done(ApiError(Errno::NoEnt, Path));
    return;
  }
  if (!Meta) {
    const FileIndex::Meta *Parent = Index.lookup(path::dirname(Path));
    if (!Parent || Parent->Type != FileType::Directory) {
      Done(ApiError(Errno::NoEnt, path::dirname(Path)));
      return;
    }
    Index.addFile(Path, 0, Env.clock().nowNs());
    FileData[Path] = {};
  }
  std::vector<uint8_t> Contents = Flags.Truncate
                                      ? std::vector<uint8_t>()
                                      : FileData[Path];
  auto Fd = std::make_shared<PreloadFile>(
      Env, Path, Flags, std::move(Contents),
      [this](const std::string &P, const std::vector<uint8_t> &Bytes,
             CompletionCb SyncDone) {
        Env.chargeIo(100 + Bytes.size() / 8);
        FileData[P] = Bytes;
        Index.setSize(P, Bytes.size(), Env.clock().nowNs());
        SyncDone(std::nullopt);
      });
  Done(FdPtr(Fd));
}

void InMemoryBackend::unlink(const std::string &Path, CompletionCb Done) {
  Env.chargeIo(200);
  const FileIndex::Meta *Meta = Index.lookup(Path);
  if (!Meta) {
    Done(ApiError(Errno::NoEnt, Path));
    return;
  }
  if (Meta->Type == FileType::Directory) {
    Done(ApiError(Errno::IsDir, Path));
    return;
  }
  Index.remove(Path);
  FileData.erase(Path);
  Done(std::nullopt);
}

void InMemoryBackend::rmdir(const std::string &Path, CompletionCb Done) {
  Env.chargeIo(200);
  const FileIndex::Meta *Meta = Index.lookup(Path);
  if (!Meta) {
    Done(ApiError(Errno::NoEnt, Path));
    return;
  }
  if (Meta->Type != FileType::Directory) {
    Done(ApiError(Errno::NotDir, Path));
    return;
  }
  if (!Index.isEmptyDir(Path)) {
    Done(ApiError(Errno::NotEmpty, Path));
    return;
  }
  Index.remove(Path);
  Done(std::nullopt);
}

void InMemoryBackend::mkdir(const std::string &Path, CompletionCb Done) {
  Env.chargeIo(200);
  if (Index.exists(Path)) {
    Done(ApiError(Errno::Exists, Path));
    return;
  }
  const FileIndex::Meta *Parent = Index.lookup(path::dirname(Path));
  if (!Parent) {
    Done(ApiError(Errno::NoEnt, path::dirname(Path)));
    return;
  }
  if (Parent->Type != FileType::Directory) {
    Done(ApiError(Errno::NotDir, path::dirname(Path)));
    return;
  }
  Index.addDir(Path);
  Done(std::nullopt);
}

void InMemoryBackend::readdir(const std::string &Path,
                              ResultCb<std::vector<std::string>> Done) {
  Env.chargeIo(300);
  const FileIndex::Meta *Meta = Index.lookup(Path);
  if (!Meta) {
    Done(ApiError(Errno::NoEnt, Path));
    return;
  }
  if (Meta->Type != FileType::Directory) {
    Done(ApiError(Errno::NotDir, Path));
    return;
  }
  const std::set<std::string> *Kids = Index.list(Path);
  Done(std::vector<std::string>(Kids->begin(), Kids->end()));
}

void InMemoryBackend::rename(const std::string &OldPath,
                             const std::string &NewPath, CompletionCb Done) {
  Env.chargeIo(400);
  const FileIndex::Meta *Meta = Index.lookup(OldPath);
  if (!Meta) {
    Done(ApiError(Errno::NoEnt, OldPath));
    return;
  }
  const FileIndex::Meta *DestParent = Index.lookup(path::dirname(NewPath));
  if (!DestParent || DestParent->Type != FileType::Directory) {
    Done(ApiError(Errno::NoEnt, path::dirname(NewPath)));
    return;
  }
  const FileIndex::Meta *Dest = Index.lookup(NewPath);
  if (Dest && Dest->Type == FileType::Directory) {
    Done(ApiError(Errno::IsDir, NewPath));
    return;
  }
  if (Meta->Type == FileType::Directory) {
    // Move the whole subtree.
    if (NewPath.compare(0, OldPath.size(), OldPath) == 0 &&
        (NewPath.size() == OldPath.size() ||
         NewPath[OldPath.size()] == '/')) {
      Done(ApiError(Errno::Invalid, "cannot move a directory into itself"));
      return;
    }
    std::vector<std::string> Files = Index.allFiles();
    std::vector<std::string> Dirs = Index.allDirs();
    FileIndex::Meta Saved = *Meta;
    auto isUnder = [&](const std::string &P) {
      return P.compare(0, OldPath.size(), OldPath) == 0 &&
             (P.size() == OldPath.size() || P[OldPath.size()] == '/');
    };
    Index.addDir(NewPath);
    for (const std::string &Dir : Dirs)
      if (isUnder(Dir) && Dir != OldPath)
        Index.addDir(NewPath + Dir.substr(OldPath.size()));
    for (const std::string &File : Files) {
      if (!isUnder(File))
        continue;
      const FileIndex::Meta *M = Index.lookup(File);
      std::string Moved = NewPath + File.substr(OldPath.size());
      Index.addFile(Moved, M->SizeBytes, M->MtimeNs);
      FileData[Moved] = std::move(FileData[File]);
      FileData.erase(File);
    }
    // Remove the old subtree bottom-up.
    for (auto It = Files.rbegin(); It != Files.rend(); ++It)
      if (isUnder(*It))
        Index.remove(*It);
    for (auto It = Dirs.rbegin(); It != Dirs.rend(); ++It)
      if (isUnder(*It) && *It != OldPath)
        Index.remove(*It);
    Index.remove(OldPath);
    (void)Saved;
    Done(std::nullopt);
    return;
  }
  // Plain file rename; replaces any existing destination file.
  FileIndex::Meta Saved = *Meta;
  if (Dest) {
    Index.remove(NewPath);
    FileData.erase(NewPath);
  }
  Index.remove(OldPath);
  Index.addFile(NewPath, Saved.SizeBytes, Saved.MtimeNs);
  FileData[NewPath] = std::move(FileData[OldPath]);
  FileData.erase(OldPath);
  Done(std::nullopt);
}

void InMemoryBackend::utimes(const std::string &Path, uint64_t MtimeNs,
                             CompletionCb Done) {
  const FileIndex::Meta *Meta = Index.lookup(Path);
  if (!Meta) {
    Done(ApiError(Errno::NoEnt, Path));
    return;
  }
  Index.setSize(Path, Meta->SizeBytes, MtimeNs);
  Done(std::nullopt);
}

bool InMemoryBackend::seedFile(const std::string &Path,
                               std::vector<uint8_t> Contents) {
  if (!Index.addFile(Path, Contents.size(), Env.clock().nowNs()))
    return false;
  FileData[Path] = std::move(Contents);
  return true;
}

const std::vector<uint8_t> *
InMemoryBackend::contents(const std::string &Path) const {
  auto It = FileData.find(Path);
  return It == FileData.end() ? nullptr : &It->second;
}
