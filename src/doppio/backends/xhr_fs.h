//===- doppio/backends/xhr_fs.h - Server-backed read-only FS -----*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The backend that "offers read-only access to files served by the web
/// server" (§5.1). The directory structure comes from a pre-generated
/// listing; file contents are downloaded lazily with XHR the first time a
/// file is opened and cached, which is how DoppioJVM pulls in class files
/// on demand (§6.4) without preloading the whole class library.
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_DOPPIO_BACKENDS_XHR_FS_H
#define DOPPIO_DOPPIO_BACKENDS_XHR_FS_H

#include "doppio/fs_backend.h"

namespace doppio {
namespace rt {
namespace fs {

/// Read-only, lazily-downloading backend over the origin server.
class XhrBackend : public FileSystemBackend {
public:
  /// Serves the server subtree rooted at \p ServerPrefix (e.g. "/classes").
  /// The listing (our stand-in for the pre-generated listing file a real
  /// deployment ships) is fetched from the server's index at construction.
  XhrBackend(browser::BrowserEnv &Env, std::string ServerPrefix);

  std::string backendName() const override { return "xhr"; }
  bool isReadOnly() const override { return true; }

  void rename(const std::string &OldPath, const std::string &NewPath,
              CompletionCb Done) override;
  void stat(const std::string &Path, ResultCb<Stats> Done) override;
  void open(const std::string &Path, OpenFlags Flags,
            ResultCb<FdPtr> Done) override;
  void unlink(const std::string &Path, CompletionCb Done) override;
  void rmdir(const std::string &Path, CompletionCb Done) override;
  void mkdir(const std::string &Path, CompletionCb Done) override;
  void readdir(const std::string &Path,
               ResultCb<std::vector<std::string>> Done) override;

  uint64_t downloadsIssued() const { return Downloads; }
  uint64_t cacheHits() const { return CacheHits; }

private:
  browser::BrowserEnv &Env;
  std::string ServerPrefix;
  FileIndex Index;
  /// Downloaded file contents, cached for subsequent opens.
  std::map<std::string, std::vector<uint8_t>> Cache;
  uint64_t Downloads = 0;
  uint64_t CacheHits = 0;
};

} // namespace fs
} // namespace rt
} // namespace doppio

#endif // DOPPIO_DOPPIO_BACKENDS_XHR_FS_H
