//===- doppio/backends/mountable.h - Unix-style mount tree -------*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MountableFileSystem of §5.1: mounts multiple backends into one
/// Unix-style directory tree ("a convenient mechanism for transferring
/// files to different backends, or for implementing an in-memory temporary
/// file system that emulates /tmp"). It speaks only the standard backend
/// API to its children, so any current or future backend can be mounted.
/// Renames that cross a mount boundary fail with EXDEV; the frontend (like
/// Node) falls back to copy-and-delete.
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_DOPPIO_BACKENDS_MOUNTABLE_H
#define DOPPIO_DOPPIO_BACKENDS_MOUNTABLE_H

#include "doppio/fs_backend.h"

#include <memory>
#include <utility>

namespace doppio {
namespace rt {
namespace fs {

/// Routes operations across mounted backends by path prefix.
class MountableFileSystem : public FileSystemBackend {
public:
  /// \p Root handles every path not covered by a mount.
  explicit MountableFileSystem(std::unique_ptr<FileSystemBackend> Root)
      : Root(std::move(Root)) {}

  /// Mounts \p Backend at \p MountPoint (normalized absolute path, not
  /// "/"). Returns false if something is already mounted there.
  bool mount(const std::string &MountPoint,
             std::unique_ptr<FileSystemBackend> Backend);

  /// The backend that would serve \p Path and the path to hand it.
  std::pair<FileSystemBackend *, std::string>
  route(const std::string &Path) const;

  std::string backendName() const override { return "mountable"; }
  bool isReadOnly() const override { return false; }

  void rename(const std::string &OldPath, const std::string &NewPath,
              CompletionCb Done) override;
  void stat(const std::string &Path, ResultCb<Stats> Done) override;
  void open(const std::string &Path, OpenFlags Flags,
            ResultCb<FdPtr> Done) override;
  void unlink(const std::string &Path, CompletionCb Done) override;
  void rmdir(const std::string &Path, CompletionCb Done) override;
  void mkdir(const std::string &Path, CompletionCb Done) override;
  void readdir(const std::string &Path,
               ResultCb<std::vector<std::string>> Done) override;

private:
  std::unique_ptr<FileSystemBackend> Root;
  /// Mount point -> backend, e.g. "/tmp" -> InMemoryBackend.
  std::vector<std::pair<std::string, std::unique_ptr<FileSystemBackend>>>
      Mounts;
};

} // namespace fs
} // namespace rt
} // namespace doppio

#endif // DOPPIO_DOPPIO_BACKENDS_MOUNTABLE_H
