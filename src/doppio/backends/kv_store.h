//===- doppio/backends/kv_store.h - Storage adapters (§5.1) ------*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Adapters that turn each browser persistence mechanism (Table 2) into a
/// uniform asynchronous key/value store of binary blobs, which the generic
/// KeyValueBackend builds a file system over:
///
///  - LocalStorageKv: string key/value pairs; binary file data rides
///    through Buffer's binary-string codec (2 bytes per code unit on
///    non-validating browsers, 1 otherwise — §5.1), so file capacity
///    depends on the browser. Operations are synchronous.
///  - IndexedDbKv: the asynchronous object database.
///  - CloudKv: Dropbox-style cloud storage behind network latency (the
///    backend contributed by Google Summer of Code in the paper's
///    acknowledgements).
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_DOPPIO_BACKENDS_KV_STORE_H
#define DOPPIO_DOPPIO_BACKENDS_KV_STORE_H

#include "browser/env.h"
#include "doppio/errors.h"

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace doppio {
namespace rt {
namespace fs {

/// Uniform async binary key/value store over one persistence mechanism.
class AsyncKvStore {
public:
  using Bytes = std::vector<uint8_t>;
  using GetCb = std::function<void(ErrorOr<std::optional<Bytes>>)>;
  using DoneCb = std::function<void(std::optional<ApiError>)>;

  virtual ~AsyncKvStore();

  virtual std::string storeName() const = 0;
  virtual void get(const std::string &Key, GetCb Done) = 0;
  virtual void put(const std::string &Key, const Bytes &Value,
                   DoneCb Done) = 0;
  virtual void del(const std::string &Key, DoneCb Done) = 0;
};

/// localStorage adapter: synchronous, string-valued, 5 MB quota.
class LocalStorageKv : public AsyncKvStore {
public:
  explicit LocalStorageKv(browser::BrowserEnv &Env) : Env(Env) {}

  std::string storeName() const override { return "localstorage"; }
  void get(const std::string &Key, GetCb Done) override;
  void put(const std::string &Key, const Bytes &Value,
           DoneCb Done) override;
  void del(const std::string &Key, DoneCb Done) override;

private:
  browser::BrowserEnv &Env;
};

/// IndexedDB adapter: asynchronous binary object store.
class IndexedDbKv : public AsyncKvStore {
public:
  /// Requires Env.indexedDB() != null.
  explicit IndexedDbKv(browser::BrowserEnv &Env);

  std::string storeName() const override { return "indexeddb"; }
  void get(const std::string &Key, GetCb Done) override;
  void put(const std::string &Key, const Bytes &Value,
           DoneCb Done) override;
  void del(const std::string &Key, DoneCb Done) override;

private:
  browser::BrowserEnv &Env;
  browser::IndexedDB &Db;
};

/// Dropbox-style cloud adapter: a remote blob store behind WAN latency.
class CloudKv : public AsyncKvStore {
public:
  CloudKv(browser::BrowserEnv &Env, uint64_t RoundTripNs = 0)
      : Env(Env),
        RoundTripNs(RoundTripNs ? RoundTripNs : browser::msToNs(45)) {}

  std::string storeName() const override { return "cloud"; }
  void get(const std::string &Key, GetCb Done) override;
  void put(const std::string &Key, const Bytes &Value,
           DoneCb Done) override;
  void del(const std::string &Key, DoneCb Done) override;

  size_t objectCount() const { return Remote.size(); }

private:
  browser::BrowserEnv &Env;
  uint64_t RoundTripNs;
  std::map<std::string, Bytes> Remote;
};

} // namespace fs
} // namespace rt
} // namespace doppio

#endif // DOPPIO_DOPPIO_BACKENDS_KV_STORE_H
