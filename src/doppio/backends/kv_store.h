//===- doppio/backends/kv_store.h - Storage adapters (§5.1) ------*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Adapters that turn each browser persistence mechanism (Table 2) into a
/// uniform asynchronous key/value store of binary blobs, which the generic
/// KeyValueBackend builds a file system over:
///
///  - LocalStorageKv: string key/value pairs; binary file data rides
///    through Buffer's binary-string codec (2 bytes per code unit on
///    non-validating browsers, 1 otherwise — §5.1), so file capacity
///    depends on the browser. Operations are synchronous.
///  - IndexedDbKv: the asynchronous object database.
///  - CloudKv: Dropbox-style cloud storage behind network latency (the
///    backend contributed by Google Summer of Code in the paper's
///    acknowledgements).
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_DOPPIO_BACKENDS_KV_STORE_H
#define DOPPIO_DOPPIO_BACKENDS_KV_STORE_H

#include "browser/env.h"
#include "doppio/errors.h"

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace doppio {
namespace rt {
namespace fs {

/// Uniform async binary key/value store over one persistence mechanism.
class AsyncKvStore {
public:
  using Bytes = std::vector<uint8_t>;
  using GetCb = std::function<void(ErrorOr<std::optional<Bytes>>)>;
  using DoneCb = std::function<void(std::optional<ApiError>)>;

  virtual ~AsyncKvStore();

  virtual std::string storeName() const = 0;
  virtual void get(const std::string &Key, GetCb Done) = 0;
  virtual void put(const std::string &Key, const Bytes &Value,
                   DoneCb Done) = 0;
  virtual void del(const std::string &Key, DoneCb Done) = 0;

  /// Quota introspection, so layers above (the write-back cache) can
  /// fast-fail a put that cannot possibly fit instead of discovering
  /// ENOSPC at flush time. quotaBytes() == 0 means unmetered.
  virtual uint64_t usedBytes() const { return 0; }
  virtual uint64_t quotaBytes() const { return 0; }

  /// Bytes of quota one put of \p ValueBytes under \p Key will consume.
  /// Mechanism-dependent: localStorage stores UTF-16 code units, so the
  /// binary-string codec doubles the bill on validating browsers (§5.1).
  virtual uint64_t putCostBytes(const std::string &Key,
                                size_t ValueBytes) const {
    return Key.size() + ValueBytes;
  }

  /// Durability barrier: \p Done fires once every acknowledged mutation
  /// has reached the underlying mechanism. The plain adapters are
  /// write-through (each put is durable at its own callback), so the
  /// default completes immediately; the write-back cache overrides this
  /// to flush dirty state and seal the journal group.
  virtual void sync(DoneCb Done) { Done(std::nullopt); }
};

/// localStorage adapter: synchronous, string-valued, 5 MB quota.
class LocalStorageKv : public AsyncKvStore {
public:
  explicit LocalStorageKv(browser::BrowserEnv &Env) : Env(Env) {}

  std::string storeName() const override { return "localstorage"; }
  void get(const std::string &Key, GetCb Done) override;
  void put(const std::string &Key, const Bytes &Value,
           DoneCb Done) override;
  void del(const std::string &Key, DoneCb Done) override;

  uint64_t usedBytes() const override {
    return Env.localStorage().usedBytes();
  }
  uint64_t quotaBytes() const override {
    return Env.localStorage().quotaBytes();
  }
  /// The quota is billed in UTF-16 bytes of the encoded string: packed
  /// 2-bytes-per-code-unit on non-validating browsers (N payload bytes →
  /// N quota bytes), 1-byte-per-code-unit where UTF-16 is validated
  /// (N payload bytes → 2N quota bytes).
  uint64_t putCostBytes(const std::string &Key,
                        size_t ValueBytes) const override {
    return Key.size() +
           static_cast<uint64_t>(ValueBytes) *
               (Env.profile().ValidatesStrings ? 2 : 1);
  }

private:
  browser::BrowserEnv &Env;
};

/// IndexedDB adapter: asynchronous binary object store.
class IndexedDbKv : public AsyncKvStore {
public:
  /// Requires Env.indexedDB() != null.
  explicit IndexedDbKv(browser::BrowserEnv &Env);

  std::string storeName() const override { return "indexeddb"; }
  void get(const std::string &Key, GetCb Done) override;
  void put(const std::string &Key, const Bytes &Value,
           DoneCb Done) override;
  void del(const std::string &Key, DoneCb Done) override;

  uint64_t usedBytes() const override;
  uint64_t quotaBytes() const override;

private:
  browser::BrowserEnv &Env;
  browser::IndexedDB &Db;
};

/// Dropbox-style cloud adapter: a remote blob store behind WAN latency.
class CloudKv : public AsyncKvStore {
public:
  CloudKv(browser::BrowserEnv &Env, uint64_t RoundTripNs = 0)
      : Env(Env),
        RoundTripNs(RoundTripNs ? RoundTripNs : browser::msToNs(45)) {}

  std::string storeName() const override { return "cloud"; }
  void get(const std::string &Key, GetCb Done) override;
  void put(const std::string &Key, const Bytes &Value,
           DoneCb Done) override;
  void del(const std::string &Key, DoneCb Done) override;

  uint64_t usedBytes() const override { return Used; }
  uint64_t quotaBytes() const override { return Quota; }

  /// Account quota (0 = unmetered, the default; real providers meter).
  void setQuotaBytes(uint64_t Q) { Quota = Q; }

  size_t objectCount() const { return Remote.size(); }

private:
  browser::BrowserEnv &Env;
  uint64_t RoundTripNs;
  uint64_t Quota = 0;
  uint64_t Used = 0;
  std::map<std::string, Bytes> Remote;
};

} // namespace fs
} // namespace rt
} // namespace doppio

#endif // DOPPIO_DOPPIO_BACKENDS_KV_STORE_H
