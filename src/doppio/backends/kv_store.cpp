//===- doppio/backends/kv_store.cpp ---------------------------------------==//

#include "doppio/backends/kv_store.h"

#include "doppio/buffer.h"

#include <cassert>

using namespace doppio;
using namespace doppio::rt;
using namespace doppio::rt::fs;

AsyncKvStore::~AsyncKvStore() = default;

//===----------------------------------------------------------------------===//
// LocalStorageKv
//===----------------------------------------------------------------------===//

void LocalStorageKv::get(const std::string &Key, GetCb Done) {
  std::optional<js::String> Item = Env.localStorage().getItem(Key);
  if (!Item) {
    Done(std::optional<Bytes>());
    return;
  }
  // Decode the binary-string payload back into bytes (§5.1).
  Buffer Decoded = Buffer::fromString(Env, *Item, Encoding::BinaryString);
  Done(std::optional<Bytes>(Decoded.bytes()));
}

void LocalStorageKv::put(const std::string &Key, const Bytes &Value,
                         DoneCb Done) {
  Buffer Wrapped(Env, Value);
  js::String Encoded = Wrapped.toString(Encoding::BinaryString);
  switch (Env.localStorage().setItem(Key, Encoded)) {
  case browser::StoreResult::Ok:
    Done(std::nullopt);
    return;
  case browser::StoreResult::QuotaExceeded:
    Done(ApiError(Errno::NoSpace, Key));
    return;
  case browser::StoreResult::InvalidString:
    // Unreachable when the codec honours the profile's validation flag.
    Done(ApiError(Errno::Io, Key));
    return;
  }
}

void LocalStorageKv::del(const std::string &Key, DoneCb Done) {
  Env.localStorage().removeItem(Key);
  Done(std::nullopt);
}

//===----------------------------------------------------------------------===//
// IndexedDbKv
//===----------------------------------------------------------------------===//

IndexedDbKv::IndexedDbKv(browser::BrowserEnv &Env)
    : Env(Env), Db(*Env.indexedDB()) {
  assert(Env.indexedDB() && "IndexedDbKv on a browser without IndexedDB");
}

void IndexedDbKv::get(const std::string &Key, GetCb Done) {
  Db.get(Key, [Done = std::move(Done)](std::optional<Bytes> V) {
    Done(std::optional<Bytes>(std::move(V)));
  });
}

void IndexedDbKv::put(const std::string &Key, const Bytes &Value,
                      DoneCb Done) {
  Db.put(Key, Value, [Key, Done = std::move(Done)](bool Ok) {
    if (Ok)
      Done(std::nullopt);
    else
      Done(ApiError(Errno::NoSpace, Key));
  });
}

void IndexedDbKv::del(const std::string &Key, DoneCb Done) {
  Db.remove(Key, [Done = std::move(Done)] { Done(std::nullopt); });
}

uint64_t IndexedDbKv::usedBytes() const { return Db.usedBytes(); }

uint64_t IndexedDbKv::quotaBytes() const { return Db.quotaBytes(); }

//===----------------------------------------------------------------------===//
// CloudKv
//===----------------------------------------------------------------------===//

void CloudKv::get(const std::string &Key, GetCb Done) {
  uint64_t Latency = RoundTripNs;
  auto It = Remote.find(Key);
  if (It != Remote.end())
    Latency += Env.profile().Costs.XhrPerByteNs * It->second.size();
  Env.loop().scheduleAfter(
      [this, Key, Done = std::move(Done)] {
        auto Found = Remote.find(Key);
        if (Found == Remote.end()) {
          Done(std::optional<Bytes>());
          return;
        }
        Done(std::optional<Bytes>(Found->second));
      },
      Latency);
}

void CloudKv::put(const std::string &Key, const Bytes &Value, DoneCb Done) {
  uint64_t Latency =
      RoundTripNs + Env.profile().Costs.XhrPerByteNs * Value.size();
  Env.loop().scheduleAfter(
      [this, Key, Value, Done = std::move(Done)] {
        uint64_t Old = 0;
        auto It = Remote.find(Key);
        if (It != Remote.end())
          Old = Key.size() + It->second.size();
        uint64_t New = Key.size() + Value.size();
        if (Quota && Used - Old + New > Quota) {
          // The provider rejects over-quota writes server-side; same
          // Errno::NoSpace the browser mechanisms surface (ENOSPC at the
          // fs layer regardless of adapter).
          Done(ApiError(Errno::NoSpace, Key));
          return;
        }
        Used = Used - Old + New;
        Remote[Key] = Value;
        Done(std::nullopt);
      },
      Latency);
}

void CloudKv::del(const std::string &Key, DoneCb Done) {
  Env.loop().scheduleAfter(
      [this, Key, Done = std::move(Done)] {
        auto It = Remote.find(Key);
        if (It != Remote.end()) {
          Used -= Key.size() + It->second.size();
          Remote.erase(It);
        }
        Done(std::nullopt);
      },
      RoundTripNs);
}
