//===- doppio/backends/mountable.cpp --------------------------------------==//

#include "doppio/backends/mountable.h"

#include "doppio/path.h"

#include <algorithm>

using namespace doppio;
using namespace doppio::rt;
using namespace doppio::rt::fs;

bool MountableFileSystem::mount(const std::string &MountPoint,
                                std::unique_ptr<FileSystemBackend> Backend) {
  std::string Normalized = path::normalize(MountPoint);
  if (Normalized == "/" || !path::isAbsolute(Normalized))
    return false;
  for (const auto &[Point, Existing] : Mounts)
    if (Point == Normalized)
      return false;
  Mounts.emplace_back(Normalized, std::move(Backend));
  // Longest prefix first, so nested mounts route correctly.
  std::sort(Mounts.begin(), Mounts.end(), [](const auto &A, const auto &B) {
    return A.first.size() > B.first.size();
  });
  return true;
}

std::pair<FileSystemBackend *, std::string>
MountableFileSystem::route(const std::string &Path) const {
  for (const auto &[Point, Backend] : Mounts) {
    if (Path.compare(0, Point.size(), Point) != 0)
      continue;
    if (Path.size() == Point.size())
      return {Backend.get(), "/"};
    if (Path[Point.size()] == '/')
      return {Backend.get(), Path.substr(Point.size())};
  }
  return {Root.get(), Path};
}

void MountableFileSystem::stat(const std::string &Path,
                               ResultCb<Stats> Done) {
  auto [Backend, Sub] = route(Path);
  Backend->stat(Sub, std::move(Done));
}

void MountableFileSystem::open(const std::string &Path, OpenFlags Flags,
                               ResultCb<FdPtr> Done) {
  auto [Backend, Sub] = route(Path);
  Backend->open(Sub, Flags, std::move(Done));
}

void MountableFileSystem::unlink(const std::string &Path,
                                 CompletionCb Done) {
  auto [Backend, Sub] = route(Path);
  Backend->unlink(Sub, std::move(Done));
}

void MountableFileSystem::rmdir(const std::string &Path, CompletionCb Done) {
  auto [Backend, Sub] = route(Path);
  if (Sub == "/") {
    // The path is a mount point; removing it would orphan the mount.
    Done(ApiError(Errno::Perm, Path));
    return;
  }
  Backend->rmdir(Sub, std::move(Done));
}

void MountableFileSystem::mkdir(const std::string &Path, CompletionCb Done) {
  auto [Backend, Sub] = route(Path);
  if (Sub == "/") {
    Done(ApiError(Errno::Exists, Path));
    return;
  }
  Backend->mkdir(Sub, std::move(Done));
}

void MountableFileSystem::readdir(const std::string &Path,
                                  ResultCb<std::vector<std::string>> Done) {
  auto [Backend, Sub] = route(Path);
  std::string Normalized = path::normalize(Path);
  Backend->readdir(
      Sub, [this, Normalized,
            Done = std::move(Done)](ErrorOr<std::vector<std::string>> R) {
        // Splice in the names of mount points that live directly under the
        // queried directory, so they are visible in listings.
        std::vector<std::string> Names;
        if (R)
          Names = std::move(*R);
        bool AddedMount = false;
        for (const auto &[Point, Backend2] : Mounts) {
          (void)Backend2;
          if (path::dirname(Point) != Normalized)
            continue;
          std::string Name = path::basename(Point);
          if (std::find(Names.begin(), Names.end(), Name) == Names.end()) {
            Names.push_back(Name);
            AddedMount = true;
          }
        }
        if (!R && !AddedMount) {
          Done(R.error());
          return;
        }
        std::sort(Names.begin(), Names.end());
        Done(std::move(Names));
      });
}

void MountableFileSystem::rename(const std::string &OldPath,
                                 const std::string &NewPath,
                                 CompletionCb Done) {
  auto [OldBackend, OldSub] = route(OldPath);
  auto [NewBackend, NewSub] = route(NewPath);
  if (OldBackend != NewBackend) {
    // Crossing a mount boundary: no backend can move the data itself.
    Done(ApiError(Errno::CrossDev, OldPath + " -> " + NewPath));
    return;
  }
  OldBackend->rename(OldSub, NewSub, std::move(Done));
}
