//===- doppio/backends/kv_backend.cpp -------------------------------------==//

#include "doppio/backends/kv_backend.h"

#include "doppio/path.h"

#include <memory>

using namespace doppio;
using namespace doppio::rt;
using namespace doppio::rt::fs;

/// Runs \p Step over \p Items sequentially (each step is asynchronous);
/// stops at the first error.
static void forEachAsync(
    std::shared_ptr<std::vector<std::string>> Items, size_t I,
    std::function<void(const std::string &, CompletionCb)> Step,
    CompletionCb Done) {
  if (I == Items->size()) {
    Done(std::nullopt);
    return;
  }
  // Step must be captured by copy: it is about to be invoked below, and a
  // move here would empty the very function object being called.
  auto Continue = [Items, I, Step,
                   Done = std::move(Done)](std::optional<ApiError> Err) {
    if (Err) {
      Done(Err);
      return;
    }
    forEachAsync(Items, I + 1, Step, Done);
  };
  Step((*Items)[I], std::move(Continue));
}

void KeyValueBackend::initialize(CompletionCb Done) {
  Store->get("index", [this, Done = std::move(Done)](
                          ErrorOr<std::optional<AsyncKvStore::Bytes>> R) {
    if (!R) {
      Done(R.error());
      return;
    }
    if (R->has_value()) {
      std::string Text(R->value().begin(), R->value().end());
      Index = FileIndex::deserialize(Text);
    }
    Done(std::nullopt);
  });
}

void KeyValueBackend::persistIndex(CompletionCb Done) {
  std::string Text = Index.serialize();
  Store->put("index", AsyncKvStore::Bytes(Text.begin(), Text.end()),
             std::move(Done));
}

void KeyValueBackend::stat(const std::string &Path, ResultCb<Stats> Done) {
  Env.chargeIo(300);
  const FileIndex::Meta *Meta = Index.lookup(Path);
  if (!Meta) {
    Done(ApiError(Errno::NoEnt, Path));
    return;
  }
  Stats S;
  S.Type = Meta->Type;
  S.SizeBytes = Meta->SizeBytes;
  S.MtimeNs = Meta->MtimeNs;
  Done(S);
}

void KeyValueBackend::open(const std::string &Path, OpenFlags Flags,
                           ResultCb<FdPtr> Done) {
  Env.chargeIo(500);
  const FileIndex::Meta *Meta = Index.lookup(Path);
  if (Meta && Meta->Type == FileType::Directory) {
    Done(ApiError(Errno::IsDir, Path));
    return;
  }
  if (Meta && Flags.Exclusive) {
    Done(ApiError(Errno::Exists, Path));
    return;
  }
  if (!Meta && !Flags.Create) {
    Done(ApiError(Errno::NoEnt, Path));
    return;
  }
  const FileIndex::Meta *Parent = Index.lookup(path::dirname(Path));
  if (!Parent || Parent->Type != FileType::Directory) {
    Done(ApiError(Errno::NoEnt, path::dirname(Path)));
    return;
  }

  // The descriptor writes the whole file back through the store and
  // re-persists the index (sync-on-close lands here).
  PreloadFile::SyncFn Sync = [this](const std::string &P,
                                    const std::vector<uint8_t> &Bytes,
                                    CompletionCb SyncDone) {
    Store->put(fileKey(P), Bytes,
               [this, P, Size = Bytes.size(),
                SyncDone = std::move(SyncDone)](std::optional<ApiError> E) {
                 if (E) {
                   SyncDone(E);
                   return;
                 }
                 Index.addFile(P, Size, Env.clock().nowNs());
                 persistIndex(std::move(SyncDone));
               });
  };

  auto finish = [this, Path, Flags, Done,
                 Sync](std::vector<uint8_t> Contents) {
    bool IsNew = !Index.exists(Path);
    auto Fd = std::make_shared<PreloadFile>(Env, Path, Flags,
                                            std::move(Contents), Sync);
    if (!IsNew) {
      Done(FdPtr(Fd));
      return;
    }
    // Creating: record the (empty) file immediately so stat sees it.
    Index.addFile(Path, 0, Env.clock().nowNs());
    persistIndex([Fd, Done](std::optional<ApiError> E) {
      if (E)
        Done(*E);
      else
        Done(FdPtr(Fd));
    });
  };

  if (!Meta || Flags.Truncate) {
    finish({});
    return;
  }
  // Preload the existing contents (§5.1: files are completely loaded into
  // memory before they can be operated on).
  Store->get(fileKey(Path),
             [Path, finish, Done](
                 ErrorOr<std::optional<AsyncKvStore::Bytes>> R) {
               if (!R) {
                 Done(R.error());
                 return;
               }
               finish(R->has_value() ? std::move(R->value())
                                     : AsyncKvStore::Bytes());
             });
}

void KeyValueBackend::unlink(const std::string &Path, CompletionCb Done) {
  Env.chargeIo(300);
  const FileIndex::Meta *Meta = Index.lookup(Path);
  if (!Meta) {
    Done(ApiError(Errno::NoEnt, Path));
    return;
  }
  if (Meta->Type == FileType::Directory) {
    Done(ApiError(Errno::IsDir, Path));
    return;
  }
  Index.remove(Path);
  Store->del(fileKey(Path),
             [this, Done = std::move(Done)](std::optional<ApiError> E) {
               if (E) {
                 Done(E);
                 return;
               }
               persistIndex(Done);
             });
}

void KeyValueBackend::rmdir(const std::string &Path, CompletionCb Done) {
  Env.chargeIo(300);
  const FileIndex::Meta *Meta = Index.lookup(Path);
  if (!Meta) {
    Done(ApiError(Errno::NoEnt, Path));
    return;
  }
  if (Meta->Type != FileType::Directory) {
    Done(ApiError(Errno::NotDir, Path));
    return;
  }
  if (!Index.isEmptyDir(Path)) {
    Done(ApiError(Errno::NotEmpty, Path));
    return;
  }
  Index.remove(Path);
  persistIndex(std::move(Done));
}

void KeyValueBackend::mkdir(const std::string &Path, CompletionCb Done) {
  Env.chargeIo(300);
  if (Index.exists(Path)) {
    Done(ApiError(Errno::Exists, Path));
    return;
  }
  const FileIndex::Meta *Parent = Index.lookup(path::dirname(Path));
  if (!Parent) {
    Done(ApiError(Errno::NoEnt, path::dirname(Path)));
    return;
  }
  if (Parent->Type != FileType::Directory) {
    Done(ApiError(Errno::NotDir, path::dirname(Path)));
    return;
  }
  Index.addDir(Path);
  persistIndex(std::move(Done));
}

void KeyValueBackend::readdir(const std::string &Path,
                              ResultCb<std::vector<std::string>> Done) {
  Env.chargeIo(300);
  const FileIndex::Meta *Meta = Index.lookup(Path);
  if (!Meta) {
    Done(ApiError(Errno::NoEnt, Path));
    return;
  }
  if (Meta->Type != FileType::Directory) {
    Done(ApiError(Errno::NotDir, Path));
    return;
  }
  const std::set<std::string> *Kids = Index.list(Path);
  Done(std::vector<std::string>(Kids->begin(), Kids->end()));
}

void KeyValueBackend::rename(const std::string &OldPath,
                             const std::string &NewPath, CompletionCb Done) {
  Env.chargeIo(600);
  const FileIndex::Meta *Meta = Index.lookup(OldPath);
  if (!Meta) {
    Done(ApiError(Errno::NoEnt, OldPath));
    return;
  }
  const FileIndex::Meta *DestParent = Index.lookup(path::dirname(NewPath));
  if (!DestParent || DestParent->Type != FileType::Directory) {
    Done(ApiError(Errno::NoEnt, path::dirname(NewPath)));
    return;
  }
  const FileIndex::Meta *Dest = Index.lookup(NewPath);
  if (Dest && Dest->Type == FileType::Directory) {
    Done(ApiError(Errno::IsDir, NewPath));
    return;
  }

  auto isUnder = [OldPath](const std::string &P) {
    return P.compare(0, OldPath.size(), OldPath) == 0 &&
           (P.size() == OldPath.size() || P[OldPath.size()] == '/');
  };

  // Collect the file payloads to move (one for a plain file, the subtree
  // for a directory).
  auto Files = std::make_shared<std::vector<std::string>>();
  if (Meta->Type == FileType::File) {
    Files->push_back(OldPath);
  } else {
    if (isUnder(NewPath)) {
      Done(ApiError(Errno::Invalid, "cannot move a directory into itself"));
      return;
    }
    for (const std::string &F : Index.allFiles())
      if (isUnder(F))
        Files->push_back(F);
  }

  bool IsDir = Meta->Type == FileType::Directory;
  // Move each payload: get old key -> put new key -> delete old key.
  auto MoveOne = [this, OldPath, NewPath](const std::string &F,
                                          CompletionCb Next) {
    std::string Moved = NewPath + F.substr(OldPath.size());
    Store->get(
        fileKey(F),
        [this, F, Moved,
         Next = std::move(Next)](ErrorOr<std::optional<AsyncKvStore::Bytes>> R) {
          if (!R) {
            Next(R.error());
            return;
          }
          AsyncKvStore::Bytes Data =
              R->has_value() ? std::move(R->value()) : AsyncKvStore::Bytes();
          Store->put(fileKey(Moved), Data,
                     [this, F, Next](std::optional<ApiError> E) {
                       if (E) {
                         Next(E);
                         return;
                       }
                       Store->del(fileKey(F), Next);
                     });
        });
  };

  forEachAsync(
      Files, 0, MoveOne,
      [this, Files, OldPath, NewPath, IsDir, isUnder,
       Done = std::move(Done)](std::optional<ApiError> Err) {
        if (Err) {
          Done(Err);
          return;
        }
        // Rewrite the index.
        if (IsDir) {
          std::vector<std::string> Dirs = Index.allDirs();
          Index.addDir(NewPath);
          for (const std::string &D : Dirs)
            if (isUnder(D) && D != OldPath)
              Index.addDir(NewPath + D.substr(OldPath.size()));
        }
        for (const std::string &F : *Files) {
          const FileIndex::Meta *M = Index.lookup(F);
          Index.addFile(NewPath + F.substr(OldPath.size()), M->SizeBytes,
                        M->MtimeNs);
        }
        for (auto It = Files->rbegin(); It != Files->rend(); ++It)
          Index.remove(*It);
        if (IsDir) {
          std::vector<std::string> Dirs = Index.allDirs();
          for (auto It = Dirs.rbegin(); It != Dirs.rend(); ++It)
            if (isUnder(*It))
              Index.remove(*It);
        }
        persistIndex(Done);
      });
}
