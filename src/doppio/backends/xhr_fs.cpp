//===- doppio/backends/xhr_fs.cpp -----------------------------------------==//

#include "doppio/backends/xhr_fs.h"

using namespace doppio;
using namespace doppio::rt;
using namespace doppio::rt::fs;

XhrBackend::XhrBackend(browser::BrowserEnv &Env, std::string Prefix)
    : Env(Env), ServerPrefix(std::move(Prefix)) {
  // Build the index from the server's listing. A real deployment ships a
  // pre-generated listing file; the simulation reads it directly.
  for (const std::string &Path : Env.server().list(ServerPrefix + "/")) {
    const std::vector<uint8_t> *Body = Env.server().lookup(Path);
    Index.addFile(Path.substr(ServerPrefix.size()),
                  Body ? Body->size() : 0);
  }
}

static ApiError readOnlyError(const std::string &Path) {
  return ApiError(Errno::ReadOnlyFs, Path);
}

void XhrBackend::rename(const std::string &OldPath, const std::string &,
                        CompletionCb Done) {
  Done(readOnlyError(OldPath));
}

void XhrBackend::unlink(const std::string &Path, CompletionCb Done) {
  Done(readOnlyError(Path));
}

void XhrBackend::rmdir(const std::string &Path, CompletionCb Done) {
  Done(readOnlyError(Path));
}

void XhrBackend::mkdir(const std::string &Path, CompletionCb Done) {
  Done(readOnlyError(Path));
}

void XhrBackend::stat(const std::string &Path, ResultCb<Stats> Done) {
  Env.chargeIo(200);
  const FileIndex::Meta *Meta = Index.lookup(Path);
  if (!Meta) {
    Done(ApiError(Errno::NoEnt, Path));
    return;
  }
  Stats S;
  S.Type = Meta->Type;
  S.SizeBytes = Meta->SizeBytes;
  S.MtimeNs = Meta->MtimeNs;
  Done(S);
}

void XhrBackend::readdir(const std::string &Path,
                         ResultCb<std::vector<std::string>> Done) {
  Env.chargeIo(200);
  const FileIndex::Meta *Meta = Index.lookup(Path);
  if (!Meta) {
    Done(ApiError(Errno::NoEnt, Path));
    return;
  }
  if (Meta->Type != FileType::Directory) {
    Done(ApiError(Errno::NotDir, Path));
    return;
  }
  const std::set<std::string> *Kids = Index.list(Path);
  Done(std::vector<std::string>(Kids->begin(), Kids->end()));
}

void XhrBackend::open(const std::string &Path, OpenFlags Flags,
                      ResultCb<FdPtr> Done) {
  if (Flags.Write || Flags.Create) {
    Done(readOnlyError(Path));
    return;
  }
  const FileIndex::Meta *Meta = Index.lookup(Path);
  if (!Meta) {
    Done(ApiError(Errno::NoEnt, Path));
    return;
  }
  if (Meta->Type == FileType::Directory) {
    Done(ApiError(Errno::IsDir, Path));
    return;
  }
  PreloadFile::SyncFn NoSync = [](const std::string &P,
                                  const std::vector<uint8_t> &,
                                  CompletionCb SyncDone) {
    SyncDone(ApiError(Errno::ReadOnlyFs, P));
  };
  auto It = Cache.find(Path);
  if (It != Cache.end()) {
    ++CacheHits;
    Env.chargeIo(300);
    Done(FdPtr(std::make_shared<PreloadFile>(Env, Path, Flags, It->second,
                                             NoSync)));
    return;
  }
  // Lazy download on first open (§6.4): an asynchronous request loads the
  // file into memory before the open completes.
  ++Downloads;
  Env.xhr().get(ServerPrefix + Path,
                [this, Path, Flags, NoSync,
                 Done = std::move(Done)](browser::Xhr::Response R) {
                  if (R.Status != 200) {
                    Done(ApiError(Errno::Io, Path));
                    return;
                  }
                  Cache[Path] = R.Body;
                  Done(FdPtr(std::make_shared<PreloadFile>(
                      Env, Path, Flags, std::move(R.Body), NoSync)));
                });
}
