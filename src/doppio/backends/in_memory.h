//===- doppio/backends/in_memory.h - tmpfs backend ----------------*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The temporary in-memory storage backend of §5.1 ("one provides temporary
/// in-memory storage") — a /tmp-style file system whose contents disappear
/// with the page. All operations complete inline; callbacks still fire in
/// callback style so the backend is a drop-in for the asynchronous API.
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_DOPPIO_BACKENDS_IN_MEMORY_H
#define DOPPIO_DOPPIO_BACKENDS_IN_MEMORY_H

#include "doppio/fs_backend.h"

namespace doppio {
namespace rt {
namespace fs {

/// In-memory tree-of-nodes file system.
class InMemoryBackend : public FileSystemBackend {
public:
  explicit InMemoryBackend(browser::BrowserEnv &Env) : Env(Env) {}

  std::string backendName() const override { return "inmemory"; }
  bool isReadOnly() const override { return false; }

  void rename(const std::string &OldPath, const std::string &NewPath,
              CompletionCb Done) override;
  void stat(const std::string &Path, ResultCb<Stats> Done) override;
  void open(const std::string &Path, OpenFlags Flags,
            ResultCb<FdPtr> Done) override;
  void unlink(const std::string &Path, CompletionCb Done) override;
  void rmdir(const std::string &Path, CompletionCb Done) override;
  void mkdir(const std::string &Path, CompletionCb Done) override;
  void readdir(const std::string &Path,
               ResultCb<std::vector<std::string>> Done) override;
  void utimes(const std::string &Path, uint64_t MtimeNs,
              CompletionCb Done) override;

  /// Test/seed helper: creates a file with contents, making parents.
  bool seedFile(const std::string &Path, std::vector<uint8_t> Contents);

  /// Raw lookup for benchmarks and tests; null if not a file.
  const std::vector<uint8_t> *contents(const std::string &Path) const;

private:
  browser::BrowserEnv &Env;
  FileIndex Index;
  std::map<std::string, std::vector<uint8_t>> FileData;
};

} // namespace fs
} // namespace rt
} // namespace doppio

#endif // DOPPIO_DOPPIO_BACKENDS_IN_MEMORY_H
