//===- doppio/suspend.cpp -------------------------------------------------==//

#include "doppio/suspend.h"

#include <algorithm>
#include <cassert>

using namespace doppio;
using namespace doppio::rt;

const char *rt::resumeMechanismName(ResumeMechanism M) {
  switch (M) {
  case ResumeMechanism::SetTimeout:
    return "setTimeout";
  case ResumeMechanism::SendMessage:
    return "sendMessage";
  case ResumeMechanism::SetImmediate:
    return "setImmediate";
  }
  return "?";
}

ResumeMechanism rt::chooseResumeMechanism(const browser::Profile &P) {
  if (P.HasSetImmediate)
    return ResumeMechanism::SetImmediate;
  if (!P.SendMessageSynchronous)
    return ResumeMechanism::SendMessage;
  // IE8: sendMessage dispatches synchronously, so it cannot yield the
  // JavaScript thread; fall back to setTimeout and eat the 4 ms clamp.
  return ResumeMechanism::SetTimeout;
}

Suspender::Suspender(browser::BrowserEnv &Env)
    : Env(Env), Mechanism(chooseResumeMechanism(Env.profile())),
      TimeSliceNs(browser::msToNs(10)) {
  SliceStartNs = Env.clock().nowNs();
  obs::Registry &Reg = Env.metrics();
  std::string P = Reg.claimPrefix("suspend");
  SuspendedNsC = &Reg.counter(P + ".suspended_ns_total");
  ResumptionsC = &Reg.counter(P + ".resumptions");
  ResumeNsH = &Reg.histogram(P + ".resume_ns");
  PendingG = &Reg.gauge(P + ".pending_resumptions");
  ResumeMissesC = &Reg.counter(P + ".resume_misses");
  ContCells = cont::Cells::resolve(Reg);
}

void Suspender::forceFixedCounter(uint64_t Count) {
  FixedCounter = Count;
  if (Count) {
    CounterTarget = Count;
    Counter = Count;
    return;
  }
  // Restoring adaptation: reseed from the CMA now. Leaving the stale
  // pinned target in place would run one whole countdown (possibly
  // millions of checks at an ablation-sized target) before the next
  // adaptation point corrects it.
  CounterTarget = targetFromCma();
  Counter = CounterTarget;
}

uint64_t Suspender::targetFromCma() const {
  if (CmaCheckNs <= 0.0)
    return DefaultCounterTarget;
  double Target = static_cast<double>(TimeSliceNs) / CmaCheckNs;
  return static_cast<uint64_t>(
      std::clamp(Target, 64.0, 64.0 * 1024.0 * 1024.0));
}

void Suspender::scheduleResumption(std::function<void()> Resume) {
  scheduleResumption(
      Continuation::capture(ContCells, std::move(Resume), "suspend"));
}

void Suspender::scheduleResumption(Continuation K) {
  uint64_t Id = NextResumptionId++;
  PendingResumptions.emplace(
      Id, Pending{std::move(K), Env.clock().nowNs()});
  PendingG->set(static_cast<int64_t>(PendingResumptions.size()));
  dispatchViaMechanism(Id);
}

void Suspender::fire(uint64_t Id) {
  auto It = PendingResumptions.find(Id);
  if (It == PendingResumptions.end()) {
    // A dispatch with no parked resumption: the id fired twice, or was
    // never registered. Either way a one-shot invariant broke upstream.
    ResumeMissesC->inc();
    assert(!"resumption dispatched with no parked continuation");
    return;
  }
  Continuation K = std::move(It->second.K);
  uint64_t SuspendedAt = It->second.SuspendedAtNs;
  PendingResumptions.erase(It);
  PendingG->set(static_cast<int64_t>(PendingResumptions.size()));
  uint64_t WaitNs = Env.clock().nowNs() - SuspendedAt;
  SuspendedNsC->inc(WaitNs);
  ResumptionsC->inc();
  ResumeNsH->record(WaitNs);
  beginSlice();
  K.resume();
}

void Suspender::dispatchViaMechanism(uint64_t Id) {
  // Mechanism choice is kernel lane-backend selection: every path lands
  // the resumption on the Resume lane; what differs is the latency charged
  // on the way there (immediate cost, message cost, or the 4 ms clamp).
  // The continuation stays parked in PendingResumptions; only the prompt
  // id crosses the hop.
  switch (Mechanism) {
  case ResumeMechanism::SetImmediate: {
    bool Ok = Env.loop().trySetImmediate([this, Id] { fire(Id); });
    assert(Ok && "setImmediate chosen on a browser without it");
    (void)Ok;
    return;
  }
  case ResumeMechanism::SendMessage: {
    // sendMessage carries only strings; the hop is the unique string ID,
    // demultiplexed by one global handler (§4.4).
    if (!HandlerRegistered) {
      Env.channel().setOnMessage([this](const js::String &Msg) {
        std::string Text = js::toAscii(Msg);
        const std::string Prefix = "doppio-resume:";
        if (Text.compare(0, Prefix.size(), Prefix) != 0)
          return;
        fire(std::stoull(Text.substr(Prefix.size())));
      });
      HandlerRegistered = true;
    }
    Env.channel().post(
        js::fromAscii("doppio-resume:" + std::to_string(Id)));
    return;
  }
  case ResumeMechanism::SetTimeout: {
    // IE8 fallback: the resumption still targets the Resume lane but
    // must eat the HTML timer clamp on the way (§4.4). Typed timer API;
    // a resumption is never cancelled, so the handle is dropped (dropping
    // does not cancel).
    browser::TimerHandle T = Env.loop().postTimer(
        kernel::Lane::Resume, [this, Id] { fire(Id); },
        Env.profile().MinTimeoutClampNs);
    (void)T;
    return;
  }
  }
}

bool Suspender::shouldSuspend() {
  if (Counter > 1) {
    --Counter;
    return false;
  }
  // Counter hit zero: measure how long this countdown took and update the
  // cumulative moving average of per-check cost (§4.1).
  uint64_t Now = Env.clock().nowNs();
  uint64_t ElapsedNs = Now - SliceStartNs;
  double NsPerCheck =
      static_cast<double>(ElapsedNs) / static_cast<double>(CounterTarget);
  CmaCheckNs = (CmaCheckNs * static_cast<double>(CmaSamples) + NsPerCheck) /
               static_cast<double>(CmaSamples + 1);
  ++CmaSamples;
  if (FixedCounter) {
    // Ablation mode: no adaptation.
    CounterTarget = FixedCounter;
  } else if (CmaCheckNs > 0.0) {
    CounterTarget = targetFromCma();
  } else {
    // Clock did not advance over the countdown: double, within the same
    // clamp range the CMA path uses.
    CounterTarget = static_cast<uint64_t>(std::clamp(
        static_cast<double>(CounterTarget) * 2.0, 64.0,
        64.0 * 1024.0 * 1024.0));
  }
  Counter = CounterTarget;
  SliceStartNs = Now;
  return true;
}

void Suspender::beginSlice() {
  Counter = CounterTarget;
  SliceStartNs = Env.clock().nowNs();
}
