//===- doppio/suspend.cpp -------------------------------------------------==//

#include "doppio/suspend.h"

#include <algorithm>
#include <cassert>

using namespace doppio;
using namespace doppio::rt;

const char *rt::resumeMechanismName(ResumeMechanism M) {
  switch (M) {
  case ResumeMechanism::SetTimeout:
    return "setTimeout";
  case ResumeMechanism::SendMessage:
    return "sendMessage";
  case ResumeMechanism::SetImmediate:
    return "setImmediate";
  }
  return "?";
}

ResumeMechanism rt::chooseResumeMechanism(const browser::Profile &P) {
  if (P.HasSetImmediate)
    return ResumeMechanism::SetImmediate;
  if (!P.SendMessageSynchronous)
    return ResumeMechanism::SendMessage;
  // IE8: sendMessage dispatches synchronously, so it cannot yield the
  // JavaScript thread; fall back to setTimeout and eat the 4 ms clamp.
  return ResumeMechanism::SetTimeout;
}

Suspender::Suspender(browser::BrowserEnv &Env)
    : Env(Env), Mechanism(chooseResumeMechanism(Env.profile())),
      TimeSliceNs(browser::msToNs(10)) {
  SliceStartNs = Env.clock().nowNs();
  obs::Registry &Reg = Env.metrics();
  std::string P = Reg.claimPrefix("suspend");
  SuspendedNsC = &Reg.counter(P + ".suspended_ns_total");
  ResumptionsC = &Reg.counter(P + ".resumptions");
  ResumeNsH = &Reg.histogram(P + ".resume_ns");
}

void Suspender::scheduleResumption(std::function<void()> Resume) {
  uint64_t SuspendedAt = Env.clock().nowNs();
  dispatchViaMechanism([this, SuspendedAt, Resume = std::move(Resume)] {
    uint64_t WaitNs = Env.clock().nowNs() - SuspendedAt;
    SuspendedNsC->inc(WaitNs);
    ResumptionsC->inc();
    ResumeNsH->record(WaitNs);
    beginSlice();
    Resume();
  });
}

void Suspender::dispatchViaMechanism(std::function<void()> Fn) {
  // Mechanism choice is kernel lane-backend selection: every path lands
  // the resumption on the Resume lane; what differs is the latency charged
  // on the way there (immediate cost, message cost, or the 4 ms clamp).
  switch (Mechanism) {
  case ResumeMechanism::SetImmediate: {
    bool Ok = Env.loop().trySetImmediate(std::move(Fn));
    assert(Ok && "setImmediate chosen on a browser without it");
    (void)Ok;
    return;
  }
  case ResumeMechanism::SendMessage: {
    // sendMessage carries only strings, so the callback parks in a
    // registry demultiplexed by a unique ID (§4.4) — the one place a
    // side table survives the kernel refactor, because the transport
    // itself cannot carry a closure.
    uint64_t Id = NextResumptionId++;
    PendingResumptions[Id] = std::move(Fn);
    if (!HandlerRegistered) {
      // One global handler demultiplexes by the unique string ID (§4.4).
      Env.channel().setOnMessage([this](const js::String &Msg) {
        std::string Text = js::toAscii(Msg);
        const std::string Prefix = "doppio-resume:";
        if (Text.compare(0, Prefix.size(), Prefix) != 0)
          return;
        uint64_t MsgId = std::stoull(Text.substr(Prefix.size()));
        auto It = PendingResumptions.find(MsgId);
        if (It == PendingResumptions.end())
          return;
        std::function<void()> Fn = std::move(It->second);
        PendingResumptions.erase(It);
        Fn();
      });
      HandlerRegistered = true;
    }
    Env.channel().post(
        js::fromAscii("doppio-resume:" + std::to_string(Id)));
    return;
  }
  case ResumeMechanism::SetTimeout: {
    // IE8 fallback: the resumption still targets the Resume lane but
    // must eat the HTML timer clamp on the way (§4.4). Typed timer API;
    // a resumption is never cancelled, so the handle is dropped (dropping
    // does not cancel).
    browser::TimerHandle T = Env.loop().postTimer(
        kernel::Lane::Resume, std::move(Fn), Env.profile().MinTimeoutClampNs);
    (void)T;
    return;
  }
  }
}

bool Suspender::shouldSuspend() {
  if (Counter > 1) {
    --Counter;
    return false;
  }
  // Counter hit zero: measure how long this countdown took and update the
  // cumulative moving average of per-check cost (§4.1).
  uint64_t Now = Env.clock().nowNs();
  uint64_t ElapsedNs = Now - SliceStartNs;
  double NsPerCheck =
      static_cast<double>(ElapsedNs) / static_cast<double>(CounterTarget);
  CmaCheckNs = (CmaCheckNs * static_cast<double>(CmaSamples) + NsPerCheck) /
               static_cast<double>(CmaSamples + 1);
  ++CmaSamples;
  if (FixedCounter) {
    // Ablation mode: no adaptation.
    CounterTarget = FixedCounter;
  } else {
    double Target = CmaCheckNs > 0.0
                        ? static_cast<double>(TimeSliceNs) / CmaCheckNs
                        : static_cast<double>(CounterTarget) * 2.0;
    CounterTarget = static_cast<uint64_t>(
        std::clamp(Target, 64.0, 64.0 * 1024.0 * 1024.0));
  }
  Counter = CounterTarget;
  SliceStartNs = Now;
  return true;
}

void Suspender::beginSlice() {
  Counter = CounterTarget;
  SliceStartNs = Env.clock().nowNs();
}
