//===- doppio/heap.cpp ----------------------------------------------------==//

#include "doppio/heap.h"

#include <algorithm>
#include <bit>
#include <cassert>

using namespace doppio;
using namespace doppio::rt;

UnmanagedHeap::UnmanagedHeap(browser::BrowserEnv &Env, uint32_t SizeBytes)
    : Env(Env), Words((SizeBytes + 3) / 4, 0),
      TypedArrayBacked(Env.profile().HasTypedArrays) {
  assert(Words.size() >= 2 && "heap too small");
  // Word 0 is reserved so that no allocation gets byte address 0.
  FreeList.push_back({1, static_cast<uint32_t>(Words.size() - 1)});
  if (TypedArrayBacked)
    Env.noteTypedArrayAlloc(Words.size() * 4);
}

UnmanagedHeap::~UnmanagedHeap() {
  if (TypedArrayBacked)
    Env.noteTypedArrayFree(Words.size() * 4);
}

void UnmanagedHeap::chargeAccess(uint32_t NumBytes) const {
  // Without typed arrays every access decodes/encodes numbers through
  // arithmetic on boxed doubles (§5.2).
  uint64_t PerByte = TypedArrayBacked ? 1 : 8;
  Env.chargeCompute(PerByte * NumBytes + 3);
}

UnmanagedHeap::Addr UnmanagedHeap::malloc(uint32_t NumBytes) {
  if (NumBytes == 0)
    NumBytes = 4;
  uint32_t PayloadWords = (NumBytes + 3) / 4;
  uint32_t NeedWords = PayloadWords + 1; // Header + payload.
  // First fit (§5.2).
  for (size_t I = 0, E = FreeList.size(); I != E; ++I) {
    FreeBlock &B = FreeList[I];
    if (B.SizeWords < NeedWords)
      continue;
    uint32_t Offset = B.OffsetWords;
    uint32_t Remainder = B.SizeWords - NeedWords;
    if (Remainder > 0) {
      B.OffsetWords += NeedWords;
      B.SizeWords = Remainder;
    } else {
      FreeList.erase(FreeList.begin() + I);
    }
    Words[Offset] = static_cast<int32_t>(PayloadWords);
    ++LiveBlocks;
    LiveBytes += PayloadWords * 4;
    Env.chargeCompute(20 + 2 * I); // First-fit scan cost.
    return (Offset + 1) * 4;
  }
  return 0; // Out of heap.
}

void UnmanagedHeap::free(Addr A) {
  if (A == 0)
    return;
  assert(A % 4 == 0 && A / 4 >= 1 && A / 4 < Words.size() &&
         "free of invalid address");
  uint32_t HeaderWord = A / 4 - 1;
  uint32_t PayloadWords = static_cast<uint32_t>(Words[HeaderWord]);
  assert(PayloadWords > 0 &&
         HeaderWord + 1 + PayloadWords <= Words.size() &&
         "corrupt allocation header (double free?)");
  FreeBlock Released = {HeaderWord, PayloadWords + 1};
  // Insert into the sorted free list.
  auto Pos = std::lower_bound(FreeList.begin(), FreeList.end(), Released,
                              [](const FreeBlock &X, const FreeBlock &Y) {
                                return X.OffsetWords < Y.OffsetWords;
                              });
  assert((Pos == FreeList.end() ||
          Released.OffsetWords + Released.SizeWords <= Pos->OffsetWords) &&
         "freed block overlaps a free block (double free?)");
  assert((Pos == FreeList.begin() ||
          (Pos - 1)->OffsetWords + (Pos - 1)->SizeWords <=
              Released.OffsetWords) &&
         "freed block overlaps a free block (double free?)");
  Pos = FreeList.insert(Pos, Released);
  // Coalesce with the successor, then the predecessor.
  if (Pos + 1 != FreeList.end() &&
      Pos->OffsetWords + Pos->SizeWords == (Pos + 1)->OffsetWords) {
    Pos->SizeWords += (Pos + 1)->SizeWords;
    Pos = FreeList.erase(Pos + 1) - 1;
  }
  if (Pos != FreeList.begin() &&
      (Pos - 1)->OffsetWords + (Pos - 1)->SizeWords == Pos->OffsetWords) {
    (Pos - 1)->SizeWords += Pos->SizeWords;
    FreeList.erase(Pos);
  }
  Words[HeaderWord] = 0;
  --LiveBlocks;
  LiveBytes -= PayloadWords * 4;
  Env.chargeCompute(24);
}

uint32_t UnmanagedHeap::freeBytes() const {
  uint32_t Total = 0;
  for (const FreeBlock &B : FreeList)
    if (B.SizeWords > 1)
      Total += (B.SizeWords - 1) * 4;
  return Total;
}

uint32_t UnmanagedHeap::freeBlockCount() const {
  return static_cast<uint32_t>(FreeList.size());
}

bool UnmanagedHeap::checkInvariants() const {
  uint32_t PrevEnd = 1; // Word 0 is reserved.
  for (const FreeBlock &B : FreeList) {
    if (B.OffsetWords < PrevEnd)
      return false; // Overlap with the previous block, or unsorted.
    if (B.SizeWords == 0)
      return false;
    if (B.OffsetWords + B.SizeWords > Words.size())
      return false;
    PrevEnd = B.OffsetWords + B.SizeWords;
  }
  // Coalescing: no free block may start exactly where the previous ends.
  for (size_t I = 1; I < FreeList.size(); ++I)
    if (FreeList[I - 1].OffsetWords + FreeList[I - 1].SizeWords ==
        FreeList[I].OffsetWords)
      return false;
  return true;
}

void UnmanagedHeap::writeBytes(Addr A, const uint8_t *Src, uint32_t Len) {
  assert(A >= 4 && A + Len <= Words.size() * 4 && "heap write out of range");
  chargeAccess(Len);
  for (uint32_t I = 0; I != Len; ++I) {
    uint32_t Byte = A + I;
    uint32_t WordIdx = Byte >> 2;
    uint32_t Lane = (Byte & 3) * 8; // Little endian (§5.2).
    uint32_t W = static_cast<uint32_t>(Words[WordIdx]);
    W = (W & ~(0xFFu << Lane)) | (static_cast<uint32_t>(Src[I]) << Lane);
    Words[WordIdx] = static_cast<int32_t>(W);
  }
}

void UnmanagedHeap::readBytes(Addr A, uint8_t *Dst, uint32_t Len) const {
  assert(A >= 4 && A + Len <= Words.size() * 4 && "heap read out of range");
  chargeAccess(Len);
  for (uint32_t I = 0; I != Len; ++I) {
    uint32_t Byte = A + I;
    uint32_t WordIdx = Byte >> 2;
    uint32_t Lane = (Byte & 3) * 8;
    Dst[I] = static_cast<uint8_t>(
        (static_cast<uint32_t>(Words[WordIdx]) >> Lane) & 0xFF);
  }
}

void UnmanagedHeap::writeInt8(Addr A, int8_t V) {
  uint8_t Byte = static_cast<uint8_t>(V);
  writeBytes(A, &Byte, 1);
}

int8_t UnmanagedHeap::readInt8(Addr A) const {
  uint8_t Byte;
  readBytes(A, &Byte, 1);
  return static_cast<int8_t>(Byte);
}

void UnmanagedHeap::writeInt16(Addr A, int16_t V) {
  uint16_t U = static_cast<uint16_t>(V);
  uint8_t B[2] = {static_cast<uint8_t>(U), static_cast<uint8_t>(U >> 8)};
  writeBytes(A, B, 2);
}

int16_t UnmanagedHeap::readInt16(Addr A) const {
  uint8_t B[2];
  readBytes(A, B, 2);
  return static_cast<int16_t>(B[0] | (B[1] << 8));
}

void UnmanagedHeap::writeInt32(Addr A, int32_t V) {
  uint32_t U = static_cast<uint32_t>(V);
  uint8_t B[4] = {static_cast<uint8_t>(U), static_cast<uint8_t>(U >> 8),
                  static_cast<uint8_t>(U >> 16),
                  static_cast<uint8_t>(U >> 24)};
  writeBytes(A, B, 4);
}

int32_t UnmanagedHeap::readInt32(Addr A) const {
  uint8_t B[4];
  readBytes(A, B, 4);
  return static_cast<int32_t>(static_cast<uint32_t>(B[0]) |
                              (static_cast<uint32_t>(B[1]) << 8) |
                              (static_cast<uint32_t>(B[2]) << 16) |
                              (static_cast<uint32_t>(B[3]) << 24));
}

void UnmanagedHeap::writeInt64(Addr A, int64_t V) {
  uint64_t U = static_cast<uint64_t>(V);
  writeInt32(A, static_cast<int32_t>(U & 0xFFFFFFFF));
  writeInt32(A + 4, static_cast<int32_t>(U >> 32));
}

int64_t UnmanagedHeap::readInt64(Addr A) const {
  uint64_t Lo = static_cast<uint32_t>(readInt32(A));
  uint64_t Hi = static_cast<uint32_t>(readInt32(A + 4));
  return static_cast<int64_t>(Lo | (Hi << 32));
}

void UnmanagedHeap::writeFloat(Addr A, float V) {
  writeInt32(A, std::bit_cast<int32_t>(V));
}

float UnmanagedHeap::readFloat(Addr A) const {
  return std::bit_cast<float>(readInt32(A));
}

void UnmanagedHeap::writeDouble(Addr A, double V) {
  writeInt64(A, std::bit_cast<int64_t>(V));
}

double UnmanagedHeap::readDouble(Addr A) const {
  return std::bit_cast<double>(readInt64(A));
}
