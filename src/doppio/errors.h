//===- doppio/errors.h - Unix-style API errors --------------------*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Error codes for Doppio's emulated OS services. The file system API is "a
/// light JavaScript wrapper around Unix file system calls" (§5.1), so the
/// error vocabulary is errno's. ErrorOr is a small Expected-style carrier
/// for fallible results (the library avoids exceptions).
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_DOPPIO_ERRORS_H
#define DOPPIO_DOPPIO_ERRORS_H

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace doppio {
namespace rt {

/// Unix errno subset used by the emulated OS services.
enum class Errno {
  Perm,  // EPERM
  NoEnt,  // ENOENT
  BadFd,  // EBADF
  Access,  // EACCES
  Exists,  // EEXIST
  NotDir,  // ENOTDIR
  IsDir,  // EISDIR
  Invalid,  // EINVAL
  NoSpace,  // ENOSPC
  ReadOnlyFs,  // EROFS
  NotEmpty,  // ENOTEMPTY
  CrossDev,  // EXDEV
  NotSup,  // ENOTSUP
  Io,  // EIO
  ConnRefused,  // ECONNREFUSED
  NotConn,  // ENOTCONN
  Pipe,  // EPIPE (write to a pipe with no readers)
  Srch,  // ESRCH (no such process)
  Child,  // ECHILD (no waitable children)
  Again,  // EAGAIN (operation would block)
};

/// Returns the symbolic name ("ENOENT") for \p E.
const char *errnoName(Errno E);

/// An API error: an errno code plus the path or resource it concerns.
struct ApiError {
  Errno Code;
  std::string Detail;

  ApiError(Errno Code, std::string Detail = "")
      : Code(Code), Detail(std::move(Detail)) {}

  std::string message() const {
    std::string Msg = errnoName(Code);
    if (!Detail.empty())
      Msg += ": " + Detail;
    return Msg;
  }
};

/// Holds either a value or an ApiError.
template <typename T> class ErrorOr {
public:
  ErrorOr(T Value) : Storage(std::move(Value)) {}
  ErrorOr(ApiError Err) : Storage(std::move(Err)) {}
  ErrorOr(Errno Code, std::string Detail = "")
      : Storage(ApiError(Code, std::move(Detail))) {}

  bool ok() const { return std::holds_alternative<T>(Storage); }
  explicit operator bool() const { return ok(); }

  T &get() {
    assert(ok() && "accessing value of failed ErrorOr");
    return std::get<T>(Storage);
  }
  const T &get() const {
    assert(ok() && "accessing value of failed ErrorOr");
    return std::get<T>(Storage);
  }
  T &operator*() { return get(); }
  const T &operator*() const { return get(); }
  T *operator->() { return &get(); }
  const T *operator->() const { return &get(); }

  const ApiError &error() const {
    assert(!ok() && "accessing error of successful ErrorOr");
    return std::get<ApiError>(Storage);
  }

private:
  std::variant<T, ApiError> Storage;
};

} // namespace rt
} // namespace doppio

#endif // DOPPIO_DOPPIO_ERRORS_H
