//===- doppio/buffer.h - Node Buffer emulation --------------------*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Doppio's implementation of the Node JS Buffer module (§5.1 "Binary Data
/// in the Browser"): reads and writes of signed/unsigned integers and
/// floating-point values of various sizes in either endianness, plus string
/// codecs (ascii, utf8, ucs2, base64, hex) and the packed "binary string"
/// format that stores 2 bytes per UTF-16 code unit on browsers that do not
/// validate strings, falling back to 1 byte per character elsewhere.
///
/// The backing store is a typed array when the browser supports them
/// (registering with the environment's memory accounting — this is what
/// makes the Safari leak visible) or a plain JS number array otherwise,
/// which the cost model charges more heavily per access.
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_DOPPIO_BUFFER_H
#define DOPPIO_DOPPIO_BUFFER_H

#include "browser/env.h"
#include "browser/js_string.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace doppio {
namespace rt {

/// String codecs supported by Buffer (§5.1 lists ASCII, UTF-8, UTF-16/UCS-2,
/// BASE64, HEX, plus the packed binary string).
enum class Encoding { Ascii, Utf8, Ucs2, Base64, Hex, BinaryString };

/// Parses a Node-style encoding name ("utf8", "ucs2", ...).
std::optional<Encoding> parseEncoding(const std::string &Name);
const char *encodingName(Encoding E);

/// A fixed-size binary buffer, the unit of all binary data in Doppio.
class Buffer {
public:
  enum class Backing { TypedArray, NumberArray };

  /// Allocates a zero-filled buffer of \p Size bytes, choosing the backing
  /// store from the environment's profile.
  Buffer(browser::BrowserEnv &Env, size_t Size);

  /// Wraps existing bytes.
  Buffer(browser::BrowserEnv &Env, std::vector<uint8_t> Bytes);

  Buffer(Buffer &&Other) noexcept;
  Buffer &operator=(Buffer &&Other) noexcept;
  Buffer(const Buffer &) = delete;
  Buffer &operator=(const Buffer &) = delete;
  ~Buffer();

  size_t size() const { return Bytes.size(); }
  Backing backing() const { return Store; }

  // Scalar accessors. Offsets are asserted in range.
  uint8_t readUInt8(size_t Off) const;
  int8_t readInt8(size_t Off) const;
  void writeUInt8(uint8_t V, size_t Off);
  void writeInt8(int8_t V, size_t Off);

  uint16_t readUInt16LE(size_t Off) const;
  uint16_t readUInt16BE(size_t Off) const;
  int16_t readInt16LE(size_t Off) const;
  int16_t readInt16BE(size_t Off) const;
  void writeUInt16LE(uint16_t V, size_t Off);
  void writeUInt16BE(uint16_t V, size_t Off);

  uint32_t readUInt32LE(size_t Off) const;
  uint32_t readUInt32BE(size_t Off) const;
  int32_t readInt32LE(size_t Off) const;
  int32_t readInt32BE(size_t Off) const;
  void writeUInt32LE(uint32_t V, size_t Off);
  void writeUInt32BE(uint32_t V, size_t Off);

  float readFloatLE(size_t Off) const;
  float readFloatBE(size_t Off) const;
  void writeFloatLE(float V, size_t Off);
  void writeFloatBE(float V, size_t Off);

  double readDoubleLE(size_t Off) const;
  double readDoubleBE(size_t Off) const;
  void writeDoubleLE(double V, size_t Off);
  void writeDoubleBE(double V, size_t Off);

  /// Copies [SrcStart, SrcEnd) into \p Dest at \p DestOff. Returns bytes
  /// copied (clamped to what fits).
  size_t copyTo(Buffer &Dest, size_t DestOff, size_t SrcStart,
                size_t SrcEnd) const;

  /// Fills [Start, End) with \p Value.
  void fill(uint8_t Value, size_t Start, size_t End);

  /// Decodes [Start, End) to a JS string with codec \p E. For BinaryString
  /// the result packs 2 bytes per code unit on non-validating browsers and
  /// 1 byte per code unit otherwise (§5.1).
  js::String toString(Encoding E, size_t Start, size_t End) const;
  js::String toString(Encoding E) const { return toString(E, 0, size()); }

  /// Encodes \p Text with codec \p E into the buffer at \p Off. Returns
  /// the number of bytes written (stops when full).
  size_t write(const js::String &Text, Encoding E, size_t Off = 0);

  /// Number of bytes \p Text decodes to under codec \p E.
  static size_t byteLength(browser::BrowserEnv &Env, const js::String &Text,
                           Encoding E);

  /// Builds a buffer holding the decoded bytes of \p Text.
  static Buffer fromString(browser::BrowserEnv &Env, const js::String &Text,
                           Encoding E);

  /// True if this browser's binary-string codec packs two bytes per code
  /// unit (non-validating engines only, §5.1).
  static bool packsTwoBytesPerChar(const browser::Profile &P) {
    return !P.ValidatesStrings;
  }

  /// Direct byte view, used by simulation glue (not part of the Node API).
  const std::vector<uint8_t> &bytes() const { return Bytes; }
  std::vector<uint8_t> &bytes() { return Bytes; }

private:
  void chargeAccess(size_t NumBytes) const;

  browser::BrowserEnv *Env;
  std::vector<uint8_t> Bytes;
  Backing Store;
};

} // namespace rt
} // namespace doppio

#endif // DOPPIO_DOPPIO_BUFFER_H
