//===- doppio/sockets.h - Unix socket API over WebSockets (§5.3) -*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Doppio "resolves the client side of the issue by emulating a Unix socket
/// API in terms of WebSocket functionality" (§5.3). Browsers only allow
/// *outgoing* connections, so this API has connect but no listen/accept;
/// the server side of the gap is covered by the websockify wrapper
/// (browser/websocket.h). Received frames queue until the guest asks for
/// them; a pending recv completes as soon as data arrives, which is how the
/// JVM's blocking socket reads are built (§6.3 + §4.2).
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_DOPPIO_SOCKETS_H
#define DOPPIO_DOPPIO_SOCKETS_H

#include "browser/websocket.h"
#include "doppio/errors.h"
#include "doppio/fs_types.h"

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

namespace doppio {
namespace rt {

/// A client socket with Unix-style semantics over a WebSocket.
class DoppioSocket {
public:
  explicit DoppioSocket(browser::BrowserEnv &Env)
      : Env(Env), Ws(Env.net(), Env.profile()) {
    Ws.setOnMessage([this](std::vector<uint8_t> Frame) {
      RecvQueue.push_back(std::move(Frame));
      drainRecv();
    });
    Ws.setOnClose([this] {
      Closed = true;
      drainRecv();
    });
  }

  /// Connects to \p Port (via the WebSocket handshake, or the Flash shim
  /// on browsers without WebSockets).
  void connect(uint16_t Port, fs::CompletionCb Done) {
    Ws.connect(Port, [this, Done = std::move(Done)](bool Ok) {
      Connected = Ok;
      if (Ok)
        Done(std::nullopt);
      else
        Done(ApiError(Errno::ConnRefused, "connect"));
    });
  }

  /// Sends one message (mapped onto a single WebSocket data frame).
  void send(std::vector<uint8_t> Data, fs::CompletionCb Done) {
    if (!Connected || Closed) {
      Done(ApiError(Errno::NotConn, "send"));
      return;
    }
    BytesSent += Data.size();
    Ws.sendBinary(std::move(Data));
    Done(std::nullopt);
  }

  /// Receives the next message. Completes immediately if data is queued;
  /// otherwise completes when data arrives. An empty result means EOF.
  void recv(fs::ResultCb<std::vector<uint8_t>> Done) {
    PendingRecvs.push_back(std::move(Done));
    drainRecv();
  }

  void close() {
    Closed = true;
    Ws.close();
    drainRecv();
  }

  bool isConnected() const { return Connected && !Closed; }
  uint64_t bytesSent() const { return BytesSent; }
  bool usedFlashShim() const { return Ws.usedFlashShim(); }

private:
  void drainRecv() {
    while (!PendingRecvs.empty()) {
      if (!RecvQueue.empty()) {
        auto Done = std::move(PendingRecvs.front());
        PendingRecvs.pop_front();
        std::vector<uint8_t> Frame = std::move(RecvQueue.front());
        RecvQueue.pop_front();
        Done(std::move(Frame));
        continue;
      }
      if (Closed) {
        auto Done = std::move(PendingRecvs.front());
        PendingRecvs.pop_front();
        Done(std::vector<uint8_t>()); // EOF.
        continue;
      }
      break; // Wait for more data.
    }
  }

  browser::BrowserEnv &Env;
  browser::WebSocketClient Ws;
  bool Connected = false;
  bool Closed = false;
  uint64_t BytesSent = 0;
  std::deque<std::vector<uint8_t>> RecvQueue;
  std::deque<fs::ResultCb<std::vector<uint8_t>>> PendingRecvs;
};

} // namespace rt
} // namespace doppio

#endif // DOPPIO_DOPPIO_SOCKETS_H
