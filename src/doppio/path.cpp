//===- doppio/path.cpp ----------------------------------------------------==//

#include "doppio/path.h"

using namespace doppio;
using namespace doppio::rt;

bool path::isAbsolute(std::string_view P) {
  return !P.empty() && P.front() == '/';
}

/// Splits on '/' keeping no empty segments.
static std::vector<std::string> rawSegments(std::string_view P) {
  std::vector<std::string> Segments;
  size_t Start = 0;
  while (Start <= P.size()) {
    size_t Slash = P.find('/', Start);
    if (Slash == std::string_view::npos)
      Slash = P.size();
    if (Slash > Start)
      Segments.emplace_back(P.substr(Start, Slash - Start));
    Start = Slash + 1;
  }
  return Segments;
}

std::string path::normalize(std::string_view P) {
  bool Absolute = isAbsolute(P);
  std::vector<std::string> Out;
  for (std::string &Segment : rawSegments(P)) {
    if (Segment == ".")
      continue;
    if (Segment == "..") {
      if (!Out.empty() && Out.back() != "..") {
        Out.pop_back();
        continue;
      }
      if (Absolute)
        continue; // ".." above the root stays at the root.
      Out.push_back("..");
      continue;
    }
    Out.push_back(std::move(Segment));
  }
  std::string Result = Absolute ? "/" : "";
  for (size_t I = 0; I != Out.size(); ++I) {
    if (I != 0)
      Result += '/';
    Result += Out[I];
  }
  if (Result.empty())
    return Absolute ? "/" : ".";
  return Result;
}

std::string path::join(std::initializer_list<std::string_view> Parts) {
  std::string Glued;
  for (std::string_view Part : Parts) {
    if (Part.empty())
      continue;
    if (!Glued.empty())
      Glued += '/';
    Glued.append(Part);
  }
  return normalize(Glued);
}

std::string path::join2(std::string_view A, std::string_view B) {
  return join({A, B});
}

std::string path::resolve(std::string_view Cwd, std::string_view P) {
  if (isAbsolute(P))
    return normalize(P);
  return join({Cwd, P});
}

std::string path::dirname(std::string_view P) {
  std::string N = normalize(P);
  size_t Slash = N.rfind('/');
  if (Slash == std::string::npos)
    return ".";
  if (Slash == 0)
    return "/";
  return N.substr(0, Slash);
}

std::string path::basename(std::string_view P) {
  std::string N = normalize(P);
  size_t Slash = N.rfind('/');
  if (Slash == std::string::npos)
    return N;
  return N.substr(Slash + 1);
}

std::string path::extname(std::string_view P) {
  std::string Base = basename(P);
  size_t Dot = Base.rfind('.');
  if (Dot == std::string::npos || Dot == 0)
    return "";
  return Base.substr(Dot);
}

std::vector<std::string> path::split(std::string_view P) {
  return rawSegments(normalize(P));
}
