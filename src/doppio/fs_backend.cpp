//===- doppio/fs_backend.cpp ----------------------------------------------==//

#include "doppio/fs_backend.h"

#include "doppio/path.h"

#include <cassert>
#include <sstream>

using namespace doppio;
using namespace doppio::rt;
using namespace doppio::rt::fs;

std::optional<OpenFlags> OpenFlags::parse(const std::string &Mode) {
  OpenFlags F;
  if (Mode == "r") {
    F.Read = true;
  } else if (Mode == "r+") {
    F.Read = F.Write = true;
  } else if (Mode == "w") {
    F.Write = F.Create = F.Truncate = true;
  } else if (Mode == "wx") {
    F.Write = F.Create = F.Truncate = F.Exclusive = true;
  } else if (Mode == "w+") {
    F.Read = F.Write = F.Create = F.Truncate = true;
  } else if (Mode == "a") {
    F.Write = F.Create = F.Append = true;
  } else if (Mode == "a+") {
    F.Read = F.Write = F.Create = F.Append = true;
  } else {
    return std::nullopt;
  }
  return F;
}

FileDescriptor::~FileDescriptor() = default;

void FileDescriptor::truncate(uint64_t, CompletionCb Done) {
  Done(ApiError(Errno::NotSup, "truncate"));
}

FileSystemBackend::~FileSystemBackend() = default;

void FileSystemBackend::chmod(const std::string &Path, uint32_t,
                              CompletionCb Done) {
  Done(ApiError(Errno::NotSup, Path));
}

void FileSystemBackend::chown(const std::string &Path, uint32_t, uint32_t,
                              CompletionCb Done) {
  Done(ApiError(Errno::NotSup, Path));
}

void FileSystemBackend::utimes(const std::string &Path, uint64_t,
                               CompletionCb Done) {
  Done(ApiError(Errno::NotSup, Path));
}

void FileSystemBackend::link(const std::string &, const std::string &Created,
                             CompletionCb Done) {
  Done(ApiError(Errno::NotSup, Created));
}

void FileSystemBackend::symlink(const std::string &,
                                const std::string &Created,
                                CompletionCb Done) {
  Done(ApiError(Errno::NotSup, Created));
}

void FileSystemBackend::readlink(const std::string &Path,
                                 ResultCb<std::string> Done) {
  Done(ApiError(Errno::NotSup, Path));
}

//===----------------------------------------------------------------------===//
// FileIndex
//===----------------------------------------------------------------------===//

FileIndex::FileIndex() {
  Entries["/"] = {FileType::Directory, 0, 0};
  Children["/"] = {};
}

bool FileIndex::addDir(const std::string &Path) {
  if (Path == "/")
    return true;
  auto It = Entries.find(Path);
  if (It != Entries.end())
    return It->second.Type == FileType::Directory;
  std::string Parent = path::dirname(Path);
  if (!addDir(Parent))
    return false;
  Entries[Path] = {FileType::Directory, 0, 0};
  Children[Path] = {};
  Children[Parent].insert(path::basename(Path));
  return true;
}

bool FileIndex::addFile(const std::string &Path, uint64_t SizeBytes,
                        uint64_t MtimeNs) {
  auto It = Entries.find(Path);
  if (It != Entries.end()) {
    if (It->second.Type != FileType::File)
      return false;
    It->second.SizeBytes = SizeBytes;
    It->second.MtimeNs = MtimeNs;
    return true;
  }
  std::string Parent = path::dirname(Path);
  if (!addDir(Parent))
    return false;
  Entries[Path] = {FileType::File, SizeBytes, MtimeNs};
  Children[Parent].insert(path::basename(Path));
  return true;
}

bool FileIndex::remove(const std::string &Path) {
  if (Path == "/")
    return false;
  auto It = Entries.find(Path);
  if (It == Entries.end())
    return false;
  if (It->second.Type == FileType::Directory && !isEmptyDir(Path))
    return false;
  Entries.erase(It);
  Children.erase(Path);
  Children[path::dirname(Path)].erase(path::basename(Path));
  return true;
}

bool FileIndex::exists(const std::string &Path) const {
  return Entries.count(Path) != 0;
}

const FileIndex::Meta *FileIndex::lookup(const std::string &Path) const {
  auto It = Entries.find(Path);
  return It == Entries.end() ? nullptr : &It->second;
}

void FileIndex::setSize(const std::string &Path, uint64_t SizeBytes,
                        uint64_t MtimeNs) {
  auto It = Entries.find(Path);
  assert(It != Entries.end() && "setSize on unknown path");
  It->second.SizeBytes = SizeBytes;
  It->second.MtimeNs = MtimeNs;
}

const std::set<std::string> *FileIndex::list(const std::string &Path) const {
  auto It = Children.find(Path);
  return It == Children.end() ? nullptr : &It->second;
}

bool FileIndex::isEmptyDir(const std::string &Path) const {
  const std::set<std::string> *Kids = list(Path);
  return Kids && Kids->empty();
}

std::vector<std::string> FileIndex::allFiles() const {
  std::vector<std::string> Out;
  for (const auto &[Path, Meta] : Entries)
    if (Meta.Type == FileType::File)
      Out.push_back(Path);
  return Out;
}

std::vector<std::string> FileIndex::allDirs() const {
  std::vector<std::string> Out;
  for (const auto &[Path, Meta] : Entries)
    if (Meta.Type == FileType::Directory && Path != "/")
      Out.push_back(Path);
  return Out;
}

std::string FileIndex::serialize() const {
  std::ostringstream Out;
  for (const auto &[Path, Meta] : Entries) {
    if (Path == "/")
      continue;
    if (Meta.Type == FileType::Directory)
      Out << "D " << Path << "\n";
    else
      Out << "F " << Meta.SizeBytes << " " << Meta.MtimeNs << " " << Path
          << "\n";
  }
  return Out.str();
}

FileIndex FileIndex::deserialize(const std::string &Text) {
  FileIndex Index;
  std::istringstream In(Text);
  std::string Line;
  while (std::getline(In, Line)) {
    if (Line.size() < 3)
      continue;
    if (Line[0] == 'D') {
      Index.addDir(Line.substr(2));
      continue;
    }
    if (Line[0] != 'F')
      continue;
    std::istringstream Fields(Line.substr(2));
    uint64_t Size = 0, Mtime = 0;
    Fields >> Size >> Mtime;
    std::string Path;
    std::getline(Fields, Path);
    // Strip the single separating space.
    if (!Path.empty() && Path.front() == ' ')
      Path.erase(Path.begin());
    if (!Path.empty())
      Index.addFile(Path, Size, Mtime);
  }
  return Index;
}

//===----------------------------------------------------------------------===//
// PreloadFile
//===----------------------------------------------------------------------===//

PreloadFile::PreloadFile(browser::BrowserEnv &Env, std::string Path,
                         OpenFlags Flags, std::vector<uint8_t> InitContents,
                         SyncFn Sync)
    : Env(Env), FilePath(std::move(Path)), Flags(Flags),
      Contents(Env, std::move(InitContents)), Size(Contents.size()),
      Sync(std::move(Sync)) {
  if (Flags.Truncate)
    Size = 0;
}

void PreloadFile::read(Buffer &Dst, size_t DstOff, size_t Len, uint64_t Pos,
                       ResultCb<size_t> Done) {
  if (Closed) {
    Done(ApiError(Errno::BadFd, FilePath));
    return;
  }
  if (!Flags.Read) {
    Done(ApiError(Errno::Access, FilePath));
    return;
  }
  if (Pos >= Size) {
    Done(static_cast<size_t>(0)); // EOF.
    return;
  }
  size_t Avail = Size - static_cast<size_t>(Pos);
  size_t N = std::min(Len, Avail);
  N = Contents.copyTo(Dst, DstOff, static_cast<size_t>(Pos),
                      static_cast<size_t>(Pos) + N);
  Done(N);
}

void PreloadFile::write(const Buffer &Src, size_t SrcOff, size_t Len,
                        uint64_t Pos, ResultCb<size_t> Done) {
  if (Closed) {
    Done(ApiError(Errno::BadFd, FilePath));
    return;
  }
  if (!Flags.Write) {
    Done(ApiError(Errno::Access, FilePath));
    return;
  }
  if (Flags.Append)
    Pos = Size;
  size_t End = static_cast<size_t>(Pos) + Len;
  if (End > Contents.size()) {
    // Grow the backing buffer geometrically.
    size_t NewCap = std::max(End, Contents.size() * 2 + 16);
    Buffer Grown(Env, NewCap);
    Contents.copyTo(Grown, 0, 0, Size);
    Contents = std::move(Grown);
  }
  Src.copyTo(Contents, static_cast<size_t>(Pos), SrcOff, SrcOff + Len);
  Size = std::max(Size, End);
  Dirty = true;
  Done(Len);
}

void PreloadFile::stat(ResultCb<Stats> Done) {
  Stats S;
  S.Type = FileType::File;
  S.SizeBytes = Size;
  S.MtimeNs = Env.clock().nowNs();
  Done(S);
}

void PreloadFile::sync(CompletionCb Done) {
  if (Closed) {
    Done(ApiError(Errno::BadFd, FilePath));
    return;
  }
  if (!Dirty) {
    Done(std::nullopt);
    return;
  }
  std::vector<uint8_t> Snapshot(Contents.bytes().begin(),
                                Contents.bytes().begin() + Size);
  auto Self = shared_from_this();
  Sync(FilePath, Snapshot, [Self, Done](std::optional<ApiError> Err) {
    if (!Err)
      Self->Dirty = false;
    Done(Err);
  });
}

void PreloadFile::close(CompletionCb Done) {
  if (Closed) {
    Done(ApiError(Errno::BadFd, FilePath));
    return;
  }
  // Sync-on-close (§5.1).
  auto Self = shared_from_this();
  sync([Self, Done](std::optional<ApiError> Err) {
    Self->Closed = true;
    Done(Err);
  });
}

void PreloadFile::truncate(uint64_t NewSize, CompletionCb Done) {
  if (Closed) {
    Done(ApiError(Errno::BadFd, FilePath));
    return;
  }
  if (!Flags.Write) {
    Done(ApiError(Errno::Access, FilePath));
    return;
  }
  if (NewSize > Size) {
    Buffer Grown(Env, static_cast<size_t>(NewSize));
    Contents.copyTo(Grown, 0, 0, Size);
    Contents = std::move(Grown);
  }
  Size = static_cast<size_t>(NewSize);
  Dirty = true;
  Done(std::nullopt);
}
