//===- doppio/heap.h - The unmanaged heap (§5.2) ------------------*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Doppio emulates the unmanaged heap with "a straightforward first-fit
/// memory allocator that operates on JavaScript arrays. Each element in the
/// array is a 32-bit signed integer" (§5.2). Data written to the heap is
/// converted into 32-bit little-endian chunks (copied in and out, so updates
/// must be kept in sync by the language). When typed arrays are available,
/// the heap uses an ArrayBuffer instead, making numeric conversions cheap —
/// the cost model reflects both paths, and the typed-array path registers
/// with the environment's memory accounting.
///
/// Managed languages reach this through sun.misc.Unsafe (§6.5); unmanaged
/// languages use it as their malloc/free arena.
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_DOPPIO_HEAP_H
#define DOPPIO_DOPPIO_HEAP_H

#include "browser/env.h"

#include <cstdint>
#include <vector>

namespace doppio {
namespace rt {

/// First-fit allocator over a 32-bit-integer array.
class UnmanagedHeap {
public:
  /// A byte address within the heap. Address 0 is never a valid
  /// allocation (it plays NULL's role).
  using Addr = uint32_t;

  /// Creates a heap of \p SizeBytes (rounded up to a multiple of 4).
  UnmanagedHeap(browser::BrowserEnv &Env, uint32_t SizeBytes);
  ~UnmanagedHeap();

  UnmanagedHeap(const UnmanagedHeap &) = delete;
  UnmanagedHeap &operator=(const UnmanagedHeap &) = delete;

  /// Allocates \p NumBytes (rounded up to 4). Returns 0 when no block fits.
  Addr malloc(uint32_t NumBytes);

  /// Frees a block returned by malloc. Freeing 0 is a no-op; freeing an
  /// address that is not a live allocation asserts.
  void free(Addr A);

  // Copy-in / copy-out accessors (§5.2: data is converted to and from the
  // 32-bit chunks, so heap contents are copies).
  void writeBytes(Addr A, const uint8_t *Src, uint32_t Len);
  void readBytes(Addr A, uint8_t *Dst, uint32_t Len) const;

  void writeInt8(Addr A, int8_t V);
  int8_t readInt8(Addr A) const;
  void writeInt16(Addr A, int16_t V);
  int16_t readInt16(Addr A) const;
  void writeInt32(Addr A, int32_t V);
  int32_t readInt32(Addr A) const;
  /// 64-bit values occupy two consecutive 32-bit chunks (little endian).
  void writeInt64(Addr A, int64_t V);
  int64_t readInt64(Addr A) const;
  void writeFloat(Addr A, float V);
  float readFloat(Addr A) const;
  void writeDouble(Addr A, double V);
  double readDouble(Addr A) const;

  uint32_t sizeBytes() const {
    return static_cast<uint32_t>(Words.size() * 4);
  }
  /// Total bytes currently handed out to live allocations (payloads only).
  uint32_t allocatedBytes() const { return LiveBytes; }
  /// Number of live allocations.
  uint32_t allocationCount() const { return LiveBlocks; }
  /// Bytes available in the free list (payload capacity).
  uint32_t freeBytes() const;
  /// Number of free-list blocks (exposes coalescing behaviour to tests).
  uint32_t freeBlockCount() const;

  /// Checks allocator invariants: free blocks are sorted, non-overlapping,
  /// non-adjacent (fully coalesced), and within bounds. Returns true when
  /// consistent. Used by property tests.
  bool checkInvariants() const;

  /// True if this heap is backed by a typed array (ArrayBuffer).
  bool usesTypedArray() const { return TypedArrayBacked; }

private:
  struct FreeBlock {
    uint32_t OffsetWords; // Index into Words.
    uint32_t SizeWords;   // Includes the header word.
  };

  void chargeAccess(uint32_t NumBytes) const;

  browser::BrowserEnv &Env;
  /// The storage array: "each element is a 32-bit signed integer" (§5.2).
  std::vector<int32_t> Words;
  /// Sorted, coalesced free list.
  std::vector<FreeBlock> FreeList;
  bool TypedArrayBacked;
  uint32_t LiveBytes = 0;
  uint32_t LiveBlocks = 0;
};

} // namespace rt
} // namespace doppio

#endif // DOPPIO_DOPPIO_HEAP_H
