//===- doppio/fs.cpp ------------------------------------------------------==//

#include "doppio/fs.h"

#include "browser/env.h"

using namespace doppio;
using namespace doppio::rt;
using namespace doppio::rt::fs;

void FileSystem::bindCells() {
  // claimPrefix: a second FileSystem on the same tab (nothing in-tree
  // builds one today) gets "fs2.*" cells instead of corrupting ours.
  obs::Registry &Reg = Env.metrics();
  std::string P = Reg.claimPrefix("fs");
  OpsC = &Reg.counter(P + ".ops");
  BytesReadC = &Reg.counter(P + ".bytes_read");
  BytesWrittenC = &Reg.counter(P + ".bytes_written");
  UniqueFilesC = &Reg.counter(P + ".unique_files");
  OpNsH = &Reg.histogram(P + ".op_ns");
}

void FileSystem::installChdirValidator(Process &P) {
  P.setChdirValidator(
      [this](const std::string &Abs, Process::ChdirCb Done) {
        stat(Abs, [Abs, Done = std::move(Done)](ErrorOr<Stats> S) {
          if (!S.ok()) {
            Done(S.error());
            return;
          }
          if (!S->isDirectory()) {
            Done(ApiError(Errno::NotDir, Abs));
            return;
          }
          Done(std::nullopt);
        });
      });
}

FileSystem::OpStats FileSystem::stats() const {
  OpStats S;
  S.Operations = OpsC->value();
  S.BytesRead = BytesReadC->value();
  S.BytesWritten = BytesWrittenC->value();
  S.UniqueFilesTouched = UniqueFilesC->value();
  return S;
}

void FileSystem::resetStats() {
  OpsC->reset();
  BytesReadC->reset();
  BytesWrittenC->reset();
  UniqueFilesC->reset();
  OpNsH->reset();
  Touched.clear();
}

obs::SpanId FileSystem::beginOp(const char *Name) {
  return Env.metrics().spans().begin(Name);
}

void FileSystem::endOp(obs::SpanId Op, uint64_t StartNs) {
  Env.metrics().spans().end(Op);
  uint64_t NowNs = Env.clock().nowNs();
  OpNsH->record(NowNs > StartNs ? NowNs - StartNs : 0);
}

void FileSystem::open(const std::string &P, const std::string &Mode,
                      ResultCb<FdPtr> Done) {
  OpsC->inc();
  std::optional<OpenFlags> Flags = OpenFlags::parse(Mode);
  if (!Flags) {
    Done(ApiError(Errno::Invalid, "bad open mode '" + Mode + "'"));
    return;
  }
  std::string Path = standardize(P);
  touch(Path);
  uint64_t StartNs = Env.clock().nowNs();
  obs::SpanId Op = beginOp("fs.open");
  // The op span is current while the backend starts work, so completion
  // posts capture it and the causal chain survives the async hop.
  obs::SpanStore::Scope Scope(Env.metrics().spans(), Op);
  Root->open(Path, *Flags,
             [this, Op, StartNs, Done = std::move(Done)](ErrorOr<FdPtr> R) {
               endOp(Op, StartNs);
               Done(std::move(R));
             });
}

void FileSystem::stat(const std::string &P, ResultCb<Stats> Done) {
  OpsC->inc();
  uint64_t StartNs = Env.clock().nowNs();
  obs::SpanId Op = beginOp("fs.stat");
  obs::SpanStore::Scope Scope(Env.metrics().spans(), Op);
  Root->stat(standardize(P),
             [this, Op, StartNs, Done = std::move(Done)](ErrorOr<Stats> R) {
               endOp(Op, StartNs);
               Done(std::move(R));
             });
}

void FileSystem::rename(const std::string &From, const std::string &To,
                        CompletionCb Done) {
  OpsC->inc();
  uint64_t StartNs = Env.clock().nowNs();
  obs::SpanId Op = beginOp("fs.rename");
  obs::SpanStore::Scope Scope(Env.metrics().spans(), Op);
  Root->rename(standardize(From), standardize(To),
               [this, Op, StartNs,
                Done = std::move(Done)](std::optional<ApiError> Err) {
                 endOp(Op, StartNs);
                 Done(std::move(Err));
               });
}

void FileSystem::unlink(const std::string &P, CompletionCb Done) {
  OpsC->inc();
  uint64_t StartNs = Env.clock().nowNs();
  obs::SpanId Op = beginOp("fs.unlink");
  obs::SpanStore::Scope Scope(Env.metrics().spans(), Op);
  Root->unlink(standardize(P),
               [this, Op, StartNs,
                Done = std::move(Done)](std::optional<ApiError> Err) {
                 endOp(Op, StartNs);
                 Done(std::move(Err));
               });
}

void FileSystem::mkdir(const std::string &P, CompletionCb Done) {
  OpsC->inc();
  uint64_t StartNs = Env.clock().nowNs();
  obs::SpanId Op = beginOp("fs.mkdir");
  obs::SpanStore::Scope Scope(Env.metrics().spans(), Op);
  Root->mkdir(standardize(P),
              [this, Op, StartNs,
               Done = std::move(Done)](std::optional<ApiError> Err) {
                endOp(Op, StartNs);
                Done(std::move(Err));
              });
}

void FileSystem::rmdir(const std::string &P, CompletionCb Done) {
  OpsC->inc();
  uint64_t StartNs = Env.clock().nowNs();
  obs::SpanId Op = beginOp("fs.rmdir");
  obs::SpanStore::Scope Scope(Env.metrics().spans(), Op);
  Root->rmdir(standardize(P),
              [this, Op, StartNs,
               Done = std::move(Done)](std::optional<ApiError> Err) {
                endOp(Op, StartNs);
                Done(std::move(Err));
              });
}

void FileSystem::readdir(const std::string &P,
                         ResultCb<std::vector<std::string>> Done) {
  OpsC->inc();
  uint64_t StartNs = Env.clock().nowNs();
  obs::SpanId Op = beginOp("fs.readdir");
  obs::SpanStore::Scope Scope(Env.metrics().spans(), Op);
  Root->readdir(standardize(P),
                [this, Op, StartNs, Done = std::move(Done)](
                    ErrorOr<std::vector<std::string>> R) {
                  endOp(Op, StartNs);
                  Done(std::move(R));
                });
}

void FileSystem::readFile(const std::string &P,
                          ResultCb<std::vector<uint8_t>> Done) {
  uint64_t StartNs = Env.clock().nowNs();
  obs::SpanId Op = beginOp("fs.readFile");
  obs::SpanStore::Scope Scope(Env.metrics().spans(), Op);
  auto Finish = [this, Op, StartNs,
                 Done = std::move(Done)](ErrorOr<std::vector<uint8_t>> R) {
    endOp(Op, StartNs);
    Done(std::move(R));
  };
  // Simulated over the core API: open -> stat -> read -> close.
  open(P, "r", [this, Done = std::move(Finish)](ErrorOr<FdPtr> R) {
    if (!R) {
      Done(R.error());
      return;
    }
    FdPtr Fd = *R;
    Fd->stat([this, Fd, Done](ErrorOr<Stats> SR) {
      if (!SR) {
        Done(SR.error());
        return;
      }
      size_t Size = static_cast<size_t>(SR->SizeBytes);
      auto Dst = std::make_shared<Buffer>(Env, Size);
      Fd->read(*Dst, 0, Size, 0,
               [this, Fd, Dst, Size, Done](ErrorOr<size_t> RR) {
                 if (!RR) {
                   Done(RR.error());
                   return;
                 }
                 BytesReadC->inc(*RR);
                 std::vector<uint8_t> Out(
                     Dst->bytes().begin(),
                     Dst->bytes().begin() + std::min(*RR, Size));
                 Fd->close([Done, Out = std::move(Out)](
                               std::optional<ApiError> CE) mutable {
                   if (CE) {
                     Done(*CE);
                     return;
                   }
                   Done(std::move(Out));
                 });
               });
    });
  });
}

void FileSystem::writeFile(const std::string &P, std::vector<uint8_t> Data,
                           CompletionCb Done) {
  uint64_t StartNs = Env.clock().nowNs();
  obs::SpanId Op = beginOp("fs.writeFile");
  obs::SpanStore::Scope Scope(Env.metrics().spans(), Op);
  auto Finish = [this, Op, StartNs,
                 Done = std::move(Done)](std::optional<ApiError> Err) {
    endOp(Op, StartNs);
    Done(std::move(Err));
  };
  open(P, "w",
       [this, Data = std::move(Data),
        Done = std::move(Finish)](ErrorOr<FdPtr> R) mutable {
         if (!R) {
           Done(R.error());
           return;
         }
         FdPtr Fd = *R;
         auto Src = std::make_shared<Buffer>(Env, std::move(Data));
         size_t Len = Src->size();
         Fd->write(*Src, 0, Len, 0,
                   [this, Fd, Src, Done](ErrorOr<size_t> WR) {
                     if (!WR) {
                       Done(WR.error());
                       return;
                     }
                     BytesWrittenC->inc(*WR);
                     Fd->close(Done);
                   });
       });
}

void FileSystem::appendFile(const std::string &P, std::vector<uint8_t> Data,
                            CompletionCb Done) {
  uint64_t StartNs = Env.clock().nowNs();
  obs::SpanId Op = beginOp("fs.appendFile");
  obs::SpanStore::Scope Scope(Env.metrics().spans(), Op);
  auto Finish = [this, Op, StartNs,
                 Done = std::move(Done)](std::optional<ApiError> Err) {
    endOp(Op, StartNs);
    Done(std::move(Err));
  };
  open(P, "a",
       [this, Data = std::move(Data),
        Done = std::move(Finish)](ErrorOr<FdPtr> R) mutable {
         if (!R) {
           Done(R.error());
           return;
         }
         FdPtr Fd = *R;
         auto Src = std::make_shared<Buffer>(Env, std::move(Data));
         size_t Len = Src->size();
         Fd->write(*Src, 0, Len, 0,
                   [this, Fd, Src, Done](ErrorOr<size_t> WR) {
                     if (!WR) {
                       Done(WR.error());
                       return;
                     }
                     BytesWrittenC->inc(*WR);
                     Fd->close(Done);
                   });
       });
}

void FileSystem::exists(const std::string &P, ResultCb<bool> Done) {
  // Always a success value: a failed stat means "does not exist", it is
  // not an error (Node fs.exists semantics).
  stat(P, [Done = std::move(Done)](ErrorOr<Stats> R) { Done(R.ok()); });
}

void FileSystem::mkdirp(const std::string &P, CompletionCb Done) {
  std::string Path = standardize(P);
  mkdir(Path, [this, Path, Done = std::move(Done)](
                  std::optional<ApiError> Err) {
    if (!Err || Err->Code == Errno::Exists) {
      Done(std::nullopt);
      return;
    }
    if (Err->Code != Errno::NoEnt || Path == "/") {
      Done(Err);
      return;
    }
    // Parent missing: create it, then retry.
    mkdirp(path::dirname(Path),
           [this, Path, Done](std::optional<ApiError> PErr) {
             if (PErr) {
               Done(PErr);
               return;
             }
             mkdir(Path, [Done](std::optional<ApiError> Err2) {
               if (Err2 && Err2->Code == Errno::Exists) {
                 Done(std::nullopt);
                 return;
               }
               Done(Err2);
             });
           });
  });
}

void FileSystem::copyFile(const std::string &From, const std::string &To,
                          CompletionCb Done) {
  readFile(From, [this, To,
                  Done = std::move(Done)](ErrorOr<std::vector<uint8_t>> R) {
    if (!R) {
      Done(R.error());
      return;
    }
    writeFile(To, std::move(*R), Done);
  });
}

void FileSystem::move(const std::string &From, const std::string &To,
                      CompletionCb Done) {
  rename(From, To,
         [this, From, To, Done = std::move(Done)](
             std::optional<ApiError> Err) {
           if (!Err || Err->Code != Errno::CrossDev) {
             Done(Err);
             return;
           }
           // Crossing a mount: copy then delete (the "transferring files
           // to different backends" use case of §5.1).
           copyFile(From, To,
                    [this, From, Done](std::optional<ApiError> CErr) {
                      if (CErr) {
                        Done(CErr);
                        return;
                      }
                      unlink(From, Done);
                    });
         });
}
