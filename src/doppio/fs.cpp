//===- doppio/fs.cpp ------------------------------------------------------==//

#include "doppio/fs.h"

using namespace doppio;
using namespace doppio::rt;
using namespace doppio::rt::fs;

void FileSystem::open(const std::string &P, const std::string &Mode,
                      ResultCb<FdPtr> Done) {
  ++S.Operations;
  std::optional<OpenFlags> Flags = OpenFlags::parse(Mode);
  if (!Flags) {
    Done(ApiError(Errno::Invalid, "bad open mode '" + Mode + "'"));
    return;
  }
  std::string Path = standardize(P);
  touch(Path);
  Root->open(Path, *Flags, std::move(Done));
}

void FileSystem::stat(const std::string &P, ResultCb<Stats> Done) {
  ++S.Operations;
  Root->stat(standardize(P), std::move(Done));
}

void FileSystem::rename(const std::string &From, const std::string &To,
                        CompletionCb Done) {
  ++S.Operations;
  Root->rename(standardize(From), standardize(To), std::move(Done));
}

void FileSystem::unlink(const std::string &P, CompletionCb Done) {
  ++S.Operations;
  Root->unlink(standardize(P), std::move(Done));
}

void FileSystem::mkdir(const std::string &P, CompletionCb Done) {
  ++S.Operations;
  Root->mkdir(standardize(P), std::move(Done));
}

void FileSystem::rmdir(const std::string &P, CompletionCb Done) {
  ++S.Operations;
  Root->rmdir(standardize(P), std::move(Done));
}

void FileSystem::readdir(const std::string &P,
                         ResultCb<std::vector<std::string>> Done) {
  ++S.Operations;
  Root->readdir(standardize(P), std::move(Done));
}

void FileSystem::readFile(const std::string &P,
                          ResultCb<std::vector<uint8_t>> Done) {
  // Simulated over the core API: open -> stat -> read -> close.
  open(P, "r", [this, Done = std::move(Done)](ErrorOr<FdPtr> R) {
    if (!R) {
      Done(R.error());
      return;
    }
    FdPtr Fd = *R;
    Fd->stat([this, Fd, Done](ErrorOr<Stats> SR) {
      if (!SR) {
        Done(SR.error());
        return;
      }
      size_t Size = static_cast<size_t>(SR->SizeBytes);
      auto Dst = std::make_shared<Buffer>(Env, Size);
      Fd->read(*Dst, 0, Size, 0,
               [this, Fd, Dst, Size, Done](ErrorOr<size_t> RR) {
                 if (!RR) {
                   Done(RR.error());
                   return;
                 }
                 S.BytesRead += *RR;
                 std::vector<uint8_t> Out(
                     Dst->bytes().begin(),
                     Dst->bytes().begin() + std::min(*RR, Size));
                 Fd->close([Done, Out = std::move(Out)](
                               std::optional<ApiError> CE) mutable {
                   if (CE) {
                     Done(*CE);
                     return;
                   }
                   Done(std::move(Out));
                 });
               });
    });
  });
}

void FileSystem::writeFile(const std::string &P, std::vector<uint8_t> Data,
                           CompletionCb Done) {
  open(P, "w",
       [this, Data = std::move(Data),
        Done = std::move(Done)](ErrorOr<FdPtr> R) mutable {
         if (!R) {
           Done(R.error());
           return;
         }
         FdPtr Fd = *R;
         auto Src = std::make_shared<Buffer>(Env, std::move(Data));
         size_t Len = Src->size();
         Fd->write(*Src, 0, Len, 0,
                   [this, Fd, Src, Done](ErrorOr<size_t> WR) {
                     if (!WR) {
                       Done(WR.error());
                       return;
                     }
                     S.BytesWritten += *WR;
                     Fd->close(Done);
                   });
       });
}

void FileSystem::appendFile(const std::string &P, std::vector<uint8_t> Data,
                            CompletionCb Done) {
  open(P, "a",
       [this, Data = std::move(Data),
        Done = std::move(Done)](ErrorOr<FdPtr> R) mutable {
         if (!R) {
           Done(R.error());
           return;
         }
         FdPtr Fd = *R;
         auto Src = std::make_shared<Buffer>(Env, std::move(Data));
         size_t Len = Src->size();
         Fd->write(*Src, 0, Len, 0,
                   [this, Fd, Src, Done](ErrorOr<size_t> WR) {
                     if (!WR) {
                       Done(WR.error());
                       return;
                     }
                     S.BytesWritten += *WR;
                     Fd->close(Done);
                   });
       });
}

void FileSystem::exists(const std::string &P,
                        std::function<void(bool)> Done) {
  stat(P, [Done = std::move(Done)](ErrorOr<Stats> R) { Done(R.ok()); });
}

void FileSystem::mkdirp(const std::string &P, CompletionCb Done) {
  std::string Path = standardize(P);
  mkdir(Path, [this, Path, Done = std::move(Done)](
                  std::optional<ApiError> Err) {
    if (!Err || Err->Code == Errno::Exists) {
      Done(std::nullopt);
      return;
    }
    if (Err->Code != Errno::NoEnt || Path == "/") {
      Done(Err);
      return;
    }
    // Parent missing: create it, then retry.
    mkdirp(path::dirname(Path),
           [this, Path, Done](std::optional<ApiError> PErr) {
             if (PErr) {
               Done(PErr);
               return;
             }
             mkdir(Path, [Done](std::optional<ApiError> Err2) {
               if (Err2 && Err2->Code == Errno::Exists) {
                 Done(std::nullopt);
                 return;
               }
               Done(Err2);
             });
           });
  });
}

void FileSystem::copyFile(const std::string &From, const std::string &To,
                          CompletionCb Done) {
  readFile(From, [this, To,
                  Done = std::move(Done)](ErrorOr<std::vector<uint8_t>> R) {
    if (!R) {
      Done(R.error());
      return;
    }
    writeFile(To, std::move(*R), Done);
  });
}

void FileSystem::move(const std::string &From, const std::string &To,
                      CompletionCb Done) {
  rename(From, To,
         [this, From, To, Done = std::move(Done)](
             std::optional<ApiError> Err) {
           if (!Err || Err->Code != Errno::CrossDev) {
             Done(Err);
             return;
           }
           // Crossing a mount: copy then delete (the "transferring files
           // to different backends" use case of §5.1).
           copyFile(From, To,
                    [this, From, Done](std::optional<ApiError> CErr) {
                      if (CErr) {
                        Done(CErr);
                        return;
                      }
                      unlink(From, Done);
                    });
         });
}
