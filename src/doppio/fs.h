//===- doppio/fs.h - The unified fs module (§5.1) ----------------*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Doppio's emulation of the Node JS `fs` module: the unified asynchronous
/// file system API that programs (and language runtimes like DoppioJVM)
/// interact with. The frontend standardizes arguments (resolving paths
/// against the process working directory), validates flags, and simulates
/// the redundant convenience functions (readFile, writeFile, appendFile,
/// exists) in terms of the nine core backend methods — "this service
/// dramatically reduces the amount of logic that each file system needs to
/// implement" (§5.1).
///
/// Only the asynchronous interface is guaranteed: synchronous JavaScript
/// wrappers are impossible over asynchronous storage (§3.2). Guest
/// languages get their synchronous API via suspend-and-resume (§4.2); see
/// SyncFs in doppio/sync_fs.h.
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_DOPPIO_FS_H
#define DOPPIO_DOPPIO_FS_H

#include "doppio/fs_backend.h"
#include "doppio/process.h"

#include <memory>

namespace doppio {
namespace rt {
namespace fs {

/// The Node-style fs frontend over a single root backend (commonly a
/// MountableFileSystem).
class FileSystem {
public:
  FileSystem(browser::BrowserEnv &Env, Process &Proc,
             std::unique_ptr<FileSystemBackend> Root)
      : Env(Env), Proc(Proc), Root(std::move(Root)) {}

  FileSystemBackend &root() { return *Root; }
  browser::BrowserEnv &env() { return Env; }

  // Core API (paths may be relative; resolved against the process cwd).
  void open(const std::string &P, const std::string &Mode,
            ResultCb<FdPtr> Done);
  void stat(const std::string &P, ResultCb<Stats> Done);
  void rename(const std::string &From, const std::string &To,
              CompletionCb Done);
  void unlink(const std::string &P, CompletionCb Done);
  void mkdir(const std::string &P, CompletionCb Done);
  void rmdir(const std::string &P, CompletionCb Done);
  void readdir(const std::string &P,
               ResultCb<std::vector<std::string>> Done);

  // Derived convenience API, simulated over the core methods (§5.1).
  void readFile(const std::string &P, ResultCb<std::vector<uint8_t>> Done);
  void writeFile(const std::string &P, std::vector<uint8_t> Data,
                 CompletionCb Done);
  void appendFile(const std::string &P, std::vector<uint8_t> Data,
                  CompletionCb Done);
  void exists(const std::string &P, std::function<void(bool)> Done);
  /// Recursive mkdir -p.
  void mkdirp(const std::string &P, CompletionCb Done);
  /// Copy within or across backends (used for EXDEV rename fallback).
  void copyFile(const std::string &From, const std::string &To,
                CompletionCb Done);
  /// rename, falling back to copy+unlink when crossing a mount (EXDEV).
  void move(const std::string &From, const std::string &To,
            CompletionCb Done);

  /// Statistics used by the Figure 6 harness.
  struct OpStats {
    uint64_t Operations = 0;
    uint64_t BytesRead = 0;
    uint64_t BytesWritten = 0;
    uint64_t UniqueFilesTouched = 0;
  };
  const OpStats &stats() const { return S; }
  void resetStats() { S = OpStats(); Touched.clear(); }

private:
  std::string standardize(const std::string &P) const {
    return Proc.resolve(P);
  }
  void touch(const std::string &P) {
    if (Touched.insert(P).second)
      ++S.UniqueFilesTouched;
  }

  browser::BrowserEnv &Env;
  Process &Proc;
  std::unique_ptr<FileSystemBackend> Root;
  OpStats S;
  std::set<std::string> Touched;
};

} // namespace fs
} // namespace rt
} // namespace doppio

#endif // DOPPIO_DOPPIO_FS_H
