//===- doppio/fs.h - The unified fs module (§5.1) ----------------*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Doppio's emulation of the Node JS `fs` module: the unified asynchronous
/// file system API that programs (and language runtimes like DoppioJVM)
/// interact with. The frontend standardizes arguments (resolving paths
/// against the process working directory), validates flags, and simulates
/// the redundant convenience functions (readFile, writeFile, appendFile,
/// exists) in terms of the nine core backend methods — "this service
/// dramatically reduces the amount of logic that each file system needs to
/// implement" (§5.1).
///
/// Only the asynchronous interface is guaranteed: synchronous JavaScript
/// wrappers are impossible over asynchronous storage (§3.2). Guest
/// languages get their synchronous API via suspend-and-resume (§4.2); see
/// SyncFs in doppio/sync_fs.h.
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_DOPPIO_FS_H
#define DOPPIO_DOPPIO_FS_H

#include "doppio/fs_backend.h"
#include "doppio/obs/registry.h"
#include "doppio/process.h"

#include <memory>

namespace doppio {
namespace rt {
namespace fs {

/// The Node-style fs frontend over a single root backend (commonly a
/// MountableFileSystem).
class FileSystem {
public:
  FileSystem(browser::BrowserEnv &Env, Process &Proc,
             std::unique_ptr<FileSystemBackend> Root)
      : Env(Env), Proc(Proc), Root(std::move(Root)) {
    bindCells();
    installChdirValidator(Proc);
  }
  ~FileSystem() { Proc.clearChdirValidator(); }

  FileSystemBackend &root() { return *Root; }
  browser::BrowserEnv &env() { return Env; }

  /// Installs this file system as \p P's chdir validator: the target must
  /// stat (ENOENT otherwise) and be a directory (ENOTDIR otherwise). The
  /// constructor applies it to the owning Process; the process subsystem
  /// applies it to every spawned process's state record. The validator
  /// captures this FileSystem, which must outlive \p P's chdir calls.
  void installChdirValidator(Process &P);

  // Core API (paths may be relative; resolved against the process cwd).
  void open(const std::string &P, const std::string &Mode,
            ResultCb<FdPtr> Done);
  void stat(const std::string &P, ResultCb<Stats> Done);
  void rename(const std::string &From, const std::string &To,
              CompletionCb Done);
  void unlink(const std::string &P, CompletionCb Done);
  void mkdir(const std::string &P, CompletionCb Done);
  void rmdir(const std::string &P, CompletionCb Done);
  void readdir(const std::string &P,
               ResultCb<std::vector<std::string>> Done);

  // Derived convenience API, simulated over the core methods (§5.1).
  void readFile(const std::string &P, ResultCb<std::vector<uint8_t>> Done);
  void writeFile(const std::string &P, std::vector<uint8_t> Data,
                 CompletionCb Done);
  void appendFile(const std::string &P, std::vector<uint8_t> Data,
                  CompletionCb Done);
  /// Existence probe. Uses the standard ResultCb shape like every other
  /// fs completion (it used to be a bare std::function<void(bool)>); the
  /// result is always a success value — Node's fs.exists never errors,
  /// a failed stat just means false.
  void exists(const std::string &P, ResultCb<bool> Done);
  /// Recursive mkdir -p.
  void mkdirp(const std::string &P, CompletionCb Done);
  /// Copy within or across backends (used for EXDEV rename fallback).
  void copyFile(const std::string &From, const std::string &To,
                CompletionCb Done);
  /// rename, falling back to copy+unlink when crossing a mount (EXDEV).
  void move(const std::string &From, const std::string &To,
            CompletionCb Done);

  /// Statistics used by the Figure 6 harness. A registry-backed view
  /// since the obs subsystem landed: stats() assembles it from this
  /// instance's `fs.*` cells, field-for-field what the frontend used to
  /// keep privately.
  struct OpStats {
    uint64_t Operations = 0;
    uint64_t BytesRead = 0;
    uint64_t BytesWritten = 0;
    uint64_t UniqueFilesTouched = 0;
  };
  /// By-value snapshot; `const OpStats &S = Fs.stats();` callers keep
  /// working via temporary lifetime extension.
  OpStats stats() const;
  void resetStats();

private:
  std::string standardize(const std::string &P) const {
    return Proc.resolve(P);
  }
  void touch(const std::string &P) {
    if (Touched.insert(P).second)
      UniqueFilesC->inc();
  }

  /// Resolves this instance's registry cells under a claimed "fs" prefix.
  void bindCells();
  /// Mints an `fs.<op>` span, parented under whatever operation is
  /// current (a doppiod request, a suspended guest call).
  obs::SpanId beginOp(const char *Name);
  /// Closes an op span and records its latency in the fs.op_ns histogram.
  void endOp(obs::SpanId Op, uint64_t StartNs);

  browser::BrowserEnv &Env;
  Process &Proc;
  std::unique_ptr<FileSystemBackend> Root;
  obs::Counter *OpsC = nullptr;
  obs::Counter *BytesReadC = nullptr;
  obs::Counter *BytesWrittenC = nullptr;
  obs::Counter *UniqueFilesC = nullptr;
  obs::Histogram *OpNsH = nullptr;
  std::set<std::string> Touched;
};

} // namespace fs
} // namespace rt
} // namespace doppio

#endif // DOPPIO_DOPPIO_FS_H
