//===- doppio/kernel/kernel.h - Unified scheduling kernel --------*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single dispatch core under every scheduling path in the system. The
/// paper's execution environment is one mechanism viewed from four angles —
/// event segmentation (§3.1, §4.1), resumption scheduling (§4.4), green
/// threads (§4.3), and sync-over-async I/O (§4.2) — and before this kernel
/// existed each angle kept its own ad-hoc callback queue (the event loop's
/// ready deque, the Suspender's resumption registry, the AsyncBridge's
/// inline unblocks, SimNet's deliveries, doppiod's sweep timers). Browsix
/// (PAPERS.md) shows that pushing these into one shared in-browser kernel
/// is what unlocks multi-process scale; this class is that kernel.
///
/// It provides:
///
///  - **Prioritized dispatch lanes.** Ready work lives in five lanes
///    (input, I/O completion, resumption, timer, background), drained in
///    strict priority order with FIFO order inside a lane. A queued input
///    event therefore always dispatches before pending background
///    completions — a 100-client request flood can no longer starve user
///    input (the §3.1 responsiveness property, now structural).
///
///  - **An O(log n) timer heap.** Timed work is a binary min-heap keyed by
///    (due time, sequence), replacing the event loop's sorted-on-demand
///    vector. Equal due times preserve insertion order, which is what TCP
///    FIFO delivery in SimNet relies on.
///
///  - **First-class cancellation.** Timers return handles with O(1)
///    cancellation; any work item can additionally carry a CancelToken.
///    Cancelled entries are reaped on promotion and the heap is compacted
///    whenever cancelled entries outnumber live ones, so a long-lived
///    server that arms and cancels timers forever stays bounded.
///
///  - **A trace ring buffer + counters.** Every dispatch is recorded
///    (event id, lane, queue delay, run time, virtual-clock timestamps) in
///    a fixed-size ring (default: the last 4096 dispatches), with
///    aggregate per-lane counters — the data that answers *why* a
///    Figure 5/7 number moved.
///
/// The kernel is policy-free about browser semantics: the 4 ms setTimeout
/// clamp, the watchdog, and per-profile costs stay in browser::EventLoop,
/// which is now a run-to-completion facade over these lanes.
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_DOPPIO_KERNEL_KERNEL_H
#define DOPPIO_DOPPIO_KERNEL_KERNEL_H

#include "browser/virtual_clock.h"
#include "doppio/cont/continuation.h"
#include "doppio/obs/registry.h"

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

namespace doppio {
namespace kernel {

/// Dispatch lanes in strict priority order: when several lanes hold ready
/// work, the lowest-numbered lane always runs first; within a lane order
/// is FIFO (by due time, then insertion sequence, for timed work).
enum class Lane : uint8_t {
  /// User interaction; its queueing delay is the page-responsiveness
  /// metric of §3.1.
  Input = 0,
  /// Completions of browser-internal asynchronous work: XHR responses,
  /// IndexedDB transactions, SimNet/WebSocket deliveries (§4.2).
  IoCompletion = 1,
  /// Suspend-and-resume resumption callbacks and green-thread slices
  /// (§4.3, §4.4).
  Resume = 2,
  /// JavaScript-visible timers (setTimeout) and housekeeping timers such
  /// as doppiod's idle sweep.
  Timer = 3,
  /// Deferred cleanup: connection reaping, bridge teardown.
  Background = 4,
};

constexpr size_t NumLanes = 5;

const char *laneName(Lane L);

class CancelSource;

/// Observer half of a cancellation pair. Copyable; work items carrying a
/// cancelled token are skipped (never run) at dispatch time. A
/// default-constructed token never reports cancelled.
class CancelToken {
public:
  CancelToken() = default;

  bool cancelled() const { return Flag && *Flag; }
  /// True if this token is connected to a CancelSource.
  bool attached() const { return Flag != nullptr; }

private:
  friend class CancelSource;
  explicit CancelToken(std::shared_ptr<const bool> Flag)
      : Flag(std::move(Flag)) {}
  std::shared_ptr<const bool> Flag;
};

/// Owner half of a cancellation pair: hand out tokens, flip them all with
/// one cancel() call. Single-threaded, like everything over the virtual
/// clock.
class CancelSource {
public:
  CancelSource() : Flag(std::make_shared<bool>(false)) {}

  CancelToken token() const { return CancelToken(Flag); }
  void cancel() { *Flag = true; }
  bool cancelled() const { return *Flag; }
  /// Re-arms the source: outstanding tokens from before reset() stay
  /// cancelled; token() hands out fresh ones.
  void reset() { Flag = std::make_shared<bool>(false); }

private:
  std::shared_ptr<bool> Flag;
};

/// One dispatched event, as recorded in the trace ring.
struct TraceEntry {
  /// Monotonically increasing dispatch id (kernel-wide).
  uint64_t Id = 0;
  Lane L = Lane::Background;
  /// Virtual time the item became eligible to run (post time, or a
  /// timer's due time).
  uint64_t ReadyNs = 0;
  /// Virtual time dispatch started.
  uint64_t StartNs = 0;
  /// StartNs - ReadyNs: how long the item waited behind other work.
  uint64_t QueueDelayNs = 0;
  /// Virtual duration of the callback itself.
  uint64_t RunNs = 0;
};

/// Fixed-size ring of the most recent dispatches.
class TraceRing {
public:
  explicit TraceRing(size_t Capacity) : Buf(Capacity) {}

  void push(const TraceEntry &E) {
    if (Buf.empty())
      return;
    Buf[Next] = E;
    Next = (Next + 1) % Buf.size();
    ++Total;
  }

  size_t capacity() const { return Buf.size(); }
  /// Dispatches ever recorded (not bounded by capacity).
  uint64_t recorded() const { return Total; }
  /// Entries currently held.
  size_t size() const {
    return Total < Buf.size() ? static_cast<size_t>(Total) : Buf.size();
  }

  /// The retained entries, oldest first.
  std::vector<TraceEntry> snapshot() const;

private:
  std::vector<TraceEntry> Buf;
  size_t Next = 0;
  uint64_t Total = 0;
};

/// Aggregate dispatch statistics for one lane.
struct LaneCounters {
  uint64_t Posted = 0;
  uint64_t Dispatched = 0;
  /// Items skipped because their CancelToken fired before dispatch.
  uint64_t CancelledSkipped = 0;
  uint64_t TotalQueueDelayNs = 0;
  uint64_t MaxQueueDelayNs = 0;
  uint64_t TotalRunNs = 0;
  uint64_t MaxRunNs = 0;
};

/// Exported kernel counters (per lane + timer machinery). Since the obs
/// registry landed this is a *view*: counters() assembles it on demand
/// from registry cells (`kernel.lane.<lane>.*`, `kernel.timer.*`), shape
/// and values identical to when the kernel kept a private struct.
struct Counters {
  LaneCounters Lanes[NumLanes];
  uint64_t TimersScheduled = 0;
  /// Successful cancelTimer() calls.
  uint64_t TimersCancelled = 0;
  /// Cancelled heap entries discarded before firing (on promotion, top
  /// cleanup, or compaction).
  uint64_t TimersReaped = 0;
  uint64_t HeapCompactions = 0;

  uint64_t totalDispatched() const {
    uint64_t N = 0;
    for (const LaneCounters &LC : Lanes)
      N += LC.Dispatched;
    return N;
  }
};

/// The unified scheduler. Single-threaded over the virtual clock; drained
/// by a host loop (browser::EventLoop) that calls next(), runs the item,
/// and reports the dispatch back via noteDispatched().
class Kernel {
public:
  using WorkFn = std::function<void()>;

  static constexpr size_t DefaultTraceCapacity = 4096;

  /// Standalone kernel: owns a private metrics registry (tests, tools).
  explicit Kernel(browser::VirtualClock &Clock,
                  size_t TraceCapacity = DefaultTraceCapacity);

  /// Kernel over a shared registry (the event loop's): lane and timer
  /// counters become cells in \p Reg, and posted work captures the
  /// registry's current span so causal ids ride every async hop.
  Kernel(browser::VirtualClock &Clock, obs::Registry &Reg,
         size_t TraceCapacity = DefaultTraceCapacity);

  Kernel(const Kernel &) = delete;
  Kernel &operator=(const Kernel &) = delete;

  /// Enqueues \p Fn at the back of lane \p L, eligible to run now.
  /// Returns the work id (also the future trace id).
  uint64_t post(Lane L, WorkFn Fn, CancelToken Cancel = {});

  /// Enqueues a reified continuation on lane \p L (DESIGN.md §16). The
  /// registry's current span is captured like any other post, so causal
  /// ids follow the suspended computation across the hop. A continuation
  /// disarmed before dispatch (resumed elsewhere, or its owner died) is a
  /// tolerated no-op at dispatch time.
  uint64_t post(Lane L, rt::Continuation K, CancelToken Cancel = {});

  /// Schedules \p Fn on lane \p L, due \p DelayNs from now. Returns a
  /// timer handle usable with cancelTimer().
  uint64_t postAfter(Lane L, WorkFn Fn, uint64_t DelayNs,
                     CancelToken Cancel = {});

  /// Cancels a pending timer in O(1). Returns false (a no-op) for
  /// already-fired, already-cancelled, or unknown handles.
  bool cancelTimer(uint64_t Handle);

  /// A dispatched unit of work, handed to the host loop.
  struct Work {
    WorkFn Fn;
    Lane L = Lane::Background;
    uint64_t Id = 0;
    /// When the item became eligible (for queue-delay accounting).
    uint64_t ReadyNs = 0;
    /// The span current when the item was posted (0 for none). The host
    /// loop restores it around the dispatch so the causal id follows the
    /// operation across the hop.
    obs::SpanId Span = 0;
  };

  /// Promotes due timers, then pops the highest-priority ready item,
  /// skipping cancelled work. If every lane is empty but live timers
  /// remain, advances the virtual clock over the idle gap to the next due
  /// time. Returns nullopt when no runnable work remains.
  ///
  /// With \p HorizonNs set, the idle-gap advance is bounded: the clock is
  /// never jumped past the horizon, and nullopt is returned instead when
  /// the earliest timer lies beyond it. Already-queued lane work still
  /// runs even if the clock has charged past the horizon — the bound
  /// gates clock *jumps*, not execution. This is what lets a cluster
  /// driver interleave several kernels (one per tab) without any tab
  /// skipping over traffic still in flight from another tab
  /// (doppio/cluster/driver.h).
  std::optional<Work> next(std::optional<uint64_t> HorizonNs = std::nullopt);

  /// Virtual time of the earliest runnable work: now if any lane holds an
  /// item, else the earliest live timer's due time, else nullopt (fully
  /// idle). Reaps cancelled heap tops as a side effect, hence non-const.
  /// The cluster lockstep driver uses this to pick its global horizon.
  std::optional<uint64_t> nextEligibleNs();

  /// Records trace + counters for a dispatch performed by the host loop.
  void noteDispatched(const Work &W, uint64_t StartNs, uint64_t EndNs);

  /// True when no queued work and no live timers remain.
  bool idle() const;

  /// Live (non-cancelled) timers in the heap.
  size_t pendingTimers() const { return HeapSize() - CancelledInHeap; }
  /// Cancelled entries still occupying heap slots (bounded: reaped on
  /// promotion and compacted when they outnumber live entries).
  size_t cancelledTimers() const { return CancelledInHeap; }
  /// Items currently queued across all lanes (including not-yet-skipped
  /// cancelled items).
  size_t queuedWork() const;

  /// Snapshot of the kernel counters, assembled from registry cells.
  /// Shape-compatible with the former by-reference accessor: callers that
  /// bound `const Counters &C = K.counters();` keep working via temporary
  /// lifetime extension.
  Counters counters() const;
  const TraceRing &trace() const { return Trace; }

  /// The metrics registry this kernel reports into (owned or shared).
  obs::Registry &metrics() { return Reg; }
  const obs::Registry &metrics() const { return Reg; }

private:
  struct ReadyItem {
    WorkFn Fn;
    uint64_t Id = 0;
    uint64_t ReadyNs = 0;
    CancelToken Cancel;
    obs::SpanId Span = 0;
  };

  struct TimerRec {
    uint64_t DueNs = 0;
    uint64_t Seq = 0;
    uint64_t Handle = 0;
    Lane L = Lane::Timer;
    WorkFn Fn;
    CancelToken Cancel;
    bool Cancelled = false;
    obs::SpanId Span = 0;
  };

  /// Per-lane registry cells, resolved once at construction so the hot
  /// path stays a pointer increment.
  struct LaneCells {
    obs::Counter *Posted = nullptr;
    obs::Counter *Dispatched = nullptr;
    obs::Counter *CancelledSkipped = nullptr;
    obs::Counter *QueueDelayNsTotal = nullptr;
    obs::Counter *RunNsTotal = nullptr;
    obs::Gauge *QueueDelayNsMax = nullptr;
    obs::Gauge *RunNsMax = nullptr;
  };

  /// Resolves every lane/timer cell in the registry under a claimed
  /// "kernel" prefix.
  void bindCells();

  size_t HeapSize() const { return Heap.size(); }
  /// Min-heap ordering: earliest (DueNs, Seq) at the top.
  static bool heapLater(const std::unique_ptr<TimerRec> &A,
                        const std::unique_ptr<TimerRec> &B);
  void heapPush(std::unique_ptr<TimerRec> Rec);
  std::unique_ptr<TimerRec> heapPop();
  /// Discards cancelled records sitting at the top of the heap.
  void dropCancelledTop();
  /// Moves every timer due at or before now into its lane, reaping
  /// cancelled entries it passes over.
  void promoteDue();
  /// Rebuilds the heap without cancelled entries once they outnumber live
  /// ones (keeps a cancel-heavy server's heap bounded).
  void compactIfNeeded();

  browser::VirtualClock &Clock;
  /// Set only by the standalone constructor; Reg aliases it then.
  std::unique_ptr<obs::Registry> OwnedReg;
  obs::Registry &Reg;
  std::deque<ReadyItem> Lanes[NumLanes];
  std::vector<std::unique_ptr<TimerRec>> Heap;
  std::unordered_map<uint64_t, TimerRec *> LiveTimers;
  size_t CancelledInHeap = 0;
  uint64_t NextSeq = 0;
  uint64_t NextHandle = 1;
  uint64_t NextWorkId = 1;
  LaneCells Cells[NumLanes];
  obs::Counter *TimersScheduledC = nullptr;
  obs::Counter *TimersCancelledC = nullptr;
  obs::Counter *TimersReapedC = nullptr;
  obs::Counter *HeapCompactionsC = nullptr;
  TraceRing Trace;
};

} // namespace kernel
} // namespace doppio

#endif // DOPPIO_DOPPIO_KERNEL_KERNEL_H
