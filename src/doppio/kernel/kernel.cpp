//===- doppio/kernel/kernel.cpp - Unified scheduling kernel ---------------==//

#include "doppio/kernel/kernel.h"

#include <algorithm>
#include <cassert>

using namespace doppio;
using namespace doppio::kernel;

const char *doppio::kernel::laneName(Lane L) {
  switch (L) {
  case Lane::Input:
    return "input";
  case Lane::IoCompletion:
    return "io";
  case Lane::Resume:
    return "resume";
  case Lane::Timer:
    return "timer";
  case Lane::Background:
    return "background";
  }
  return "?";
}

std::vector<TraceEntry> TraceRing::snapshot() const {
  std::vector<TraceEntry> Out;
  size_t N = size();
  Out.reserve(N);
  size_t Start = Total < Buf.size() ? 0 : Next;
  for (size_t I = 0; I < N; ++I)
    Out.push_back(Buf[(Start + I) % Buf.size()]);
  return Out;
}

uint64_t Kernel::post(Lane L, WorkFn Fn, CancelToken Cancel) {
  assert(Fn && "posting empty work");
  size_t Idx = static_cast<size_t>(L);
  uint64_t Id = NextWorkId++;
  Lanes[Idx].push_back(
      {std::move(Fn), Id, Clock.nowNs(), std::move(Cancel)});
  ++C.Lanes[Idx].Posted;
  return Id;
}

uint64_t Kernel::postAfter(Lane L, WorkFn Fn, uint64_t DelayNs,
                           CancelToken Cancel) {
  assert(Fn && "scheduling empty work");
  auto Rec = std::make_unique<TimerRec>();
  Rec->DueNs = Clock.nowNs() + DelayNs;
  Rec->Seq = NextSeq++;
  Rec->Handle = NextHandle++;
  Rec->L = L;
  Rec->Fn = std::move(Fn);
  Rec->Cancel = std::move(Cancel);
  uint64_t Handle = Rec->Handle;
  LiveTimers.emplace(Handle, Rec.get());
  heapPush(std::move(Rec));
  ++C.TimersScheduled;
  ++C.Lanes[static_cast<size_t>(L)].Posted;
  return Handle;
}

bool Kernel::cancelTimer(uint64_t Handle) {
  auto It = LiveTimers.find(Handle);
  if (It == LiveTimers.end())
    return false;
  It->second->Cancelled = true;
  It->second->Fn = nullptr; // Drop captured state eagerly.
  LiveTimers.erase(It);
  ++CancelledInHeap;
  ++C.TimersCancelled;
  compactIfNeeded();
  return true;
}

bool Kernel::heapLater(const std::unique_ptr<TimerRec> &A,
                       const std::unique_ptr<TimerRec> &B) {
  // std::push_heap builds a max-heap; invert so the earliest (DueNs, Seq)
  // surfaces at Heap.front().
  if (A->DueNs != B->DueNs)
    return A->DueNs > B->DueNs;
  return A->Seq > B->Seq;
}

void Kernel::heapPush(std::unique_ptr<TimerRec> Rec) {
  Heap.push_back(std::move(Rec));
  std::push_heap(Heap.begin(), Heap.end(), heapLater);
}

std::unique_ptr<Kernel::TimerRec> Kernel::heapPop() {
  std::pop_heap(Heap.begin(), Heap.end(), heapLater);
  std::unique_ptr<TimerRec> Rec = std::move(Heap.back());
  Heap.pop_back();
  return Rec;
}

void Kernel::dropCancelledTop() {
  while (!Heap.empty() && Heap.front()->Cancelled) {
    heapPop();
    --CancelledInHeap;
    ++C.TimersReaped;
  }
}

void Kernel::promoteDue() {
  uint64_t NowNs = Clock.nowNs();
  for (;;) {
    dropCancelledTop();
    if (Heap.empty() || Heap.front()->DueNs > NowNs)
      break;
    std::unique_ptr<TimerRec> Rec = heapPop();
    LiveTimers.erase(Rec->Handle);
    // A promoted timer's ReadyNs is its due time, not the promotion
    // moment: queue-delay accounting should charge the wait behind other
    // work, and input-latency tracking in the facade depends on it.
    Lanes[static_cast<size_t>(Rec->L)].push_back({std::move(Rec->Fn),
                                                  NextWorkId++, Rec->DueNs,
                                                  std::move(Rec->Cancel)});
  }
}

void Kernel::compactIfNeeded() {
  // Lazy deletion keeps cancelTimer O(1), but a server that arms and
  // cancels an idle-sweep timer per connection forever would grow the
  // heap without bound. Rebuild once cancelled entries dominate.
  if (Heap.size() < 64 || CancelledInHeap * 2 <= Heap.size())
    return;
  C.TimersReaped += CancelledInHeap;
  ++C.HeapCompactions;
  std::erase_if(Heap, [](const std::unique_ptr<TimerRec> &Rec) {
    return Rec->Cancelled;
  });
  std::make_heap(Heap.begin(), Heap.end(), heapLater);
  CancelledInHeap = 0;
}

std::optional<Kernel::Work> Kernel::next() {
  for (;;) {
    promoteDue();
    bool Popped = false;
    for (size_t Idx = 0; Idx < NumLanes; ++Idx) {
      std::deque<ReadyItem> &Q = Lanes[Idx];
      if (Q.empty())
        continue;
      ReadyItem Item = std::move(Q.front());
      Q.pop_front();
      Popped = true;
      if (Item.Cancel.cancelled()) {
        ++C.Lanes[Idx].CancelledSkipped;
        break; // Re-promote and re-scan from the top lane.
      }
      return Work{std::move(Item.Fn), static_cast<Lane>(Idx), Item.Id,
                  Item.ReadyNs};
    }
    if (Popped)
      continue;
    // Every lane empty. If live timers remain, the system is idle until
    // the earliest due time: advance the virtual clock over the gap.
    dropCancelledTop();
    if (Heap.empty())
      return std::nullopt;
    Clock.advanceTo(Heap.front()->DueNs);
  }
}

void Kernel::noteDispatched(const Work &W, uint64_t StartNs,
                            uint64_t EndNs) {
  assert(EndNs >= StartNs);
  uint64_t QueueDelayNs = StartNs > W.ReadyNs ? StartNs - W.ReadyNs : 0;
  uint64_t RunNs = EndNs - StartNs;
  LaneCounters &LC = C.Lanes[static_cast<size_t>(W.L)];
  ++LC.Dispatched;
  LC.TotalQueueDelayNs += QueueDelayNs;
  LC.MaxQueueDelayNs = std::max(LC.MaxQueueDelayNs, QueueDelayNs);
  LC.TotalRunNs += RunNs;
  LC.MaxRunNs = std::max(LC.MaxRunNs, RunNs);
  Trace.push({W.Id, W.L, W.ReadyNs, StartNs, QueueDelayNs, RunNs});
}

bool Kernel::idle() const {
  return queuedWork() == 0 && pendingTimers() == 0;
}

size_t Kernel::queuedWork() const {
  size_t N = 0;
  for (const std::deque<ReadyItem> &Q : Lanes)
    N += Q.size();
  return N;
}
