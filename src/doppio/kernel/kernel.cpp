//===- doppio/kernel/kernel.cpp - Unified scheduling kernel ---------------==//

#include "doppio/kernel/kernel.h"

#include <algorithm>
#include <cassert>

using namespace doppio;
using namespace doppio::kernel;

const char *doppio::kernel::laneName(Lane L) {
  switch (L) {
  case Lane::Input:
    return "input";
  case Lane::IoCompletion:
    return "io";
  case Lane::Resume:
    return "resume";
  case Lane::Timer:
    return "timer";
  case Lane::Background:
    return "background";
  }
  return "?";
}

Kernel::Kernel(browser::VirtualClock &Clock, size_t TraceCapacity)
    : Clock(Clock), OwnedReg(std::make_unique<obs::Registry>(Clock)),
      Reg(*OwnedReg), Trace(TraceCapacity) {
  bindCells();
}

Kernel::Kernel(browser::VirtualClock &Clock, obs::Registry &Reg,
               size_t TraceCapacity)
    : Clock(Clock), Reg(Reg), Trace(TraceCapacity) {
  bindCells();
}

void Kernel::bindCells() {
  // claimPrefix so a second kernel on a shared registry (not a
  // configuration the tree builds today, but claimPrefix makes it safe)
  // gets "kernel2.*" cells instead of corrupting the first one's.
  std::string P = Reg.claimPrefix("kernel");
  for (size_t I = 0; I < NumLanes; ++I) {
    std::string Base = P + ".lane." + laneName(static_cast<Lane>(I)) + ".";
    LaneCells &LC = Cells[I];
    LC.Posted = &Reg.counter(Base + "posted");
    LC.Dispatched = &Reg.counter(Base + "dispatched");
    LC.CancelledSkipped = &Reg.counter(Base + "cancelled_skipped");
    LC.QueueDelayNsTotal = &Reg.counter(Base + "queue_delay_ns_total");
    LC.RunNsTotal = &Reg.counter(Base + "run_ns_total");
    LC.QueueDelayNsMax = &Reg.gauge(Base + "queue_delay_ns_max");
    LC.RunNsMax = &Reg.gauge(Base + "run_ns_max");
  }
  TimersScheduledC = &Reg.counter(P + ".timer.scheduled");
  TimersCancelledC = &Reg.counter(P + ".timer.cancelled");
  TimersReapedC = &Reg.counter(P + ".timer.reaped");
  HeapCompactionsC = &Reg.counter(P + ".timer.heap_compactions");
}

Counters Kernel::counters() const {
  Counters Out;
  for (size_t I = 0; I < NumLanes; ++I) {
    const LaneCells &LC = Cells[I];
    LaneCounters &O = Out.Lanes[I];
    O.Posted = LC.Posted->value();
    O.Dispatched = LC.Dispatched->value();
    O.CancelledSkipped = LC.CancelledSkipped->value();
    O.TotalQueueDelayNs = LC.QueueDelayNsTotal->value();
    O.MaxQueueDelayNs = static_cast<uint64_t>(LC.QueueDelayNsMax->value());
    O.TotalRunNs = LC.RunNsTotal->value();
    O.MaxRunNs = static_cast<uint64_t>(LC.RunNsMax->value());
  }
  Out.TimersScheduled = TimersScheduledC->value();
  Out.TimersCancelled = TimersCancelledC->value();
  Out.TimersReaped = TimersReapedC->value();
  Out.HeapCompactions = HeapCompactionsC->value();
  return Out;
}

std::vector<TraceEntry> TraceRing::snapshot() const {
  std::vector<TraceEntry> Out;
  size_t N = size();
  Out.reserve(N);
  size_t Start = Total < Buf.size() ? 0 : Next;
  for (size_t I = 0; I < N; ++I)
    Out.push_back(Buf[(Start + I) % Buf.size()]);
  return Out;
}

uint64_t Kernel::post(Lane L, WorkFn Fn, CancelToken Cancel) {
  assert(Fn && "posting empty work");
  size_t Idx = static_cast<size_t>(L);
  uint64_t Id = NextWorkId++;
  Lanes[Idx].push_back({std::move(Fn), Id, Clock.nowNs(), std::move(Cancel),
                        Reg.spans().current()});
  Cells[Idx].Posted->inc();
  return Id;
}

uint64_t Kernel::post(Lane L, rt::Continuation K, CancelToken Cancel) {
  // WorkFn is a copyable std::function; the move-only continuation rides
  // in a shared_ptr. One-shot enforcement lives in the continuation, so
  // even a pathological double-dispatch is accounted, not undefined.
  auto Held = std::make_shared<rt::Continuation>(std::move(K));
  return post(
      L,
      [Held] {
        if (Held->armed())
          Held->resume();
      },
      std::move(Cancel));
}

uint64_t Kernel::postAfter(Lane L, WorkFn Fn, uint64_t DelayNs,
                           CancelToken Cancel) {
  assert(Fn && "scheduling empty work");
  auto Rec = std::make_unique<TimerRec>();
  Rec->DueNs = Clock.nowNs() + DelayNs;
  Rec->Seq = NextSeq++;
  Rec->Handle = NextHandle++;
  Rec->L = L;
  Rec->Fn = std::move(Fn);
  Rec->Cancel = std::move(Cancel);
  Rec->Span = Reg.spans().current();
  uint64_t Handle = Rec->Handle;
  LiveTimers.emplace(Handle, Rec.get());
  heapPush(std::move(Rec));
  TimersScheduledC->inc();
  Cells[static_cast<size_t>(L)].Posted->inc();
  return Handle;
}

bool Kernel::cancelTimer(uint64_t Handle) {
  auto It = LiveTimers.find(Handle);
  if (It == LiveTimers.end())
    return false;
  It->second->Cancelled = true;
  It->second->Fn = nullptr; // Drop captured state eagerly.
  LiveTimers.erase(It);
  ++CancelledInHeap;
  TimersCancelledC->inc();
  compactIfNeeded();
  return true;
}

bool Kernel::heapLater(const std::unique_ptr<TimerRec> &A,
                       const std::unique_ptr<TimerRec> &B) {
  // std::push_heap builds a max-heap; invert so the earliest (DueNs, Seq)
  // surfaces at Heap.front().
  if (A->DueNs != B->DueNs)
    return A->DueNs > B->DueNs;
  return A->Seq > B->Seq;
}

void Kernel::heapPush(std::unique_ptr<TimerRec> Rec) {
  Heap.push_back(std::move(Rec));
  std::push_heap(Heap.begin(), Heap.end(), heapLater);
}

std::unique_ptr<Kernel::TimerRec> Kernel::heapPop() {
  std::pop_heap(Heap.begin(), Heap.end(), heapLater);
  std::unique_ptr<TimerRec> Rec = std::move(Heap.back());
  Heap.pop_back();
  return Rec;
}

void Kernel::dropCancelledTop() {
  while (!Heap.empty() && Heap.front()->Cancelled) {
    heapPop();
    --CancelledInHeap;
    TimersReapedC->inc();
  }
}

void Kernel::promoteDue() {
  uint64_t NowNs = Clock.nowNs();
  for (;;) {
    dropCancelledTop();
    if (Heap.empty() || Heap.front()->DueNs > NowNs)
      break;
    std::unique_ptr<TimerRec> Rec = heapPop();
    LiveTimers.erase(Rec->Handle);
    // A promoted timer's ReadyNs is its due time, not the promotion
    // moment: queue-delay accounting should charge the wait behind other
    // work, and input-latency tracking in the facade depends on it.
    Lanes[static_cast<size_t>(Rec->L)].push_back(
        {std::move(Rec->Fn), NextWorkId++, Rec->DueNs, std::move(Rec->Cancel),
         Rec->Span});
  }
}

void Kernel::compactIfNeeded() {
  // Lazy deletion keeps cancelTimer O(1), but a server that arms and
  // cancels an idle-sweep timer per connection forever would grow the
  // heap without bound. Rebuild once cancelled entries dominate.
  if (Heap.size() < 64 || CancelledInHeap * 2 <= Heap.size())
    return;
  TimersReapedC->inc(CancelledInHeap);
  HeapCompactionsC->inc();
  std::erase_if(Heap, [](const std::unique_ptr<TimerRec> &Rec) {
    return Rec->Cancelled;
  });
  std::make_heap(Heap.begin(), Heap.end(), heapLater);
  CancelledInHeap = 0;
}

std::optional<Kernel::Work> Kernel::next(std::optional<uint64_t> HorizonNs) {
  for (;;) {
    promoteDue();
    bool Popped = false;
    for (size_t Idx = 0; Idx < NumLanes; ++Idx) {
      std::deque<ReadyItem> &Q = Lanes[Idx];
      if (Q.empty())
        continue;
      ReadyItem Item = std::move(Q.front());
      Q.pop_front();
      Popped = true;
      if (Item.Cancel.cancelled()) {
        Cells[Idx].CancelledSkipped->inc();
        break; // Re-promote and re-scan from the top lane.
      }
      return Work{std::move(Item.Fn), static_cast<Lane>(Idx), Item.Id,
                  Item.ReadyNs, Item.Span};
    }
    if (Popped)
      continue;
    // Every lane empty. If live timers remain, the system is idle until
    // the earliest due time: advance the virtual clock over the gap —
    // unless a horizon forbids jumping that far (lockstep cluster
    // driving: traffic from another tab may still be due earlier).
    dropCancelledTop();
    if (Heap.empty())
      return std::nullopt;
    if (HorizonNs && Heap.front()->DueNs > *HorizonNs)
      return std::nullopt;
    Clock.advanceTo(Heap.front()->DueNs);
  }
}

std::optional<uint64_t> Kernel::nextEligibleNs() {
  // Queued lane work (even token-cancelled items: popping them is still a
  // dispatch step) is eligible immediately.
  for (const std::deque<ReadyItem> &Q : Lanes)
    if (!Q.empty())
      return Clock.nowNs();
  dropCancelledTop();
  if (Heap.empty())
    return std::nullopt;
  return Heap.front()->DueNs;
}

void Kernel::noteDispatched(const Work &W, uint64_t StartNs,
                            uint64_t EndNs) {
  assert(EndNs >= StartNs);
  uint64_t QueueDelayNs = StartNs > W.ReadyNs ? StartNs - W.ReadyNs : 0;
  uint64_t RunNs = EndNs - StartNs;
  const LaneCells &LC = Cells[static_cast<size_t>(W.L)];
  LC.Dispatched->inc();
  LC.QueueDelayNsTotal->inc(QueueDelayNs);
  LC.QueueDelayNsMax->noteMax(static_cast<int64_t>(QueueDelayNs));
  LC.RunNsTotal->inc(RunNs);
  LC.RunNsMax->noteMax(static_cast<int64_t>(RunNs));
  Trace.push({W.Id, W.L, W.ReadyNs, StartNs, QueueDelayNs, RunNs});
}

bool Kernel::idle() const {
  return queuedWork() == 0 && pendingTimers() == 0;
}

size_t Kernel::queuedWork() const {
  size_t N = 0;
  for (const std::deque<ReadyItem> &Q : Lanes)
    N += Q.size();
  return N;
}
