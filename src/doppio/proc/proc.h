//===- doppio/proc/proc.h - Processes, signals, spawn/wait -------*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md (Processes & pipes) and
// DESIGN.md §14.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The process subsystem: Unix-style multi-program composition over the
/// paper's per-tab OS services (cf. Browsix, PAPERS.md). A ProcessTable
/// tracks pids, parent/child links, exit codes, and zombies; each
/// proc::Process is a green-thread-backed execution context that owns
///
///  - its rt::Process state record (cwd + stdio capture, absorbed here as
///    the per-process state),
///  - a per-process file-descriptor table routed through fs::FileSystem,
///    with fds 0/1/2 bound to stdin/stdout/stderr,
///  - a Program: the guest it runs. JVM programs run their green threads
///    on the JVM's thread pool; native programs are kernel-scheduled
///    continuation chains (the degenerate single-continuation green
///    thread).
///
/// spawn() launches a program in a fresh process; exec() replaces a live
/// process's program keeping its pid and fd table; waitpid() parks until a
/// child exits and reaps it. Signals (kill, SIGCHLD on child exit, SIGPIPE
/// on broken pipe) are queued and delivered as their own kernel dispatches
/// on the Resume lane — i.e. at dispatch boundaries, never reentrantly in
/// the middle of guest code. Children of a dead (or never-waiting init)
/// parent are reaped automatically, so a drained table holds no zombies.
///
/// Observability: the table claims a "proc" registry prefix for aggregate
/// cells (spawned/exited/reaped/zombies, pipe bytes and suspends, signals)
/// and every process claims a per-process prefix ("proc.p<pid>") for its
/// bytes_in/bytes_out/alive cells; a "proc.spawn.<name>" span covers each
/// process spawn→exit.
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_DOPPIO_PROC_PROC_H
#define DOPPIO_DOPPIO_PROC_PROC_H

#include "doppio/fs.h"
#include "doppio/proc/fd_table.h"
#include "doppio/proc/pipe.h"

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace doppio {
namespace rt {
namespace proc {

using Pid = int32_t;

/// The signal subset the subsystem delivers.
enum class Signal {
  Int = 2,   // SIGINT
  Kill = 9,  // SIGKILL
  Pipe = 13, // SIGPIPE (broken pipe)
  Term = 15, // SIGTERM
  Chld = 17, // SIGCHLD (child exited)
};

/// "SIGTERM" for Signal::Term, etc.
const char *signalName(Signal S);

class Process;
class ProcessTable;

/// A guest program. start() runs inside the fresh process and must
/// eventually call Process::exit (directly for native programs, from the
/// JVM's main-done callback for JVM programs). Destroyed only when the
/// table is: a program's asynchronous tail (e.g. a JVM thread pool) may
/// outlive its process record's liveness.
class Program {
public:
  virtual ~Program();
  virtual void start(Process &P) = 0;
  virtual std::string name() const { return "program"; }

  // Checkpoint support (DESIGN.md §16). A checkpointable program reports
  // canCheckpoint() true when quiescent, names its image kind — the key a
  // CheckpointRegistry restore factory is bound under — and serializes
  // its entire guest state. The default is "no" (native programs hold
  // their progress in host closures).
  virtual bool canCheckpoint(std::string *WhyNot = nullptr) {
    if (WhyNot)
      *WhyNot = "program does not support checkpointing";
    return false;
  }
  virtual std::string checkpointKind() const { return ""; }
  virtual ErrorOr<std::vector<uint8_t>> checkpoint() {
    return ApiError(Errno::NotSup, "checkpoint");
  }
};

/// Result of waitpid: which child, how it ended.
struct WaitResult {
  Pid P = 0;
  int ExitCode = 0;
  bool Signaled = false;
  Signal Sig = Signal::Term;
};

/// One process: pid, parentage, state record, fd table, program.
class Process {
public:
  Pid pid() const { return Id; }
  Pid ppid() const { return Parent; }
  const std::string &name() const { return Name; }

  /// The absorbed rt::Process record: cwd, stdio capture, §6.8 hooks.
  rt::Process &state() { return State; }
  FdTable &fds() { return Fds; }
  /// The running program image; null for a bare context.
  Program *program() { return Prog.get(); }

  bool alive() const { return Alive; }
  bool zombie() const { return !Alive && !Reaped; }
  int exitCode() const { return Code; }
  bool signaled() const { return Signaled; }
  Signal terminationSignal() const { return TermSig; }

  /// Normal termination: records the code, closes every fd (EOF/EPIPE
  /// propagation into pipes), ends the spawn span, turns the process into
  /// a zombie and notifies the parent (SIGCHLD + parked waiters).
  void exit(int ExitCode);

  /// An exit bound to the current program image: programs capture this at
  /// start, so after an exec() the replaced image's pending exit is
  /// ignored instead of tearing down the new one.
  std::function<void(int)> makeExitFn() {
    uint64_t Gen = ExecGeneration;
    return [this, Gen](int Code) {
      if (Gen == ExecGeneration)
        exit(Code);
    };
  }

  /// Installs a handler for \p S, overriding the default disposition
  /// (terminate for INT/KILL/TERM/PIPE — KILL's handler is still never
  /// invoked — ignore for CHLD). Handlers run at dispatch boundaries.
  void onSignal(Signal S, std::function<void(Signal)> Handler);

  browser::BrowserEnv &env() { return Env; }
  ProcessTable &table() { return Table; }

  /// Reads one '\n'-terminated line from fd 0 (buffering partial chunks),
  /// delivering nullopt at EOF. This is what the JVM's System.in hook
  /// drains (jcl.cpp's doppio/Stdin.readLine).
  void readLine(std::function<void(std::optional<std::string>)> Deliver);

private:
  friend class ProcessTable;
  Process(ProcessTable &Table, browser::BrowserEnv &Env, Pid Id, Pid Parent,
          std::string Name);

  /// Termination by signal: exit code 128+signo, Signaled set.
  void terminateBySignal(Signal S);
  void finish(int ExitCode, bool BySignal, Signal S);
  /// Routes the rt::Process stdio hooks through the fd table.
  void installStdioHooks();

  ProcessTable &Table;
  browser::BrowserEnv &Env;
  Pid Id;
  Pid Parent;
  std::string Name;
  rt::Process State;
  FdTable Fds;
  bool Alive = true;
  bool Reaped = false;
  int Code = 0;
  bool Signaled = false;
  Signal TermSig = Signal::Term;
  std::string StdinBuf;
  std::map<Signal, std::function<void(Signal)>> Handlers;
  obs::SpanId SpawnSpan = 0;
  obs::Counter *BytesInC = nullptr;
  obs::Counter *BytesOutC = nullptr;
  obs::Gauge *AliveG = nullptr;
  /// The program is declared after everything it references and moved to
  /// the table's graveyard on reap, so its asynchronous tail never
  /// touches freed process state.
  std::unique_ptr<Program> Prog;
  /// Bumped by exec(): a stale program's exit is ignored.
  uint64_t ExecGeneration = 0;
};

/// The table: owns every process record (for the table's whole lifetime —
/// records move to a graveyard on reap, because in-flight completions and
/// JVM thread pools hold references), allocates pids, delivers signals,
/// and reaps zombies. Must outlive the event-loop run that drives its
/// processes.
class ProcessTable {
public:
  static constexpr size_t DefaultPipeCapacity = Pipe::DefaultCapacity;

  /// \p Fs is the shared (kernel) file system fd tables route through.
  ProcessTable(browser::BrowserEnv &Env, fs::FileSystem &Fs);

  ProcessTable(const ProcessTable &) = delete;
  ProcessTable &operator=(const ProcessTable &) = delete;

  struct SpawnSpec {
    std::string Name = "proc";
    /// Parent pid; defaults to init (pid 1), whose children are
    /// auto-reaped unless a waiter is parked.
    Pid Parent = 1;
    std::unique_ptr<Program> Prog; // May be null: a bare context.
    /// Initial cwd; empty inherits the parent's.
    std::string Cwd;
    /// Fd overrides applied over the stdio defaults (0/1/2), e.g. pipe
    /// ends. Applied before the program starts.
    std::vector<std::pair<int, std::shared_ptr<OpenFile>>> Fds;
  };

  /// Creates the process and posts its program's start on the kernel.
  Pid spawn(SpawnSpec Spec);

  /// Replaces \p P's program, keeping pid, fd table, and cwd. The old
  /// program's pending exit (if any) is ignored. False if \p P is not a
  /// live process.
  bool exec(Pid P, std::unique_ptr<Program> Prog);

  /// Queues \p S for delivery to \p P at the next dispatch boundary.
  /// False (ESRCH) if no such live process.
  bool kill(Pid P, Signal S);

  /// Delivers \p S immediately instead of queueing. Only safe from a
  /// dispatch boundary, never from inside guest code. Migration needs
  /// this (DESIGN.md §16): after checkpointProcess the blob IS the
  /// process, so not even one already-queued slice may run locally —
  /// kill()'s deferred delivery would let the local copy outrun its own
  /// checkpoint before dying, and the destination would replay the
  /// overlap.
  bool killNow(Pid P, Signal S);

  /// Waits for child \p Target of \p Waiter (-1: any child) to exit, then
  /// reaps it. Completes immediately for an existing zombie; ECHILD when
  /// \p Waiter has no matching children.
  void waitpid(Pid Waiter, Pid Target, fs::ResultCb<WaitResult> Done);

  /// Spawns a pipeline: stage i's fd 1 is piped to stage i+1's fd 0 (any
  /// explicit fd overrides in the specs are applied on top). Returns the
  /// pids in stage order.
  std::vector<Pid> spawnPipeline(std::vector<SpawnSpec> Stages,
                                 size_t PipeCapacity = DefaultPipeCapacity);

  /// A fresh pipe wired to this table's counters.
  std::shared_ptr<Pipe> makePipe(size_t Capacity = DefaultPipeCapacity);

  /// Live or zombie lookup; nullptr for unknown/reaped pids. The record
  /// (and its captured stdio) stays valid for the table's lifetime even
  /// after reaping.
  Process *find(Pid P);

  fs::FileSystem &fs() { return Fs; }
  browser::BrowserEnv &env() { return Env; }
  const std::string &metricPrefix() const { return Prefix; }

  // Registry-backed aggregate views (bench/fig7, tests).
  uint64_t spawned() const { return SpawnedC->value(); }
  uint64_t exited() const { return ExitedC->value(); }
  uint64_t reaped() const { return ReapedC->value(); }
  uint64_t zombies() const { return static_cast<uint64_t>(ZombiesG->value()); }
  uint64_t signalsDelivered() const { return SignalsC->value(); }
  uint64_t pipeBytes() const { return PipeBytesC->value(); }
  uint64_t pipeWriterSuspends() const { return PipeWriterSuspendsC->value(); }
  uint64_t pipeReaderSuspends() const { return PipeReaderSuspendsC->value(); }

private:
  friend class Process;

  /// A parked waitpid: the waiting computation is held as a reified
  /// continuation (DESIGN.md §16) until a matching child exits.
  struct Waiter {
    Pid WaiterPid;
    Pid Target;
    ContinuationOf<ErrorOr<WaitResult>> Done;
  };

  Process *spawnRecord(SpawnSpec &Spec);
  void deliverSignal(Process &P, Signal S);
  /// Zombie bookkeeping after an exit: satisfy a parked waiter, or
  /// auto-reap when nobody will ever wait (dead parent or init).
  void noteExit(Process &P);
  void reap(Process &Zombie, Waiter *W);
  WaitResult resultFor(const Process &P) const;

  browser::BrowserEnv &Env;
  fs::FileSystem &Fs;
  std::string Prefix;
  Pid NextPid = 1;
  std::map<Pid, std::unique_ptr<Process>> Table;
  /// Reaped records parked until table destruction (see class comment).
  std::vector<std::unique_ptr<Process>> Graveyard;
  /// Programs replaced by exec(), parked for the same lifetime reason.
  std::vector<std::unique_ptr<Program>> RetiredPrograms;
  std::vector<Waiter> Waiters;
  obs::Counter *SpawnedC = nullptr;
  obs::Counter *ExitedC = nullptr;
  obs::Counter *ReapedC = nullptr;
  obs::Gauge *ZombiesG = nullptr;
  obs::Counter *SignalsC = nullptr;
  obs::Counter *PipeBytesC = nullptr;
  obs::Counter *PipeWriterSuspendsC = nullptr;
  obs::Counter *PipeReaderSuspendsC = nullptr;
  cont::Cells ContCells;
};

} // namespace proc
} // namespace rt
} // namespace doppio

#endif // DOPPIO_DOPPIO_PROC_PROC_H
