//===- doppio/proc/fd_table.h - Per-process file descriptors -----*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-process file-descriptor table: small integers mapping to shared
/// open-file descriptions, Unix-style. open() routes through the
/// fs::FileSystem frontend (§5.1) and installs the resulting object
/// descriptor at the lowest free slot; dup/dup2 alias a description under a
/// second number (sharing the file offset, like the Unix dup family);
/// close() releases a slot and tears the description down when its last
/// alias goes. Fds 0/1/2 are stdin/stdout/stderr — by default bound to the
/// process's rt::Process state record (capture buffers / pushStdin queue),
/// and rebound to pipe ends when the process is spawned into a pipeline.
///
/// All I/O is asynchronous with the fs completion shapes (§3.2). A write
/// completing with EPIPE additionally fires the table's broken-pipe hook,
/// which the owning process wires to SIGPIPE delivery.
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_DOPPIO_PROC_FD_TABLE_H
#define DOPPIO_DOPPIO_PROC_FD_TABLE_H

#include "doppio/fs.h"
#include "doppio/proc/pipe.h"

#include <memory>
#include <vector>

namespace doppio {
namespace rt {
namespace proc {

/// One open-file description: the object a (possibly dup'd) fd number
/// points at. Subclasses: fs files, pipe ends, process stdio.
class OpenFile {
public:
  virtual ~OpenFile();

  /// Reads up to \p MaxLen bytes; empty result means EOF.
  virtual void read(size_t MaxLen, fs::ResultCb<std::vector<uint8_t>> Done);
  /// Writes \p Data; completes with bytes accepted (may be partial).
  virtual void write(std::vector<uint8_t> Data, fs::ResultCb<size_t> Done);
  /// Torn down when the last table slot referencing this description
  /// closes. Default: nothing to release.
  virtual void closeLast(fs::CompletionCb Done);

  virtual const char *kind() const = 0;

private:
  friend class FdTable;
  /// Table slots currently aliasing this description (dup refs).
  int TableRefs = 0;
};

/// An OpenFile over an fs::FileSystem descriptor, with the shared cursor
/// dup semantics require.
class FsFile : public OpenFile {
public:
  FsFile(browser::BrowserEnv &Env, fs::FdPtr Fd)
      : Env(Env), Fd(std::move(Fd)) {}

  void read(size_t MaxLen, fs::ResultCb<std::vector<uint8_t>> Done) override;
  void write(std::vector<uint8_t> Data, fs::ResultCb<size_t> Done) override;
  void closeLast(fs::CompletionCb Done) override;
  const char *kind() const override { return "file"; }

private:
  browser::BrowserEnv &Env;
  fs::FdPtr Fd;
  uint64_t Pos = 0;
};

/// The read end of a Pipe.
class PipeReadEnd : public OpenFile {
public:
  explicit PipeReadEnd(std::shared_ptr<Pipe> P) : P(std::move(P)) {
    this->P->addReader();
  }
  void read(size_t MaxLen, fs::ResultCb<std::vector<uint8_t>> Done) override {
    P->read(MaxLen, std::move(Done));
  }
  void closeLast(fs::CompletionCb Done) override;
  const char *kind() const override { return "pipe-r"; }

private:
  std::shared_ptr<Pipe> P;
};

/// The write end of a Pipe.
class PipeWriteEnd : public OpenFile {
public:
  explicit PipeWriteEnd(std::shared_ptr<Pipe> P) : P(std::move(P)) {
    this->P->addWriter();
  }
  void write(std::vector<uint8_t> Data, fs::ResultCb<size_t> Done) override {
    P->write(std::move(Data), std::move(Done));
  }
  void closeLast(fs::CompletionCb Done) override;
  const char *kind() const override { return "pipe-w"; }

private:
  std::shared_ptr<Pipe> P;
};

/// Default fd 1/2: writes land in the rt::Process state record (capture
/// buffer or §6.8 sink).
class StdioOut : public OpenFile {
public:
  StdioOut(browser::BrowserEnv &Env, Process &State, bool IsErr)
      : Env(Env), State(State), IsErr(IsErr) {}
  void write(std::vector<uint8_t> Data, fs::ResultCb<size_t> Done) override;
  const char *kind() const override { return IsErr ? "stderr" : "stdout"; }

private:
  browser::BrowserEnv &Env;
  Process &State;
  bool IsErr;
};

/// Default fd 0: drains the rt::Process pushStdin line queue; EOF once
/// the queue is empty.
class StdioIn : public OpenFile {
public:
  StdioIn(browser::BrowserEnv &Env, Process &State)
      : Env(Env), State(State) {}
  void read(size_t MaxLen, fs::ResultCb<std::vector<uint8_t>> Done) override;
  const char *kind() const override { return "stdin"; }

private:
  browser::BrowserEnv &Env;
  Process &State;
};

/// The table itself: fd number -> shared OpenFile.
class FdTable {
public:
  explicit FdTable(browser::BrowserEnv &Env) : Env(Env) {}
  ~FdTable();

  FdTable(const FdTable &) = delete;
  FdTable &operator=(const FdTable &) = delete;

  /// Installs \p F at the lowest free fd and returns it.
  int install(std::shared_ptr<OpenFile> F);
  /// Installs \p F at exactly \p Fd, closing whatever was there (dup2's
  /// replace semantics).
  void installAt(int Fd, std::shared_ptr<OpenFile> F);

  /// Opens \p Path through the fs frontend and installs the descriptor.
  void open(fs::FileSystem &Fs, const std::string &Path,
            const std::string &Mode, fs::ResultCb<int> Done);

  /// Releases \p Fd; the description is torn down when its last alias
  /// goes. EBADF for unknown fds.
  void close(int Fd, fs::CompletionCb Done = nullptr);

  /// Duplicates \p Fd at the lowest free slot; EBADF if not open.
  ErrorOr<int> dup(int Fd);
  /// Duplicates \p From onto \p To (closing \p To first if open).
  ErrorOr<int> dup2(int From, int To);

  void read(int Fd, size_t MaxLen, fs::ResultCb<std::vector<uint8_t>> Done);
  void write(int Fd, std::vector<uint8_t> Data, fs::ResultCb<size_t> Done);
  /// Looping write: retries partial pipe writes until every byte of
  /// \p Data is accepted (or an error).
  void writeAll(int Fd, std::vector<uint8_t> Data, fs::CompletionCb Done);

  /// Closes every open fd (process teardown).
  void closeAll();

  OpenFile *get(int Fd);
  size_t openCount() const;

  /// Invoked when a write on this table completes with EPIPE; the owning
  /// process points it at SIGPIPE delivery.
  void setOnBrokenPipe(std::function<void()> Fn) { OnBrokenPipe = std::move(Fn); }

  /// Per-process byte accounting: every successful read/write through the
  /// table increments these cells (the owning process points them at its
  /// "proc.p<pid>" counters).
  void setByteCounters(obs::Counter *In, obs::Counter *Out) {
    BytesIn = In;
    BytesOut = Out;
  }

private:
  void release(int Fd);

  browser::BrowserEnv &Env;
  std::vector<std::shared_ptr<OpenFile>> Slots;
  std::function<void()> OnBrokenPipe;
  obs::Counter *BytesIn = nullptr;
  obs::Counter *BytesOut = nullptr;
};

} // namespace proc
} // namespace rt
} // namespace doppio

#endif // DOPPIO_DOPPIO_PROC_FD_TABLE_H
