//===- doppio/proc/programs.h - Native guest programs ------------*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The coreutils of the process subsystem: small native programs (cat,
/// grep, wc, ...) that run as kernel-scheduled continuation chains over
/// their process's fd table, so pipelines compose `cat | grep`-style over
/// the Doppio file system. A ProgramRegistry maps argv[0] to a factory;
/// the doppiod `spawn` handler and the doppio_sh example both launch
/// programs out of one. JVM programs register through the same interface
/// (jvm/proc_program.h) — the registry doesn't care what backs a program.
///
/// Stock programs (installCorePrograms):
///   echo TEXT...      write the arguments, space-joined + newline, to fd 1
///   cat [PATH...]     copy each file (or fd 0 when no paths) to fd 1
///   upper             uppercase fd 0 to fd 1
///   grep PATTERN      forward fd 0 lines containing PATTERN; exit 1 if none
///   wc                count fd 0, write "<lines> <bytes>\n" at EOF
///   head -n N         forward the first N lines of fd 0, then exit —
///                     closing the pipe early (the SIGPIPE demo)
///   pause             block on fd 0 forever (signal-delivery target)
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_DOPPIO_PROC_PROGRAMS_H
#define DOPPIO_DOPPIO_PROC_PROGRAMS_H

#include "doppio/proc/proc.h"

#include <functional>
#include <map>
#include <string>
#include <vector>

namespace doppio {
namespace rt {
namespace proc {

/// Builds one program instance from its argv tail (argv[0] stripped).
using ProgramFactory =
    std::function<std::unique_ptr<Program>(std::vector<std::string> Args)>;

/// Name -> factory table for spawn-by-name surfaces (doppiod's spawn
/// handler, the doppio_sh example).
class ProgramRegistry {
public:
  void add(std::string Name, ProgramFactory F) {
    Factories[std::move(Name)] = std::move(F);
  }

  bool has(const std::string &Name) const { return Factories.count(Name); }

  std::vector<std::string> names() const {
    std::vector<std::string> Out;
    for (const auto &[Name, F] : Factories)
      Out.push_back(Name);
    return Out;
  }

  /// Instantiates \p Argv[0] with the remaining arguments; nullptr for an
  /// unknown name or empty argv.
  std::unique_ptr<Program> create(const std::vector<std::string> &Argv) const {
    if (Argv.empty())
      return nullptr;
    auto It = Factories.find(Argv[0]);
    if (It == Factories.end())
      return nullptr;
    return It->second(
        std::vector<std::string>(Argv.begin() + 1, Argv.end()));
  }

private:
  std::map<std::string, ProgramFactory> Factories;
};

/// Registers the stock native programs listed above.
void installCorePrograms(ProgramRegistry &R);

/// Splits a command line on whitespace into argv tokens.
std::vector<std::string> tokenize(const std::string &Line);

} // namespace proc
} // namespace rt
} // namespace doppio

#endif // DOPPIO_DOPPIO_PROC_PROGRAMS_H
