//===- doppio/proc/checkpoint.h - Process freeze & revive --------*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md and DESIGN.md §16.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Process-level checkpointing over the continuation substrate: because a
/// quiescent program's entire progress lives in explicit guest state (the
/// payoff of reifying every suspension), a live process can be frozen
/// into a self-describing blob — process name, cwd, program kind, program
/// image — and revived later, in the same table or on another shard (the
/// cluster's Migrate frames carry exactly these blobs).
///
/// The blob's program image is opaque here; a CheckpointRegistry maps the
/// kind tag back to a restore factory, keeping this layer free of any
/// guest-language dependency (the JVM binds its factory in
/// jvm/proc_program.h).
///
/// Not carried: fd-table contents beyond the default stdio binding (a
/// migrated process gets fresh stdio capture — callers concatenate), and
/// pending signals. checkpointProcess is EAGAIN until the program is
/// quiescent; migration callers retry on a short timer.
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_DOPPIO_PROC_CHECKPOINT_H
#define DOPPIO_DOPPIO_PROC_CHECKPOINT_H

#include "doppio/proc/proc.h"

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace doppio {
namespace rt {
namespace proc {

/// Restore factories keyed by program kind ("jvm", ...). The factory
/// rebuilds a Program from its serialized image; the program resumes its
/// guest when start() runs in the revived process.
class CheckpointRegistry {
public:
  using RestoreFactory = std::function<ErrorOr<std::unique_ptr<Program>>(
      ProcessTable &Table, const std::vector<uint8_t> &Image)>;

  void bind(std::string Kind, RestoreFactory F) {
    Factories[std::move(Kind)] = std::move(F);
  }
  bool bound(const std::string &Kind) const {
    return Factories.count(Kind) != 0;
  }
  const RestoreFactory *factory(const std::string &Kind) const {
    auto It = Factories.find(Kind);
    return It == Factories.end() ? nullptr : &It->second;
  }

private:
  std::map<std::string, RestoreFactory> Factories;
};

/// Freezes live process \p P into a blob. ESRCH for unknown/dead pids,
/// ENOTSUP for programs without checkpoint support, EAGAIN while the
/// program is not quiescent (retry after its in-flight I/O settles). The
/// process keeps running — callers migrating it kill it after the blob is
/// safely away.
ErrorOr<std::vector<uint8_t>> checkpointProcess(ProcessTable &T, Pid P);

/// Revives a checkpointProcess blob as a fresh process of \p T (new pid,
/// parent \p Parent, fresh stdio capture, restored cwd). The program kind
/// must be bound in \p Reg.
ErrorOr<Pid> restoreProcess(ProcessTable &T, const std::vector<uint8_t> &Blob,
                            const CheckpointRegistry &Reg, Pid Parent = 1);

} // namespace proc
} // namespace rt
} // namespace doppio

#endif // DOPPIO_DOPPIO_PROC_CHECKPOINT_H
