//===- doppio/proc/proc.cpp -----------------------------------------------==//

#include "doppio/proc/proc.h"

#include <algorithm>
#include <cassert>

namespace doppio {
namespace rt {
namespace proc {

const char *signalName(Signal S) {
  switch (S) {
  case Signal::Int:
    return "SIGINT";
  case Signal::Kill:
    return "SIGKILL";
  case Signal::Pipe:
    return "SIGPIPE";
  case Signal::Term:
    return "SIGTERM";
  case Signal::Chld:
    return "SIGCHLD";
  }
  return "SIG?";
}

Program::~Program() = default;

//===----------------------------------------------------------------------===//
// Process
//===----------------------------------------------------------------------===//

Process::Process(ProcessTable &Table, browser::BrowserEnv &Env, Pid Id,
                 Pid Parent, std::string Name)
    : Table(Table), Env(Env), Id(Id), Parent(Parent), Name(std::move(Name)),
      Fds(Env) {
  // Per-process metric prefix: "proc.p<pid>" under the table's claimed
  // prefix (pids are unique per table, so no claim needed below it).
  obs::Registry &Reg = Env.metrics();
  std::string P = Table.metricPrefix() + ".p" + std::to_string(Id);
  BytesInC = &Reg.counter(P + ".bytes_in");
  BytesOutC = &Reg.counter(P + ".bytes_out");
  AliveG = &Reg.gauge(P + ".alive");
  AliveG->set(1);
  Fds.setByteCounters(BytesInC, BytesOutC);
  // EPIPE out of this process's fd table is its SIGPIPE, delivered before
  // the failing write's guest continuation runs (write(2)'s semantics: the
  // default disposition kills the writer before the call returns). The
  // EPIPE completion is itself a kernel dispatch on the I/O lane, so this
  // is still a dispatch boundary, never reentrant into guest code.
  Fds.setOnBrokenPipe([this] { this->Table.deliverSignal(*this, Signal::Pipe); });
}

void Process::installStdioHooks() {
  State.setStdoutHook(
      [this](const std::string &Text, std::function<void()> Done) {
        Fds.writeAll(1, std::vector<uint8_t>(Text.begin(), Text.end()),
                     [Done = std::move(Done)](std::optional<ApiError>) {
                       if (Done)
                         Done();
                     });
      });
  State.setStderrHook(
      [this](const std::string &Text, std::function<void()> Done) {
        Fds.writeAll(2, std::vector<uint8_t>(Text.begin(), Text.end()),
                     [Done = std::move(Done)](std::optional<ApiError>) {
                       if (Done)
                         Done();
                     });
      });
  State.setStdinHook(
      [this](std::function<void(std::optional<std::string>)> Deliver) {
        readLine(std::move(Deliver));
      });
}

void Process::readLine(
    std::function<void(std::optional<std::string>)> Deliver) {
  size_t Nl = StdinBuf.find('\n');
  if (Nl != std::string::npos) {
    std::string Line = StdinBuf.substr(0, Nl);
    StdinBuf.erase(0, Nl + 1);
    Deliver(std::move(Line));
    return;
  }
  Fds.read(0, 4096,
           [this, Deliver = std::move(Deliver)](
               ErrorOr<std::vector<uint8_t>> R) mutable {
             if (!R.ok() || R->empty()) {
               // EOF (or unreadable fd 0): flush a trailing unterminated
               // line first.
               if (!StdinBuf.empty()) {
                 std::string Line = std::move(StdinBuf);
                 StdinBuf.clear();
                 Deliver(std::move(Line));
                 return;
               }
               Deliver(std::nullopt);
               return;
             }
             StdinBuf.append(R->begin(), R->end());
             readLine(std::move(Deliver));
           });
}

void Process::onSignal(Signal S, std::function<void(Signal)> Handler) {
  Handlers[S] = std::move(Handler);
}

void Process::exit(int ExitCode) { finish(ExitCode, false, Signal::Term); }

void Process::terminateBySignal(Signal S) {
  finish(128 + static_cast<int>(S), true, S);
}

void Process::finish(int ExitCode, bool BySignal, Signal S) {
  if (!Alive)
    return;
  Alive = false;
  Code = ExitCode;
  Signaled = BySignal;
  TermSig = S;
  // Closing the fds is what propagates EOF down a pipeline (last-writer
  // close) and EPIPE up it (last-reader close).
  Fds.closeAll();
  AliveG->set(0);
  if (SpawnSpan) {
    Env.metrics().spans().end(SpawnSpan);
    SpawnSpan = 0;
  }
  Table.noteExit(*this);
}

//===----------------------------------------------------------------------===//
// ProcessTable
//===----------------------------------------------------------------------===//

ProcessTable::ProcessTable(browser::BrowserEnv &Env, fs::FileSystem &Fs)
    : Env(Env), Fs(Fs) {
  obs::Registry &Reg = Env.metrics();
  Prefix = Reg.claimPrefix("proc");
  SpawnedC = &Reg.counter(Prefix + ".spawned");
  ExitedC = &Reg.counter(Prefix + ".exited");
  ReapedC = &Reg.counter(Prefix + ".reaped");
  ZombiesG = &Reg.gauge(Prefix + ".zombies");
  SignalsC = &Reg.counter(Prefix + ".signals_delivered");
  PipeBytesC = &Reg.counter(Prefix + ".pipe.bytes");
  PipeWriterSuspendsC = &Reg.counter(Prefix + ".pipe.writer_suspends");
  PipeReaderSuspendsC = &Reg.counter(Prefix + ".pipe.reader_suspends");
  ContCells = rt::cont::Cells::resolve(Reg);
  // Pid 1: init. Bare context; adopts and reaps orphans.
  SpawnSpec Init;
  Init.Name = "init";
  Init.Parent = 0;
  spawn(std::move(Init));
}

Process *ProcessTable::find(Pid P) {
  auto It = Table.find(P);
  if (It != Table.end())
    return It->second.get();
  // Reaped records stay addressable (captured stdout outlives the reap).
  for (auto &G : Graveyard)
    if (G->pid() == P)
      return G.get();
  return nullptr;
}

Pid ProcessTable::spawn(SpawnSpec Spec) {
  Pid Id = NextPid++;
  auto Rec = std::unique_ptr<Process>(
      new Process(*this, Env, Id, Spec.Parent, Spec.Name));
  Process *P = Rec.get();
  Table.emplace(Id, std::move(Rec));
  SpawnedC->inc();

  // Absorbed state record: inherit the parent's cwd (or take the spec's,
  // which the caller vouches for) before the validator is installed —
  // these are known-good directories, not guest chdir requests.
  if (!Spec.Cwd.empty())
    P->State.chdir(Spec.Cwd);
  else if (Process *Par = find(Spec.Parent))
    P->State.chdir(Par->State.cwd());
  Fs.installChdirValidator(P->State);

  // Stdio defaults, then the spec's overrides (pipe ends, redirections).
  P->Fds.installAt(0, std::make_shared<StdioIn>(Env, P->State));
  P->Fds.installAt(1, std::make_shared<StdioOut>(Env, P->State, false));
  P->Fds.installAt(2, std::make_shared<StdioOut>(Env, P->State, true));
  for (auto &[Fd, F] : Spec.Fds)
    P->Fds.installAt(Fd, std::move(F));
  P->installStdioHooks();

  // spawn -> exit span, parented under whatever operation is spawning
  // (e.g. a doppiod spawn request).
  P->SpawnSpan =
      Env.metrics().spans().begin(Prefix + ".spawn." + P->Name);

  if (Spec.Prog) {
    P->Prog = std::move(Spec.Prog);
    uint64_t Gen = P->ExecGeneration;
    // The program starts as its own kernel dispatch on the Background
    // lane — spawn() itself never runs guest code.
    obs::SpanStore::Scope Scope(Env.metrics().spans(), P->SpawnSpan);
    Env.loop().post(kernel::Lane::Background, [P, Gen] {
      if (P->Alive && P->ExecGeneration == Gen && P->Prog)
        P->Prog->start(*P);
    });
  }
  return Id;
}

bool ProcessTable::exec(Pid P, std::unique_ptr<Program> Prog) {
  Process *Rec = find(P);
  if (!Rec || !Rec->alive())
    return false;
  // The old image is replaced: bump the generation so its pending exit is
  // ignored, and retire the object (async tails may still reference it).
  ++Rec->ExecGeneration;
  if (Rec->Prog)
    RetiredPrograms.push_back(std::move(Rec->Prog));
  Rec->Prog = std::move(Prog);
  uint64_t Gen = Rec->ExecGeneration;
  Env.loop().post(kernel::Lane::Background, [Rec, Gen] {
    if (Rec->Alive && Rec->ExecGeneration == Gen && Rec->Prog)
      Rec->Prog->start(*Rec);
  });
  return true;
}

bool ProcessTable::kill(Pid P, Signal S) {
  Process *Rec = find(P);
  if (!Rec || !Rec->alive())
    return false;
  // Delivery happens at a dispatch boundary: the signal is its own kernel
  // work item on the Resume lane, never reentrant into guest code.
  Env.loop().post(kernel::Lane::Resume, [this, P, S] {
    Process *Target = find(P);
    if (!Target || !Target->alive())
      return; // Died (or was killed) before delivery.
    deliverSignal(*Target, S);
  });
  return true;
}

bool ProcessTable::killNow(Pid P, Signal S) {
  Process *Rec = find(P);
  if (!Rec || !Rec->alive())
    return false;
  deliverSignal(*Rec, S);
  return true;
}

void ProcessTable::deliverSignal(Process &P, Signal S) {
  SignalsC->inc();
  auto It = P.Handlers.find(S);
  if (It != P.Handlers.end() && S != Signal::Kill) {
    It->second(S);
    return;
  }
  switch (S) {
  case Signal::Chld:
    break; // Default: ignore.
  case Signal::Int:
  case Signal::Kill:
  case Signal::Pipe:
  case Signal::Term:
    P.terminateBySignal(S);
    break;
  }
}

WaitResult ProcessTable::resultFor(const Process &P) const {
  WaitResult R;
  R.P = P.pid();
  R.ExitCode = P.exitCode();
  R.Signaled = P.signaled();
  R.Sig = P.terminationSignal();
  return R;
}

void ProcessTable::reap(Process &Zombie, Waiter *W) {
  auto It = Table.find(Zombie.pid());
  assert(It != Table.end() && !Zombie.Reaped && "double reap");
  Zombie.Reaped = true;
  ZombiesG->sub(1);
  ReapedC->inc();
  Graveyard.push_back(std::move(It->second));
  Table.erase(It);
  if (W && W->Done.armed()) {
    WaitResult R = resultFor(Zombie);
    // The waiter resumes at a dispatch boundary, like a signal; the
    // move-only continuation rides the copyable closure in a shared_ptr.
    auto Held = std::make_shared<ContinuationOf<ErrorOr<WaitResult>>>(
        std::move(W->Done));
    Env.loop().post(kernel::Lane::Resume, [Held, R] { Held->resume(R); });
  }
}

void ProcessTable::noteExit(Process &P) {
  ExitedC->inc();
  ZombiesG->add(1);
  // Orphaned children are adopted by init; already-dead ones are reaped
  // right away (init never waits).
  std::vector<Process *> OrphanZombies;
  for (auto &[Id, Rec] : Table) {
    if (Rec->Parent != P.pid() || Rec.get() == &P)
      continue;
    Rec->Parent = 1;
    if (Rec->zombie())
      OrphanZombies.push_back(Rec.get());
  }
  for (Process *Z : OrphanZombies)
    reap(*Z, nullptr);

  // SIGCHLD to the parent.
  Process *Par = find(P.Parent);
  if (Par && Par->alive() && Par->pid() != P.pid())
    kill(Par->pid(), Signal::Chld);

  // A parked waitpid consumes the zombie immediately.
  for (size_t I = 0; I < Waiters.size(); ++I) {
    Waiter &W = Waiters[I];
    if (W.WaiterPid != P.Parent)
      continue;
    if (W.Target >= 0 && W.Target != P.pid())
      continue;
    Waiter Claimed = std::move(W);
    Waiters.erase(Waiters.begin() + I);
    reap(P, &Claimed);
    return;
  }
  // Nobody will ever wait: children of init (unless a waiter parks later
  // — it parked already if it exists) and children of dead parents are
  // reaped here, keeping the drained table zombie-free.
  if (P.Parent == 1 || !Par || !Par->alive())
    reap(P, nullptr);
}

void ProcessTable::waitpid(Pid WaiterPid, Pid Target,
                           fs::ResultCb<WaitResult> Done) {
  auto Fail = [&](Errno E, const std::string &Detail) {
    Env.loop().post(kernel::Lane::Resume,
                    [Done, Err = ApiError(E, Detail)] { Done(Err); });
  };
  if (Target >= 0) {
    Process *Child = nullptr;
    auto It = Table.find(Target);
    if (It != Table.end() && It->second->Parent == WaiterPid)
      Child = It->second.get();
    if (!Child) {
      Fail(Errno::Child, "waitpid: pid " + std::to_string(Target));
      return;
    }
    if (Child->zombie()) {
      Waiter W{WaiterPid, Target,
               ContinuationOf<ErrorOr<WaitResult>>::capture(
                   ContCells, std::move(Done), "proc.waitpid")};
      reap(*Child, &W);
      return;
    }
    Waiters.push_back({WaiterPid, Target,
                       ContinuationOf<ErrorOr<WaitResult>>::capture(
                           ContCells, std::move(Done), "proc.waitpid")});
    return;
  }
  // Any-child wait: an existing zombie (lowest pid, deterministically)
  // completes immediately; otherwise park if any child is live.
  Process *Zombie = nullptr;
  bool HasChild = false;
  for (auto &[Id, Rec] : Table) {
    if (Rec->Parent != WaiterPid)
      continue;
    HasChild = true;
    if (Rec->zombie() && !Zombie)
      Zombie = Rec.get();
  }
  if (Zombie) {
    Waiter W{WaiterPid, -1,
             ContinuationOf<ErrorOr<WaitResult>>::capture(
                 ContCells, std::move(Done), "proc.waitpid")};
    reap(*Zombie, &W);
    return;
  }
  if (!HasChild) {
    Fail(Errno::Child, "waitpid: no children");
    return;
  }
  Waiters.push_back({WaiterPid, -1,
                     ContinuationOf<ErrorOr<WaitResult>>::capture(
                         ContCells, std::move(Done), "proc.waitpid")});
}

std::shared_ptr<Pipe> ProcessTable::makePipe(size_t Capacity) {
  PipeCounters C;
  C.Bytes = PipeBytesC;
  C.WriterSuspends = PipeWriterSuspendsC;
  C.ReaderSuspends = PipeReaderSuspendsC;
  return std::make_shared<Pipe>(Env, Capacity, C);
}

std::vector<Pid> ProcessTable::spawnPipeline(std::vector<SpawnSpec> Stages,
                                             size_t PipeCapacity) {
  std::vector<Pid> Pids;
  std::shared_ptr<Pipe> Upstream;
  for (size_t I = 0; I < Stages.size(); ++I) {
    SpawnSpec &S = Stages[I];
    std::vector<std::pair<int, std::shared_ptr<OpenFile>>> Wiring;
    if (Upstream)
      Wiring.emplace_back(0, std::make_shared<PipeReadEnd>(Upstream));
    std::shared_ptr<Pipe> Downstream;
    if (I + 1 < Stages.size()) {
      Downstream = makePipe(PipeCapacity);
      Wiring.emplace_back(1, std::make_shared<PipeWriteEnd>(Downstream));
    }
    // Explicit spec overrides win over the pipeline wiring.
    for (auto &Override : S.Fds)
      Wiring.push_back(std::move(Override));
    S.Fds = std::move(Wiring);
    Pids.push_back(spawn(std::move(S)));
    Upstream = std::move(Downstream);
  }
  return Pids;
}

} // namespace proc
} // namespace rt
} // namespace doppio
