//===- doppio/proc/programs.cpp -------------------------------------------==//

#include "doppio/proc/programs.h"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace doppio {
namespace rt {
namespace proc {

namespace {

std::vector<uint8_t> bytesOf(const std::string &S) {
  return std::vector<uint8_t>(S.begin(), S.end());
}

constexpr size_t ChunkSize = 4096;

/// Shared scaffolding: capture the exec-generation-bound exit function at
/// start, write diagnostics to fd 2, finish exactly once. A failed write
/// on fd 1 (EPIPE) just exits 1 — if the default SIGPIPE disposition
/// already terminated the process, the late exit is a no-op.
class NativeProgram : public Program {
public:
  void start(Process &P) final {
    Proc = &P;
    Exit = P.makeExitFn();
    run();
  }

protected:
  virtual void run() = 0;

  Process &proc() { return *Proc; }

  void finish(int Code) { Exit(Code); }

  void fail(const std::string &Msg) {
    proc().fds().writeAll(
        2, bytesOf(name() + ": " + Msg + "\n"),
        [this](std::optional<ApiError>) { finish(1); });
  }

  std::string name() const override { return "native"; }

private:
  Process *Proc = nullptr;
  std::function<void(int)> Exit;
};

/// echo TEXT... : arguments, space-joined, newline-terminated, to fd 1.
class EchoProgram : public NativeProgram {
public:
  explicit EchoProgram(std::vector<std::string> Args)
      : Args(std::move(Args)) {}
  std::string name() const override { return "echo"; }

private:
  void run() override {
    std::string Out;
    for (size_t I = 0; I < Args.size(); ++I)
      Out += (I ? " " : "") + Args[I];
    Out += "\n";
    proc().fds().writeAll(1, bytesOf(Out),
                          [this](std::optional<ApiError> Err) {
                            finish(Err ? 1 : 0);
                          });
  }

  std::vector<std::string> Args;
};

/// cat [PATH...] : files (opened through the process fd table, so paths
/// resolve against the process cwd) or fd 0, to fd 1.
class CatProgram : public NativeProgram {
public:
  explicit CatProgram(std::vector<std::string> Args)
      : Paths(std::move(Args)) {}
  std::string name() const override { return "cat"; }

private:
  void run() override {
    if (Paths.empty()) {
      copy(0, [this](bool Ok) { finish(Ok ? 0 : 1); });
      return;
    }
    nextFile(0);
  }

  void nextFile(size_t Index) {
    if (Index >= Paths.size()) {
      finish(0);
      return;
    }
    proc().fds().open(
        proc().table().fs(), proc().state().resolve(Paths[Index]), "r",
        [this, Index](ErrorOr<int> Fd) {
          if (!Fd.ok()) {
            fail(Fd.error().message());
            return;
          }
          copy(*Fd, [this, Index, Fd = *Fd](bool Ok) {
            proc().fds().close(Fd);
            if (!Ok) {
              finish(1);
              return;
            }
            nextFile(Index + 1);
          });
        });
  }

  /// Pumps \p SrcFd to fd 1 until EOF.
  void copy(int SrcFd, std::function<void(bool)> Done) {
    proc().fds().read(
        SrcFd, ChunkSize,
        [this, SrcFd, Done = std::move(Done)](
            ErrorOr<std::vector<uint8_t>> R) mutable {
          if (!R.ok()) {
            Done(false);
            return;
          }
          if (R->empty()) {
            Done(true);
            return;
          }
          proc().fds().writeAll(
              1, std::move(*R),
              [this, SrcFd, Done = std::move(Done)](
                  std::optional<ApiError> Err) mutable {
                if (Err) {
                  Done(false);
                  return;
                }
                copy(SrcFd, std::move(Done));
              });
        });
  }

  std::vector<std::string> Paths;
};

/// upper : fd 0 to fd 1, uppercased.
class UpperProgram : public NativeProgram {
public:
  explicit UpperProgram(std::vector<std::string>) {}
  std::string name() const override { return "upper"; }

private:
  void run() override { pump(); }

  void pump() {
    proc().fds().read(0, ChunkSize,
                      [this](ErrorOr<std::vector<uint8_t>> R) {
                        if (!R.ok()) {
                          finish(1);
                          return;
                        }
                        if (R->empty()) {
                          finish(0);
                          return;
                        }
                        for (uint8_t &B : *R)
                          B = static_cast<uint8_t>(
                              std::toupper(static_cast<int>(B)));
                        proc().fds().writeAll(
                            1, std::move(*R),
                            [this](std::optional<ApiError> Err) {
                              if (Err) {
                                finish(1);
                                return;
                              }
                              pump();
                            });
                      });
  }
};

/// grep PATTERN : forward matching lines of fd 0; exit 1 when none match.
class GrepProgram : public NativeProgram {
public:
  explicit GrepProgram(std::vector<std::string> Args)
      : Pattern(Args.empty() ? "" : Args[0]) {}
  std::string name() const override { return "grep"; }

private:
  void run() override {
    if (Pattern.empty()) {
      fail("missing pattern");
      return;
    }
    pump();
  }

  void pump() {
    proc().readLine([this](std::optional<std::string> Line) {
      if (!Line) {
        finish(Matched ? 0 : 1);
        return;
      }
      if (Line->find(Pattern) == std::string::npos) {
        pump();
        return;
      }
      Matched = true;
      proc().fds().writeAll(1, bytesOf(*Line + "\n"),
                            [this](std::optional<ApiError> Err) {
                              if (Err) {
                                finish(1);
                                return;
                              }
                              pump();
                            });
    });
  }

  std::string Pattern;
  bool Matched = false;
};

/// wc : "<lines> <bytes>\n" for fd 0 at EOF.
class WcProgram : public NativeProgram {
public:
  explicit WcProgram(std::vector<std::string>) {}
  std::string name() const override { return "wc"; }

private:
  void run() override { pump(); }

  void pump() {
    proc().fds().read(0, ChunkSize,
                      [this](ErrorOr<std::vector<uint8_t>> R) {
                        if (!R.ok()) {
                          finish(1);
                          return;
                        }
                        if (R->empty()) {
                          report();
                          return;
                        }
                        Bytes += R->size();
                        Lines += std::count(R->begin(), R->end(), '\n');
                        pump();
                      });
  }

  void report() {
    std::ostringstream Out;
    Out << Lines << " " << Bytes << "\n";
    proc().fds().writeAll(1, bytesOf(Out.str()),
                          [this](std::optional<ApiError> Err) {
                            finish(Err ? 1 : 0);
                          });
  }

  uint64_t Lines = 0;
  uint64_t Bytes = 0;
};

/// head -n N : forward the first N lines, then exit — the early close is
/// what breaks the upstream pipe (SIGPIPE for a still-writing producer).
class HeadProgram : public NativeProgram {
public:
  explicit HeadProgram(std::vector<std::string> Args) {
    for (size_t I = 0; I + 1 < Args.size(); ++I)
      if (Args[I] == "-n")
        Remaining = std::strtol(Args[I + 1].c_str(), nullptr, 10);
  }
  std::string name() const override { return "head"; }

private:
  void run() override { pump(); }

  void pump() {
    if (Remaining <= 0) {
      finish(0);
      return;
    }
    proc().readLine([this](std::optional<std::string> Line) {
      if (!Line) {
        finish(0);
        return;
      }
      --Remaining;
      proc().fds().writeAll(1, bytesOf(*Line + "\n"),
                            [this](std::optional<ApiError> Err) {
                              if (Err) {
                                finish(1);
                                return;
                              }
                              pump();
                            });
    });
  }

  long Remaining = 10;
};

/// pause : read fd 0 forever. With an open pipe upstream this never
/// completes — the process sits Blocked until a signal terminates it.
class PauseProgram : public NativeProgram {
public:
  explicit PauseProgram(std::vector<std::string>) {}
  std::string name() const override { return "pause"; }

private:
  void run() override { pump(); }

  void pump() {
    proc().fds().read(0, ChunkSize,
                      [this](ErrorOr<std::vector<uint8_t>> R) {
                        if (!R.ok() || R->empty()) {
                          finish(0);
                          return;
                        }
                        pump(); // Discard and keep waiting.
                      });
  }
};

} // namespace

std::vector<std::string> tokenize(const std::string &Line) {
  std::vector<std::string> Out;
  std::istringstream In(Line);
  std::string Tok;
  while (In >> Tok)
    Out.push_back(Tok);
  return Out;
}

void installCorePrograms(ProgramRegistry &R) {
  R.add("echo", [](std::vector<std::string> Args) {
    return std::make_unique<EchoProgram>(std::move(Args));
  });
  R.add("cat", [](std::vector<std::string> Args) {
    return std::make_unique<CatProgram>(std::move(Args));
  });
  R.add("upper", [](std::vector<std::string> Args) {
    return std::make_unique<UpperProgram>(std::move(Args));
  });
  R.add("grep", [](std::vector<std::string> Args) {
    return std::make_unique<GrepProgram>(std::move(Args));
  });
  R.add("wc", [](std::vector<std::string> Args) {
    return std::make_unique<WcProgram>(std::move(Args));
  });
  R.add("head", [](std::vector<std::string> Args) {
    return std::make_unique<HeadProgram>(std::move(Args));
  });
  R.add("pause", [](std::vector<std::string> Args) {
    return std::make_unique<PauseProgram>(std::move(Args));
  });
}

} // namespace proc
} // namespace rt
} // namespace doppio
