//===- doppio/proc/checkpoint.cpp - Process freeze & revive ----------------==//

#include "doppio/proc/checkpoint.h"

#include "doppio/cont/snapshot.h"

using namespace doppio;
using namespace doppio::rt;
using namespace doppio::rt::proc;

namespace {
constexpr uint32_t ProcImageMagic = 0x44504350; // "DPCP"
constexpr uint32_t ProcImageVersion = 1;
} // namespace

ErrorOr<std::vector<uint8_t>> doppio::rt::proc::checkpointProcess(
    ProcessTable &T, Pid P) {
  Process *Pr = T.find(P);
  if (!Pr || !Pr->alive())
    return ApiError(Errno::Srch, "checkpoint: pid " + std::to_string(P));
  Program *Prog = Pr->program();
  if (!Prog)
    return ApiError(Errno::NotSup, "checkpoint: bare process");
  // No image kind means the program can never checkpoint (native programs
  // hold their progress in host closures): ENOTSUP, permanently. A named
  // kind that is merely not quiescent yet is EAGAIN — retry later.
  if (Prog->checkpointKind().empty())
    return ApiError(Errno::NotSup, "checkpoint: " + Prog->name() +
                                       " holds no serializable image");
  std::string Why;
  if (!Prog->canCheckpoint(&Why))
    return ApiError(Errno::Again, Why);
  ErrorOr<std::vector<uint8_t>> Image = Prog->checkpoint();
  if (!Image)
    return Image.error();
  snap::Writer W(ProcImageMagic, ProcImageVersion);
  W.str(Pr->name());
  W.str(Pr->state().cwd());
  W.str(Prog->checkpointKind());
  W.bytes(*Image);
  return W.take();
}

ErrorOr<Pid> doppio::rt::proc::restoreProcess(
    ProcessTable &T, const std::vector<uint8_t> &Blob,
    const CheckpointRegistry &Reg, Pid Parent) {
  snap::Reader R(Blob, ProcImageMagic, ProcImageVersion);
  std::string Name = R.str();
  std::string Cwd = R.str();
  std::string Kind = R.str();
  std::vector<uint8_t> Image = R.bytes();
  if (!R.ok() || !R.atEnd())
    return ApiError(Errno::Io, "restore: corrupt blob");
  const CheckpointRegistry::RestoreFactory *F = Reg.factory(Kind);
  if (!F)
    return ApiError(Errno::NotSup, "restore: unbound image kind " + Kind);
  ErrorOr<std::unique_ptr<Program>> Prog = (*F)(T, Image);
  if (!Prog)
    return Prog.error();
  ProcessTable::SpawnSpec Spec;
  Spec.Name = std::move(Name);
  Spec.Parent = Parent;
  Spec.Cwd = std::move(Cwd);
  Spec.Prog = std::move(*Prog);
  return T.spawn(std::move(Spec));
}
