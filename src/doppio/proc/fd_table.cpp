//===- doppio/proc/fd_table.cpp -------------------------------------------==//

#include "doppio/proc/fd_table.h"

#include <algorithm>
#include <cassert>

using namespace doppio;
using namespace doppio::rt;
using namespace doppio::rt::proc;

//===----------------------------------------------------------------------===//
// OpenFile defaults
//===----------------------------------------------------------------------===//

OpenFile::~OpenFile() = default;

void OpenFile::read(size_t, fs::ResultCb<std::vector<uint8_t>> Done) {
  Done(ApiError(Errno::BadFd, std::string(kind()) + " is not readable"));
}

void OpenFile::write(std::vector<uint8_t>, fs::ResultCb<size_t> Done) {
  Done(ApiError(Errno::BadFd, std::string(kind()) + " is not writable"));
}

void OpenFile::closeLast(fs::CompletionCb Done) {
  if (Done)
    Done(std::nullopt);
}

//===----------------------------------------------------------------------===//
// FsFile: fs::FileDescriptor + shared cursor
//===----------------------------------------------------------------------===//

void FsFile::read(size_t MaxLen, fs::ResultCb<std::vector<uint8_t>> Done) {
  auto Dst = std::make_shared<Buffer>(Env, MaxLen);
  fs::FdPtr F = Fd;
  Fd->read(*Dst, 0, MaxLen, Pos,
           [this, Dst, F, Done = std::move(Done)](ErrorOr<size_t> R) {
             if (!R.ok()) {
               Done(R.error());
               return;
             }
             Pos += *R;
             std::vector<uint8_t> Out(Dst->bytes().begin(),
                                      Dst->bytes().begin() + *R);
             Done(std::move(Out));
           });
}

void FsFile::write(std::vector<uint8_t> Data, fs::ResultCb<size_t> Done) {
  size_t Len = Data.size();
  auto Src = std::make_shared<Buffer>(Env, std::move(Data));
  fs::FdPtr F = Fd;
  Fd->write(*Src, 0, Len, Pos,
            [this, Src, F, Done = std::move(Done)](ErrorOr<size_t> R) {
              if (R.ok())
                Pos += *R;
              Done(std::move(R));
            });
}

void FsFile::closeLast(fs::CompletionCb Done) {
  Fd->close([Done = std::move(Done)](std::optional<ApiError> Err) {
    if (Done)
      Done(std::move(Err));
  });
}

//===----------------------------------------------------------------------===//
// Pipe ends
//===----------------------------------------------------------------------===//

void PipeReadEnd::closeLast(fs::CompletionCb Done) {
  P->closeReader();
  if (Done)
    Done(std::nullopt);
}

void PipeWriteEnd::closeLast(fs::CompletionCb Done) {
  P->closeWriter();
  if (Done)
    Done(std::nullopt);
}

//===----------------------------------------------------------------------===//
// Stdio defaults over the rt::Process state record
//===----------------------------------------------------------------------===//

void StdioOut::write(std::vector<uint8_t> Data, fs::ResultCb<size_t> Done) {
  std::string Text(Data.begin(), Data.end());
  if (IsErr)
    State.writeStderr(Text);
  else
    State.writeStdout(Text);
  size_t N = Data.size();
  Env.loop().post(kernel::Lane::IoCompletion,
                  [Done = std::move(Done), N] { Done(N); });
}

void StdioIn::read(size_t, fs::ResultCb<std::vector<uint8_t>> Done) {
  std::vector<uint8_t> Out;
  if (State.hasStdin()) {
    std::string Line = State.popStdin() + "\n";
    Out.assign(Line.begin(), Line.end());
  }
  Env.loop().post(kernel::Lane::IoCompletion,
                  [Done = std::move(Done), Out = std::move(Out)]() mutable {
                    Done(std::move(Out));
                  });
}

//===----------------------------------------------------------------------===//
// FdTable
//===----------------------------------------------------------------------===//

FdTable::~FdTable() { closeAll(); }

int FdTable::install(std::shared_ptr<OpenFile> F) {
  for (size_t I = 0; I < Slots.size(); ++I) {
    if (!Slots[I]) {
      ++F->TableRefs;
      Slots[I] = std::move(F);
      return static_cast<int>(I);
    }
  }
  ++F->TableRefs;
  Slots.push_back(std::move(F));
  return static_cast<int>(Slots.size() - 1);
}

void FdTable::installAt(int Fd, std::shared_ptr<OpenFile> F) {
  assert(Fd >= 0 && "negative fd");
  if (static_cast<size_t>(Fd) >= Slots.size())
    Slots.resize(Fd + 1);
  if (Slots[Fd])
    release(Fd);
  ++F->TableRefs;
  Slots[Fd] = std::move(F);
}

void FdTable::open(fs::FileSystem &Fs, const std::string &Path,
                   const std::string &Mode, fs::ResultCb<int> Done) {
  Fs.open(Path, Mode,
          [this, Done = std::move(Done)](ErrorOr<fs::FdPtr> R) {
            if (!R.ok()) {
              Done(R.error());
              return;
            }
            Done(install(std::make_shared<FsFile>(Env, std::move(*R))));
          });
}

void FdTable::release(int Fd) {
  std::shared_ptr<OpenFile> F = std::move(Slots[Fd]);
  Slots[Fd] = nullptr;
  if (--F->TableRefs == 0)
    F->closeLast(nullptr);
}

void FdTable::close(int Fd, fs::CompletionCb Done) {
  OpenFile *F = get(Fd);
  if (!F) {
    if (Done)
      Done(ApiError(Errno::BadFd, "fd " + std::to_string(Fd)));
    return;
  }
  std::shared_ptr<OpenFile> Held = std::move(Slots[Fd]);
  Slots[Fd] = nullptr;
  if (--Held->TableRefs == 0) {
    Held->closeLast(std::move(Done));
    return;
  }
  if (Done)
    Done(std::nullopt);
}

ErrorOr<int> FdTable::dup(int Fd) {
  OpenFile *F = get(Fd);
  if (!F)
    return ApiError(Errno::BadFd, "dup: fd " + std::to_string(Fd));
  return install(Slots[Fd]);
}

ErrorOr<int> FdTable::dup2(int From, int To) {
  OpenFile *F = get(From);
  if (!F || To < 0)
    return ApiError(Errno::BadFd, "dup2: fd " + std::to_string(From));
  if (From == To)
    return To;
  installAt(To, Slots[From]);
  return To;
}

void FdTable::read(int Fd, size_t MaxLen,
                   fs::ResultCb<std::vector<uint8_t>> Done) {
  OpenFile *F = get(Fd);
  if (!F) {
    Env.loop().post(kernel::Lane::IoCompletion,
                    [Done = std::move(Done), Fd] {
                      Done(ApiError(Errno::BadFd,
                                    "read: fd " + std::to_string(Fd)));
                    });
    return;
  }
  // Hold the description across the async op: a close racing the read
  // must not destroy it mid-flight.
  std::shared_ptr<OpenFile> Held = Slots[Fd];
  F->read(MaxLen, [this, Held, Done = std::move(Done)](
                      ErrorOr<std::vector<uint8_t>> R) {
    if (R.ok() && BytesIn)
      BytesIn->inc(R->size());
    Done(std::move(R));
  });
}

void FdTable::write(int Fd, std::vector<uint8_t> Data,
                    fs::ResultCb<size_t> Done) {
  OpenFile *F = get(Fd);
  if (!F) {
    Env.loop().post(kernel::Lane::IoCompletion,
                    [Done = std::move(Done), Fd] {
                      Done(ApiError(Errno::BadFd,
                                    "write: fd " + std::to_string(Fd)));
                    });
    return;
  }
  std::shared_ptr<OpenFile> Held = Slots[Fd];
  F->write(std::move(Data),
           [this, Held, Done = std::move(Done)](ErrorOr<size_t> R) {
             if (R.ok() && BytesOut)
               BytesOut->inc(*R);
             if (!R.ok() && R.error().Code == Errno::Pipe && OnBrokenPipe)
               OnBrokenPipe();
             Done(std::move(R));
           });
}

void FdTable::writeAll(int Fd, std::vector<uint8_t> Data,
                       fs::CompletionCb Done) {
  if (Data.empty()) {
    if (Done)
      Done(std::nullopt);
    return;
  }
  write(Fd, Data, [this, Fd, Data,
                   Done = std::move(Done)](ErrorOr<size_t> R) mutable {
    if (!R.ok()) {
      if (Done)
        Done(R.error());
      return;
    }
    if (*R >= Data.size()) {
      if (Done)
        Done(std::nullopt);
      return;
    }
    Data.erase(Data.begin(), Data.begin() + *R);
    writeAll(Fd, std::move(Data), std::move(Done));
  });
}

void FdTable::closeAll() {
  for (size_t I = 0; I < Slots.size(); ++I)
    if (Slots[I])
      release(static_cast<int>(I));
  Slots.clear();
}

OpenFile *FdTable::get(int Fd) {
  if (Fd < 0 || static_cast<size_t>(Fd) >= Slots.size())
    return nullptr;
  return Slots[Fd].get();
}

size_t FdTable::openCount() const {
  size_t N = 0;
  for (const auto &S : Slots)
    N += S != nullptr;
  return N;
}
