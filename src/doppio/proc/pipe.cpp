//===- doppio/proc/pipe.cpp -----------------------------------------------==//

#include "doppio/proc/pipe.h"

#include <algorithm>

using namespace doppio;
using namespace doppio::rt;
using namespace doppio::rt::proc;

namespace {
/// Posts a parked continuation's resumption with its value; the move-only
/// continuation rides the copyable closure in a shared_ptr.
template <typename Post, typename T, typename V>
void postResume(Post &&P, ContinuationOf<T> K, V Val) {
  auto Held = std::make_shared<ContinuationOf<T>>(std::move(K));
  P([Held, Val = std::move(Val)]() mutable { Held->resume(std::move(Val)); });
}
} // namespace

void Pipe::write(std::vector<uint8_t> Data, fs::ResultCb<size_t> Done) {
  if (!hasReaders()) {
    post([Done = std::move(Done)] { Done(ApiError(Errno::Pipe, "pipe")); });
    return;
  }
  if (Data.empty()) {
    post([Done = std::move(Done)] { Done(size_t(0)); });
    return;
  }
  if (Buf.size() >= Capacity) {
    // Full: suspend the writer until a read frees space.
    if (Counters.WriterSuspends)
      Counters.WriterSuspends->inc();
    PendingWrites.push_back(
        {std::move(Data), ContinuationOf<ErrorOr<size_t>>::capture(
                              ContCells, std::move(Done), "pipe.write")});
    return;
  }
  size_t N = std::min(Data.size(), Capacity - Buf.size());
  Buf.insert(Buf.end(), Data.begin(), Data.begin() + N);
  if (Counters.Bytes)
    Counters.Bytes->inc(N);
  post([Done = std::move(Done), N] { Done(N); });
  pump();
}

void Pipe::read(size_t MaxLen, fs::ResultCb<std::vector<uint8_t>> Done) {
  if (Buf.empty() && PendingWrites.empty()) {
    if (!hasWriters()) {
      post([Done = std::move(Done)] { Done(std::vector<uint8_t>()); });
      return;
    }
    // Empty: suspend the reader until a write lands (or EOF).
    if (Counters.ReaderSuspends)
      Counters.ReaderSuspends->inc();
    PendingReads.push_back(
        {MaxLen, ContinuationOf<ErrorOr<std::vector<uint8_t>>>::capture(
                     ContCells, std::move(Done), "pipe.read")});
    return;
  }
  // Data may still be parked in a suspended write even when the buffer is
  // momentarily empty; pump() below promotes it, so park and pump.
  if (Buf.empty()) {
    PendingReads.push_back(
        {MaxLen, ContinuationOf<ErrorOr<std::vector<uint8_t>>>::capture(
                     ContCells, std::move(Done), "pipe.read")});
    pump();
    return;
  }
  size_t N = std::min(MaxLen, Buf.size());
  std::vector<uint8_t> Out(Buf.begin(), Buf.begin() + N);
  Buf.erase(Buf.begin(), Buf.begin() + N);
  post([Done = std::move(Done), Out = std::move(Out)]() mutable {
    Done(std::move(Out));
  });
  pump();
}

void Pipe::closeWriter() {
  if (Writers > 0)
    --Writers;
  if (Writers == 0)
    pump(); // Flush EOF to parked readers.
}

void Pipe::closeReader() {
  if (Readers > 0)
    --Readers;
  if (Readers > 0)
    return;
  // Broken pipe: every parked write fails; the buffer's contents have no
  // one left to read them.
  Buf.clear();
  auto Writes = std::move(PendingWrites);
  PendingWrites.clear();
  for (auto &W : Writes)
    postResume([this](std::function<void()> F) { post(std::move(F)); },
               std::move(W.Done),
               ErrorOr<size_t>(ApiError(Errno::Pipe, "pipe")));
}

void Pipe::pump() {
  // Keep the pipe alive across reentrant completions.
  auto Self = shared_from_this();
  bool Progress = true;
  while (Progress) {
    Progress = false;
    // Promote suspended writes into free buffer space.
    while (!PendingWrites.empty() && Buf.size() < Capacity) {
      ParkedWrite W = std::move(PendingWrites.front());
      PendingWrites.pop_front();
      size_t N = std::min(W.Data.size(), Capacity - Buf.size());
      Buf.insert(Buf.end(), W.Data.begin(), W.Data.begin() + N);
      if (Counters.Bytes)
        Counters.Bytes->inc(N);
      // The parked writer resumes through the kernel's I/O lane.
      postResume([this](std::function<void()> F) { post(std::move(F)); },
                 std::move(W.Done), ErrorOr<size_t>(N));
      Progress = true;
    }
    // Satisfy suspended reads from the buffer.
    while (!PendingReads.empty() && !Buf.empty()) {
      ParkedRead R = std::move(PendingReads.front());
      PendingReads.pop_front();
      size_t N = std::min(R.MaxLen, Buf.size());
      std::vector<uint8_t> Out(Buf.begin(), Buf.begin() + N);
      Buf.erase(Buf.begin(), Buf.begin() + N);
      postResume([this](std::function<void()> F) { post(std::move(F)); },
                 std::move(R.Done),
                 ErrorOr<std::vector<uint8_t>>(std::move(Out)));
      Progress = true;
    }
    // EOF parked readers once the last writer is gone and no data or
    // parked data remains.
    if (!hasWriters() && Buf.empty() && PendingWrites.empty()) {
      while (!PendingReads.empty()) {
        ParkedRead R = std::move(PendingReads.front());
        PendingReads.pop_front();
        postResume([this](std::function<void()> F) { post(std::move(F)); },
                   std::move(R.Done),
                   ErrorOr<std::vector<uint8_t>>(std::vector<uint8_t>()));
      }
    }
  }
  (void)Self;
}
