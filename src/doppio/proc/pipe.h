//===- doppio/proc/pipe.h - Bounded in-kernel pipes --------------*- C++ -*-==//
//
// Part of the Doppio reproduction. See README.md.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The IPC primitive of the process subsystem: a bounded byte channel with
/// Unix pipe semantics, scheduled on the kernel's dispatch lanes.
///
///  - A write that finds buffer space appends up to the free space and
///    completes with the byte count (partial writes, like write(2)).
///  - A write that finds the buffer full *suspends*: the completion is
///    parked until a reader frees space — this is the backpressure that
///    keeps a fast producer from outrunning a slow consumer. The resumed
///    completion is posted on the I/O-completion lane, so a writer blocked
///    on a full pipe is literally resumed via the kernel.
///  - A read drains up to the requested length; an empty pipe with live
///    writers parks the reader, and an empty pipe whose last writer closed
///    completes with zero bytes (EOF).
///  - A write with no readers left fails with EPIPE; the fd-table layer
///    translates that into a SIGPIPE for the writing process.
///
/// Single-threaded like everything over the virtual clock: "suspend" means
/// a held callback, never a blocked host thread.
///
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_DOPPIO_PROC_PIPE_H
#define DOPPIO_DOPPIO_PROC_PIPE_H

#include "browser/env.h"
#include "doppio/cont/continuation.h"
#include "doppio/fs_types.h"

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

namespace doppio {
namespace rt {
namespace proc {

/// Aggregate pipe instrumentation, owned by the ProcessTable so every pipe
/// in one table shares cells (the fig7 harness reports table-wide totals).
struct PipeCounters {
  obs::Counter *Bytes = nullptr;           // Bytes moved through pipes.
  obs::Counter *WriterSuspends = nullptr;  // Writes parked on a full pipe.
  obs::Counter *ReaderSuspends = nullptr;  // Reads parked on an empty pipe.
};

/// One bounded pipe. Held by shared_ptr: both descriptor ends and any
/// in-flight completions keep it alive.
class Pipe : public std::enable_shared_from_this<Pipe> {
public:
  static constexpr size_t DefaultCapacity = 4096;

  Pipe(browser::BrowserEnv &Env, size_t Capacity = DefaultCapacity,
       PipeCounters Counters = PipeCounters())
      : Env(Env), Capacity(Capacity ? Capacity : 1), Counters(Counters),
        ContCells(cont::Cells::resolve(Env.metrics())) {}

  Pipe(const Pipe &) = delete;
  Pipe &operator=(const Pipe &) = delete;

  // End-of-pipe reference counts, manipulated by the descriptor objects
  // (dup'ing a pipe fd adds a reference to its end).
  void addWriter() { ++Writers; }
  void addReader() { ++Readers; }
  /// Last-writer close flushes EOF to parked readers.
  void closeWriter();
  /// Last-reader close breaks the pipe: parked and future writes EPIPE.
  void closeReader();

  /// Appends up to the free space; parks when the pipe is full. Completes
  /// with bytes written (possibly fewer than Data.size()), or EPIPE.
  void write(std::vector<uint8_t> Data, fs::ResultCb<size_t> Done);

  /// Drains up to \p MaxLen bytes; parks when empty with live writers.
  /// Completes with an empty vector at EOF.
  void read(size_t MaxLen, fs::ResultCb<std::vector<uint8_t>> Done);

  size_t buffered() const { return Buf.size(); }
  size_t capacity() const { return Capacity; }
  bool hasWriters() const { return Writers > 0; }
  bool hasReaders() const { return Readers > 0; }

private:
  // Parked requests hold the suspended caller as a reified continuation
  // (DESIGN.md §16): backpressure *is* a suspension, and the substrate's
  // one-shot/leak accounting now covers it.
  struct ParkedWrite {
    std::vector<uint8_t> Data;
    ContinuationOf<ErrorOr<size_t>> Done;
  };
  struct ParkedRead {
    size_t MaxLen;
    ContinuationOf<ErrorOr<std::vector<uint8_t>>> Done;
  };

  /// Moves bytes between the buffer and parked requests until nothing
  /// more can make progress, posting completions on the kernel.
  void pump();
  /// All completions go through the I/O-completion lane: pipe progress is
  /// asynchronous I/O, and a parked writer's resumption is a kernel
  /// dispatch like any other.
  template <typename Fn> void post(Fn &&F) {
    Env.loop().post(kernel::Lane::IoCompletion, std::forward<Fn>(F));
  }

  browser::BrowserEnv &Env;
  size_t Capacity;
  PipeCounters Counters;
  cont::Cells ContCells;
  std::deque<uint8_t> Buf;
  std::deque<ParkedWrite> PendingWrites;
  std::deque<ParkedRead> PendingReads;
  uint32_t Writers = 0;
  uint32_t Readers = 0;
};

} // namespace proc
} // namespace rt
} // namespace doppio

#endif // DOPPIO_DOPPIO_PROC_PIPE_H
