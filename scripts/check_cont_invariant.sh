#!/usr/bin/env bash
# Guards the continuation-reification invariant (DESIGN.md §16): resumable
# control state must live in doppio::cont::Continuation objects — which
# serialize for checkpoint/migration — not in opaque std::function<void()>
# callbacks. An opaque callback queued as "the rest of the computation"
# cannot be checkpointed, so any such storage outside src/doppio/cont/
# silently reopens the hole the cont subsystem closed.
#
# Rule A: no container of std::function<void()> anywhere in src/ outside
#         src/doppio/cont/ (a queue of opaque thunks is a resumption store).
# Rule B: no bare std::function<void()> *member* in the suspension-carrying
#         subsystems (suspend/threads/kernel/pipes/process table) — locals
#         and parameters are fine; members persist across a suspend point.
#
# Exit 0 = invariant holds; exit 1 prints every violating line.

set -u
cd "$(dirname "$0")/.."

fail=0

# Rule A: containers of opaque thunks.
rule_a=$(grep -rnE \
  '(std::)?(vector|deque|queue|list|map)<[^>]*std::function<void\(\)>' \
  src/ --include='*.h' --include='*.cpp' \
  | grep -v '^src/doppio/cont/' || true)
if [ -n "$rule_a" ]; then
  echo "error: container of std::function<void()> outside src/doppio/cont/"
  echo "       (resumptions must be reified as cont::Continuation):"
  echo "$rule_a" | sed 's/^/  /'
  fail=1
fi

# Rule B: opaque-thunk members in suspension-carrying subsystems. A member
# declaration is "std::function<void()> Name;" possibly with an
# initializer; parameters/locals don't match because declarations we flag
# end in ';' on the same line and sit at member scope in these files.
suspension_files=$(ls \
  src/doppio/suspend.h src/doppio/suspend.cpp \
  src/doppio/threads.h src/doppio/threads.cpp \
  src/doppio/kernel/*.h src/doppio/kernel/*.cpp \
  src/doppio/proc/pipe.h src/doppio/proc/pipe.cpp \
  src/doppio/proc/proc.h src/doppio/proc/proc.cpp \
  2>/dev/null || true)
if [ -n "$suspension_files" ]; then
  rule_b=$(grep -nE 'std::function<void\(\)>[[:space:]]+[A-Za-z_][A-Za-z0-9_]*([[:space:]]*=[^;]*)?;' \
    $suspension_files || true)
  if [ -n "$rule_b" ]; then
    echo "error: bare std::function<void()> member in a suspension-carrying"
    echo "       subsystem (store a cont::Continuation instead):"
    echo "$rule_b" | sed 's/^/  /'
    fail=1
  fi
fi

if [ "$fail" -eq 0 ]; then
  echo "cont invariant OK: no bare resumption storage outside src/doppio/cont/"
fi
exit "$fail"
