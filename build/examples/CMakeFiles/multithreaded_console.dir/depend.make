# Empty dependencies file for multithreaded_console.
# This may be replaced when dependencies are built.
