file(REMOVE_RECURSE
  "CMakeFiles/multithreaded_console.dir/multithreaded_console.cpp.o"
  "CMakeFiles/multithreaded_console.dir/multithreaded_console.cpp.o.d"
  "multithreaded_console"
  "multithreaded_console.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multithreaded_console.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
