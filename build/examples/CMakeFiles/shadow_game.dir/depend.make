# Empty dependencies file for shadow_game.
# This may be replaced when dependencies are built.
