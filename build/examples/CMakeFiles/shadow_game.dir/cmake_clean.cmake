file(REMOVE_RECURSE
  "CMakeFiles/shadow_game.dir/shadow_game.cpp.o"
  "CMakeFiles/shadow_game.dir/shadow_game.cpp.o.d"
  "shadow_game"
  "shadow_game.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shadow_game.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
