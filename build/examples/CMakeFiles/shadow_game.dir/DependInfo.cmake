
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/shadow_game.cpp" "examples/CMakeFiles/shadow_game.dir/shadow_game.cpp.o" "gcc" "examples/CMakeFiles/shadow_game.dir/shadow_game.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vm32/CMakeFiles/vm32.dir/DependInfo.cmake"
  "/root/repo/build/src/doppio/CMakeFiles/doppio_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/browser/CMakeFiles/browser.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
