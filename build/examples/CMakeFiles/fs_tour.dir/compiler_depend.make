# Empty compiler generated dependencies file for fs_tour.
# This may be replaced when dependencies are built.
