file(REMOVE_RECURSE
  "CMakeFiles/fs_tour.dir/fs_tour.cpp.o"
  "CMakeFiles/fs_tour.dir/fs_tour.cpp.o.d"
  "fs_tour"
  "fs_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fs_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
