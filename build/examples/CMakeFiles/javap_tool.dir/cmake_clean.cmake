file(REMOVE_RECURSE
  "CMakeFiles/javap_tool.dir/javap_tool.cpp.o"
  "CMakeFiles/javap_tool.dir/javap_tool.cpp.o.d"
  "javap_tool"
  "javap_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/javap_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
