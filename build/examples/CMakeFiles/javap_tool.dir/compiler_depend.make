# Empty compiler generated dependencies file for javap_tool.
# This may be replaced when dependencies are built.
