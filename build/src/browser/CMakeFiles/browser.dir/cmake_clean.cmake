file(REMOVE_RECURSE
  "CMakeFiles/browser.dir/event_loop.cpp.o"
  "CMakeFiles/browser.dir/event_loop.cpp.o.d"
  "CMakeFiles/browser.dir/js_string.cpp.o"
  "CMakeFiles/browser.dir/js_string.cpp.o.d"
  "CMakeFiles/browser.dir/message_channel.cpp.o"
  "CMakeFiles/browser.dir/message_channel.cpp.o.d"
  "CMakeFiles/browser.dir/profile.cpp.o"
  "CMakeFiles/browser.dir/profile.cpp.o.d"
  "CMakeFiles/browser.dir/simnet.cpp.o"
  "CMakeFiles/browser.dir/simnet.cpp.o.d"
  "CMakeFiles/browser.dir/storage.cpp.o"
  "CMakeFiles/browser.dir/storage.cpp.o.d"
  "CMakeFiles/browser.dir/websocket.cpp.o"
  "CMakeFiles/browser.dir/websocket.cpp.o.d"
  "CMakeFiles/browser.dir/xhr.cpp.o"
  "CMakeFiles/browser.dir/xhr.cpp.o.d"
  "libbrowser.a"
  "libbrowser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/browser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
