file(REMOVE_RECURSE
  "libbrowser.a"
)
