
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/browser/event_loop.cpp" "src/browser/CMakeFiles/browser.dir/event_loop.cpp.o" "gcc" "src/browser/CMakeFiles/browser.dir/event_loop.cpp.o.d"
  "/root/repo/src/browser/js_string.cpp" "src/browser/CMakeFiles/browser.dir/js_string.cpp.o" "gcc" "src/browser/CMakeFiles/browser.dir/js_string.cpp.o.d"
  "/root/repo/src/browser/message_channel.cpp" "src/browser/CMakeFiles/browser.dir/message_channel.cpp.o" "gcc" "src/browser/CMakeFiles/browser.dir/message_channel.cpp.o.d"
  "/root/repo/src/browser/profile.cpp" "src/browser/CMakeFiles/browser.dir/profile.cpp.o" "gcc" "src/browser/CMakeFiles/browser.dir/profile.cpp.o.d"
  "/root/repo/src/browser/simnet.cpp" "src/browser/CMakeFiles/browser.dir/simnet.cpp.o" "gcc" "src/browser/CMakeFiles/browser.dir/simnet.cpp.o.d"
  "/root/repo/src/browser/storage.cpp" "src/browser/CMakeFiles/browser.dir/storage.cpp.o" "gcc" "src/browser/CMakeFiles/browser.dir/storage.cpp.o.d"
  "/root/repo/src/browser/websocket.cpp" "src/browser/CMakeFiles/browser.dir/websocket.cpp.o" "gcc" "src/browser/CMakeFiles/browser.dir/websocket.cpp.o.d"
  "/root/repo/src/browser/xhr.cpp" "src/browser/CMakeFiles/browser.dir/xhr.cpp.o" "gcc" "src/browser/CMakeFiles/browser.dir/xhr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
