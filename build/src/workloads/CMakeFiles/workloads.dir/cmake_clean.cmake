file(REMOVE_RECURSE
  "CMakeFiles/workloads.dir/fstrace.cpp.o"
  "CMakeFiles/workloads.dir/fstrace.cpp.o.d"
  "CMakeFiles/workloads.dir/workloads.cpp.o"
  "CMakeFiles/workloads.dir/workloads.cpp.o.d"
  "libworkloads.a"
  "libworkloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
