file(REMOVE_RECURSE
  "CMakeFiles/vm32.dir/game.cpp.o"
  "CMakeFiles/vm32.dir/game.cpp.o.d"
  "CMakeFiles/vm32.dir/minivm.cpp.o"
  "CMakeFiles/vm32.dir/minivm.cpp.o.d"
  "libvm32.a"
  "libvm32.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm32.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
