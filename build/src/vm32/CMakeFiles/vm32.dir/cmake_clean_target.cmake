file(REMOVE_RECURSE
  "libvm32.a"
)
