# Empty compiler generated dependencies file for vm32.
# This may be replaced when dependencies are built.
