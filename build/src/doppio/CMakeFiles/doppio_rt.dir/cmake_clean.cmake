file(REMOVE_RECURSE
  "CMakeFiles/doppio_rt.dir/backends/in_memory.cpp.o"
  "CMakeFiles/doppio_rt.dir/backends/in_memory.cpp.o.d"
  "CMakeFiles/doppio_rt.dir/backends/kv_backend.cpp.o"
  "CMakeFiles/doppio_rt.dir/backends/kv_backend.cpp.o.d"
  "CMakeFiles/doppio_rt.dir/backends/kv_store.cpp.o"
  "CMakeFiles/doppio_rt.dir/backends/kv_store.cpp.o.d"
  "CMakeFiles/doppio_rt.dir/backends/mountable.cpp.o"
  "CMakeFiles/doppio_rt.dir/backends/mountable.cpp.o.d"
  "CMakeFiles/doppio_rt.dir/backends/xhr_fs.cpp.o"
  "CMakeFiles/doppio_rt.dir/backends/xhr_fs.cpp.o.d"
  "CMakeFiles/doppio_rt.dir/buffer.cpp.o"
  "CMakeFiles/doppio_rt.dir/buffer.cpp.o.d"
  "CMakeFiles/doppio_rt.dir/errors.cpp.o"
  "CMakeFiles/doppio_rt.dir/errors.cpp.o.d"
  "CMakeFiles/doppio_rt.dir/fs.cpp.o"
  "CMakeFiles/doppio_rt.dir/fs.cpp.o.d"
  "CMakeFiles/doppio_rt.dir/fs_backend.cpp.o"
  "CMakeFiles/doppio_rt.dir/fs_backend.cpp.o.d"
  "CMakeFiles/doppio_rt.dir/heap.cpp.o"
  "CMakeFiles/doppio_rt.dir/heap.cpp.o.d"
  "CMakeFiles/doppio_rt.dir/path.cpp.o"
  "CMakeFiles/doppio_rt.dir/path.cpp.o.d"
  "CMakeFiles/doppio_rt.dir/suspend.cpp.o"
  "CMakeFiles/doppio_rt.dir/suspend.cpp.o.d"
  "CMakeFiles/doppio_rt.dir/threads.cpp.o"
  "CMakeFiles/doppio_rt.dir/threads.cpp.o.d"
  "libdoppio_rt.a"
  "libdoppio_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doppio_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
