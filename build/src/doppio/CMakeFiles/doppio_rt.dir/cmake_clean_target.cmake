file(REMOVE_RECURSE
  "libdoppio_rt.a"
)
