# Empty compiler generated dependencies file for doppio_rt.
# This may be replaced when dependencies are built.
