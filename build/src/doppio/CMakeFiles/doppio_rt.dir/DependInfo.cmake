
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/doppio/backends/in_memory.cpp" "src/doppio/CMakeFiles/doppio_rt.dir/backends/in_memory.cpp.o" "gcc" "src/doppio/CMakeFiles/doppio_rt.dir/backends/in_memory.cpp.o.d"
  "/root/repo/src/doppio/backends/kv_backend.cpp" "src/doppio/CMakeFiles/doppio_rt.dir/backends/kv_backend.cpp.o" "gcc" "src/doppio/CMakeFiles/doppio_rt.dir/backends/kv_backend.cpp.o.d"
  "/root/repo/src/doppio/backends/kv_store.cpp" "src/doppio/CMakeFiles/doppio_rt.dir/backends/kv_store.cpp.o" "gcc" "src/doppio/CMakeFiles/doppio_rt.dir/backends/kv_store.cpp.o.d"
  "/root/repo/src/doppio/backends/mountable.cpp" "src/doppio/CMakeFiles/doppio_rt.dir/backends/mountable.cpp.o" "gcc" "src/doppio/CMakeFiles/doppio_rt.dir/backends/mountable.cpp.o.d"
  "/root/repo/src/doppio/backends/xhr_fs.cpp" "src/doppio/CMakeFiles/doppio_rt.dir/backends/xhr_fs.cpp.o" "gcc" "src/doppio/CMakeFiles/doppio_rt.dir/backends/xhr_fs.cpp.o.d"
  "/root/repo/src/doppio/buffer.cpp" "src/doppio/CMakeFiles/doppio_rt.dir/buffer.cpp.o" "gcc" "src/doppio/CMakeFiles/doppio_rt.dir/buffer.cpp.o.d"
  "/root/repo/src/doppio/errors.cpp" "src/doppio/CMakeFiles/doppio_rt.dir/errors.cpp.o" "gcc" "src/doppio/CMakeFiles/doppio_rt.dir/errors.cpp.o.d"
  "/root/repo/src/doppio/fs.cpp" "src/doppio/CMakeFiles/doppio_rt.dir/fs.cpp.o" "gcc" "src/doppio/CMakeFiles/doppio_rt.dir/fs.cpp.o.d"
  "/root/repo/src/doppio/fs_backend.cpp" "src/doppio/CMakeFiles/doppio_rt.dir/fs_backend.cpp.o" "gcc" "src/doppio/CMakeFiles/doppio_rt.dir/fs_backend.cpp.o.d"
  "/root/repo/src/doppio/heap.cpp" "src/doppio/CMakeFiles/doppio_rt.dir/heap.cpp.o" "gcc" "src/doppio/CMakeFiles/doppio_rt.dir/heap.cpp.o.d"
  "/root/repo/src/doppio/path.cpp" "src/doppio/CMakeFiles/doppio_rt.dir/path.cpp.o" "gcc" "src/doppio/CMakeFiles/doppio_rt.dir/path.cpp.o.d"
  "/root/repo/src/doppio/suspend.cpp" "src/doppio/CMakeFiles/doppio_rt.dir/suspend.cpp.o" "gcc" "src/doppio/CMakeFiles/doppio_rt.dir/suspend.cpp.o.d"
  "/root/repo/src/doppio/threads.cpp" "src/doppio/CMakeFiles/doppio_rt.dir/threads.cpp.o" "gcc" "src/doppio/CMakeFiles/doppio_rt.dir/threads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/browser/CMakeFiles/browser.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
