file(REMOVE_RECURSE
  "libjvm.a"
)
