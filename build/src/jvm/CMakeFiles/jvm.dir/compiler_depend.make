# Empty compiler generated dependencies file for jvm.
# This may be replaced when dependencies are built.
