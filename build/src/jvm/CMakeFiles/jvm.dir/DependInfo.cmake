
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/jvm/classfile/builder.cpp" "src/jvm/CMakeFiles/jvm.dir/classfile/builder.cpp.o" "gcc" "src/jvm/CMakeFiles/jvm.dir/classfile/builder.cpp.o.d"
  "/root/repo/src/jvm/classfile/constant_pool.cpp" "src/jvm/CMakeFiles/jvm.dir/classfile/constant_pool.cpp.o" "gcc" "src/jvm/CMakeFiles/jvm.dir/classfile/constant_pool.cpp.o.d"
  "/root/repo/src/jvm/classfile/descriptor.cpp" "src/jvm/CMakeFiles/jvm.dir/classfile/descriptor.cpp.o" "gcc" "src/jvm/CMakeFiles/jvm.dir/classfile/descriptor.cpp.o.d"
  "/root/repo/src/jvm/classfile/disasm.cpp" "src/jvm/CMakeFiles/jvm.dir/classfile/disasm.cpp.o" "gcc" "src/jvm/CMakeFiles/jvm.dir/classfile/disasm.cpp.o.d"
  "/root/repo/src/jvm/classfile/opcodes.cpp" "src/jvm/CMakeFiles/jvm.dir/classfile/opcodes.cpp.o" "gcc" "src/jvm/CMakeFiles/jvm.dir/classfile/opcodes.cpp.o.d"
  "/root/repo/src/jvm/classfile/reader.cpp" "src/jvm/CMakeFiles/jvm.dir/classfile/reader.cpp.o" "gcc" "src/jvm/CMakeFiles/jvm.dir/classfile/reader.cpp.o.d"
  "/root/repo/src/jvm/classfile/verifier.cpp" "src/jvm/CMakeFiles/jvm.dir/classfile/verifier.cpp.o" "gcc" "src/jvm/CMakeFiles/jvm.dir/classfile/verifier.cpp.o.d"
  "/root/repo/src/jvm/classfile/writer.cpp" "src/jvm/CMakeFiles/jvm.dir/classfile/writer.cpp.o" "gcc" "src/jvm/CMakeFiles/jvm.dir/classfile/writer.cpp.o.d"
  "/root/repo/src/jvm/classloader.cpp" "src/jvm/CMakeFiles/jvm.dir/classloader.cpp.o" "gcc" "src/jvm/CMakeFiles/jvm.dir/classloader.cpp.o.d"
  "/root/repo/src/jvm/interpreter.cpp" "src/jvm/CMakeFiles/jvm.dir/interpreter.cpp.o" "gcc" "src/jvm/CMakeFiles/jvm.dir/interpreter.cpp.o.d"
  "/root/repo/src/jvm/jcl.cpp" "src/jvm/CMakeFiles/jvm.dir/jcl.cpp.o" "gcc" "src/jvm/CMakeFiles/jvm.dir/jcl.cpp.o.d"
  "/root/repo/src/jvm/jvm.cpp" "src/jvm/CMakeFiles/jvm.dir/jvm.cpp.o" "gcc" "src/jvm/CMakeFiles/jvm.dir/jvm.cpp.o.d"
  "/root/repo/src/jvm/klass.cpp" "src/jvm/CMakeFiles/jvm.dir/klass.cpp.o" "gcc" "src/jvm/CMakeFiles/jvm.dir/klass.cpp.o.d"
  "/root/repo/src/jvm/long64.cpp" "src/jvm/CMakeFiles/jvm.dir/long64.cpp.o" "gcc" "src/jvm/CMakeFiles/jvm.dir/long64.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/doppio/CMakeFiles/doppio_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/browser/CMakeFiles/browser.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
