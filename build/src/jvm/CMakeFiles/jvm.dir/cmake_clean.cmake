file(REMOVE_RECURSE
  "CMakeFiles/jvm.dir/classfile/builder.cpp.o"
  "CMakeFiles/jvm.dir/classfile/builder.cpp.o.d"
  "CMakeFiles/jvm.dir/classfile/constant_pool.cpp.o"
  "CMakeFiles/jvm.dir/classfile/constant_pool.cpp.o.d"
  "CMakeFiles/jvm.dir/classfile/descriptor.cpp.o"
  "CMakeFiles/jvm.dir/classfile/descriptor.cpp.o.d"
  "CMakeFiles/jvm.dir/classfile/disasm.cpp.o"
  "CMakeFiles/jvm.dir/classfile/disasm.cpp.o.d"
  "CMakeFiles/jvm.dir/classfile/opcodes.cpp.o"
  "CMakeFiles/jvm.dir/classfile/opcodes.cpp.o.d"
  "CMakeFiles/jvm.dir/classfile/reader.cpp.o"
  "CMakeFiles/jvm.dir/classfile/reader.cpp.o.d"
  "CMakeFiles/jvm.dir/classfile/verifier.cpp.o"
  "CMakeFiles/jvm.dir/classfile/verifier.cpp.o.d"
  "CMakeFiles/jvm.dir/classfile/writer.cpp.o"
  "CMakeFiles/jvm.dir/classfile/writer.cpp.o.d"
  "CMakeFiles/jvm.dir/classloader.cpp.o"
  "CMakeFiles/jvm.dir/classloader.cpp.o.d"
  "CMakeFiles/jvm.dir/interpreter.cpp.o"
  "CMakeFiles/jvm.dir/interpreter.cpp.o.d"
  "CMakeFiles/jvm.dir/jcl.cpp.o"
  "CMakeFiles/jvm.dir/jcl.cpp.o.d"
  "CMakeFiles/jvm.dir/jvm.cpp.o"
  "CMakeFiles/jvm.dir/jvm.cpp.o.d"
  "CMakeFiles/jvm.dir/klass.cpp.o"
  "CMakeFiles/jvm.dir/klass.cpp.o.d"
  "CMakeFiles/jvm.dir/long64.cpp.o"
  "CMakeFiles/jvm.dir/long64.cpp.o.d"
  "libjvm.a"
  "libjvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
