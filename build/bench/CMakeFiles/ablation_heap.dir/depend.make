# Empty dependencies file for ablation_heap.
# This may be replaced when dependencies are built.
