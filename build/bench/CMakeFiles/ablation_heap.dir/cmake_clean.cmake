file(REMOVE_RECURSE
  "CMakeFiles/ablation_heap.dir/ablation_heap.cpp.o"
  "CMakeFiles/ablation_heap.dir/ablation_heap.cpp.o.d"
  "ablation_heap"
  "ablation_heap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_heap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
