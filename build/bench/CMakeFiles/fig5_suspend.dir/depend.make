# Empty dependencies file for fig5_suspend.
# This may be replaced when dependencies are built.
