file(REMOVE_RECURSE
  "CMakeFiles/fig5_suspend.dir/fig5_suspend.cpp.o"
  "CMakeFiles/fig5_suspend.dir/fig5_suspend.cpp.o.d"
  "fig5_suspend"
  "fig5_suspend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_suspend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
