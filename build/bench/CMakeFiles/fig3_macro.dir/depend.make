# Empty dependencies file for fig3_macro.
# This may be replaced when dependencies are built.
