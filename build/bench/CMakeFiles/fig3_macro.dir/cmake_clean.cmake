file(REMOVE_RECURSE
  "CMakeFiles/fig3_macro.dir/fig3_macro.cpp.o"
  "CMakeFiles/fig3_macro.dir/fig3_macro.cpp.o.d"
  "fig3_macro"
  "fig3_macro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_macro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
