file(REMOVE_RECURSE
  "CMakeFiles/fig6_fs.dir/fig6_fs.cpp.o"
  "CMakeFiles/fig6_fs.dir/fig6_fs.cpp.o.d"
  "fig6_fs"
  "fig6_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
