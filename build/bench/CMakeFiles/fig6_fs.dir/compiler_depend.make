# Empty compiler generated dependencies file for fig6_fs.
# This may be replaced when dependencies are built.
