file(REMOVE_RECURSE
  "CMakeFiles/vm32_test.dir/vm32/vm32_test.cpp.o"
  "CMakeFiles/vm32_test.dir/vm32/vm32_test.cpp.o.d"
  "vm32_test"
  "vm32_test.pdb"
  "vm32_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm32_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
