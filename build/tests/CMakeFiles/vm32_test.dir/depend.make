# Empty dependencies file for vm32_test.
# This may be replaced when dependencies are built.
