
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/browser/event_loop_test.cpp" "tests/CMakeFiles/browser_test.dir/browser/event_loop_test.cpp.o" "gcc" "tests/CMakeFiles/browser_test.dir/browser/event_loop_test.cpp.o.d"
  "/root/repo/tests/browser/js_string_test.cpp" "tests/CMakeFiles/browser_test.dir/browser/js_string_test.cpp.o" "gcc" "tests/CMakeFiles/browser_test.dir/browser/js_string_test.cpp.o.d"
  "/root/repo/tests/browser/storage_test.cpp" "tests/CMakeFiles/browser_test.dir/browser/storage_test.cpp.o" "gcc" "tests/CMakeFiles/browser_test.dir/browser/storage_test.cpp.o.d"
  "/root/repo/tests/browser/websocket_test.cpp" "tests/CMakeFiles/browser_test.dir/browser/websocket_test.cpp.o" "gcc" "tests/CMakeFiles/browser_test.dir/browser/websocket_test.cpp.o.d"
  "/root/repo/tests/browser/xhr_test.cpp" "tests/CMakeFiles/browser_test.dir/browser/xhr_test.cpp.o" "gcc" "tests/CMakeFiles/browser_test.dir/browser/xhr_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/browser/CMakeFiles/browser.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
