file(REMOVE_RECURSE
  "CMakeFiles/doppio_test.dir/doppio/buffer_test.cpp.o"
  "CMakeFiles/doppio_test.dir/doppio/buffer_test.cpp.o.d"
  "CMakeFiles/doppio_test.dir/doppio/fs_test.cpp.o"
  "CMakeFiles/doppio_test.dir/doppio/fs_test.cpp.o.d"
  "CMakeFiles/doppio_test.dir/doppio/heap_test.cpp.o"
  "CMakeFiles/doppio_test.dir/doppio/heap_test.cpp.o.d"
  "CMakeFiles/doppio_test.dir/doppio/path_test.cpp.o"
  "CMakeFiles/doppio_test.dir/doppio/path_test.cpp.o.d"
  "CMakeFiles/doppio_test.dir/doppio/sockets_test.cpp.o"
  "CMakeFiles/doppio_test.dir/doppio/sockets_test.cpp.o.d"
  "CMakeFiles/doppio_test.dir/doppio/suspend_test.cpp.o"
  "CMakeFiles/doppio_test.dir/doppio/suspend_test.cpp.o.d"
  "doppio_test"
  "doppio_test.pdb"
  "doppio_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doppio_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
