
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/doppio/buffer_test.cpp" "tests/CMakeFiles/doppio_test.dir/doppio/buffer_test.cpp.o" "gcc" "tests/CMakeFiles/doppio_test.dir/doppio/buffer_test.cpp.o.d"
  "/root/repo/tests/doppio/fs_test.cpp" "tests/CMakeFiles/doppio_test.dir/doppio/fs_test.cpp.o" "gcc" "tests/CMakeFiles/doppio_test.dir/doppio/fs_test.cpp.o.d"
  "/root/repo/tests/doppio/heap_test.cpp" "tests/CMakeFiles/doppio_test.dir/doppio/heap_test.cpp.o" "gcc" "tests/CMakeFiles/doppio_test.dir/doppio/heap_test.cpp.o.d"
  "/root/repo/tests/doppio/path_test.cpp" "tests/CMakeFiles/doppio_test.dir/doppio/path_test.cpp.o" "gcc" "tests/CMakeFiles/doppio_test.dir/doppio/path_test.cpp.o.d"
  "/root/repo/tests/doppio/sockets_test.cpp" "tests/CMakeFiles/doppio_test.dir/doppio/sockets_test.cpp.o" "gcc" "tests/CMakeFiles/doppio_test.dir/doppio/sockets_test.cpp.o.d"
  "/root/repo/tests/doppio/suspend_test.cpp" "tests/CMakeFiles/doppio_test.dir/doppio/suspend_test.cpp.o" "gcc" "tests/CMakeFiles/doppio_test.dir/doppio/suspend_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/doppio/CMakeFiles/doppio_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/browser/CMakeFiles/browser.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
