# Empty compiler generated dependencies file for doppio_test.
# This may be replaced when dependencies are built.
