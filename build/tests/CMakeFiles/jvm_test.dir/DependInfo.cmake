
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/jvm/classfile_test.cpp" "tests/CMakeFiles/jvm_test.dir/jvm/classfile_test.cpp.o" "gcc" "tests/CMakeFiles/jvm_test.dir/jvm/classfile_test.cpp.o.d"
  "/root/repo/tests/jvm/fstrace_test.cpp" "tests/CMakeFiles/jvm_test.dir/jvm/fstrace_test.cpp.o" "gcc" "tests/CMakeFiles/jvm_test.dir/jvm/fstrace_test.cpp.o.d"
  "/root/repo/tests/jvm/interpreter_test.cpp" "tests/CMakeFiles/jvm_test.dir/jvm/interpreter_test.cpp.o" "gcc" "tests/CMakeFiles/jvm_test.dir/jvm/interpreter_test.cpp.o.d"
  "/root/repo/tests/jvm/long64_test.cpp" "tests/CMakeFiles/jvm_test.dir/jvm/long64_test.cpp.o" "gcc" "tests/CMakeFiles/jvm_test.dir/jvm/long64_test.cpp.o.d"
  "/root/repo/tests/jvm/opcode_edge_test.cpp" "tests/CMakeFiles/jvm_test.dir/jvm/opcode_edge_test.cpp.o" "gcc" "tests/CMakeFiles/jvm_test.dir/jvm/opcode_edge_test.cpp.o.d"
  "/root/repo/tests/jvm/threads_test.cpp" "tests/CMakeFiles/jvm_test.dir/jvm/threads_test.cpp.o" "gcc" "tests/CMakeFiles/jvm_test.dir/jvm/threads_test.cpp.o.d"
  "/root/repo/tests/jvm/verifier_test.cpp" "tests/CMakeFiles/jvm_test.dir/jvm/verifier_test.cpp.o" "gcc" "tests/CMakeFiles/jvm_test.dir/jvm/verifier_test.cpp.o.d"
  "/root/repo/tests/jvm/workloads_test.cpp" "tests/CMakeFiles/jvm_test.dir/jvm/workloads_test.cpp.o" "gcc" "tests/CMakeFiles/jvm_test.dir/jvm/workloads_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/jvm/CMakeFiles/jvm.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/doppio/CMakeFiles/doppio_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/browser/CMakeFiles/browser.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
