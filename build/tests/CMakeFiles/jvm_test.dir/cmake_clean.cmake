file(REMOVE_RECURSE
  "CMakeFiles/jvm_test.dir/jvm/classfile_test.cpp.o"
  "CMakeFiles/jvm_test.dir/jvm/classfile_test.cpp.o.d"
  "CMakeFiles/jvm_test.dir/jvm/fstrace_test.cpp.o"
  "CMakeFiles/jvm_test.dir/jvm/fstrace_test.cpp.o.d"
  "CMakeFiles/jvm_test.dir/jvm/interpreter_test.cpp.o"
  "CMakeFiles/jvm_test.dir/jvm/interpreter_test.cpp.o.d"
  "CMakeFiles/jvm_test.dir/jvm/long64_test.cpp.o"
  "CMakeFiles/jvm_test.dir/jvm/long64_test.cpp.o.d"
  "CMakeFiles/jvm_test.dir/jvm/opcode_edge_test.cpp.o"
  "CMakeFiles/jvm_test.dir/jvm/opcode_edge_test.cpp.o.d"
  "CMakeFiles/jvm_test.dir/jvm/threads_test.cpp.o"
  "CMakeFiles/jvm_test.dir/jvm/threads_test.cpp.o.d"
  "CMakeFiles/jvm_test.dir/jvm/verifier_test.cpp.o"
  "CMakeFiles/jvm_test.dir/jvm/verifier_test.cpp.o.d"
  "CMakeFiles/jvm_test.dir/jvm/workloads_test.cpp.o"
  "CMakeFiles/jvm_test.dir/jvm/workloads_test.cpp.o.d"
  "jvm_test"
  "jvm_test.pdb"
  "jvm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jvm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
