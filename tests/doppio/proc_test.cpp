//===- tests/doppio/proc_test.cpp -----------------------------------------==//
//
// The process subsystem (src/doppio/proc/, DESIGN.md §14): pids and
// parent/child links, zombies and waitpid reaping, per-process fd tables
// (dup/dup2, EBADF), bounded pipes with writer/reader backpressure,
// signal delivery (kill, SIGCHLD, SIGPIPE), exec image replacement, the
// doppiod spawn handler, and the acceptance pipeline — a JVM producer
// piped through native filters on every browser profile.
//
// Registered under `ctest -L proc`.
//
//===----------------------------------------------------------------------===//

#include "doppio/backends/in_memory.h"
#include "doppio/fs.h"
#include "doppio/proc/programs.h"
#include "doppio/server/client.h"
#include "doppio/server/handlers.h"
#include "doppio/server/server.h"
#include "jvm/classfile/builder.h"
#include "jvm/proc_program.h"

#include "gtest/gtest.h"

#include <map>

using namespace doppio;
using namespace doppio::rt;
namespace proc = doppio::rt::proc;
namespace server = doppio::rt::server;

namespace {

std::vector<uint8_t> bytesOf(const std::string &S) {
  return std::vector<uint8_t>(S.begin(), S.end());
}

std::string str(const std::vector<uint8_t> &B) {
  return std::string(B.begin(), B.end());
}

/// One browser hosting a process table over a seeded in-memory fs, with
/// the stock native programs and a bare "sh" process to parent children.
struct ProcRig {
  explicit ProcRig(const browser::Profile &P = browser::chromeProfile())
      : Env(P) {
    auto RootB = std::make_unique<fs::InMemoryBackend>(Env);
    Root = RootB.get();
    Fs = std::make_unique<fs::FileSystem>(Env, KernelState, std::move(RootB));
    Procs = std::make_unique<proc::ProcessTable>(Env, *Fs);
    proc::installCorePrograms(Progs);
    proc::ProcessTable::SpawnSpec S;
    S.Name = "sh";
    Sh = Procs->spawn(std::move(S));
  }

  proc::Process &sh() { return *Procs->find(Sh); }

  /// Spawns `a | b | c`-style \p Line with every stage parented to sh.
  std::vector<proc::Pid>
  pipeline(const std::string &Line,
           size_t PipeCapacity = proc::ProcessTable::DefaultPipeCapacity) {
    std::vector<proc::ProcessTable::SpawnSpec> Stages;
    size_t Start = 0;
    while (Start <= Line.size()) {
      size_t Bar = Line.find('|', Start);
      std::vector<std::string> Argv = proc::tokenize(Line.substr(
          Start, Bar == std::string::npos ? std::string::npos : Bar - Start));
      proc::ProcessTable::SpawnSpec S;
      S.Name = Argv.empty() ? "?" : Argv[0];
      S.Parent = Sh;
      S.Prog = Progs.create(Argv);
      EXPECT_TRUE(S.Prog) << Line;
      Stages.push_back(std::move(S));
      if (Bar == std::string::npos)
        break;
      Start = Bar + 1;
    }
    return Procs->spawnPipeline(std::move(Stages), PipeCapacity);
  }

  /// Parks a waiter for \p P, recording the result.
  void collect(proc::Pid P, std::map<proc::Pid, proc::WaitResult> &Into) {
    Procs->waitpid(Sh, P, [&Into](ErrorOr<proc::WaitResult> W) {
      ASSERT_TRUE(W.ok());
      Into[W->P] = *W;
    });
  }

  browser::BrowserEnv Env;
  rt::Process KernelState;
  fs::InMemoryBackend *Root = nullptr;
  std::unique_ptr<fs::FileSystem> Fs;
  std::unique_ptr<proc::ProcessTable> Procs;
  proc::ProgramRegistry Progs;
  proc::Pid Sh = 0;
};

//===----------------------------------------------------------------------===//
// Pipes: bounded buffering, backpressure, EOF, EPIPE
//===----------------------------------------------------------------------===//

TEST(ProcPipe, WriterParksOnFullPipeAndResumesThroughTheKernel) {
  ProcRig R;
  auto P = R.Procs->makePipe(4);
  P->addWriter();
  P->addReader();

  // Fills the pipe: partial write, completes with the accepted count.
  size_t W1 = 0;
  P->write(bytesOf("abcdef"), [&](ErrorOr<size_t> N) { W1 = *N; });
  R.Env.loop().run();
  EXPECT_EQ(W1, 4u);
  EXPECT_EQ(P->buffered(), 4u);

  // Full: this write suspends — no completion even after the loop drains.
  bool W2Done = false;
  size_t W2 = 0;
  uint64_t SuspendsBefore = R.Procs->pipeWriterSuspends();
  P->write(bytesOf("gh"), [&](ErrorOr<size_t> N) {
    W2Done = true;
    W2 = *N;
  });
  R.Env.loop().run();
  EXPECT_FALSE(W2Done);
  EXPECT_EQ(R.Procs->pipeWriterSuspends(), SuspendsBefore + 1);

  // A read frees space; the parked writer resumes as a kernel dispatch.
  std::string Got;
  P->read(16, [&](ErrorOr<std::vector<uint8_t>> B) { Got = str(*B); });
  R.Env.loop().run();
  EXPECT_EQ(Got, "abcd");
  EXPECT_TRUE(W2Done);
  EXPECT_EQ(W2, 2u);
  EXPECT_GE(R.Procs->pipeBytes(), 6u);

  // EOF: last-writer close flushes parked readers with an empty result.
  bool SawEof = false;
  uint64_t ReaderSuspendsBefore = R.Procs->pipeReaderSuspends();
  P->read(16, [&](ErrorOr<std::vector<uint8_t>> B) { Got = str(*B); });
  P->read(16, [&](ErrorOr<std::vector<uint8_t>> B) {
    SawEof = B.ok() && B->empty();
  });
  R.Env.loop().run();
  EXPECT_EQ(Got, "gh");
  EXPECT_FALSE(SawEof); // Parked: a writer is still open.
  EXPECT_EQ(R.Procs->pipeReaderSuspends(), ReaderSuspendsBefore + 1);
  P->closeWriter();
  R.Env.loop().run();
  EXPECT_TRUE(SawEof);
}

TEST(ProcPipe, LastReaderCloseBreaksThePipe) {
  ProcRig R;
  auto P = R.Procs->makePipe(2);
  P->addWriter();
  P->addReader();

  // One parked write, then the reader goes away: both the parked and any
  // later write fail with EPIPE.
  P->write(bytesOf("xx"), [](ErrorOr<size_t>) {});
  std::optional<Errno> ParkedErr, LateErr;
  P->write(bytesOf("yy"), [&](ErrorOr<size_t> N) {
    if (!N.ok())
      ParkedErr = N.error().Code;
  });
  P->closeReader();
  P->write(bytesOf("zz"), [&](ErrorOr<size_t> N) {
    if (!N.ok())
      LateErr = N.error().Code;
  });
  R.Env.loop().run();
  EXPECT_EQ(ParkedErr, Errno::Pipe);
  EXPECT_EQ(LateErr, Errno::Pipe);
}

//===----------------------------------------------------------------------===//
// Fd tables: open/dup/dup2 aliasing, EBADF
//===----------------------------------------------------------------------===//

TEST(ProcFdTable, DupAliasesShareTheCursorAndBadFdsError) {
  ProcRig R;
  proc::FdTable &Fds = R.sh().fds();

  int Fd = -1;
  R.Fs->mkdirp("/tmp", [](std::optional<ApiError>) {});
  R.Env.loop().run();
  Fds.open(*R.Fs, "/tmp/out.txt", "w",
           [&](ErrorOr<int> F) { Fd = *F; });
  R.Env.loop().run();
  ASSERT_GE(Fd, 3); // 0/1/2 are stdio.

  // dup takes the lowest free slot; dup2 lands exactly where asked. All
  // three aliases share one description — and one file cursor.
  ErrorOr<int> Dup = Fds.dup(Fd);
  ASSERT_TRUE(Dup.ok());
  ErrorOr<int> Dup2 = Fds.dup2(Fd, 10);
  ASSERT_TRUE(Dup2.ok());
  EXPECT_EQ(*Dup2, 10);

  Fds.writeAll(Fd, bytesOf("ab"), nullptr);
  R.Env.loop().run();
  Fds.writeAll(*Dup, bytesOf("cd"), nullptr);
  R.Env.loop().run();
  Fds.writeAll(10, bytesOf("ef"), nullptr);
  R.Env.loop().run();
  Fds.close(Fd);
  Fds.close(*Dup);
  Fds.close(10);
  R.Env.loop().run();

  std::string Contents;
  R.Fs->readFile("/tmp/out.txt", [&](ErrorOr<std::vector<uint8_t>> B) {
    Contents = str(*B);
  });
  R.Env.loop().run();
  EXPECT_EQ(Contents, "abcdef");

  // EBADF surfaces on every entry point.
  EXPECT_FALSE(Fds.dup(99).ok());
  EXPECT_FALSE(Fds.dup2(99, 3).ok());
  std::optional<Errno> ReadErr, WriteErr;
  Fds.read(99, 16, [&](ErrorOr<std::vector<uint8_t>> B) {
    ReadErr = B.error().Code;
  });
  Fds.write(99, bytesOf("x"), [&](ErrorOr<size_t> N) {
    WriteErr = N.error().Code;
  });
  // Reading process stdout (write-only description) is EBADF too.
  std::optional<Errno> StdoutReadErr;
  Fds.read(1, 16, [&](ErrorOr<std::vector<uint8_t>> B) {
    StdoutReadErr = B.error().Code;
  });
  R.Env.loop().run();
  EXPECT_EQ(ReadErr, Errno::BadFd);
  EXPECT_EQ(WriteErr, Errno::BadFd);
  EXPECT_EQ(StdoutReadErr, Errno::BadFd);
}

TEST(ProcFdTable, DefaultStdinDrainsThePushStdinQueue) {
  ProcRig R;
  proc::ProcessTable::SpawnSpec S;
  S.Name = "grep";
  S.Parent = R.Sh;
  S.Prog = R.Progs.create({"grep", "tick"});
  proc::Pid P = R.Procs->spawn(std::move(S));
  // The program starts on a later dispatch; queue its input first.
  R.Procs->find(P)->state().pushStdin("tick one");
  R.Procs->find(P)->state().pushStdin("nope");
  R.Procs->find(P)->state().pushStdin("tick two");

  std::map<proc::Pid, proc::WaitResult> Results;
  R.collect(P, Results);
  R.Env.loop().run();
  ASSERT_EQ(Results.count(P), 1u);
  EXPECT_EQ(Results[P].ExitCode, 0);
  EXPECT_EQ(R.Procs->find(P)->state().capturedStdout(),
            "tick one\ntick two\n");
}

//===----------------------------------------------------------------------===//
// Zombies and waitpid
//===----------------------------------------------------------------------===//

TEST(ProcWait, ZombiesParkUntilWaitedAndReapedPidsAreEchild) {
  ProcRig R;
  proc::ProcessTable::SpawnSpec S;
  S.Name = "echo";
  S.Parent = R.Sh;
  S.Prog = R.Progs.create({"echo", "hi"});
  proc::Pid P = R.Procs->spawn(std::move(S));
  R.Env.loop().run();

  // Exited, parent alive, nobody waiting: a zombie, stdout retained.
  ASSERT_NE(R.Procs->find(P), nullptr);
  EXPECT_TRUE(R.Procs->find(P)->zombie());
  EXPECT_EQ(R.Procs->zombies(), 1u);
  EXPECT_EQ(R.Procs->find(P)->state().capturedStdout(), "hi\n");

  std::map<proc::Pid, proc::WaitResult> Results;
  R.collect(P, Results);
  R.Env.loop().run();
  ASSERT_EQ(Results.count(P), 1u);
  EXPECT_EQ(Results[P].ExitCode, 0);
  EXPECT_FALSE(Results[P].Signaled);
  EXPECT_EQ(R.Procs->zombies(), 0u);
  // The reaped record stays addressable (captured stdio outlives reap).
  ASSERT_NE(R.Procs->find(P), nullptr);
  EXPECT_EQ(R.Procs->find(P)->state().capturedStdout(), "hi\n");

  // Waiting again — or with no children at all — is ECHILD.
  std::optional<Errno> Again, NoKids;
  R.Procs->waitpid(R.Sh, P, [&](ErrorOr<proc::WaitResult> W) {
    Again = W.error().Code;
  });
  R.Procs->waitpid(R.Sh, -1, [&](ErrorOr<proc::WaitResult> W) {
    NoKids = W.error().Code;
  });
  R.Env.loop().run();
  EXPECT_EQ(Again, Errno::Child);
  EXPECT_EQ(NoKids, Errno::Child);
}

TEST(ProcWait, SomeoneElsesChildIsEchildAndInitChildrenAutoReap) {
  ProcRig R;
  // Another bare shell, with a child of its own.
  proc::ProcessTable::SpawnSpec S2;
  S2.Name = "sh2";
  proc::Pid Sh2 = R.Procs->spawn(std::move(S2));
  proc::ProcessTable::SpawnSpec C;
  C.Name = "echo";
  C.Parent = Sh2;
  C.Prog = R.Progs.create({"echo", "x"});
  proc::Pid Other = R.Procs->spawn(std::move(C));
  R.Env.loop().run();

  std::optional<Errno> NotMine;
  R.Procs->waitpid(R.Sh, Other, [&](ErrorOr<proc::WaitResult> W) {
    NotMine = W.error().Code;
  });
  R.Env.loop().run();
  EXPECT_EQ(NotMine, Errno::Child);
  // Still a zombie for its real parent.
  EXPECT_EQ(R.Procs->zombies(), 1u);
  std::map<proc::Pid, proc::WaitResult> Results;
  R.Procs->waitpid(Sh2, -1, [&](ErrorOr<proc::WaitResult> W) {
    ASSERT_TRUE(W.ok());
    Results[W->P] = *W;
  });
  R.Env.loop().run();
  EXPECT_EQ(Results.count(Other), 1u);
  EXPECT_EQ(R.Procs->zombies(), 0u);

  // Children of init (the spawn default) never linger: init doesn't wait,
  // so they are reaped at exit.
  uint64_t ReapedBefore = R.Procs->reaped();
  proc::ProcessTable::SpawnSpec I;
  I.Name = "echo";
  I.Prog = R.Progs.create({"echo", "orphan"});
  R.Procs->spawn(std::move(I));
  R.Env.loop().run();
  EXPECT_EQ(R.Procs->zombies(), 0u);
  EXPECT_EQ(R.Procs->reaped(), ReapedBefore + 1);
}

//===----------------------------------------------------------------------===//
// Signals
//===----------------------------------------------------------------------===//

/// Spawns `pause` reading a pipe we hold the write end of, so it stays
/// parked until a signal arrives.
proc::Pid spawnBlockedPause(ProcRig &R, std::shared_ptr<proc::OpenFile> &Hold) {
  auto P = R.Procs->makePipe();
  proc::ProcessTable::SpawnSpec S;
  S.Name = "pause";
  S.Parent = R.Sh;
  S.Prog = R.Progs.create({"pause"});
  S.Fds.emplace_back(0, std::make_shared<proc::PipeReadEnd>(P));
  Hold = std::make_shared<proc::PipeWriteEnd>(P);
  return R.Procs->spawn(std::move(S));
}

TEST(ProcSignal, KillTerminatesWithTheSignalAndUnknownPidsAreEsrch) {
  ProcRig R;
  std::shared_ptr<proc::OpenFile> Hold;
  proc::Pid P = spawnBlockedPause(R, Hold);
  R.Env.loop().run();
  ASSERT_TRUE(R.Procs->find(P)->alive()); // Parked on the empty pipe.

  EXPECT_FALSE(R.Procs->kill(4242, proc::Signal::Term)); // ESRCH.

  EXPECT_TRUE(R.Procs->kill(P, proc::Signal::Term));
  std::map<proc::Pid, proc::WaitResult> Results;
  R.collect(P, Results);
  R.Env.loop().run();
  ASSERT_EQ(Results.count(P), 1u);
  EXPECT_TRUE(Results[P].Signaled);
  EXPECT_EQ(Results[P].Sig, proc::Signal::Term);
  EXPECT_EQ(Results[P].ExitCode, 128 + 15);
  EXPECT_FALSE(R.Procs->kill(P, proc::Signal::Term)); // Dead: ESRCH.
}

TEST(ProcSignal, InstalledHandlersOverrideTheDefaultDisposition) {
  ProcRig R;
  std::shared_ptr<proc::OpenFile> Hold;
  proc::Pid P = spawnBlockedPause(R, Hold);
  int Ints = 0;
  R.Procs->find(P)->onSignal(proc::Signal::Int,
                             [&Ints](proc::Signal) { ++Ints; });
  uint64_t DeliveredBefore = R.Procs->signalsDelivered();

  EXPECT_TRUE(R.Procs->kill(P, proc::Signal::Int));
  R.Env.loop().run();
  EXPECT_EQ(Ints, 1);
  EXPECT_TRUE(R.Procs->find(P)->alive()); // Handled, not terminated.
  EXPECT_EQ(R.Procs->signalsDelivered(), DeliveredBefore + 1);

  EXPECT_TRUE(R.Procs->kill(P, proc::Signal::Kill)); // Uncatchable.
  std::map<proc::Pid, proc::WaitResult> Results;
  R.collect(P, Results);
  R.Env.loop().run();
  ASSERT_EQ(Results.count(P), 1u);
  EXPECT_EQ(Results[P].Sig, proc::Signal::Kill);
}

TEST(ProcSignal, SigpipeTerminatesAProducerWhoseReaderExitedEarly) {
  ProcRig R;
  // Far more data than the pipe holds, and a consumer that stops after
  // one line: cat is still writing when head closes the read end.
  std::string Big;
  for (int I = 0; I < 500; ++I)
    Big += "line " + std::to_string(I) + "\n";
  R.Root->seedFile("/data/big.txt", bytesOf(Big));

  std::vector<proc::Pid> Pids = R.pipeline("cat /data/big.txt | head -n 1", 64);
  std::map<proc::Pid, proc::WaitResult> Results;
  for (proc::Pid P : Pids)
    R.collect(P, Results);
  R.Env.loop().run();

  ASSERT_EQ(Results.size(), 2u);
  EXPECT_EQ(Results[Pids[1]].ExitCode, 0); // head: clean exit.
  EXPECT_EQ(R.Procs->find(Pids[1])->state().capturedStdout(), "line 0\n");
  EXPECT_TRUE(Results[Pids[0]].Signaled); // cat: killed by SIGPIPE.
  EXPECT_EQ(Results[Pids[0]].Sig, proc::Signal::Pipe);
  EXPECT_EQ(Results[Pids[0]].ExitCode, 128 + 13);
  EXPECT_EQ(R.Procs->zombies(), 0u);
}

//===----------------------------------------------------------------------===//
// exec
//===----------------------------------------------------------------------===//

TEST(ProcExec, ReplacesTheImageKeepingThePidAndIgnoresTheStaleExit) {
  ProcRig R;
  std::shared_ptr<proc::OpenFile> Hold;
  proc::Pid P = spawnBlockedPause(R, Hold);
  R.Env.loop().run();
  ASSERT_TRUE(R.Procs->find(P)->alive());

  // Replace the parked pause with an echo. The old image's eventual EOF
  // completion (its fd 0 closes with the process) must not double-exit.
  ASSERT_TRUE(R.Procs->exec(P, R.Progs.create({"echo", "second", "image"})));
  std::map<proc::Pid, proc::WaitResult> Results;
  R.collect(P, Results);
  R.Env.loop().run();
  ASSERT_EQ(Results.count(P), 1u);
  EXPECT_EQ(Results[P].ExitCode, 0);
  EXPECT_FALSE(Results[P].Signaled);
  EXPECT_EQ(R.Procs->find(P)->state().capturedStdout(), "second image\n");

  EXPECT_FALSE(R.Procs->exec(P, R.Progs.create({"echo"}))); // Reaped.
}

TEST(ProcExec, BeforeTheOldImageStartsOnlyTheNewOneRuns) {
  ProcRig R;
  proc::ProcessTable::SpawnSpec S;
  S.Name = "echo";
  S.Parent = R.Sh;
  S.Prog = R.Progs.create({"echo", "old"});
  proc::Pid P = R.Procs->spawn(std::move(S));
  // Same dispatch as the spawn: the old image never gets to start.
  ASSERT_TRUE(R.Procs->exec(P, R.Progs.create({"echo", "new"})));
  std::map<proc::Pid, proc::WaitResult> Results;
  R.collect(P, Results);
  R.Env.loop().run();
  ASSERT_EQ(Results.count(P), 1u);
  EXPECT_EQ(R.Procs->find(P)->state().capturedStdout(), "new\n");
}

//===----------------------------------------------------------------------===//
// Pipelines
//===----------------------------------------------------------------------===//

TEST(ProcPipeline, BackpressureThrottlesAFastProducer) {
  ProcRig R;
  std::string Big(200 * 41, 'x');
  for (size_t I = 40; I < Big.size(); I += 41)
    Big[I] = '\n';
  R.Root->seedFile("/data/big.txt", bytesOf(Big));

  uint64_t SuspendsBefore = R.Procs->pipeWriterSuspends();
  uint64_t BytesBefore = R.Procs->pipeBytes();
  // cat reads 4 KB chunks but the pipes hold 64 bytes: every chunk write
  // parks repeatedly until grep drains.
  std::vector<proc::Pid> Pids =
      R.pipeline("cat /data/big.txt | grep x | wc", 64);
  std::map<proc::Pid, proc::WaitResult> Results;
  for (proc::Pid P : Pids)
    R.collect(P, Results);
  R.Env.loop().run();

  ASSERT_EQ(Results.size(), 3u);
  for (proc::Pid P : Pids) {
    EXPECT_EQ(Results[P].ExitCode, 0) << "pid " << P;
    EXPECT_FALSE(Results[P].Signaled);
  }
  EXPECT_EQ(R.Procs->find(Pids[2])->state().capturedStdout(), "200 8200\n");
  EXPECT_GT(R.Procs->pipeWriterSuspends(), SuspendsBefore);
  // Both pipes moved the whole stream.
  EXPECT_GE(R.Procs->pipeBytes() - BytesBefore, 2 * Big.size());
  EXPECT_EQ(R.Procs->zombies(), 0u);
}

/// class Produce { public static void main(String[] a) {
///   for (int i = 0; i < 20; i++) { System.out.println("tick from jvm");
///                                  System.out.println("noise"); } } }
std::vector<uint8_t> produceClassBytes() {
  jvm::ClassBuilder B("Produce");
  jvm::MethodBuilder &M =
      B.method(jvm::AccPublic | jvm::AccStatic, "main",
               "([Ljava/lang/String;)V");
  jvm::MethodBuilder::Label Loop = M.newLabel(), Done = M.newLabel();
  M.iconst(0)
      .istore(1)
      .bind(Loop)
      .iload(1)
      .iconst(20)
      .branch(jvm::Op::IfIcmpge, Done)
      .getstatic("java/lang/System", "out", "Ljava/io/PrintStream;")
      .ldcString("tick from jvm")
      .invokevirtual("java/io/PrintStream", "println",
                     "(Ljava/lang/String;)V")
      .getstatic("java/lang/System", "out", "Ljava/io/PrintStream;")
      .ldcString("noise")
      .invokevirtual("java/io/PrintStream", "println",
                     "(Ljava/lang/String;)V")
      .iinc(1, 1)
      .branch(jvm::Op::Goto, Loop)
      .bind(Done)
      .op(jvm::Op::Return);
  return B.bytes();
}

// The acceptance pipeline: a JVM producer piped through native filters on
// every browser profile, with SIGCHLD-driven reaping — the parent has no
// waiter parked when its children exit; its SIGCHLD handler is what
// issues the reaping waitpids.
TEST(ProcPipeline, JvmProducerThroughNativeFiltersOnAllProfiles) {
  for (const browser::Profile &P : browser::allProfiles()) {
    SCOPED_TRACE(P.Name);
    ProcRig R(P);
    R.Root->seedFile("/classes/Produce.class", produceClassBytes());

    std::vector<proc::ProcessTable::SpawnSpec> Stages(3);
    Stages[0].Name = "java";
    Stages[0].Parent = R.Sh;
    Stages[0].Prog = jvm::makeJvmProgram({"Produce", {}, jvm::JvmOptions()});
    Stages[1].Name = "grep";
    Stages[1].Parent = R.Sh;
    Stages[1].Prog = R.Progs.create({"grep", "tick"});
    Stages[2].Name = "wc";
    Stages[2].Parent = R.Sh;
    Stages[2].Prog = R.Progs.create({"wc"});
    std::vector<proc::Pid> Pids =
        R.Procs->spawnPipeline(std::move(Stages), 64);

    int Chlds = 0;
    std::map<proc::Pid, proc::WaitResult> Results;
    R.sh().onSignal(proc::Signal::Chld, [&](proc::Signal) {
      ++Chlds;
      R.Procs->waitpid(R.Sh, -1, [&](ErrorOr<proc::WaitResult> W) {
        ASSERT_TRUE(W.ok());
        Results[W->P] = *W;
      });
    });
    uint64_t BytesBefore = R.Procs->pipeBytes();
    R.Env.loop().run();

    EXPECT_EQ(Chlds, 3);
    ASSERT_EQ(Results.size(), 3u);
    for (proc::Pid Pd : Pids) {
      EXPECT_EQ(Results[Pd].ExitCode, 0) << "pid " << Pd;
      EXPECT_FALSE(Results[Pd].Signaled);
    }
    // 20 "tick from jvm\n" lines survive grep: 20 lines, 280 bytes.
    EXPECT_EQ(R.Procs->find(Pids[2])->state().capturedStdout(), "20 280\n");
    EXPECT_GT(R.Procs->pipeBytes(), BytesBefore);
    EXPECT_EQ(R.Procs->zombies(), 0u);
    EXPECT_GE(R.Procs->reaped(), 3u);
  }
}

//===----------------------------------------------------------------------===//
// The doppiod spawn handler
//===----------------------------------------------------------------------===//

TEST(ProcServer, SpawnHandlerRoundTripsPipelineOutput) {
  ProcRig R;
  server::Server::Config Cfg;
  Cfg.Port = 7100;
  Cfg.Backlog = 8;
  Cfg.MaxConnections = 8;
  Cfg.IdleTimeoutNs = browser::msToNs(500);
  server::Server Srv(R.Env, Cfg);
  server::installDefaultHandlers(Srv.router(), *R.Fs, &R.Env.metrics(),
                                 R.Procs.get(), &R.Progs);
  ASSERT_TRUE(Srv.start());

  server::FrameClient C(R.Env.net());
  std::optional<server::frame::Status> OkStatus, BadStatus;
  std::string Body, BadBody;
  C.connect(Cfg.Port, [&](bool Ok) {
    ASSERT_TRUE(Ok);
    C.request("spawn", bytesOf("echo hello doppio | upper"),
              [&](server::frame::Response Resp) {
                OkStatus = Resp.S;
                Body = Resp.text();
                C.request("spawn", bytesOf("nosuchprogram"),
                          [&](server::frame::Response Bad) {
                            BadStatus = Bad.S;
                            BadBody = Bad.text();
                            C.close();
                            Srv.shutdown(nullptr);
                          });
              });
  });
  R.Env.loop().run();

  EXPECT_EQ(OkStatus, server::frame::Status::Ok);
  EXPECT_EQ(Body, "HELLO DOPPIO\n");
  EXPECT_EQ(BadStatus, server::frame::Status::BadRequest);
  EXPECT_NE(BadBody.find("nosuchprogram"), std::string::npos);
  EXPECT_EQ(R.Procs->zombies(), 0u);
}

//===----------------------------------------------------------------------===//
// Observability
//===----------------------------------------------------------------------===//

TEST(ProcObs, PerProcessMetricsAndSpawnSpans) {
  ProcRig R;
  proc::ProcessTable::SpawnSpec S;
  S.Name = "echo";
  S.Parent = R.Sh;
  S.Prog = R.Progs.create({"echo", "observed"});
  proc::Pid P = R.Procs->spawn(std::move(S));
  std::map<proc::Pid, proc::WaitResult> Results;
  R.collect(P, Results);
  R.Env.loop().run();

  // Per-process cells under "proc.p<pid>".
  obs::Registry &Reg = R.Env.metrics();
  std::string Prefix = R.Procs->metricPrefix() + ".p" + std::to_string(P);
  EXPECT_GE(Reg.counter(Prefix + ".bytes_out").value(), 9u);
  EXPECT_EQ(Reg.gauge(Prefix + ".alive").value(), 0);

  // A finished spawn -> exit span named after the process (the finished
  // ring only holds ended spans; the idle virtual clock may leave the
  // end timestamp at zero).
  bool SawSpan = false;
  for (const obs::Span &Sp : Reg.spans().recent())
    if (Sp.Name == R.Procs->metricPrefix() + ".spawn.echo")
      SawSpan = true;
  EXPECT_TRUE(SawSpan);
}

} // namespace
