//===- tests/doppio/fs_test.cpp -------------------------------------------==//
//
// File system tests (§5.1), parameterized across every writable backend:
// the same POSIX-ish semantics must hold over in-memory storage,
// localStorage, IndexedDB, and cloud storage. Separate suites cover the
// read-only XHR backend, the mountable file system, and the fs frontend's
// derived operations.
//
//===----------------------------------------------------------------------===//

#include "doppio/backends/in_memory.h"
#include "doppio/backends/kv_backend.h"
#include "doppio/backends/kv_store.h"
#include "doppio/backends/mountable.h"
#include "doppio/backends/xhr_fs.h"
#include "doppio/fs.h"

#include "gtest/gtest.h"

#include <memory>

using namespace doppio;
using namespace doppio::rt;
using namespace doppio::rt::fs;
using namespace doppio::browser;

namespace {

std::vector<uint8_t> bytesOf(const std::string &S) {
  return std::vector<uint8_t>(S.begin(), S.end());
}

std::string textOf(const std::vector<uint8_t> &B) {
  return std::string(B.begin(), B.end());
}

/// Creates the backend named by the test parameter.
std::unique_ptr<FileSystemBackend> makeBackend(BrowserEnv &Env,
                                               const std::string &Name) {
  if (Name == "inmemory")
    return std::make_unique<InMemoryBackend>(Env);
  std::unique_ptr<AsyncKvStore> Store;
  if (Name == "localstorage")
    Store = std::make_unique<LocalStorageKv>(Env);
  else if (Name == "indexeddb")
    Store = std::make_unique<IndexedDbKv>(Env);
  else if (Name == "cloud")
    Store = std::make_unique<CloudKv>(Env);
  auto Backend = std::make_unique<KeyValueBackend>(Env, std::move(Store));
  bool Ready = false;
  Backend->initialize([&Ready](std::optional<ApiError> Err) {
    ASSERT_FALSE(Err.has_value()) << Err->message();
    Ready = true;
  });
  Env.loop().run();
  EXPECT_TRUE(Ready);
  return Backend;
}

class BackendSemantics : public ::testing::TestWithParam<std::string> {
protected:
  BackendSemantics()
      : Env(chromeProfile()),
        Fs(Env, Proc, makeBackend(Env, GetParam())) {}

  // Synchronous-looking wrappers: issue the async op, drain the loop,
  // return the result.
  std::optional<ApiError> writeFile(const std::string &P,
                                    const std::string &Text) {
    std::optional<ApiError> Out(ApiError(Errno::Io, "not completed"));
    Fs.writeFile(P, bytesOf(Text),
                 [&](std::optional<ApiError> E) { Out = E; });
    Env.loop().run();
    return Out;
  }

  ErrorOr<std::vector<uint8_t>> readFile(const std::string &P) {
    ErrorOr<std::vector<uint8_t>> Out(ApiError(Errno::Io, "not completed"));
    Fs.readFile(P, [&](ErrorOr<std::vector<uint8_t>> R) { Out = R; });
    Env.loop().run();
    return Out;
  }

  ErrorOr<Stats> stat(const std::string &P) {
    ErrorOr<Stats> Out(ApiError(Errno::Io, "not completed"));
    Fs.stat(P, [&](ErrorOr<Stats> R) { Out = R; });
    Env.loop().run();
    return Out;
  }

  std::optional<ApiError> run(std::function<void(CompletionCb)> Op) {
    std::optional<ApiError> Out(ApiError(Errno::Io, "not completed"));
    Op([&](std::optional<ApiError> E) { Out = E; });
    Env.loop().run();
    return Out;
  }

  ErrorOr<std::vector<std::string>> readdir(const std::string &P) {
    ErrorOr<std::vector<std::string>> Out(
        ApiError(Errno::Io, "not completed"));
    Fs.readdir(P, [&](ErrorOr<std::vector<std::string>> R) { Out = R; });
    Env.loop().run();
    return Out;
  }

  BrowserEnv Env;
  Process Proc;
  FileSystem Fs;
};

TEST_P(BackendSemantics, WriteThenReadRoundTrip) {
  EXPECT_FALSE(writeFile("/hello.txt", "Hello, Doppio!"));
  auto R = readFile("/hello.txt");
  ASSERT_TRUE(R.ok()) << R.error().message();
  EXPECT_EQ(textOf(*R), "Hello, Doppio!");
}

TEST_P(BackendSemantics, ReadMissingFileIsEnoent) {
  auto R = readFile("/missing");
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.error().Code, Errno::NoEnt);
}

TEST_P(BackendSemantics, OverwriteReplacesContents) {
  writeFile("/f", "first version, quite long");
  writeFile("/f", "second");
  auto R = readFile("/f");
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(textOf(*R), "second");
}

TEST_P(BackendSemantics, StatReportsTypeAndSize) {
  writeFile("/data.bin", "12345678");
  auto S = stat("/data.bin");
  ASSERT_TRUE(S.ok());
  EXPECT_TRUE(S->isFile());
  EXPECT_EQ(S->SizeBytes, 8u);
  auto Root = stat("/");
  ASSERT_TRUE(Root.ok());
  EXPECT_TRUE(Root->isDirectory());
  auto Missing = stat("/nope");
  ASSERT_FALSE(Missing.ok());
  EXPECT_EQ(Missing.error().Code, Errno::NoEnt);
}

TEST_P(BackendSemantics, MkdirReaddirRmdir) {
  EXPECT_FALSE(run([&](CompletionCb D) { Fs.mkdir("/dir", D); }));
  auto Again = run([&](CompletionCb D) { Fs.mkdir("/dir", D); });
  ASSERT_TRUE(Again.has_value());
  EXPECT_EQ(Again->Code, Errno::Exists);
  writeFile("/dir/a", "a");
  writeFile("/dir/b", "b");
  auto Listing = readdir("/dir");
  ASSERT_TRUE(Listing.ok());
  EXPECT_EQ(*Listing, (std::vector<std::string>{"a", "b"}));
  auto NotEmpty = run([&](CompletionCb D) { Fs.rmdir("/dir", D); });
  ASSERT_TRUE(NotEmpty.has_value());
  EXPECT_EQ(NotEmpty->Code, Errno::NotEmpty);
  run([&](CompletionCb D) { Fs.unlink("/dir/a", D); });
  run([&](CompletionCb D) { Fs.unlink("/dir/b", D); });
  EXPECT_FALSE(run([&](CompletionCb D) { Fs.rmdir("/dir", D); }));
  EXPECT_EQ(stat("/dir").error().Code, Errno::NoEnt);
}

TEST_P(BackendSemantics, MkdirInMissingParentIsEnoent) {
  auto R = run([&](CompletionCb D) { Fs.mkdir("/no/such/parent", D); });
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(R->Code, Errno::NoEnt);
}

TEST_P(BackendSemantics, ReaddirOnFileIsEnotdir) {
  writeFile("/plain", "x");
  auto R = readdir("/plain");
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.error().Code, Errno::NotDir);
}

TEST_P(BackendSemantics, UnlinkRemovesFile) {
  writeFile("/doomed", "bits");
  EXPECT_FALSE(run([&](CompletionCb D) { Fs.unlink("/doomed", D); }));
  EXPECT_EQ(readFile("/doomed").error().Code, Errno::NoEnt);
  auto Again = run([&](CompletionCb D) { Fs.unlink("/doomed", D); });
  EXPECT_EQ(Again->Code, Errno::NoEnt);
}

TEST_P(BackendSemantics, UnlinkDirectoryIsEisdir) {
  run([&](CompletionCb D) { Fs.mkdir("/d", D); });
  auto R = run([&](CompletionCb D) { Fs.unlink("/d", D); });
  EXPECT_EQ(R->Code, Errno::IsDir);
}

TEST_P(BackendSemantics, RenameFile) {
  writeFile("/old", "payload");
  EXPECT_FALSE(run([&](CompletionCb D) { Fs.rename("/old", "/new", D); }));
  EXPECT_EQ(readFile("/old").error().Code, Errno::NoEnt);
  EXPECT_EQ(textOf(*readFile("/new")), "payload");
}

TEST_P(BackendSemantics, RenameOverwritesExistingFile) {
  writeFile("/src", "fresh");
  writeFile("/dst", "stale");
  EXPECT_FALSE(run([&](CompletionCb D) { Fs.rename("/src", "/dst", D); }));
  EXPECT_EQ(textOf(*readFile("/dst")), "fresh");
}

TEST_P(BackendSemantics, RenameDirectoryMovesSubtree) {
  run([&](CompletionCb D) { Fs.mkdir("/a", D); });
  run([&](CompletionCb D) { Fs.mkdir("/a/sub", D); });
  writeFile("/a/f1", "one");
  writeFile("/a/sub/f2", "two");
  EXPECT_FALSE(run([&](CompletionCb D) { Fs.rename("/a", "/b", D); }));
  EXPECT_EQ(textOf(*readFile("/b/f1")), "one");
  EXPECT_EQ(textOf(*readFile("/b/sub/f2")), "two");
  EXPECT_EQ(stat("/a").error().Code, Errno::NoEnt);
}

TEST_P(BackendSemantics, RenameMissingSourceIsEnoent) {
  auto R = run([&](CompletionCb D) { Fs.rename("/ghost", "/x", D); });
  EXPECT_EQ(R->Code, Errno::NoEnt);
}

TEST_P(BackendSemantics, ExclusiveOpenFailsOnExistingFile) {
  writeFile("/f", "here");
  ErrorOr<FdPtr> Out(ApiError(Errno::Io, "pending"));
  Fs.open("/f", "wx", [&](ErrorOr<FdPtr> R) { Out = R; });
  Env.loop().run();
  ASSERT_FALSE(Out.ok());
  EXPECT_EQ(Out.error().Code, Errno::Exists);
}

TEST_P(BackendSemantics, OpenDirectoryIsEisdir) {
  run([&](CompletionCb D) { Fs.mkdir("/d", D); });
  ErrorOr<FdPtr> Out(ApiError(Errno::Io, "pending"));
  Fs.open("/d", "r", [&](ErrorOr<FdPtr> R) { Out = R; });
  Env.loop().run();
  ASSERT_FALSE(Out.ok());
  EXPECT_EQ(Out.error().Code, Errno::IsDir);
}

TEST_P(BackendSemantics, AppendFileExtends) {
  writeFile("/log", "one\n");
  std::optional<ApiError> E(ApiError(Errno::Io, "pending"));
  Fs.appendFile("/log", bytesOf("two\n"),
                [&](std::optional<ApiError> R) { E = R; });
  Env.loop().run();
  EXPECT_FALSE(E.has_value());
  EXPECT_EQ(textOf(*readFile("/log")), "one\ntwo\n");
}

TEST_P(BackendSemantics, SyncOnCloseMakesWritesDurable) {
  // §5.1: NFS-style sync-on-close. Writes through a descriptor become
  // visible to a fresh open only after close.
  ErrorOr<FdPtr> FdR(ApiError(Errno::Io, "pending"));
  Fs.open("/file", "w", [&](ErrorOr<FdPtr> R) { FdR = R; });
  Env.loop().run();
  ASSERT_TRUE(FdR.ok());
  FdPtr Fd = *FdR;
  Buffer Src = Buffer::fromString(Env, js::fromAscii("durable"),
                                  Encoding::Ascii);
  Fd->write(Src, 0, Src.size(), 0, [](ErrorOr<size_t>) {});
  Env.loop().run();
  bool Closed = false;
  Fd->close([&](std::optional<ApiError> E) {
    EXPECT_FALSE(E.has_value());
    Closed = true;
  });
  Env.loop().run();
  EXPECT_TRUE(Closed);
  EXPECT_EQ(textOf(*readFile("/file")), "durable");
  // Using a closed descriptor fails.
  Buffer Dst(Env, 4);
  ErrorOr<size_t> After(ApiError(Errno::Io, "pending"));
  Fd->read(Dst, 0, 4, 0, [&](ErrorOr<size_t> R) { After = R; });
  Env.loop().run();
  ASSERT_FALSE(After.ok());
  EXPECT_EQ(After.error().Code, Errno::BadFd);
}

TEST_P(BackendSemantics, PositionalReads) {
  writeFile("/f", "0123456789");
  ErrorOr<FdPtr> FdR(ApiError(Errno::Io, "pending"));
  Fs.open("/f", "r", [&](ErrorOr<FdPtr> R) { FdR = R; });
  Env.loop().run();
  ASSERT_TRUE(FdR.ok());
  Buffer Dst(Env, 4);
  ErrorOr<size_t> N(ApiError(Errno::Io, "pending"));
  (*FdR)->read(Dst, 0, 4, 3, [&](ErrorOr<size_t> R) { N = R; });
  Env.loop().run();
  ASSERT_TRUE(N.ok());
  EXPECT_EQ(*N, 4u);
  EXPECT_EQ(js::toAscii(Dst.toString(Encoding::Ascii)), "3456");
  // Read at EOF yields 0 bytes.
  (*FdR)->read(Dst, 0, 4, 10, [&](ErrorOr<size_t> R) { N = R; });
  Env.loop().run();
  ASSERT_TRUE(N.ok());
  EXPECT_EQ(*N, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BackendSemantics,
                         ::testing::Values("inmemory", "localstorage",
                                           "indexeddb", "cloud"),
                         [](const auto &Info) { return Info.param; });

//===--------------------------------------------------------------------===//
// Backend-specific behaviour
//===--------------------------------------------------------------------===//

TEST(LocalStorageBackend, PersistsAcrossBackendInstances) {
  // Model a page reload: a new backend over the same localStorage sees the
  // previously written files via the persisted index.
  BrowserEnv Env(chromeProfile());
  Process Proc;
  {
    FileSystem Fs(Env, Proc,
                  [&] {
                    auto B = std::make_unique<KeyValueBackend>(
                        Env, std::make_unique<LocalStorageKv>(Env));
                    B->initialize([](std::optional<ApiError>) {});
                    return B;
                  }());
    Fs.mkdir("/saves", [](std::optional<ApiError>) {});
    Fs.writeFile("/saves/slot1", bytesOf("progress"),
                 [](std::optional<ApiError>) {});
    Env.loop().run();
  }
  auto Reloaded = std::make_unique<KeyValueBackend>(
      Env, std::make_unique<LocalStorageKv>(Env));
  Reloaded->initialize([](std::optional<ApiError>) {});
  Env.loop().run();
  FileSystem Fs2(Env, Proc, std::move(Reloaded));
  ErrorOr<std::vector<uint8_t>> R(ApiError(Errno::Io, "pending"));
  Fs2.readFile("/saves/slot1",
               [&](ErrorOr<std::vector<uint8_t>> X) { R = X; });
  Env.loop().run();
  ASSERT_TRUE(R.ok()) << R.error().message();
  EXPECT_EQ(textOf(*R), "progress");
}

TEST(LocalStorageBackend, QuotaSurfacesAsEnospc) {
  BrowserEnv Env(chromeProfile());
  Process Proc;
  auto B = std::make_unique<KeyValueBackend>(
      Env, std::make_unique<LocalStorageKv>(Env));
  B->initialize([](std::optional<ApiError>) {});
  FileSystem Fs(Env, Proc, std::move(B));
  // localStorage holds 5 MB of UTF-16; a 6 MB file cannot fit.
  std::optional<ApiError> E;
  Fs.writeFile("/big", std::vector<uint8_t>(6u << 20, 1),
               [&](std::optional<ApiError> R) { E = R; });
  Env.loop().run();
  ASSERT_TRUE(E.has_value());
  EXPECT_EQ(E->Code, Errno::NoSpace);
}

TEST(XhrBackendTest, ListsAndLazilyDownloads) {
  BrowserEnv Env(chromeProfile());
  Env.server().addFile("/cls/java/lang/Object.class", bytesOf("OBJ"));
  Env.server().addFile("/cls/java/lang/String.class", bytesOf("STR"));
  Env.server().addFile("/cls/Main.class", bytesOf("MAIN"));
  XhrBackend Backend(Env, "/cls");
  // The index knows the structure without any downloads (§6.4).
  EXPECT_EQ(Backend.downloadsIssued(), 0u);
  ErrorOr<Stats> S(ApiError(Errno::Io, "pending"));
  Backend.stat("/java/lang/Object.class", [&](ErrorOr<Stats> R) { S = R; });
  ASSERT_TRUE(S.ok());
  EXPECT_EQ(S->SizeBytes, 3u);
  EXPECT_EQ(Backend.downloadsIssued(), 0u);
  // Opening downloads the one file, not the whole library.
  ErrorOr<FdPtr> Fd(ApiError(Errno::Io, "pending"));
  Backend.open("/Main.class", OpenFlags::readOnly(),
               [&](ErrorOr<FdPtr> R) { Fd = R; });
  Env.loop().run();
  ASSERT_TRUE(Fd.ok());
  EXPECT_EQ(Backend.downloadsIssued(), 1u);
  Buffer Dst(Env, 4);
  (*Fd)->read(Dst, 0, 4, 0, [](ErrorOr<size_t>) {});
  Env.loop().run();
  EXPECT_EQ(js::toAscii(Dst.toString(Encoding::Ascii)), "MAIN");
  // A second open is served from cache.
  Backend.open("/Main.class", OpenFlags::readOnly(),
               [](ErrorOr<FdPtr>) {});
  Env.loop().run();
  EXPECT_EQ(Backend.downloadsIssued(), 1u);
  EXPECT_EQ(Backend.cacheHits(), 1u);
}

TEST(XhrBackendTest, WritesAreErofs) {
  BrowserEnv Env(chromeProfile());
  Env.server().addFile("/cls/F", bytesOf("F"));
  XhrBackend Backend(Env, "/cls");
  std::optional<ApiError> E;
  Backend.unlink("/F", [&](std::optional<ApiError> R) { E = R; });
  ASSERT_TRUE(E.has_value());
  EXPECT_EQ(E->Code, Errno::ReadOnlyFs);
  ErrorOr<FdPtr> Fd(ApiError(Errno::Io, "pending"));
  Backend.open("/F", OpenFlags::writeOnly(),
               [&](ErrorOr<FdPtr> R) { Fd = R; });
  Env.loop().run();
  ASSERT_FALSE(Fd.ok());
  EXPECT_EQ(Fd.error().Code, Errno::ReadOnlyFs);
}

//===--------------------------------------------------------------------===//
// MountableFileSystem (§5.1)
//===--------------------------------------------------------------------===//

class MountableTest : public ::testing::Test {
protected:
  MountableTest() : Env(chromeProfile()) {
    auto Root = std::make_unique<InMemoryBackend>(Env);
    RootRaw = Root.get();
    auto Mounted = std::make_unique<MountableFileSystem>(std::move(Root));
    Mnt = Mounted.get();
    auto Tmp = std::make_unique<InMemoryBackend>(Env);
    TmpRaw = Tmp.get();
    Mnt->mount("/tmp", std::move(Tmp));
    auto Kv = std::make_unique<KeyValueBackend>(
        Env, std::make_unique<LocalStorageKv>(Env));
    Kv->initialize([](std::optional<ApiError>) {});
    Mnt->mount("/home", std::move(Kv));
    Fs = std::make_unique<FileSystem>(Env, Proc, std::move(Mounted));
  }

  std::string readAll(const std::string &P) {
    std::string Out = "<error>";
    Fs->readFile(P, [&](ErrorOr<std::vector<uint8_t>> R) {
      if (R)
        Out = textOf(*R);
    });
    Env.loop().run();
    return Out;
  }

  BrowserEnv Env;
  Process Proc;
  InMemoryBackend *RootRaw = nullptr;
  InMemoryBackend *TmpRaw = nullptr;
  MountableFileSystem *Mnt = nullptr;
  std::unique_ptr<FileSystem> Fs;
};

TEST_F(MountableTest, RoutesByLongestPrefix) {
  Fs->writeFile("/tmp/scratch", bytesOf("T"),
                [](std::optional<ApiError>) {});
  Fs->writeFile("/rootfile", bytesOf("R"), [](std::optional<ApiError>) {});
  Env.loop().run();
  // The /tmp file lives in the tmp backend, not the root backend.
  EXPECT_NE(TmpRaw->contents("/scratch"), nullptr);
  EXPECT_EQ(RootRaw->contents("/tmp/scratch"), nullptr);
  EXPECT_NE(RootRaw->contents("/rootfile"), nullptr);
  EXPECT_EQ(readAll("/tmp/scratch"), "T");
}

TEST_F(MountableTest, MountPointsAppearInListings) {
  Fs->writeFile("/visible", bytesOf("v"), [](std::optional<ApiError>) {});
  Env.loop().run();
  ErrorOr<std::vector<std::string>> L(ApiError(Errno::Io, "pending"));
  Fs->readdir("/", [&](ErrorOr<std::vector<std::string>> R) { L = R; });
  Env.loop().run();
  ASSERT_TRUE(L.ok());
  EXPECT_EQ(*L, (std::vector<std::string>{"home", "tmp", "visible"}));
}

TEST_F(MountableTest, CrossMountRenameIsExdev) {
  Fs->writeFile("/tmp/f", bytesOf("data"), [](std::optional<ApiError>) {});
  Env.loop().run();
  std::optional<ApiError> E;
  Fs->rename("/tmp/f", "/home/f", [&](std::optional<ApiError> R) { E = R; });
  Env.loop().run();
  ASSERT_TRUE(E.has_value());
  EXPECT_EQ(E->Code, Errno::CrossDev);
}

TEST_F(MountableTest, MoveFallsBackToCopyAcrossMounts) {
  // §5.1: mounting provides "a convenient mechanism for transferring files
  // to different backends" — fs.move handles the EXDEV fallback.
  Fs->writeFile("/tmp/f", bytesOf("payload"),
                [](std::optional<ApiError>) {});
  Env.loop().run();
  std::optional<ApiError> E(ApiError(Errno::Io, "pending"));
  Fs->move("/tmp/f", "/home/f", [&](std::optional<ApiError> R) { E = R; });
  Env.loop().run();
  EXPECT_FALSE(E.has_value());
  EXPECT_EQ(readAll("/home/f"), "payload");
  ErrorOr<Stats> Gone(ApiError(Errno::Io, "pending"));
  Fs->stat("/tmp/f", [&](ErrorOr<Stats> R) { Gone = R; });
  Env.loop().run();
  EXPECT_FALSE(Gone.ok());
}

TEST_F(MountableTest, CannotRemoveMountPoint) {
  std::optional<ApiError> E;
  Fs->rmdir("/tmp", [&](std::optional<ApiError> R) { E = R; });
  Env.loop().run();
  ASSERT_TRUE(E.has_value());
  EXPECT_EQ(E->Code, Errno::Perm);
}

TEST_F(MountableTest, MountRejectsDuplicatesAndRoot) {
  EXPECT_FALSE(Mnt->mount("/tmp", std::make_unique<InMemoryBackend>(Env)));
  EXPECT_FALSE(Mnt->mount("/", std::make_unique<InMemoryBackend>(Env)));
  EXPECT_TRUE(Mnt->mount("/mnt/usb", std::make_unique<InMemoryBackend>(Env)));
}

//===--------------------------------------------------------------------===//
// Frontend behaviour
//===--------------------------------------------------------------------===//

class FrontendTest : public ::testing::Test {
protected:
  FrontendTest()
      : Env(chromeProfile()),
        Fs(Env, Proc, std::make_unique<InMemoryBackend>(Env)) {}

  BrowserEnv Env;
  Process Proc;
  FileSystem Fs;
};

TEST_F(FrontendTest, RelativePathsResolveAgainstCwd) {
  // §5.1: process.chdir support exists precisely so relative paths work.
  // chdir validates against the fs, so each change needs the loop to run
  // before dependent operations resolve against the new cwd.
  Fs.mkdirp("/work/dir", [](std::optional<ApiError>) {});
  Env.loop().run();
  std::optional<ApiError> CdErr(ApiError(Errno::Io, "pending"));
  Proc.chdir("/work/dir", [&](std::optional<ApiError> E) { CdErr = E; });
  Env.loop().run();
  EXPECT_FALSE(CdErr.has_value());
  Fs.writeFile("notes.txt", bytesOf("hi"), [](std::optional<ApiError>) {});
  Env.loop().run();
  ErrorOr<std::vector<uint8_t>> R(ApiError(Errno::Io, "pending"));
  Fs.readFile("/work/dir/notes.txt",
              [&](ErrorOr<std::vector<uint8_t>> X) { R = X; });
  Env.loop().run();
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(textOf(*R), "hi");
  Proc.chdir("..");
  Env.loop().run();
  EXPECT_EQ(Proc.cwd(), "/work");
  bool Exists = false;
  Fs.exists("dir/notes.txt", [&](ErrorOr<bool> B) { Exists = *B; });
  Env.loop().run();
  EXPECT_TRUE(Exists);
}

TEST_F(FrontendTest, ChdirValidatesTargetAgainstFs) {
  // A missing target is ENOENT and the cwd does not move.
  std::optional<ApiError> E;
  Proc.chdir("/nowhere", [&](std::optional<ApiError> R) { E = R; });
  Env.loop().run();
  ASSERT_TRUE(E.has_value());
  EXPECT_EQ(E->Code, Errno::NoEnt);
  EXPECT_EQ(Proc.cwd(), "/");

  // A file target is ENOTDIR and the cwd does not move.
  Fs.writeFile("/plain.txt", bytesOf("x"), [](std::optional<ApiError>) {});
  Env.loop().run();
  Proc.chdir("/plain.txt", [&](std::optional<ApiError> R) { E = R; });
  Env.loop().run();
  ASSERT_TRUE(E.has_value());
  EXPECT_EQ(E->Code, Errno::NotDir);
  EXPECT_EQ(Proc.cwd(), "/");

  // A real directory validates, including via a relative path.
  Fs.mkdirp("/a/b", [](std::optional<ApiError>) {});
  Env.loop().run();
  Proc.chdir("/a", [&](std::optional<ApiError> R) { E = R; });
  Env.loop().run();
  EXPECT_FALSE(E.has_value());
  EXPECT_EQ(Proc.cwd(), "/a");
  Proc.chdir("b", [&](std::optional<ApiError> R) { E = R; });
  Env.loop().run();
  EXPECT_FALSE(E.has_value());
  EXPECT_EQ(Proc.cwd(), "/a/b");

  // A failed relative chdir leaves the cwd where it was.
  Proc.chdir("missing", [&](std::optional<ApiError> R) { E = R; });
  Env.loop().run();
  ASSERT_TRUE(E.has_value());
  EXPECT_EQ(E->Code, Errno::NoEnt);
  EXPECT_EQ(Proc.cwd(), "/a/b");
}

TEST_F(FrontendTest, ChdirWithoutFsJustNormalizes) {
  // A Process not attached to any FileSystem has nothing to validate
  // against: the legacy normalize-only behavior remains.
  Process Bare;
  std::optional<ApiError> E(ApiError(Errno::Io, "pending"));
  Bare.chdir("/made/up/../dir", [&](std::optional<ApiError> R) { E = R; });
  EXPECT_FALSE(E.has_value()); // Completes synchronously, no loop needed.
  EXPECT_EQ(Bare.cwd(), "/made/dir");
}

TEST_F(FrontendTest, MkdirpCreatesChain) {
  std::optional<ApiError> E(ApiError(Errno::Io, "pending"));
  Fs.mkdirp("/a/b/c/d", [&](std::optional<ApiError> R) { E = R; });
  Env.loop().run();
  EXPECT_FALSE(E.has_value());
  ErrorOr<Stats> S(ApiError(Errno::Io, "pending"));
  Fs.stat("/a/b/c/d", [&](ErrorOr<Stats> R) { S = R; });
  Env.loop().run();
  ASSERT_TRUE(S.ok());
  EXPECT_TRUE(S->isDirectory());
  // Idempotent.
  Fs.mkdirp("/a/b/c/d", [&](std::optional<ApiError> R) { E = R; });
  Env.loop().run();
  EXPECT_FALSE(E.has_value());
}

TEST_F(FrontendTest, InvalidOpenModeIsEinval) {
  ErrorOr<FdPtr> R(ApiError(Errno::Io, "pending"));
  Fs.open("/x", "rwx?", [&](ErrorOr<FdPtr> X) { R = X; });
  Env.loop().run();
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.error().Code, Errno::Invalid);
}

TEST_F(FrontendTest, StatsTrackTraffic) {
  Fs.writeFile("/a", bytesOf("12345"), [](std::optional<ApiError>) {});
  Env.loop().run();
  Fs.readFile("/a", [](ErrorOr<std::vector<uint8_t>>) {});
  Env.loop().run();
  EXPECT_EQ(Fs.stats().BytesWritten, 5u);
  EXPECT_EQ(Fs.stats().BytesRead, 5u);
  EXPECT_GE(Fs.stats().Operations, 2u);
  EXPECT_EQ(Fs.stats().UniqueFilesTouched, 1u);
}

} // namespace
