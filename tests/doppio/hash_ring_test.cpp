//===- tests/doppio/hash_ring_test.cpp ------------------------------------==//
//
// Tests for the cluster's consistent-hash ring (doppio/cluster/hash_ring.h):
// platform-deterministic placement (FNV-1a over explicit bytes, never
// std::hash), minimal key remapping on shard join/leave, load balance
// across shards, and the candidate failover walk.
//
//===----------------------------------------------------------------------===//

#include "doppio/cluster/hash_ring.h"

#include "gtest/gtest.h"

#include <map>

using namespace doppio;
using namespace doppio::cluster;

namespace {

TEST(Fnv1a, MatchesReferenceVectors) {
  // Published FNV-1a 64 vectors: the hash must be bit-identical on every
  // platform, or shard placement (and every figure derived from it)
  // would drift between machines.
  EXPECT_EQ(fnv1a64("", 0), 14695981039346656037ull);
  EXPECT_EQ(fnv1a64("a", 1), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a64("foobar", 6), 0x85944171f73967e8ull);
}

TEST(Fnv1a, KeyHashIsFinalizedLittleEndianFnv) {
  // hashKey serializes the u64 little-endian byte-explicitly and runs the
  // avalanche finalizer on top (raw FNV-1a of low-entropy inputs is
  // nearly affine — fatal for ring balance); pin the composition so an
  // accidental endianness or width change cannot slip by.
  EXPECT_EQ(hashKey(0), mix64(fnv1a64("\0\0\0\0\0\0\0\0", 8)));
  uint8_t One[8] = {1, 0, 0, 0, 0, 0, 0, 0};
  EXPECT_EQ(hashKey(1), mix64(fnv1a64(One, 8)));
  EXPECT_NE(hashKey(1), hashKey(1ull << 56)); // LE: different bytes.
  // fmix64 reference vector (murmur3 finalizer of 1).
  EXPECT_EQ(mix64(1), 0xb456bcfc34c2cb2cull);
}

TEST(HashRing, DeterministicPlacement) {
  // Same shards, any insertion order -> identical lookups, with pinned
  // expected owners for a few keys (guards cross-platform determinism
  // and accidental algorithm changes alike).
  HashRing A, B;
  for (uint32_t S : {0u, 1u, 2u, 3u})
    A.add(S);
  for (uint32_t S : {3u, 1u, 0u, 2u})
    B.add(S);
  for (uint64_t K = 0; K < 4096; ++K)
    EXPECT_EQ(A.lookup(K), B.lookup(K)) << "key " << K;

  EXPECT_EQ(A.lookup(0).value(), 0u);
  EXPECT_EQ(A.lookup(1).value(), 1u);
  EXPECT_EQ(A.lookup(2).value(), 2u);
  EXPECT_EQ(A.lookup(42).value(), 2u);
  EXPECT_EQ(A.lookup(1000000).value(), 2u);
}

TEST(HashRing, EmptyAndSingleShard) {
  HashRing R;
  EXPECT_TRUE(R.empty());
  EXPECT_FALSE(R.lookup(7).has_value());
  EXPECT_TRUE(R.candidates(7, 3).empty());
  R.add(9);
  EXPECT_EQ(R.size(), 1u);
  for (uint64_t K = 0; K < 100; ++K)
    EXPECT_EQ(R.lookup(K).value(), 9u);
  R.remove(9);
  EXPECT_TRUE(R.empty());
  EXPECT_FALSE(R.lookup(7).has_value());
}

TEST(HashRing, JoinRemapsAboutOneNth) {
  // Adding a shard to N-1 must move roughly 1/N of the keys and leave
  // every other key where it was — the whole point of consistent
  // hashing. Budget: <= 1.5/N moved, and every moved key moved TO the
  // new shard.
  constexpr uint64_t Keys = 20000;
  for (size_t N : {2u, 4u, 8u}) {
    HashRing R;
    for (uint32_t S = 0; S + 1 < N; ++S)
      R.add(S);
    std::map<uint64_t, uint32_t> Before;
    for (uint64_t K = 0; K < Keys; ++K)
      Before[K] = R.lookup(K).value();
    R.add(static_cast<uint32_t>(N - 1));
    uint64_t Moved = 0;
    for (uint64_t K = 0; K < Keys; ++K) {
      uint32_t Now = R.lookup(K).value();
      if (Now != Before[K]) {
        ++Moved;
        EXPECT_EQ(Now, N - 1) << "key moved between old shards";
      }
    }
    double Frac = static_cast<double>(Moved) / Keys;
    EXPECT_LE(Frac, 1.5 / static_cast<double>(N)) << "N=" << N;
    EXPECT_GT(Moved, 0u) << "N=" << N;
  }
}

TEST(HashRing, LeaveRemapsOnlyTheLeaversKeys) {
  constexpr uint64_t Keys = 20000;
  HashRing R;
  for (uint32_t S = 0; S < 4; ++S)
    R.add(S);
  std::map<uint64_t, uint32_t> Before;
  for (uint64_t K = 0; K < Keys; ++K)
    Before[K] = R.lookup(K).value();
  R.remove(2);
  uint64_t Moved = 0;
  for (uint64_t K = 0; K < Keys; ++K) {
    uint32_t Now = R.lookup(K).value();
    EXPECT_NE(Now, 2u);
    if (Now != Before[K]) {
      ++Moved;
      // Only keys the leaver owned may move.
      EXPECT_EQ(Before[K], 2u) << "key " << K << " moved without cause";
    }
  }
  EXPECT_LE(static_cast<double>(Moved) / Keys, 1.5 / 4.0);
  EXPECT_GT(Moved, 0u);
}

TEST(HashRing, LoadBalancedWithinTwoXAcrossEightShards) {
  // 128 vnodes/shard must keep max/min shard load under 2x over a large
  // key population — the balance budget the balancer relies on.
  constexpr uint64_t Keys = 100000;
  HashRing R;
  for (uint32_t S = 0; S < 8; ++S)
    R.add(S);
  std::map<uint32_t, uint64_t> Load;
  for (uint64_t K = 0; K < Keys; ++K)
    ++Load[R.lookup(K).value()];
  ASSERT_EQ(Load.size(), 8u) << "some shard owns no keys at all";
  uint64_t Min = UINT64_MAX, Max = 0;
  for (const auto &[S, N] : Load) {
    Min = std::min(Min, N);
    Max = std::max(Max, N);
  }
  EXPECT_LT(static_cast<double>(Max),
            2.0 * static_cast<double>(Min))
      << "max=" << Max << " min=" << Min;
}

TEST(HashRing, CandidatesAreDistinctAndStartWithTheOwner) {
  HashRing R;
  for (uint32_t S = 0; S < 5; ++S)
    R.add(S);
  for (uint64_t K = 0; K < 500; ++K) {
    std::vector<uint32_t> C = R.candidates(K, 5);
    ASSERT_EQ(C.size(), 5u);
    EXPECT_EQ(C[0], R.lookup(K).value());
    std::vector<uint32_t> Sorted = C;
    std::sort(Sorted.begin(), Sorted.end());
    EXPECT_EQ(std::unique(Sorted.begin(), Sorted.end()), Sorted.end());
  }
  // Asking for more than exist caps at the shard count.
  EXPECT_EQ(R.candidates(1, 64).size(), 5u);
  EXPECT_EQ(R.candidates(1, 0).size(), 0u);
}

TEST(HashRing, AddRemoveIdempotent) {
  HashRing R;
  R.add(1);
  R.add(1);
  EXPECT_EQ(R.size(), 1u);
  R.remove(7); // Absent: no-op.
  EXPECT_EQ(R.size(), 1u);
  R.remove(1);
  R.remove(1);
  EXPECT_TRUE(R.empty());
}

} // namespace
