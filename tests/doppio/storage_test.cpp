//===- tests/doppio/storage_test.cpp --------------------------------------==//
//
// Storage hierarchy tests (DESIGN.md §19): the content-addressed block
// vocabulary, the log-structured journal's codec and recovery, the
// write-back cached store's semantics (write-back acks, group commit,
// LRU + quota-pressure eviction, sequential prefetch, dedup), uniform
// ENOSPC surfacing at the fs layer, and the deterministic power-cut fuzz
// sweep: the journal is cut at *every* byte offset and the recovered tree
// must equal the state after some prefix of the committed groups.
//
//===----------------------------------------------------------------------===//

#include "doppio/storage/cached_store.h"

#include "doppio/backends/kv_backend.h"
#include "doppio/backends/kv_store.h"
#include "doppio/fs.h"
#include "doppio/process.h"

#include "gtest/gtest.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

using namespace doppio;
using namespace doppio::rt;
using namespace doppio::rt::storage;
using namespace doppio::browser;

namespace {

using Bytes = fs::AsyncKvStore::Bytes;

Bytes bytesOf(const std::string &S) { return Bytes(S.begin(), S.end()); }

std::string textOf(const Bytes &B) { return std::string(B.begin(), B.end()); }

/// A value of \p N bytes whose content is derived from \p Seed. The
/// (I >> 8) term breaks the byte pattern's 256-periodicity so distinct
/// 16 KB blocks of one value never dedup against each other.
Bytes blob(size_t N, uint8_t Seed) {
  Bytes B(N);
  for (size_t I = 0; I != N; ++I)
    B[I] = static_cast<uint8_t>(Seed + I * 131 + (I >> 8) * 7);
  return B;
}

/// Drains every event reachable within a one-second horizon: enough for
/// the slow stores' (chained) round trips, but never far enough to fire
/// quiescentConfig()'s 60 s background flush timer — tests control group
/// boundaries explicitly via sync(). Env.loop().run() would run the timer
/// heap dry, flushing after every drain.
void drain(BrowserEnv &Env) {
  Env.loop().runReadyUntil(Env.clock().nowNs() + browser::msToNs(1000));
}

/// Issues a put and drains the loop; returns the completion error.
std::optional<ApiError> putKv(BrowserEnv &Env, fs::AsyncKvStore &S,
                              const std::string &K, const Bytes &V) {
  std::optional<ApiError> Out;
  bool Called = false;
  S.put(K, V, [&](std::optional<ApiError> E) {
    Out = E;
    Called = true;
  });
  drain(Env);
  EXPECT_TRUE(Called);
  return Out;
}

/// Issues a get and drains the loop; FAILs on an error result.
std::optional<Bytes> getKv(BrowserEnv &Env, fs::AsyncKvStore &S,
                           const std::string &K) {
  std::optional<Bytes> Out;
  bool Called = false;
  S.get(K, [&](ErrorOr<std::optional<Bytes>> R) {
    ASSERT_TRUE(R.ok()) << R.error().message();
    Out = *R;
    Called = true;
  });
  drain(Env);
  EXPECT_TRUE(Called);
  return Out;
}

std::optional<ApiError> syncKv(BrowserEnv &Env, fs::AsyncKvStore &S) {
  std::optional<ApiError> Out;
  bool Called = false;
  S.sync([&](std::optional<ApiError> E) {
    Out = E;
    Called = true;
  });
  drain(Env);
  EXPECT_TRUE(Called);
  return Out;
}

/// Cache config with the background machinery effectively disabled, so
/// tests control group boundaries via sync().
CacheConfig quiescentConfig() {
  CacheConfig C;
  C.BlockBytes = 16 * 1024;
  C.CapacityBytes = 64ull << 20;
  C.DirtyHighWaterBytes = 32ull << 20;
  C.FlushIntervalNs = browser::msToNs(60000);
  C.CheckpointJournalBytes = 64 << 20;
  C.PrefetchDepth = 0;
  return C;
}

//===----------------------------------------------------------------------===//
// Block / Directory unit tests
//===----------------------------------------------------------------------===//

TEST(StorageBlock, ManifestSplitsAndAddresses) {
  Bytes V = blob(40 * 1024, 7);
  Manifest M = makeManifest(V, 16 * 1024);
  ASSERT_EQ(M.Blocks.size(), 3u);
  EXPECT_EQ(M.SizeBytes, V.size());
  EXPECT_EQ(M.Blocks[0].Size, 16u * 1024);
  EXPECT_EQ(M.Blocks[2].Size, 8u * 1024);
  // Content addressing: identical payloads hash identically, and the
  // reassembled payloads equal the original.
  Manifest M2 = makeManifest(V, 16 * 1024);
  EXPECT_TRUE(M == M2);
  Bytes Joined;
  for (size_t I = 0; I != M.Blocks.size(); ++I) {
    Bytes P = blockPayload(V, 16 * 1024, I);
    EXPECT_EQ(hashBlock(P.data(), P.size()), M.Blocks[I].Hash);
    Joined.insert(Joined.end(), P.begin(), P.end());
  }
  EXPECT_EQ(Joined, V);
}

TEST(StorageBlock, BlockKeyEncodesHashAndSize) {
  BlockId Id{0xdeadbeefcafef00dull, 4096};
  EXPECT_EQ(blockKey(Id), "b:deadbeefcafef00d.4096");
}

TEST(StorageBlock, DirectoryRoundTripAndCorruptReject) {
  Directory D;
  D.put("alpha", makeManifest(blob(100, 1), 64));
  D.put("beta", makeManifest(blob(5000, 2), 64));
  D.remove("missing");
  Bytes Wire = D.serialize();

  bool Ok = false;
  Directory R = Directory::deserialize(Wire, Ok);
  ASSERT_TRUE(Ok);
  ASSERT_EQ(R.size(), 2u);
  ASSERT_NE(R.lookup("alpha"), nullptr);
  EXPECT_TRUE(*R.lookup("alpha") == *D.lookup("alpha"));

  Wire.pop_back(); // Truncated snapshots must be rejected, not half-read.
  Directory Bad = Directory::deserialize(Wire, Ok);
  EXPECT_FALSE(Ok);
  EXPECT_EQ(Bad.size(), 0u);
}

TEST(StorageBlock, DirectoryNeighbourQueries) {
  Directory D;
  for (const char *K : {"a", "b", "d"})
    D.put(K, Manifest());
  EXPECT_EQ(D.nextKey("a"), "b");
  EXPECT_EQ(D.nextKey("b"), "d");
  EXPECT_EQ(D.nextKey("d"), "");
  EXPECT_TRUE(D.adjacent("a", "b"));
  EXPECT_FALSE(D.adjacent("b", "a"));
  EXPECT_FALSE(D.adjacent("b", "c"));
  EXPECT_TRUE(D.adjacent("b", "d"));
}

//===----------------------------------------------------------------------===//
// Journal unit tests
//===----------------------------------------------------------------------===//

TEST(StorageJournal, SealRecoverRoundTrip) {
  Journal J;
  J.stagePut("k1", makeManifest(blob(100, 1), 64));
  J.stageDel("k2");
  Bytes Image = J.sealGroup();
  J.stagePut("k3", makeManifest(blob(10, 3), 64));
  Image = J.sealGroup();

  Journal R;
  Directory D;
  D.put("k2", Manifest());
  Journal::Recovery Rec = R.recover(Image, D);
  EXPECT_TRUE(Rec.HeaderOk);
  EXPECT_EQ(Rec.Commits, 2u);
  EXPECT_EQ(Rec.RecordsApplied, 3u);
  EXPECT_EQ(Rec.TornTailBytes, 0u);
  EXPECT_NE(D.lookup("k1"), nullptr);
  EXPECT_EQ(D.lookup("k2"), nullptr);
  EXPECT_NE(D.lookup("k3"), nullptr);
}

TEST(StorageJournal, EmptyAndCorruptImages) {
  Journal J;
  Directory D;
  Journal::Recovery Rec = J.recover(Bytes(), D);
  EXPECT_TRUE(Rec.HeaderOk); // Never journaled: a valid empty log.
  EXPECT_EQ(Rec.Commits, 0u);

  Bytes Garbage = bytesOf("not a journal at all");
  Rec = J.recover(Garbage, D);
  EXPECT_FALSE(Rec.HeaderOk);
  EXPECT_EQ(Rec.TornTailBytes, Garbage.size());
  EXPECT_EQ(D.size(), 0u);
}

TEST(StorageJournal, BitFlipInvalidatesOnlyTheTail) {
  Journal J;
  J.stagePut("stable", makeManifest(blob(50, 1), 64));
  J.sealGroup();
  size_t GoodEnd = J.bytes().size();
  J.stagePut("flipped", makeManifest(blob(50, 2), 64));
  Bytes Image = J.sealGroup();

  Image[GoodEnd + 3] ^= 0x40; // Corrupt the second group's first record.
  Journal R;
  Directory D;
  Journal::Recovery Rec = R.recover(Image, D);
  EXPECT_TRUE(Rec.HeaderOk);
  EXPECT_EQ(Rec.Commits, 1u);
  EXPECT_NE(D.lookup("stable"), nullptr);
  EXPECT_EQ(D.lookup("flipped"), nullptr);
  EXPECT_EQ(Rec.TornTailBytes, Image.size() - GoodEnd);
}

//===----------------------------------------------------------------------===//
// Cached store semantics
//===----------------------------------------------------------------------===//

TEST(CachedStore, WriteBackAcksBeforeSlowStore) {
  BrowserEnv Env(chromeProfile());
  auto Slow = std::make_unique<fs::CloudKv>(Env);
  fs::CloudKv *Cloud = Slow.get();
  CachedKvStore Store(Env, std::move(Slow), quiescentConfig());
  drain(Env); // Recovery.
  ASSERT_TRUE(Store.ready());

  bool Acked = false;
  Store.put("k", bytesOf("payload"),
            [&](std::optional<ApiError> E) {
              EXPECT_FALSE(E.has_value());
              Acked = true;
            });
  // Write-back: the ack does not wait for the WAN round trip.
  EXPECT_TRUE(Acked);
  EXPECT_EQ(Cloud->objectCount(), 0u);
  EXPECT_EQ(Store.stats().Flushes, 0u);

  auto V = getKv(Env, Store, "k"); // Served from cache, still unflushed.
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(textOf(*V), "payload");
  EXPECT_GE(Store.stats().Hits, 1u);

  EXPECT_FALSE(syncKv(Env, Store).has_value());
  EXPECT_GE(Store.stats().Flushes, 1u);
  EXPECT_GE(Cloud->objectCount(), 2u); // Block + journal.
}

TEST(CachedStore, BackgroundFlushTimerSealsOneGroup) {
  BrowserEnv Env(chromeProfile());
  CacheConfig C = quiescentConfig();
  C.FlushIntervalNs = browser::msToNs(8);
  CachedKvStore Store(Env, std::make_unique<fs::CloudKv>(Env), C);
  drain(Env);

  for (int I = 0; I != 10; ++I)
    Store.put("k" + std::to_string(I), blob(100, static_cast<uint8_t>(I)),
              [](std::optional<ApiError>) {});
  EXPECT_EQ(Store.stats().Flushes, 0u);
  drain(Env); // The kernel Background-lane timer fires the flush.
  CacheStats S = Store.stats();
  EXPECT_GE(S.Flushes, 1u);
  // Group commit: ten acked puts rode one sealed group.
  EXPECT_EQ(S.JournalCommits, 1u);
}

TEST(CachedStore, DeleteTombstonesAndPersists) {
  BrowserEnv Env(chromeProfile());
  CachedKvStore Store(Env, std::make_unique<fs::CloudKv>(Env),
                      quiescentConfig());
  drain(Env);
  ASSERT_FALSE(putKv(Env, Store, "gone", bytesOf("x")).has_value());
  ASSERT_FALSE(syncKv(Env, Store).has_value());

  bool Acked = false;
  Store.del("gone", [&](std::optional<ApiError> E) {
    EXPECT_FALSE(E.has_value());
    Acked = true;
  });
  EXPECT_TRUE(Acked);
  EXPECT_FALSE(getKv(Env, Store, "gone").has_value()); // Tombstone hit.
  EXPECT_FALSE(syncKv(Env, Store).has_value());
  EXPECT_FALSE(getKv(Env, Store, "gone").has_value());
}

TEST(CachedStore, DedupSharesIdenticalBlocks) {
  BrowserEnv Env(chromeProfile());
  CachedKvStore Store(Env, std::make_unique<fs::CloudKv>(Env),
                      quiescentConfig());
  drain(Env);
  Bytes Same = blob(16 * 1024, 9);
  ASSERT_FALSE(putKv(Env, Store, "first", Same).has_value());
  ASSERT_FALSE(putKv(Env, Store, "second", Same).has_value());
  CacheStats S = Store.stats();
  EXPECT_GE(S.DedupHits, 1u);
  EXPECT_EQ(S.CachedBytes, Same.size()); // One pooled block, two refs.
  ASSERT_FALSE(syncKv(Env, Store).has_value());
  // One block payload reached the slow store.
  EXPECT_EQ(Store.stats().FlushedBlocks, 1u);
}

TEST(CachedStore, LruEvictsCleanEntriesOnly) {
  BrowserEnv Env(chromeProfile());
  CacheConfig C = quiescentConfig();
  C.CapacityBytes = 64 * 1024; // Four 16 KB blocks.
  CachedKvStore Store(Env, std::make_unique<fs::CloudKv>(Env), C);
  drain(Env);

  for (int I = 0; I != 8; ++I)
    ASSERT_FALSE(putKv(Env, Store, "k" + std::to_string(I),
                       blob(16 * 1024, static_cast<uint8_t>(I)))
                     .has_value());
  // All dirty: pinned, nothing evictable yet (a backpressure flush was
  // kicked instead).
  ASSERT_FALSE(syncKv(Env, Store).has_value());
  CacheStats S = Store.stats();
  EXPECT_GE(S.Evictions, 4u);
  EXPECT_LE(S.CachedBytes, C.CapacityBytes);

  // Evicted entries refill from the slow store with correct contents.
  auto V = getKv(Env, Store, "k0");
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(*V, blob(16 * 1024, 0));
  EXPECT_GE(Store.stats().Fills, 1u);
}

TEST(CachedStore, SequentialMissRunsTriggerPrefetch) {
  BrowserEnv Env(chromeProfile());
  ASSERT_NE(Env.indexedDB(), nullptr);
  {
    CachedKvStore Writer(Env, std::make_unique<fs::IndexedDbKv>(Env),
                         quiescentConfig());
    drain(Env);
    for (int I = 0; I != 16; ++I) {
      char Key[8];
      snprintf(Key, sizeof(Key), "k%02d", I);
      ASSERT_FALSE(
          putKv(Env, Writer, Key, blob(2048, static_cast<uint8_t>(I)))
              .has_value());
    }
    ASSERT_FALSE(syncKv(Env, Writer).has_value());
  }

  CacheConfig C = quiescentConfig();
  C.PrefetchDepth = 8;
  CachedKvStore Reader(Env, std::make_unique<fs::IndexedDbKv>(Env), C);
  drain(Env);
  ASSERT_TRUE(Reader.ready());

  ASSERT_TRUE(getKv(Env, Reader, "k00").has_value()); // Cold miss.
  ASSERT_TRUE(getKv(Env, Reader, "k01").has_value()); // Sequential miss.
  CacheStats S = Reader.stats();
  EXPECT_GE(S.PrefetchIssued, 1u);

  auto V = getKv(Env, Reader, "k02"); // Served by the prefetcher.
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(*V, blob(2048, 2));
  S = Reader.stats();
  EXPECT_GE(S.PrefetchHits, 1u);
  EXPECT_EQ(S.Misses, 2u);
}

TEST(CachedStore, ReloadRecoversFromJournalReplay) {
  BrowserEnv Env(chromeProfile());
  {
    CachedKvStore Writer(Env, std::make_unique<fs::IndexedDbKv>(Env),
                         quiescentConfig());
    drain(Env);
    ASSERT_FALSE(putKv(Env, Writer, "a", bytesOf("alpha")).has_value());
    ASSERT_FALSE(putKv(Env, Writer, "b", bytesOf("beta")).has_value());
    ASSERT_FALSE(syncKv(Env, Writer).has_value());
    ASSERT_FALSE(putKv(Env, Writer, "b", bytesOf("beta2")).has_value());
    Writer.del("a", [](std::optional<ApiError>) {});
    ASSERT_FALSE(syncKv(Env, Writer).has_value());
  }
  CachedKvStore Reader(Env, std::make_unique<fs::IndexedDbKv>(Env),
                       quiescentConfig());
  drain(Env);
  ASSERT_TRUE(Reader.ready());
  CacheStats S = Reader.stats();
  EXPECT_EQ(S.ReplayedCommits, 2u);
  EXPECT_GE(S.ReplayedRecords, 4u);
  EXPECT_FALSE(getKv(Env, Reader, "a").has_value());
  auto V = getKv(Env, Reader, "b");
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(textOf(*V), "beta2");
}

TEST(CachedStore, UnjournaledModePersistsViaDirectorySnapshots) {
  BrowserEnv Env(chromeProfile());
  CacheConfig C = quiescentConfig();
  C.Journaled = false;
  {
    CachedKvStore Writer(Env, std::make_unique<fs::IndexedDbKv>(Env), C);
    drain(Env);
    ASSERT_FALSE(putKv(Env, Writer, "x", bytesOf("snapshotted")).has_value());
    ASSERT_FALSE(syncKv(Env, Writer).has_value());
  }
  CachedKvStore Reader(Env, std::make_unique<fs::IndexedDbKv>(Env), C);
  drain(Env);
  auto V = getKv(Env, Reader, "x");
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(textOf(*V), "snapshotted");
  EXPECT_EQ(Reader.stats().ReplayedCommits, 0u); // No journal to replay.
}

TEST(CachedStore, CheckpointTruncatesJournalAndCollectsGarbage) {
  BrowserEnv Env(chromeProfile());
  CacheConfig C = quiescentConfig();
  C.CheckpointJournalBytes = 64; // Checkpoint after nearly every flush.
  CachedKvStore Store(Env, std::make_unique<fs::IndexedDbKv>(Env), C);
  drain(Env);

  for (int Round = 0; Round != 4; ++Round) {
    // Same key, fresh content: the previous round's blocks become dead.
    ASSERT_FALSE(
        putKv(Env, Store, "hot", blob(32 * 1024, static_cast<uint8_t>(Round)))
            .has_value());
    ASSERT_FALSE(syncKv(Env, Store).has_value());
  }
  CacheStats S = Store.stats();
  EXPECT_GE(S.Checkpoints, 3u);
  EXPECT_GE(S.GcBlocks, 4u);
  EXPECT_LE(S.JournalDepthBytes, 256u);

  // Reload sees the checkpointed directory, not a journal replay.
  CachedKvStore Reader(Env, std::make_unique<fs::IndexedDbKv>(Env), C);
  drain(Env);
  auto V = getKv(Env, Reader, "hot");
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(*V, blob(32 * 1024, 3));
}

//===----------------------------------------------------------------------===//
// Quota: uniform ENOSPC and quota-pressure eviction
//===----------------------------------------------------------------------===//

/// Writes files through the fs frontend until the backend reports an
/// error; returns it.
std::optional<ApiError> fillUntilError(BrowserEnv &Env, fs::FileSystem &Fs,
                                       size_t FileBytes, int MaxFiles) {
  for (int I = 0; I != MaxFiles; ++I) {
    std::optional<ApiError> Err;
    bool Called = false;
    Fs.writeFile("/fill" + std::to_string(I),
                 blob(FileBytes, static_cast<uint8_t>(I)),
                 [&](std::optional<ApiError> E) {
                   Err = E;
                   Called = true;
                 });
    drain(Env);
    EXPECT_TRUE(Called);
    if (Err)
      return Err;
  }
  return std::nullopt;
}

std::unique_ptr<fs::AsyncKvStore> makeQuotaStore(BrowserEnv &Env,
                                                 const std::string &Name,
                                                 uint64_t QuotaBytes) {
  if (Name == "localstorage")
    return std::make_unique<fs::LocalStorageKv>(Env); // Profile 5 MB quota.
  if (Name == "indexeddb") {
    Env.indexedDB()->setQuotaBytes(QuotaBytes);
    return std::make_unique<fs::IndexedDbKv>(Env);
  }
  auto Cloud = std::make_unique<fs::CloudKv>(Env);
  Cloud->setQuotaBytes(QuotaBytes);
  return Cloud;
}

class QuotaEnospc : public ::testing::TestWithParam<std::string> {};

TEST_P(QuotaEnospc, SurfacesUniformlyAtFsLayer) {
  BrowserEnv Env(chromeProfile());
  auto Backend = std::make_unique<fs::KeyValueBackend>(
      Env, makeQuotaStore(Env, GetParam(), 256 * 1024));
  bool Ready = false;
  Backend->initialize([&](std::optional<ApiError> E) {
    ASSERT_FALSE(E.has_value());
    Ready = true;
  });
  drain(Env);
  ASSERT_TRUE(Ready);
  Process Proc;
  fs::FileSystem Fs(Env, Proc, std::move(Backend));

  // localStorage's profile quota is 5 MB; the others are capped at 256 KB.
  size_t FileBytes = GetParam() == "localstorage" ? 512 * 1024 : 48 * 1024;
  std::optional<ApiError> Err = fillUntilError(Env, Fs, FileBytes, 32);
  ASSERT_TRUE(Err.has_value()) << "quota never hit for " << GetParam();
  EXPECT_EQ(Err->Code, Errno::NoSpace) << Err->message();
}

TEST_P(QuotaEnospc, SurfacesThroughTheCacheToo) {
  BrowserEnv Env(chromeProfile());
  auto Cached = std::make_unique<CachedKvStore>(
      Env, makeQuotaStore(Env, GetParam(), 256 * 1024), quiescentConfig());
  CachedKvStore *Cache = Cached.get();
  auto Backend =
      std::make_unique<fs::KeyValueBackend>(Env, std::move(Cached));
  bool Ready = false;
  Backend->initialize([&](std::optional<ApiError> E) {
    ASSERT_FALSE(E.has_value());
    Ready = true;
  });
  drain(Env);
  ASSERT_TRUE(Ready);
  Process Proc;
  fs::FileSystem Fs(Env, Proc, std::move(Backend));

  size_t FileBytes = GetParam() == "localstorage" ? 512 * 1024 : 48 * 1024;
  std::optional<ApiError> Err = fillUntilError(Env, Fs, FileBytes, 32);
  ASSERT_TRUE(Err.has_value());
  EXPECT_EQ(Err->Code, Errno::NoSpace) << Err->message();
  EXPECT_GE(Cache->stats().QuotaRejects, 1u);
}

INSTANTIATE_TEST_SUITE_P(Adapters, QuotaEnospc,
                         ::testing::Values("localstorage", "indexeddb",
                                           "cloud"));

TEST(CachedStore, QuotaPressureEvictionPerProfile) {
  for (const Profile &P : allProfiles()) {
    SCOPED_TRACE(P.Name);
    BrowserEnv Env(P);
    auto Slow = std::make_unique<fs::CloudKv>(Env);
    Slow->setQuotaBytes(220 * 1024);
    CacheConfig C = quiescentConfig();
    C.CheckpointJournalBytes = 1; // Checkpoint + GC after every flush.
    CachedKvStore Store(Env, std::move(Slow), C);
    drain(Env);
    ASSERT_TRUE(Store.ready());

    ASSERT_FALSE(putKv(Env, Store, "a", blob(64 * 1024, 1)).has_value());
    ASSERT_FALSE(putKv(Env, Store, "b", blob(64 * 1024, 2)).has_value());
    ASSERT_FALSE(syncKv(Env, Store).has_value());
    // Overwrite: the old "a" blocks are dead after the next checkpoint.
    ASSERT_FALSE(putKv(Env, Store, "a", blob(64 * 1024, 3)).has_value());
    ASSERT_FALSE(syncKv(Env, Store).has_value());
    ASSERT_FALSE(putKv(Env, Store, "c", blob(64 * 1024, 4)).has_value());
    ASSERT_FALSE(syncKv(Env, Store).has_value());

    // ~192 KB live of 220 KB quota: the next 64 KB put cannot fit.
    std::optional<ApiError> Err = putKv(Env, Store, "d", blob(64 * 1024, 5));
    ASSERT_TRUE(Err.has_value());
    EXPECT_EQ(Err->Code, Errno::NoSpace);
    EXPECT_GE(Store.stats().QuotaRejects, 1u);
    EXPECT_GE(Store.stats().GcBlocks, 4u); // Old "a" reclaimed earlier.

    // Deleting a key and letting checkpoint + GC run frees real quota.
    Store.del("b", [](std::optional<ApiError>) {});
    ASSERT_FALSE(syncKv(Env, Store).has_value());
    ASSERT_FALSE(putKv(Env, Store, "d", blob(64 * 1024, 5)).has_value());
    ASSERT_FALSE(syncKv(Env, Store).has_value());
    auto V = getKv(Env, Store, "d");
    ASSERT_TRUE(V.has_value());
    EXPECT_EQ(*V, blob(64 * 1024, 5));
  }
}

//===----------------------------------------------------------------------===//
// FS semantics over the cached store
//===----------------------------------------------------------------------===//

TEST(CachedStore, FileSystemSemanticsAndReload) {
  BrowserEnv Env(chromeProfile());
  {
    auto Cached = std::make_unique<CachedKvStore>(
        Env, std::make_unique<fs::IndexedDbKv>(Env), quiescentConfig());
    auto Backend =
        std::make_unique<fs::KeyValueBackend>(Env, std::move(Cached));
    fs::KeyValueBackend *KvB = Backend.get();
    bool Ready = false;
    Backend->initialize([&](std::optional<ApiError> E) {
      ASSERT_FALSE(E.has_value());
      Ready = true;
    });
    drain(Env);
    ASSERT_TRUE(Ready);
    Process Proc;
    fs::FileSystem Fs(Env, Proc, std::move(Backend));

    bool Done = false;
    Fs.mkdir("/app", [&](std::optional<ApiError> E) {
      ASSERT_FALSE(E.has_value());
      Done = true;
    });
    drain(Env);
    ASSERT_TRUE(Done);
    Fs.writeFile("/app/data", bytesOf("cached bits"),
                 [](std::optional<ApiError> E) {
                   ASSERT_FALSE(E.has_value());
                 });
    drain(Env);
    std::vector<std::string> Listing;
    Fs.readdir("/app", [&](ErrorOr<std::vector<std::string>> R) {
      ASSERT_TRUE(R.ok());
      Listing = *R;
    });
    drain(Env);
    EXPECT_EQ(Listing, std::vector<std::string>{"data"});

    // The backend's durability barrier drains the cache.
    bool Synced = false;
    KvB->sync([&](std::optional<ApiError> E) {
      EXPECT_FALSE(E.has_value());
      Synced = true;
    });
    drain(Env);
    ASSERT_TRUE(Synced);
  }

  // A reload (fresh backend + fresh cache over the same IndexedDB) sees
  // the synced tree.
  auto Cached = std::make_unique<CachedKvStore>(
      Env, std::make_unique<fs::IndexedDbKv>(Env), quiescentConfig());
  auto Backend =
      std::make_unique<fs::KeyValueBackend>(Env, std::move(Cached));
  bool Ready = false;
  Backend->initialize([&](std::optional<ApiError> E) {
    ASSERT_FALSE(E.has_value());
    Ready = true;
  });
  drain(Env);
  ASSERT_TRUE(Ready);
  Process Proc;
  fs::FileSystem Fs(Env, Proc, std::move(Backend));
  std::optional<Bytes> Data;
  Fs.readFile("/app/data", [&](ErrorOr<Bytes> R) {
    ASSERT_TRUE(R.ok()) << R.error().message();
    Data = *R;
  });
  drain(Env);
  ASSERT_TRUE(Data.has_value());
  EXPECT_EQ(textOf(*Data), "cached bits");
}

//===----------------------------------------------------------------------===//
// Power-cut fuzz sweep
//===----------------------------------------------------------------------===//

/// The crash-consistency acceptance test: a scripted run over IndexedDB
/// builds N committed groups; the journal image is then cut at EVERY byte
/// offset (record boundaries and mid-record alike) and recovery must
/// yield exactly the tree after the longest fully-committed prefix of
/// groups — never a blend, never a torn value.
TEST(StorageCrashSweep, EveryByteOffsetRecoversAPrefix) {
  BrowserEnv Env(chromeProfile());
  ASSERT_NE(Env.indexedDB(), nullptr);

  using Model = std::map<std::string, Bytes>;
  std::vector<Model> States;   // States[k]: tree after k committed groups.
  std::vector<size_t> Offsets; // Offsets[k]: journal size after group k+1.
  States.push_back({});        // Zero groups: the empty tree.

  Bytes FullJournal;
  {
    CachedKvStore Store(Env, std::make_unique<fs::IndexedDbKv>(Env),
                        quiescentConfig());
    drain(Env);
    ASSERT_TRUE(Store.ready());

    Model M;
    auto Group = [&](std::vector<std::pair<std::string, std::string>> Puts,
                     std::vector<std::string> Dels) {
      for (auto &[K, V] : Puts) {
        ASSERT_FALSE(putKv(Env, Store, K, bytesOf(V)).has_value());
        M[K] = bytesOf(V);
      }
      for (auto &K : Dels) {
        Store.del(K, [](std::optional<ApiError>) {});
        M.erase(K);
      }
      ASSERT_FALSE(syncKv(Env, Store).has_value());
      States.push_back(M);
      Offsets.push_back(Store.journal().bytes().size());
    };

    Group({{"a", "one"}, {"b", "two"}}, {});
    Group({{"c", std::string(600, 'c')}}, {});
    Group({{"a", "one-rewritten"}, {"d", "four"}}, {"b"});
    Group({{"e", std::string(100, 'e')}, {"f", "six"}}, {"c"});
    Group({}, {"d", "f"});
    Group({{"g", "last"}}, {});
    FullJournal = Store.journal().bytes();
  }
  ASSERT_EQ(Offsets.back(), FullJournal.size());
  ASSERT_GE(FullJournal.size(), 100u);

  for (size_t Cut = 0; Cut <= FullJournal.size(); ++Cut) {
    // Power cut: only a prefix of the journal image reached storage.
    Bytes Torn(FullJournal.begin(),
               FullJournal.begin() + static_cast<ptrdiff_t>(Cut));
    bool Wrote = false;
    Env.indexedDB()->put("journal", Torn, [&](bool Ok) {
      ASSERT_TRUE(Ok);
      Wrote = true;
    });
    drain(Env);
    ASSERT_TRUE(Wrote);

    CachedKvStore Store(Env, std::make_unique<fs::IndexedDbKv>(Env),
                        quiescentConfig());
    drain(Env);
    ASSERT_TRUE(Store.ready());

    // The recovered tree must be the state after exactly the groups whose
    // commit record fits inside the cut.
    size_t K = 0;
    while (K < Offsets.size() && Offsets[K] <= Cut)
      ++K;
    ASSERT_EQ(Store.stats().ReplayedCommits, K) << "cut=" << Cut;
    const Model &Want = States[K];

    ASSERT_EQ(Store.directory().size(), Want.size()) << "cut=" << Cut;
    for (const auto &[Key, Val] : Want) {
      auto Got = getKv(Env, Store, Key);
      ASSERT_TRUE(Got.has_value()) << "cut=" << Cut << " key=" << Key;
      ASSERT_EQ(*Got, Val) << "cut=" << Cut << " key=" << Key;
    }
  }
}

} // namespace
