//===- tests/doppio/path_test.cpp -----------------------------------------==//

#include "doppio/path.h"

#include "gtest/gtest.h"

using namespace doppio;
using namespace doppio::rt;

namespace {

TEST(Path, Normalize) {
  EXPECT_EQ(path::normalize("/a/b/c"), "/a/b/c");
  EXPECT_EQ(path::normalize("/a//b///c"), "/a/b/c");
  EXPECT_EQ(path::normalize("/a/./b"), "/a/b");
  EXPECT_EQ(path::normalize("/a/b/.."), "/a");
  EXPECT_EQ(path::normalize("/a/b/../../c"), "/c");
  EXPECT_EQ(path::normalize("/.."), "/");
  EXPECT_EQ(path::normalize("/../../x"), "/x");
  EXPECT_EQ(path::normalize(""), ".");
  EXPECT_EQ(path::normalize("."), ".");
  EXPECT_EQ(path::normalize("a/b/"), "a/b");
  EXPECT_EQ(path::normalize("../a"), "../a");
  EXPECT_EQ(path::normalize("a/../.."), "..");
  EXPECT_EQ(path::normalize("/"), "/");
}

TEST(Path, IsAbsolute) {
  EXPECT_TRUE(path::isAbsolute("/a"));
  EXPECT_TRUE(path::isAbsolute("/"));
  EXPECT_FALSE(path::isAbsolute("a/b"));
  EXPECT_FALSE(path::isAbsolute(""));
}

TEST(Path, Join) {
  EXPECT_EQ(path::join({"/a", "b", "c"}), "/a/b/c");
  EXPECT_EQ(path::join({"/a/", "/b/"}), "/a/b");
  EXPECT_EQ(path::join({"a", "..", "b"}), "b");
  EXPECT_EQ(path::join2("/root", "sub/file.txt"), "/root/sub/file.txt");
  EXPECT_EQ(path::join({"", ""}), ".");
}

TEST(Path, Resolve) {
  EXPECT_EQ(path::resolve("/home/user", "file.txt"), "/home/user/file.txt");
  EXPECT_EQ(path::resolve("/home/user", "/etc/passwd"), "/etc/passwd");
  EXPECT_EQ(path::resolve("/home/user", "../other"), "/home/other");
  EXPECT_EQ(path::resolve("/", "."), "/");
}

TEST(Path, DirnameBasenameExtname) {
  EXPECT_EQ(path::dirname("/a/b/c.txt"), "/a/b");
  EXPECT_EQ(path::dirname("/a"), "/");
  EXPECT_EQ(path::dirname("/"), "/");
  EXPECT_EQ(path::dirname("name"), ".");
  EXPECT_EQ(path::basename("/a/b/c.txt"), "c.txt");
  EXPECT_EQ(path::basename("/a/b/"), "b");
  EXPECT_EQ(path::basename("plain"), "plain");
  EXPECT_EQ(path::extname("/a/b/c.txt"), ".txt");
  EXPECT_EQ(path::extname("archive.tar.gz"), ".gz");
  EXPECT_EQ(path::extname("noext"), "");
  EXPECT_EQ(path::extname(".hidden"), "");
}

TEST(Path, Split) {
  EXPECT_EQ(path::split("/a/b/c"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(path::split("/"), std::vector<std::string>());
}

// Property: normalize is idempotent.
class PathNormalizeProperty : public ::testing::TestWithParam<const char *> {
};

TEST_P(PathNormalizeProperty, Idempotent) {
  std::string Once = path::normalize(GetParam());
  EXPECT_EQ(path::normalize(Once), Once);
}

INSTANTIATE_TEST_SUITE_P(Corpus, PathNormalizeProperty,
                         ::testing::Values("/a/b/../c", "a//b/./..", "/../..",
                                           "x/../../y/z/", "////",
                                           "/a/./././b", "..", ".",
                                           "/very/deep/../../../up"));

} // namespace
