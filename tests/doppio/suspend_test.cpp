//===- tests/doppio/suspend_test.cpp --------------------------------------==//
//
// Tests for §4: suspend-and-resume, the adaptive suspend counter, the
// resumption-mechanism choice per browser, the green-thread pool, and the
// synchronous-over-asynchronous bridge.
//
//===----------------------------------------------------------------------===//

#include "doppio/suspend.h"
#include "doppio/threads.h"

#include "gtest/gtest.h"

#include <memory>

using namespace doppio;
using namespace doppio::rt;
using namespace doppio::browser;

namespace {

TEST(ResumeMechanism, ChoiceMatchesSection44) {
  EXPECT_EQ(chooseResumeMechanism(chromeProfile()),
            ResumeMechanism::SendMessage);
  EXPECT_EQ(chooseResumeMechanism(firefoxProfile()),
            ResumeMechanism::SendMessage);
  EXPECT_EQ(chooseResumeMechanism(safariProfile()),
            ResumeMechanism::SendMessage);
  EXPECT_EQ(chooseResumeMechanism(operaProfile()),
            ResumeMechanism::SendMessage);
  // IE10 is the only browser with setImmediate.
  EXPECT_EQ(chooseResumeMechanism(ie10Profile()),
            ResumeMechanism::SetImmediate);
  // IE8's sendMessage is synchronous; setTimeout is the fallback.
  EXPECT_EQ(chooseResumeMechanism(ie8Profile()),
            ResumeMechanism::SetTimeout);
}

TEST(Suspender, ResumptionRunsAsSeparateEvent) {
  BrowserEnv Env(chromeProfile());
  Suspender Susp(Env);
  std::vector<int> Order;
  Env.loop().enqueueTask([&] {
    Susp.scheduleResumption([&] { Order.push_back(2); });
    Order.push_back(1);
  });
  Env.loop().run();
  EXPECT_EQ(Order, (std::vector<int>{1, 2}));
  EXPECT_EQ(Susp.resumptionCount(), 1u);
}

TEST(Suspender, TracksSuspendedTime) {
  // Figure 5's measurement: time between scheduling and resumption.
  BrowserEnv Env(ie8Profile()); // setTimeout: at least the 4 ms clamp.
  Suspender Susp(Env);
  Env.loop().enqueueTask(
      [&] { Susp.scheduleResumption([] {}); });
  Env.loop().run();
  EXPECT_GE(Susp.totalSuspendedNs(), msToNs(4));
}

TEST(Suspender, SendMessageResumptionIsFast) {
  BrowserEnv Env(chromeProfile());
  Suspender Susp(Env);
  Env.loop().enqueueTask([&] { Susp.scheduleResumption([] {}); });
  Env.loop().run();
  EXPECT_LT(Susp.totalSuspendedNs(), msToNs(1))
      << "sendMessage avoids the 4 ms clamp (§4.4)";
}

TEST(Suspender, MechanismLatencyOrdering) {
  // setImmediate < sendMessage < setTimeout, the §4.4 ranking.
  auto suspendedFor = [](const Profile &P, ResumeMechanism M) {
    BrowserEnv Env(P);
    Suspender Susp(Env);
    Susp.forceMechanism(M);
    Env.loop().enqueueTask([&] { Susp.scheduleResumption([] {}); });
    Env.loop().run();
    return Susp.totalSuspendedNs();
  };
  uint64_t Imm = suspendedFor(ie10Profile(), ResumeMechanism::SetImmediate);
  uint64_t Msg = suspendedFor(chromeProfile(),
                              ResumeMechanism::SendMessage);
  uint64_t Timer = suspendedFor(chromeProfile(),
                                ResumeMechanism::SetTimeout);
  EXPECT_LT(Imm, Msg);
  EXPECT_LT(Msg, Timer);
}

TEST(Suspender, ForcedSendMessageOnIe8NeverYields) {
  // The §4.4 pitfall: on IE8 the message handler runs inside post, so the
  // "resumption" executes synchronously within the same event.
  BrowserEnv Env(ie8Profile());
  Suspender Susp(Env);
  Susp.forceMechanism(ResumeMechanism::SendMessage);
  std::vector<int> Order;
  Env.loop().enqueueTask([&] {
    Susp.scheduleResumption([&] { Order.push_back(1); });
    Order.push_back(2);
  });
  Env.loop().run();
  EXPECT_EQ(Order, (std::vector<int>{1, 2}))
      << "resumption ran before the posting event finished";
  EXPECT_EQ(Env.channel().syncDispatchCount(), 1u);
}

TEST(Suspender, AdaptiveCounterConvergesTowardTimeSlice) {
  // §4.1: with checks costing ~1 us each and a 10 ms slice, the counter
  // should converge to ~10000 checks per slice.
  BrowserEnv Env(chromeProfile());
  Suspender Susp(Env);
  Susp.setTimeSliceNs(msToNs(10));
  Susp.beginSlice();
  int Suspensions = 0;
  for (int I = 0; I != 200000 && Suspensions < 8; ++I) {
    Env.clock().chargeNs(1000); // 1 us of simulated work per check.
    if (Susp.shouldSuspend()) {
      ++Suspensions;
      Susp.beginSlice();
    }
  }
  EXPECT_GE(Suspensions, 4);
  EXPECT_NEAR(static_cast<double>(Susp.currentCounterTarget()), 10000.0,
              3000.0);
  EXPECT_NEAR(Susp.avgCheckIntervalNs(), 1000.0, 250.0);
}

TEST(Suspender, AdaptiveCounterAdjustsWhenCheckCostChanges) {
  BrowserEnv Env(chromeProfile());
  Suspender Susp(Env);
  Susp.setTimeSliceNs(msToNs(10));
  Susp.beginSlice();
  // Cheap checks first.
  int Fired = 0;
  for (int I = 0; I != 100000 && Fired < 3; ++I) {
    Env.clock().chargeNs(100);
    if (Susp.shouldSuspend()) {
      ++Fired;
      Susp.beginSlice();
    }
  }
  uint64_t CheapTarget = Susp.currentCounterTarget();
  // Now each check is 100x more expensive; the target must shrink.
  Fired = 0;
  for (int I = 0; I != 100000 && Fired < 6; ++I) {
    Env.clock().chargeNs(10000);
    if (Susp.shouldSuspend()) {
      ++Fired;
      Susp.beginSlice();
    }
  }
  EXPECT_LT(Susp.currentCounterTarget(), CheapTarget);
}

//===--------------------------------------------------------------------===//
// ThreadPool
//===--------------------------------------------------------------------===//

/// A guest thread that "computes" by charging virtual time in bounded
/// slices, checking the suspend counter like a real language runtime.
class WorkThread : public GuestThread {
public:
  WorkThread(BrowserEnv &Env, Suspender &Susp, int TotalUnits,
             std::vector<int> &Journal, int Tag)
      : Env(Env), Susp(Susp), Remaining(TotalUnits), Journal(Journal),
        Tag(Tag) {}

  RunOutcome resume() override {
    while (Remaining > 0) {
      Env.clock().chargeNs(50000); // 50 us per unit.
      --Remaining;
      Journal.push_back(Tag);
      if (Susp.shouldSuspend())
        return RunOutcome::Yielded;
    }
    return RunOutcome::Terminated;
  }

private:
  BrowserEnv &Env;
  Suspender &Susp;
  int Remaining;
  std::vector<int> &Journal;
  int Tag;
};

TEST(ThreadPool, RunsSingleThreadToCompletion) {
  BrowserEnv Env(chromeProfile());
  Suspender Susp(Env);
  ThreadPool Pool(Env, Susp);
  std::vector<int> Journal;
  Pool.spawn(std::make_unique<WorkThread>(Env, Susp, 500, Journal, 1));
  Env.loop().run();
  EXPECT_EQ(Journal.size(), 500u);
  EXPECT_FALSE(Pool.hasLiveThreads());
  EXPECT_FALSE(Env.loop().watchdogFired())
      << "segmentation kept every event under the watchdog limit";
}

TEST(ThreadPool, LongComputationStaysUnderWatchdogOnlyWithSegmentation) {
  // 500 units x 50 us = 25 ms of work; the watchdog limit is 5 s, so use a
  // much longer computation: 200000 units = 10 s.
  BrowserEnv Env(chromeProfile());
  Suspender Susp(Env);
  ThreadPool Pool(Env, Susp);
  std::vector<int> Journal;
  Pool.spawn(std::make_unique<WorkThread>(Env, Susp, 200000, Journal, 1));
  Env.loop().run();
  EXPECT_EQ(Journal.size(), 200000u);
  EXPECT_FALSE(Env.loop().watchdogFired());
  EXPECT_GT(Env.loop().stats().EventsRun, 100u)
      << "the computation was split into many events";
}

TEST(ThreadPool, InterleavesTwoThreads) {
  BrowserEnv Env(chromeProfile());
  Suspender Susp(Env);
  ThreadPool Pool(Env, Susp);
  std::vector<int> Journal;
  Pool.spawn(std::make_unique<WorkThread>(Env, Susp, 2000, Journal, 1));
  Pool.spawn(std::make_unique<WorkThread>(Env, Susp, 2000, Journal, 2));
  Env.loop().run();
  ASSERT_EQ(Journal.size(), 4000u);
  // Both threads made progress before either finished: find a 2 before
  // the last 1 and a 1 after the first 2.
  size_t First2 = std::find(Journal.begin(), Journal.end(), 2) -
                  Journal.begin();
  size_t Last1 = Journal.rend() - std::find(Journal.rbegin(),
                                            Journal.rend(), 1);
  EXPECT_LT(First2, Last1) << "threads did not interleave";
  EXPECT_GT(Pool.contextSwitches(), 0u);
}

TEST(ThreadPool, CustomSchedulerControlsOrder) {
  BrowserEnv Env(chromeProfile());
  Suspender Susp(Env);
  ThreadPool Pool(Env, Susp);
  std::vector<int> Journal;
  Pool.spawn(std::make_unique<WorkThread>(Env, Susp, 300, Journal, 1));
  Pool.spawn(std::make_unique<WorkThread>(Env, Susp, 300, Journal, 2));
  // Always prefer the highest-numbered ready thread (§4.3: language
  // implementations can provide a scheduling function).
  Pool.setScheduler([](const std::vector<ThreadPool::ThreadId> &Ready) {
    return Ready.back();
  });
  Env.loop().run();
  ASSERT_EQ(Journal.size(), 600u);
  // Thread 2 must fully finish before thread 1 starts.
  size_t First1 = std::find(Journal.begin(), Journal.end(), 1) -
                  Journal.begin();
  size_t Last2 = Journal.rend() -
                 std::find(Journal.rbegin(), Journal.rend(), 2);
  EXPECT_GE(First1 + 1, Last2) << "scheduler order was not respected";
}

TEST(ThreadPool, InputStaysResponsiveDuringLongComputation) {
  // The core §4.1 claim: a long computation no longer blocks user input.
  BrowserEnv Env(chromeProfile());
  Suspender Susp(Env);
  ThreadPool Pool(Env, Susp);
  std::vector<int> Journal;
  Pool.spawn(std::make_unique<WorkThread>(Env, Susp, 100000, Journal, 1));
  // User input arriving throughout the ~5 s computation.
  for (int I = 1; I <= 40; ++I)
    Env.loop().setTimeout([&] { Env.clock().chargeNs(usToNs(200)); },
                          msToNs(100) * I, EventKind::Input);
  Env.loop().run();
  EXPECT_EQ(Journal.size(), 100000u);
  EXPECT_LT(Env.loop().stats().MaxInputLatencyNs, msToNs(50))
      << "input waited behind compute events";
}

//===--------------------------------------------------------------------===//
// AsyncBridge (§4.2)
//===--------------------------------------------------------------------===//

/// A guest thread that performs a "synchronous" read of a value only
/// obtainable asynchronously, using the bridge.
class BlockingReadThread : public GuestThread {
public:
  BlockingReadThread(BrowserEnv &Env, ThreadPool &Pool, AsyncBridge &Bridge)
      : Env(Env), Pool(Pool), Bridge(Bridge) {}

  RunOutcome resume() override {
    switch (Stage) {
    case 0: {
      Stage = 1;
      // Initiate the async op; the completion deposits the result and
      // unblocks this thread, emulating a synchronous call (§4.2).
      Bridge.blockOn(Pool.currentThread(),
                     [this](std::function<void()> Resume) {
                       Env.loop().scheduleAfter(
                           [this, Resume] {
                             Result = 42;
                             Resume();
                           },
                           msToNs(3));
                     });
      return RunOutcome::Blocked;
    }
    case 1:
      // Resumed "as if it had just received data synchronously".
      SawResult = Result;
      return RunOutcome::Terminated;
    }
    return RunOutcome::Terminated;
  }

  int sawResult() const { return SawResult; }

private:
  BrowserEnv &Env;
  ThreadPool &Pool;
  AsyncBridge &Bridge;
  int Stage = 0;
  int Result = 0;
  int SawResult = -1;
};

TEST(AsyncBridge, SynchronousCallOverAsyncApi) {
  BrowserEnv Env(chromeProfile());
  Suspender Susp(Env);
  ThreadPool Pool(Env, Susp);
  AsyncBridge Bridge(Pool);
  auto Thread = std::make_unique<BlockingReadThread>(Env, Pool, Bridge);
  BlockingReadThread *Raw = Thread.get();
  ThreadPool::ThreadId Id = Pool.spawn(std::move(Thread));
  Env.loop().run();
  EXPECT_EQ(Raw->sawResult(), 42);
  EXPECT_EQ(Pool.state(Id), ThreadState::Terminated);
}

TEST(AsyncBridge, OtherThreadsRunWhileOneBlocks) {
  BrowserEnv Env(chromeProfile());
  Suspender Susp(Env);
  ThreadPool Pool(Env, Susp);
  AsyncBridge Bridge(Pool);
  auto Blocking = std::make_unique<BlockingReadThread>(Env, Pool, Bridge);
  BlockingReadThread *Raw = Blocking.get();
  std::vector<int> Journal;
  Pool.spawn(std::move(Blocking));
  Pool.spawn(std::make_unique<WorkThread>(Env, Susp, 100, Journal, 7));
  Env.loop().run();
  EXPECT_EQ(Raw->sawResult(), 42);
  EXPECT_EQ(Journal.size(), 100u)
      << "the compute thread ran while the other was blocked on I/O";
}

//===--------------------------------------------------------------------===//
// AsyncBridge edge cases: completions are kernel-scheduled events, so they
// can legally arrive after the thread they targeted has moved on or died.
//===--------------------------------------------------------------------===//

/// Like BlockingReadThread, but the async operation fires its completion
/// twice (a buggy or racy browser API).
class DoubleCompletionThread : public GuestThread {
public:
  DoubleCompletionThread(BrowserEnv &Env, ThreadPool &Pool,
                         AsyncBridge &Bridge)
      : Env(Env), Pool(Pool), Bridge(Bridge) {}

  RunOutcome resume() override {
    switch (Stage) {
    case 0:
      Stage = 1;
      Bridge.blockOn(Pool.currentThread(),
                     [this](std::function<void()> Resume) {
                       Env.loop().scheduleAfter([this, Resume] {
                         Result = 42;
                         Resume();
                       }, msToNs(3));
                       Env.loop().scheduleAfter([Resume] { Resume(); },
                                                msToNs(5));
                     });
      return RunOutcome::Blocked;
    case 1:
      SawResult = Result;
      return RunOutcome::Terminated;
    }
    return RunOutcome::Terminated;
  }

  int sawResult() const { return SawResult; }

private:
  BrowserEnv &Env;
  ThreadPool &Pool;
  AsyncBridge &Bridge;
  int Stage = 0;
  int Result = 0;
  int SawResult = -1;
};

TEST(AsyncBridge, UnblockOfTerminatedThreadIsTolerated) {
  BrowserEnv Env(chromeProfile());
  Suspender Susp(Env);
  ThreadPool Pool(Env, Susp);
  std::vector<int> Journal;
  ThreadPool::ThreadId Id =
      Pool.spawn(std::make_unique<WorkThread>(Env, Susp, 10, Journal, 1));
  Env.loop().run();
  ASSERT_EQ(Pool.state(Id), ThreadState::Terminated);
  // A late completion targeting the dead thread: no crash, no state
  // change, counted as spurious.
  EXPECT_FALSE(Pool.unblock(Id));
  EXPECT_EQ(Pool.state(Id), ThreadState::Terminated);
  EXPECT_EQ(Pool.spuriousUnblocks(), 1u);
}

TEST(AsyncBridge, DoubleUnblockIsCountedSpurious) {
  BrowserEnv Env(chromeProfile());
  Suspender Susp(Env);
  ThreadPool Pool(Env, Susp);
  AsyncBridge Bridge(Pool);
  auto Thread =
      std::make_unique<DoubleCompletionThread>(Env, Pool, Bridge);
  DoubleCompletionThread *Raw = Thread.get();
  ThreadPool::ThreadId Id = Pool.spawn(std::move(Thread));
  Env.loop().run();
  // The first completion wakes the thread; the duplicate finds it already
  // finished and is absorbed.
  EXPECT_EQ(Raw->sawResult(), 42);
  EXPECT_EQ(Pool.state(Id), ThreadState::Terminated);
  EXPECT_EQ(Bridge.completionCount(), 2u);
  EXPECT_EQ(Pool.spuriousUnblocks(), 1u);
}

TEST(AsyncBridge, CompletionArrivingDuringWatchdogOverrunStillUnblocks) {
  // The completion comes due at t=3ms, but a runaway event is hogging the
  // thread far past the watchdog limit at that point. The kernel holds
  // the completion until the event ends; the blocked thread still wakes
  // and finishes.
  BrowserEnv Env(chromeProfile());
  Suspender Susp(Env);
  ThreadPool Pool(Env, Susp);
  AsyncBridge Bridge(Pool);
  auto Thread = std::make_unique<BlockingReadThread>(Env, Pool, Bridge);
  BlockingReadThread *Raw = Thread.get();
  ThreadPool::ThreadId Id = Pool.spawn(std::move(Thread));
  // The runaway event: overruns the watchdog while the completion is due.
  Env.loop().enqueueTask(
      [&] { Env.clock().chargeNs(Env.profile().WatchdogLimitNs + msToNs(1)); });
  Env.loop().run();
  EXPECT_TRUE(Env.loop().watchdogFired());
  EXPECT_EQ(Raw->sawResult(), 42);
  EXPECT_EQ(Pool.state(Id), ThreadState::Terminated);
  EXPECT_EQ(Pool.spuriousUnblocks(), 0u);
}

} // namespace
