//===- tests/doppio/buffer_test.cpp ---------------------------------------==//
//
// Tests for the Node Buffer emulation (§5.1): numeric accessors in both
// endiannesses, all string codecs with round-trip properties, the packed
// binary-string format and its per-browser fallback, and the typed-array
// memory accounting feeding the Safari-leak model.
//
//===----------------------------------------------------------------------===//

#include "doppio/buffer.h"

#include "gtest/gtest.h"

#include <cstdint>
#include <random>

using namespace doppio;
using namespace doppio::rt;
using namespace doppio::browser;

namespace {

TEST(Buffer, ZeroFilledOnAllocation) {
  BrowserEnv Env(chromeProfile());
  Buffer B(Env, 16);
  for (size_t I = 0; I != 16; ++I)
    EXPECT_EQ(B.readUInt8(I), 0);
}

TEST(Buffer, Int8RoundTrip) {
  BrowserEnv Env(chromeProfile());
  Buffer B(Env, 4);
  B.writeInt8(-100, 0);
  EXPECT_EQ(B.readInt8(0), -100);
  EXPECT_EQ(B.readUInt8(0), 156);
}

TEST(Buffer, Int16BothEndiannesses) {
  BrowserEnv Env(chromeProfile());
  Buffer B(Env, 8);
  B.writeUInt16LE(0x1234, 0);
  EXPECT_EQ(B.readUInt8(0), 0x34);
  EXPECT_EQ(B.readUInt8(1), 0x12);
  EXPECT_EQ(B.readUInt16LE(0), 0x1234);
  EXPECT_EQ(B.readUInt16BE(0), 0x3412);
  B.writeUInt16BE(0xBEEF, 2);
  EXPECT_EQ(B.readUInt8(2), 0xBE);
  EXPECT_EQ(B.readUInt16BE(2), 0xBEEF);
  EXPECT_EQ(B.readInt16BE(2), static_cast<int16_t>(0xBEEF));
}

TEST(Buffer, Int32BothEndiannesses) {
  BrowserEnv Env(chromeProfile());
  Buffer B(Env, 8);
  B.writeUInt32LE(0xDEADBEEF, 0);
  EXPECT_EQ(B.readUInt32LE(0), 0xDEADBEEFu);
  EXPECT_EQ(B.readUInt32BE(0), 0xEFBEADDEu);
  EXPECT_EQ(B.readInt32LE(0), static_cast<int32_t>(0xDEADBEEF));
  B.writeUInt32BE(1, 4);
  EXPECT_EQ(B.readUInt8(7), 1);
}

TEST(Buffer, FloatAndDoubleRoundTrip) {
  BrowserEnv Env(chromeProfile());
  Buffer B(Env, 24);
  B.writeFloatLE(3.5f, 0);
  EXPECT_EQ(B.readFloatLE(0), 3.5f);
  B.writeFloatBE(-0.125f, 4);
  EXPECT_EQ(B.readFloatBE(4), -0.125f);
  B.writeDoubleLE(6.02214076e23, 8);
  EXPECT_EQ(B.readDoubleLE(8), 6.02214076e23);
  B.writeDoubleBE(-1.0 / 3.0, 16);
  EXPECT_EQ(B.readDoubleBE(16), -1.0 / 3.0);
}

TEST(Buffer, CopyToAndFill) {
  BrowserEnv Env(chromeProfile());
  Buffer A(Env, 8), B(Env, 8);
  A.fill(0xAB, 0, 8);
  EXPECT_EQ(A.copyTo(B, 4, 0, 8), 4u) << "clamped to destination space";
  EXPECT_EQ(B.readUInt8(3), 0);
  EXPECT_EQ(B.readUInt8(4), 0xAB);
  EXPECT_EQ(B.readUInt8(7), 0xAB);
}

TEST(Buffer, BackingFollowsProfile) {
  BrowserEnv Chrome(chromeProfile());
  EXPECT_EQ(Buffer(Chrome, 4).backing(), Buffer::Backing::TypedArray);
  BrowserEnv Ie8(ie8Profile());
  EXPECT_EQ(Buffer(Ie8, 4).backing(), Buffer::Backing::NumberArray);
}

TEST(Buffer, TypedArrayAllocationIsAccounted) {
  BrowserEnv Env(chromeProfile());
  {
    Buffer B(Env, 1000);
    EXPECT_EQ(Env.liveTypedArrayBytes(), 1000u);
  }
  EXPECT_EQ(Env.liveTypedArrayBytes(), 0u);
  // Number arrays are not typed arrays: nothing to account.
  BrowserEnv Ie8(ie8Profile());
  Buffer N(Ie8, 1000);
  EXPECT_EQ(Ie8.liveTypedArrayBytes(), 0u);
}

TEST(Buffer, NumberArrayAccessChargesMore) {
  BrowserEnv Chrome(chromeProfile());
  BrowserEnv Ie8(ie8Profile());
  Buffer Fast(Chrome, 4096), Slow(Ie8, 4096);
  uint64_t T0 = Chrome.clock().nowNs();
  Fast.fill(1, 0, 4096);
  uint64_t FastCost = Chrome.clock().nowNs() - T0;
  uint64_t T1 = Ie8.clock().nowNs();
  Slow.fill(1, 0, 4096);
  uint64_t SlowCost = Ie8.clock().nowNs() - T1;
  EXPECT_GT(SlowCost, FastCost);
}

//===--------------------------------------------------------------------===//
// String codecs
//===--------------------------------------------------------------------===//

std::vector<uint8_t> patternBytes(size_t N, uint32_t Seed) {
  std::mt19937 Rng(Seed);
  std::vector<uint8_t> Out(N);
  for (auto &B : Out)
    B = static_cast<uint8_t>(Rng());
  return Out;
}

TEST(BufferCodec, AsciiToString) {
  BrowserEnv Env(chromeProfile());
  Buffer B = Buffer::fromString(Env, js::fromAscii("Hello"),
                                Encoding::Ascii);
  EXPECT_EQ(B.size(), 5u);
  EXPECT_EQ(js::toAscii(B.toString(Encoding::Ascii)), "Hello");
}

TEST(BufferCodec, AsciiStripsHighBitOnDecode) {
  BrowserEnv Env(chromeProfile());
  Buffer B(Env, std::vector<uint8_t>{0xC8, 0x41});
  js::String S = B.toString(Encoding::Ascii);
  EXPECT_EQ(S[0], 0x48); // High bit cleared, Node-style.
  EXPECT_EQ(S[1], u'A');
}

TEST(BufferCodec, Utf8RoundTripAsciiAndMultibyte) {
  BrowserEnv Env(chromeProfile());
  // "héllo€" + astral plane U+1F600 (surrogate pair).
  js::String Text = {u'h', 0x00E9, u'l', u'l', u'o', 0x20AC, 0xD83D,
                     0xDE00};
  Buffer B = Buffer::fromString(Env, Text, Encoding::Utf8);
  EXPECT_EQ(B.size(), 1u + 2 + 1 + 1 + 1 + 3 + 4);
  EXPECT_EQ(B.toString(Encoding::Utf8), Text);
}

TEST(BufferCodec, Utf8MalformedDecodesToReplacement) {
  BrowserEnv Env(chromeProfile());
  Buffer B(Env, std::vector<uint8_t>{0xFF, 'a', 0xC3});
  js::String S = B.toString(Encoding::Utf8);
  ASSERT_EQ(S.size(), 3u);
  EXPECT_EQ(S[0], 0xFFFD);
  EXPECT_EQ(S[1], u'a');
  EXPECT_EQ(S[2], 0xFFFD);
}

TEST(BufferCodec, Ucs2RoundTrip) {
  BrowserEnv Env(chromeProfile());
  js::String Text = {0x0041, 0x1234, 0xFFFF, 0x0000};
  Buffer B = Buffer::fromString(Env, Text, Encoding::Ucs2);
  EXPECT_EQ(B.size(), 8u);
  EXPECT_EQ(B.readUInt8(0), 0x41); // Little endian.
  EXPECT_EQ(B.toString(Encoding::Ucs2), Text);
}

TEST(BufferCodec, Base64KnownVectors) {
  BrowserEnv Env(chromeProfile());
  struct {
    const char *Plain;
    const char *Encoded;
  } Cases[] = {{"", ""},         {"f", "Zg=="},     {"fo", "Zm8="},
               {"foo", "Zm9v"},  {"foob", "Zm9vYg=="},
               {"fooba", "Zm9vYmE="}, {"foobar", "Zm9vYmFy"}};
  for (const auto &C : Cases) {
    Buffer B = Buffer::fromString(Env, js::fromAscii(C.Plain),
                                  Encoding::Ascii);
    EXPECT_EQ(js::toAscii(B.toString(Encoding::Base64)), C.Encoded)
        << C.Plain;
    Buffer D = Buffer::fromString(Env, js::fromAscii(C.Encoded),
                                  Encoding::Base64);
    EXPECT_EQ(js::toAscii(D.toString(Encoding::Ascii)), C.Plain)
        << C.Encoded;
  }
}

TEST(BufferCodec, HexRoundTrip) {
  BrowserEnv Env(chromeProfile());
  Buffer B(Env, std::vector<uint8_t>{0x00, 0xFF, 0x1A, 0x2B});
  EXPECT_EQ(js::toAscii(B.toString(Encoding::Hex)), "00ff1a2b");
  Buffer D = Buffer::fromString(Env, js::fromAscii("00FF1a2b"),
                                Encoding::Hex);
  EXPECT_EQ(D.bytes(), B.bytes());
}

TEST(BufferCodec, ParseEncodingNames) {
  EXPECT_EQ(parseEncoding("utf8"), Encoding::Utf8);
  EXPECT_EQ(parseEncoding("utf-8"), Encoding::Utf8);
  EXPECT_EQ(parseEncoding("ucs2"), Encoding::Ucs2);
  EXPECT_EQ(parseEncoding("base64"), Encoding::Base64);
  EXPECT_EQ(parseEncoding("hex"), Encoding::Hex);
  EXPECT_EQ(parseEncoding("binary"), Encoding::BinaryString);
  EXPECT_EQ(parseEncoding("klingon"), std::nullopt);
}

TEST(BufferCodec, BinaryStringPacksTwoBytesOnChrome) {
  // §5.1: 2 bytes per UTF-16 code unit on non-validating browsers.
  BrowserEnv Env(chromeProfile());
  ASSERT_TRUE(Buffer::packsTwoBytesPerChar(Env.profile()));
  std::vector<uint8_t> Data = patternBytes(1000, 42);
  Buffer B(Env, Data);
  js::String Packed = B.toString(Encoding::BinaryString);
  EXPECT_LE(Packed.size(), Data.size() / 2 + 2);
  Buffer D = Buffer::fromString(Env, Packed, Encoding::BinaryString);
  EXPECT_EQ(D.bytes(), Data);
}

TEST(BufferCodec, BinaryStringOddLengthRoundTrip) {
  BrowserEnv Env(chromeProfile());
  for (size_t Len : {0u, 1u, 2u, 3u, 7u, 255u}) {
    std::vector<uint8_t> Data = patternBytes(Len, Len + 1);
    Buffer B(Env, Data);
    Buffer D = Buffer::fromString(Env, B.toString(Encoding::BinaryString),
                                  Encoding::BinaryString);
    EXPECT_EQ(D.bytes(), Data) << "len " << Len;
  }
}

TEST(BufferCodec, BinaryStringFallsBackOnValidatingBrowsers) {
  // Opera validates UTF-16, so the packed form (which can contain lone
  // surrogates) is unusable; one byte per character instead (§5.1).
  BrowserEnv Env(operaProfile());
  ASSERT_FALSE(Buffer::packsTwoBytesPerChar(Env.profile()));
  std::vector<uint8_t> Data = patternBytes(100, 7);
  Buffer B(Env, Data);
  js::String S = B.toString(Encoding::BinaryString);
  EXPECT_EQ(S.size(), Data.size()); // 1 byte per code unit.
  EXPECT_TRUE(js::isValidUtf16(S));
  Buffer D = Buffer::fromString(Env, S, Encoding::BinaryString);
  EXPECT_EQ(D.bytes(), Data);
}

TEST(BufferCodec, PackedBinaryStringSurvivesLocalStorage) {
  // End-to-end §5.1 story: packed strings store into localStorage on
  // Chrome, and the fallback form stores on validating Opera.
  for (const Profile *P : {&chromeProfile(), &operaProfile()}) {
    BrowserEnv Env(*P);
    std::vector<uint8_t> Data = patternBytes(512, 99);
    Buffer B(Env, Data);
    js::String S = B.toString(Encoding::BinaryString);
    ASSERT_EQ(Env.localStorage().setItem("blob", S), StoreResult::Ok)
        << P->Name;
    Buffer D = Buffer::fromString(Env, *Env.localStorage().getItem("blob"),
                                  Encoding::BinaryString);
    EXPECT_EQ(D.bytes(), Data) << P->Name;
  }
}

// Property test: every codec round-trips random payloads on every profile.
class CodecRoundTrip
    : public ::testing::TestWithParam<std::tuple<std::string, Encoding>> {};

TEST_P(CodecRoundTrip, RandomPayloads) {
  const auto &[ProfileName, Codec] = GetParam();
  BrowserEnv Env(*findProfile(ProfileName));
  for (uint32_t Seed = 0; Seed != 8; ++Seed) {
    std::vector<uint8_t> Data = patternBytes(1 + Seed * 37, Seed);
    if (Codec == Encoding::Ucs2 && Data.size() % 2)
      Data.push_back(0); // UCS-2 is only defined for even byte counts.
    Buffer B(Env, Data);
    js::String S = B.toString(Codec);
    Buffer D = Buffer::fromString(Env, S, Codec);
    if (Codec == Encoding::Ascii) {
      // ASCII is lossy above 0x7F; compare the low 7 bits.
      ASSERT_EQ(D.bytes().size(), Data.size());
      for (size_t I = 0; I != Data.size(); ++I)
        EXPECT_EQ(D.bytes()[I], Data[I] & 0x7F);
      continue;
    }
    EXPECT_EQ(D.bytes(), Data) << "seed " << Seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllProfiles, CodecRoundTrip,
    ::testing::Combine(::testing::Values("chrome", "firefox", "safari",
                                         "opera", "ie10", "ie8"),
                       ::testing::Values(Encoding::Ascii, Encoding::Ucs2,
                                         Encoding::Base64, Encoding::Hex,
                                         Encoding::BinaryString)));

} // namespace
