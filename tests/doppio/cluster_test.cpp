//===- tests/doppio/cluster_test.cpp --------------------------------------==//
//
// Tests for the cluster subsystem (doppio/cluster/): the cross-tab fabric
// (frame delivery edges, FIN ordering, cross-tab ECONNREFUSED), lockstep
// determinism, and the balancer's shard lifecycle — routing, metrics
// interception, graceful drain with zero lost requests, kill with
// synthesized errors, and saturation refusal.
//
//===----------------------------------------------------------------------===//

#include "doppio/cluster/cluster.h"

#include "browser/profile.h"
#include "doppio/cluster/control.h"
#include "doppio/server/client.h"
#include "jvm/classfile/builder.h"
#include "jvm/proc_program.h"

#include "gtest/gtest.h"

#include <optional>

using namespace doppio;
using namespace doppio::browser;
using namespace doppio::cluster;
using doppio::rt::server::FrameClient;

namespace {

std::vector<uint8_t> bytesOf(const char *S) {
  return std::vector<uint8_t>(S, S + std::char_traits<char>::length(S));
}

//===----------------------------------------------------------------------===//
// Fabric: cross-tab delivery edges
//===----------------------------------------------------------------------===//

TEST(Fabric, EchoRoundTripAcrossTabs) {
  Fabric Fab;
  BrowserEnv A(chromeProfile()), B(chromeProfile());
  TabId TA = Fab.attach(A), TB = Fab.attach(B);

  bool Listening = B.net().listen(9000, [](TcpConnection &T) {
    TcpConnection *P = &T;
    P->setOnData([P](const std::vector<uint8_t> &D) { P->send(D); });
  });
  ASSERT_TRUE(Listening);

  std::vector<uint8_t> Echoed;
  bool Connected = false;
  Fab.connect(TA, TB, 9000, [&](Fabric::Endpoint *Ep) {
    ASSERT_NE(Ep, nullptr);
    Connected = true;
    Ep->setOnData([&, Ep](const std::vector<uint8_t> &D) {
      Echoed.insert(Echoed.end(), D.begin(), D.end());
      if (Echoed.size() >= 5)
        Ep->close();
    });
    Ep->send(bytesOf("hello"));
  });

  LockstepDriver(Fab).run(100000);
  EXPECT_TRUE(Connected);
  EXPECT_EQ(Echoed, bytesOf("hello"));
  EXPECT_TRUE(Fab.quiescent());
  EXPECT_GT(Fab.crossings(), 0u);
}

TEST(Fabric, SplitFramesReassembleAcrossTabs) {
  // A doppiod frame sent one byte per mail record must reassemble on the
  // far side; a dangling partial header must neither produce a frame nor
  // corrupt the stream.
  namespace frame = rt::server::frame;
  Fabric Fab;
  BrowserEnv A(chromeProfile()), B(chromeProfile());
  TabId TA = Fab.attach(A), TB = Fab.attach(B);

  frame::Decoder Dec;
  size_t Frames = 0;
  std::vector<uint8_t> Got;
  B.net().listen(9100, [&](TcpConnection &T) {
    T.setOnData([&](const std::vector<uint8_t> &D) {
      Dec.feed(D);
      while (auto P = Dec.next()) {
        ++Frames;
        Got = *P;
      }
    });
  });

  std::vector<uint8_t> Payload = bytesOf("cross-tab frame payload");
  std::vector<uint8_t> Encoded = frame::encode(Payload);
  Fab.connect(TA, TB, 9100, [&](Fabric::Endpoint *Ep) {
    ASSERT_NE(Ep, nullptr);
    for (uint8_t Byte : Encoded)
      Ep->send({Byte});
    // Then a partial next frame: two header bytes of four, never
    // completed.
    Ep->send({0, 0});
  });

  LockstepDriver(Fab).run(100000);
  EXPECT_EQ(Frames, 1u);
  EXPECT_EQ(Got, Payload);
  EXPECT_FALSE(Dec.corrupted());
  EXPECT_EQ(Dec.bufferedBytes(), 2u);
}

TEST(Fabric, FinArrivesAfterDataBothDirections) {
  Fabric Fab;
  BrowserEnv A(chromeProfile()), B(chromeProfile());
  TabId TA = Fab.attach(A), TB = Fab.attach(B);

  // Originator -> gateway: 10 chunks then an immediate close. The
  // listener must have every byte by the time its close handler fires.
  size_t SrvBytes = 0, SrvBytesAtClose = 0;
  bool SrvClosed = false;
  B.net().listen(9200, [&](TcpConnection &T) {
    T.setOnData(
        [&](const std::vector<uint8_t> &D) { SrvBytes += D.size(); });
    T.setOnClose([&] {
      SrvClosed = true;
      SrvBytesAtClose = SrvBytes;
    });
  });
  Fab.connect(TA, TB, 9200, [&](Fabric::Endpoint *Ep) {
    ASSERT_NE(Ep, nullptr);
    for (int I = 0; I < 10; ++I)
      Ep->send(std::vector<uint8_t>(100, 'x'));
    Ep->close();
  });
  LockstepDriver(Fab).run(100000);
  EXPECT_TRUE(SrvClosed);
  EXPECT_EQ(SrvBytesAtClose, 1000u);

  // Gateway -> originator: the listener sends then closes; the endpoint
  // must see the bytes before its close handler.
  size_t CliBytes = 0, CliBytesAtClose = 0;
  bool CliClosed = false;
  B.net().listen(9300, [&](TcpConnection &T) {
    T.send(std::vector<uint8_t>(256, 'y'));
    // Close *after* accept returns: closing inside the accept handler is
    // SimNet's refusal signal and would never establish the connection.
    TcpConnection *P = &T;
    B.loop().post(kernel::Lane::Background, [P] { P->close(); });
  });
  Fab.connect(TA, TB, 9300, [&](Fabric::Endpoint *Ep) {
    ASSERT_NE(Ep, nullptr);
    Ep->setOnData(
        [&](const std::vector<uint8_t> &D) { CliBytes += D.size(); });
    Ep->setOnClose([&] {
      CliClosed = true;
      CliBytesAtClose = CliBytes;
    });
  });
  LockstepDriver(Fab).run(100000);
  EXPECT_TRUE(CliClosed);
  EXPECT_EQ(CliBytesAtClose, 256u);
}

TEST(Fabric, CrossTabConnectionRefused) {
  Fabric Fab;
  BrowserEnv A(chromeProfile()), B(chromeProfile());
  TabId TA = Fab.attach(A), TB = Fab.attach(B);

  // Nothing listening on the port.
  bool RefusedNoListener = false;
  Fab.connect(TA, TB, 9400, [&](Fabric::Endpoint *Ep) {
    RefusedNoListener = Ep == nullptr;
  });

  // A listener that closes inside accept — SimNet's backlog-overflow
  // semantics — must also surface as a refused cross-tab connect.
  B.net().listen(9500, [](TcpConnection &T) { T.close(); });
  bool RefusedOverflow = false;
  Fab.connect(TA, TB, 9500, [&](Fabric::Endpoint *Ep) {
    RefusedOverflow = Ep == nullptr;
  });

  LockstepDriver(Fab).run(100000);
  EXPECT_TRUE(RefusedNoListener);
  EXPECT_TRUE(RefusedOverflow);
  EXPECT_TRUE(Fab.quiescent());
}

TEST(Fabric, ControlPlaneDelivery) {
  Fabric Fab;
  BrowserEnv A(chromeProfile()), B(chromeProfile());
  TabId TA = Fab.attach(A), TB = Fab.attach(B);

  std::optional<TabId> GotFrom;
  std::vector<uint8_t> GotPayload;
  Fab.setControlHandler(TB, [&](TabId From, std::vector<uint8_t> P) {
    GotFrom = From;
    GotPayload = std::move(P);
  });
  Fab.sendControl(TA, TB, control::encode(control::Kind::Drain,
                                          bytesOf("payload")));
  LockstepDriver(Fab).run(100000);

  ASSERT_TRUE(GotFrom.has_value());
  EXPECT_EQ(*GotFrom, TA);
  auto M = control::decode(GotPayload);
  ASSERT_TRUE(M.has_value());
  EXPECT_EQ(M->K, control::Kind::Drain);
  EXPECT_EQ(M->Payload, bytesOf("payload"));
}

//===----------------------------------------------------------------------===//
// Cluster: routing, interception, lifecycle
//===----------------------------------------------------------------------===//

/// f<I>.bin as seeded by every shard.
size_t seedSize(size_t I) { return 64 + 251 * I; }

TEST(Cluster, EndToEndRequestsAndMetricsInterception) {
  Cluster::Config Cfg;
  Cfg.Shards = 2;
  Cluster Cl(chromeProfile(), Cfg);
  LockstepDriver Drv(Cl.fabric());

  FrameClient C(Cl.balancer().env().net());
  std::vector<rt::server::frame::Response> Responses;
  C.connect(Cl.balancer().port(), [&](bool Ok) {
    ASSERT_TRUE(Ok);
    auto Collect = [&](rt::server::frame::Response R) {
      Responses.push_back(std::move(R));
      if (Responses.size() == 3)
        C.close();
    };
    // Pipelined: shard, balancer-local, shard. The metrics response must
    // still land second — the balancer slots it into response order.
    C.request("work", bytesOf("50 /srv/f2.bin"), Collect);
    C.request("metrics", bytesOf("json"), Collect);
    C.request("work", bytesOf("50 /srv/f3.bin"), Collect);
  });

  auto Rep = Drv.run(1000000);
  ASSERT_LT(Rep.Rounds, 1000000u);
  ASSERT_EQ(Responses.size(), 3u);
  EXPECT_EQ(Responses[0].S, rt::server::frame::Status::Ok);
  EXPECT_EQ(Responses[0].Body.size(), seedSize(2));
  EXPECT_EQ(Responses[1].S, rt::server::frame::Status::Ok);
  EXPECT_NE(Responses[1].text().find("balancer"), std::string::npos);
  EXPECT_EQ(Responses[2].S, rt::server::frame::Status::Ok);
  EXPECT_EQ(Responses[2].Body.size(), seedSize(3));

  Balancer::Stats St = Cl.balancer().stats();
  EXPECT_EQ(St.ConnsAccepted, 1u);
  EXPECT_EQ(St.MetricsServed, 1u);
  EXPECT_EQ(St.RequestsForwarded, 2u);
  EXPECT_EQ(St.ResponsesReturned, 3u);
  EXPECT_EQ(St.ErrorsSynthesized, 0u);
  EXPECT_FALSE(St.UpstreamRttNs.empty());
  EXPECT_FALSE(St.RouteNs.empty());

  // The per-shard proc workers (echo | wc pipelines) ran to completion
  // inside each shard tab during the same lockstep run.
  for (uint32_t S = 0; S < 2; ++S)
    EXPECT_EQ(Cl.shard(S)->workersDone(),
              Cl.shard(S)->config().WorkerPipelines)
        << "shard " << S;
}

TEST(Cluster, SnapshotAggregationUnderShardPrefixes) {
  Cluster::Config Cfg;
  Cfg.Shards = 2;
  Cluster Cl(chromeProfile(), Cfg);
  LockstepDriver Drv(Cl.fabric());

  // Phase 1: put some load through so shard stats are non-zero.
  FrameClient C(Cl.balancer().env().net());
  size_t Got = 0;
  C.connect(Cl.balancer().port(), [&](bool Ok) {
    ASSERT_TRUE(Ok);
    for (int I = 0; I < 4; ++I)
      C.request("work", bytesOf("20 /srv/f1.bin"),
                [&](rt::server::frame::Response R) {
                  EXPECT_EQ(R.S, rt::server::frame::Status::Ok);
                  if (++Got == 4)
                    C.close();
                });
  });
  Drv.run(1000000);
  ASSERT_EQ(Got, 4u);

  // Phase 2: shards push snapshots over the control plane; the balancer
  // mirrors them under its claimed "shard" prefixes.
  Cl.shard(0)->pushStats(Cl.balancer().tab());
  Cl.shard(1)->pushStats(Cl.balancer().tab());
  Drv.run(1000000);

  ASSERT_EQ(Cl.balancer().snapshots().size(), 2u);
  uint64_t Served = 0;
  for (const auto &[Id, S] : Cl.balancer().snapshots()) {
    EXPECT_EQ(S.ShardId, Id);
    Served += S.RequestsServed;
    EXPECT_GT(S.VirtualNowNs, 0u);
  }
  EXPECT_EQ(Served, 4u);

  // Phase 3: a metrics request through the front door sees the
  // aggregated view.
  FrameClient C2(Cl.balancer().env().net());
  std::string Body;
  C2.connect(Cl.balancer().port(), [&](bool Ok) {
    ASSERT_TRUE(Ok);
    C2.request("metrics", {}, [&](rt::server::frame::Response R) {
      EXPECT_EQ(R.S, rt::server::frame::Status::Ok);
      Body = R.text();
      C2.close();
    });
  });
  Drv.run(1000000);
  EXPECT_NE(Body.find("shard"), std::string::npos);
  EXPECT_NE(Body.find("balancer"), std::string::npos);
}

TEST(Cluster, LockstepRunsAreDeterministic) {
  // Two identical runs must produce identical virtual timelines: same
  // fabric crossings, same per-tab clocks, same round count.
  struct Fingerprint {
    uint64_t Crossings = 0;
    uint64_t Rounds = 0;
    uint64_t Ok = 0;
    std::vector<uint64_t> Clocks;
    bool operator==(const Fingerprint &O) const {
      return Crossings == O.Crossings && Rounds == O.Rounds && Ok == O.Ok &&
             Clocks == O.Clocks;
    }
  };
  auto RunOnce = [] {
    Cluster::Config Cfg;
    Cfg.Shards = 2;
    Cluster Cl(chromeProfile(), Cfg);
    LockstepDriver Drv(Cl.fabric());
    std::vector<std::unique_ptr<FrameClient>> Clients;
    uint64_t Ok = 0;
    for (int I = 0; I < 6; ++I) {
      auto C = std::make_unique<FrameClient>(Cl.balancer().env().net());
      FrameClient *P = C.get();
      P->connect(Cl.balancer().port(), [P, &Ok](bool Connected) {
        if (!Connected)
          return;
        for (int R = 0; R < 3; ++R)
          P->request("work", bytesOf("100 /srv/f2.bin"),
                     [P, R, &Ok](rt::server::frame::Response Resp) {
                       if (Resp.S == rt::server::frame::Status::Ok)
                         ++Ok;
                       if (R == 2)
                         P->close();
                     });
      });
      Clients.push_back(std::move(C));
    }
    auto Rep = Drv.run(1000000);
    Fingerprint F;
    F.Crossings = Cl.fabric().crossings();
    F.Rounds = Rep.Rounds;
    F.Ok = Ok;
    F.Clocks.push_back(Cl.balancer().env().clock().nowNs());
    for (uint32_t S = 0; S < 2; ++S)
      F.Clocks.push_back(Cl.shard(S)->env().clock().nowNs());
    return F;
  };
  Fingerprint A = RunOnce();
  Fingerprint B = RunOnce();
  EXPECT_EQ(A.Ok, 18u);
  EXPECT_TRUE(A == B);
}

TEST(Cluster, DrainUnderLoadLosesNothingAndLeavesNoPendingWork) {
  Cluster::Config Cfg;
  Cfg.Shards = 2;
  Cluster Cl(chromeProfile(), Cfg);
  LockstepDriver Drv(Cl.fabric());

  constexpr int NumClients = 12, Requests = 5;
  std::vector<std::unique_ptr<FrameClient>> Clients;
  uint64_t Ok = 0, NotOk = 0;
  for (int I = 0; I < NumClients; ++I) {
    auto C = std::make_unique<FrameClient>(Cl.balancer().env().net());
    FrameClient *P = C.get();
    P->connect(Cl.balancer().port(), [P, &Ok, &NotOk](bool Connected) {
      ASSERT_TRUE(Connected);
      for (int R = 0; R < Requests; ++R)
        P->request("work", bytesOf("200 /srv/f1.bin"),
                   [P, R, &Ok, &NotOk](rt::server::frame::Response Resp) {
                     Resp.S == rt::server::frame::Status::Ok ? ++Ok
                                                             : ++NotOk;
                     if (R == Requests - 1)
                       P->close();
                   });
    });
    Clients.push_back(std::move(C));
  }

  // At 3ms virtual — connections established (setup alone costs ~1ms of
  // fabric hops and SimNet latency), workload mid-flight — drain
  // whichever shard is busiest.
  uint32_t Victim = 0;
  uint64_t VictimActive = 0;
  bool DrainDone = false;
  std::optional<ShardSnapshot> Final;
  browser::TimerHandle DrainTimer = Cl.balancer().env().loop().postTimer(
      kernel::Lane::Timer,
      [&] {
        uint64_t Best = 0;
        for (uint32_t S = 0; S < 2; ++S) {
          uint64_t A = Cl.shard(S)->server().stats().Active;
          if (A >= Best) {
            Best = A;
            Victim = S;
          }
        }
        VictimActive = Best;
        bool Started = Cl.drainShard(Victim, [&](const ShardSnapshot &S) {
          DrainDone = true;
          Final = S;
        });
        EXPECT_TRUE(Started);
      },
      msToNs(3));

  auto Rep = Drv.run(1000000);
  ASSERT_LT(Rep.Rounds, 1000000u);

  // Zero lost requests: every pipelined request of every client came back
  // Ok — outstanding ones finished on the old shard, queued ones followed
  // the re-route.
  EXPECT_EQ(Ok, static_cast<uint64_t>(NumClients) * Requests);
  EXPECT_EQ(NotOk, 0u);
  EXPECT_GT(VictimActive, 0u) << "drain landed after the load finished";

  // The drain completed: shard off the ring, DrainDone with a final
  // snapshot, doppiod stopped.
  EXPECT_TRUE(DrainDone);
  ASSERT_TRUE(Final.has_value());
  EXPECT_EQ(Final->ShardId, Victim);
  EXPECT_GT(Final->RequestsServed, 0u);
  EXPECT_EQ(Final->Active, 0u);
  EXPECT_TRUE(Cl.shardDrained(Victim));
  EXPECT_FALSE(Cl.shard(Victim)->server().isRunning());
  EXPECT_EQ(Cl.balancer().liveShards(), 1u);

  // The drained shard's tab reached zero pending kernel work: the drain
  // cancelled the idle sweep along with everything else.
  EXPECT_FALSE(Cl.shardPendingWorkNs(Victim).has_value());
  EXPECT_TRUE(Cl.fabric().quiescent());

  Balancer::Stats St = Cl.balancer().stats();
  EXPECT_EQ(St.ErrorsSynthesized, 0u);
  EXPECT_GT(St.Rerouted, 0u);
}

TEST(Cluster, KillSynthesizesErrorsAndReroutes) {
  Cluster::Config Cfg;
  Cfg.Shards = 2;
  Cluster Cl(chromeProfile(), Cfg);
  LockstepDriver Drv(Cl.fabric());

  constexpr int NumClients = 6, Requests = 4;
  std::vector<std::unique_ptr<FrameClient>> Clients;
  uint64_t Ok = 0, Errors = 0;
  for (int I = 0; I < NumClients; ++I) {
    auto C = std::make_unique<FrameClient>(Cl.balancer().env().net());
    FrameClient *P = C.get();
    P->connect(Cl.balancer().port(), [P, &Ok, &Errors](bool Connected) {
      ASSERT_TRUE(Connected);
      for (int R = 0; R < Requests; ++R)
        P->request("work", bytesOf("300 /srv/f1.bin"),
                   [P, R, &Ok, &Errors](rt::server::frame::Response Resp) {
                     Resp.S == rt::server::frame::Status::Ok ? ++Ok
                                                             : ++Errors;
                     if (R == Requests - 1)
                       P->close();
                   });
    });
    Clients.push_back(std::move(C));
  }

  uint32_t Victim = 0;
  uint64_t VictimActive = 0;
  browser::TimerHandle KillTimer = Cl.balancer().env().loop().postTimer(
      kernel::Lane::Timer,
      [&] {
        uint64_t Best = 0;
        for (uint32_t S = 0; S < 2; ++S) {
          uint64_t A = Cl.shard(S)->server().stats().Active;
          if (A >= Best) {
            Best = A;
            Victim = S;
          }
        }
        VictimActive = Best;
        EXPECT_TRUE(Cl.killShard(Victim));
      },
      msToNs(3));

  auto Rep = Drv.run(1000000);
  ASSERT_LT(Rep.Rounds, 1000000u);

  // Every request got exactly one response; forwarded-but-unanswered ones
  // came back as synthesized errors, in order.
  EXPECT_EQ(Ok + Errors, static_cast<uint64_t>(NumClients) * Requests);
  EXPECT_GT(VictimActive, 0u) << "kill landed after the load finished";
  Balancer::Stats St = Cl.balancer().stats();
  EXPECT_EQ(Errors, St.ErrorsSynthesized);
  EXPECT_GT(St.ErrorsSynthesized, 0u);
  EXPECT_GT(St.Rerouted, 0u);

  // The killed shard tore down cleanly: final snapshot reported, no
  // pending kernel work, ring shrunk.
  EXPECT_TRUE(Cl.balancer().snapshots().count(Victim));
  EXPECT_FALSE(Cl.shard(Victim)->server().isRunning());
  EXPECT_FALSE(Cl.shardPendingWorkNs(Victim).has_value());
  EXPECT_EQ(Cl.balancer().liveShards(), 1u);
  EXPECT_TRUE(Cl.fabric().quiescent());
}

TEST(Cluster, SaturatedFleetRefusesVisibly) {
  // One shard, one-connection capacity, zero backlog: the second client's
  // upstream walk exhausts every candidate and the front door refuses
  // with accounting, never a silent drop.
  Cluster::Config Cfg;
  Cfg.Shards = 1;
  Cfg.ShardTemplate.MaxConnections = 1;
  Cfg.ShardTemplate.Backlog = 0;
  Cluster Cl(chromeProfile(), Cfg);
  LockstepDriver Drv(Cl.fabric());

  FrameClient C1(Cl.balancer().env().net());
  FrameClient C2(Cl.balancer().env().net());
  std::optional<rt::server::frame::Response> R2;
  C1.connect(Cl.balancer().port(), [&](bool Ok) {
    ASSERT_TRUE(Ok);
    C1.request("work", bytesOf("10 /srv/f0.bin"),
               [&](rt::server::frame::Response R) {
                 EXPECT_EQ(R.S, rt::server::frame::Status::Ok);
                 // Shard slot now provably held by C1; bring in C2.
                 C2.connect(Cl.balancer().port(), [&](bool Ok2) {
                   EXPECT_TRUE(Ok2); // Front door accepts...
                   C2.request("work", bytesOf("10 /srv/f0.bin"),
                              [&](rt::server::frame::Response R) {
                                R2 = std::move(R); // ...routing refuses.
                                C1.close();
                              });
                 });
               });
  });

  Drv.run(1000000);
  ASSERT_TRUE(R2.has_value());
  EXPECT_EQ(R2->S, rt::server::frame::Status::Error);
  EXPECT_EQ(Cl.balancer().stats().RefusedSaturated, 1u);
}

TEST(Cluster, FrontDoorCapRefuses) {
  Cluster::Config Cfg;
  Cfg.Shards = 1;
  Cfg.Bal.MaxConnections = 1;
  Cluster Cl(chromeProfile(), Cfg);
  LockstepDriver Drv(Cl.fabric());

  FrameClient C1(Cl.balancer().env().net());
  FrameClient C2(Cl.balancer().env().net());
  std::optional<bool> C2Connected;
  C1.connect(Cl.balancer().port(), [&](bool Ok) {
    ASSERT_TRUE(Ok);
    C2.connect(Cl.balancer().port(), [&](bool Ok2) {
      C2Connected = Ok2;
      C1.close();
    });
  });

  Drv.run(1000000);
  ASSERT_TRUE(C2Connected.has_value());
  EXPECT_FALSE(*C2Connected);
  EXPECT_EQ(Cl.balancer().stats().ConnsRefused, 1u);
}

TEST(Cluster, EmptyRingRefusesAsSaturated) {
  Cluster::Config Cfg;
  Cfg.Shards = 1;
  Cluster Cl(chromeProfile(), Cfg);
  LockstepDriver Drv(Cl.fabric());

  // Drain the only shard (idle, so it completes immediately).
  bool Drained = false;
  Cl.balancer().env().loop().post(kernel::Lane::Background, [&] {
    Cl.drainShard(0, [&](const ShardSnapshot &) { Drained = true; });
  });
  Drv.run(1000000);
  ASSERT_TRUE(Drained);
  EXPECT_EQ(Cl.balancer().liveShards(), 0u);

  // With nothing on the ring the walk exhausts synchronously inside the
  // accept path, so the close surfaces as a refused connect (SimNet's
  // close-inside-accept semantics) — and it is accounted as saturation.
  FrameClient C(Cl.balancer().env().net());
  std::optional<bool> Connected;
  C.connect(Cl.balancer().port(), [&](bool Ok) { Connected = Ok; });
  Drv.run(1000000);
  ASSERT_TRUE(Connected.has_value());
  EXPECT_FALSE(*Connected);
  EXPECT_EQ(Cl.balancer().stats().RefusedSaturated, 1u);
}

TEST(Cluster, LiveSpawnTakesNewConnections) {
  Cluster::Config Cfg;
  Cfg.Shards = 1;
  Cluster Cl(chromeProfile(), Cfg);
  LockstepDriver Drv(Cl.fabric());

  auto RunClients = [&](int N) {
    std::vector<std::unique_ptr<FrameClient>> Clients;
    uint64_t Ok = 0;
    for (int I = 0; I < N; ++I) {
      auto C = std::make_unique<FrameClient>(Cl.balancer().env().net());
      FrameClient *P = C.get();
      P->connect(Cl.balancer().port(), [P, &Ok](bool Connected) {
        ASSERT_TRUE(Connected);
        P->request("work", bytesOf("20 /srv/f0.bin"),
                   [P, &Ok](rt::server::frame::Response R) {
                     if (R.S == rt::server::frame::Status::Ok)
                       ++Ok;
                     P->close();
                   });
      });
      Clients.push_back(std::move(C));
    }
    Drv.run(1000000);
    return Ok;
  };

  EXPECT_EQ(RunClients(4), 4u);

  // Live-add a shard between lockstep rounds; the consistent-hash ring
  // now routes a share of fresh connections to it.
  uint32_t NewId = Cl.spawnShard();
  EXPECT_EQ(Cl.balancer().liveShards(), 2u);
  EXPECT_EQ(RunClients(16), 16u);
  EXPECT_GT(Cl.shard(NewId)->server().stats().Accepted, 0u)
      << "no fresh connection landed on the spawned shard";
  EXPECT_GT(Cl.shard(0)->server().stats().Accepted, 0u);
}

//===----------------------------------------------------------------------===//
// Live migration (DESIGN.md §16)
//===----------------------------------------------------------------------===//

/// class Ticker — one deterministic println per iteration plus a 2 ms
/// nap every 300 (same shape as bench/fig8_migrate.cpp; the naps keep
/// lockstep rounds short enough for the Migrate frame to land mid-run).
std::vector<uint8_t> tickerClassBytes(int N) {
  jvm::ClassBuilder B("Ticker");
  jvm::MethodBuilder &M = B.method(jvm::AccPublic | jvm::AccStatic, "main",
                                   "([Ljava/lang/String;)V");
  jvm::MethodBuilder::Label Loop = M.newLabel(), Done = M.newLabel();
  M.lconst(1).lstore(1);
  M.iconst(0).istore(3);
  M.bind(Loop).iload(3).iconst(N).branch(jvm::Op::IfIcmpge, Done);
  M.lload(1)
      .lconst(1103515245)
      .op(jvm::Op::Lmul)
      .iload(3)
      .op(jvm::Op::I2l)
      .op(jvm::Op::Ladd)
      .lstore(1);
  M.getstatic("java/lang/System", "out", "Ljava/io/PrintStream;");
  M.lload(1)
      .lconst(1000000)
      .op(jvm::Op::Lrem)
      .op(jvm::Op::L2i)
      .invokevirtual("java/io/PrintStream", "println", "(I)V");
  jvm::MethodBuilder::Label NoNap = M.newLabel();
  M.iload(3)
      .iconst(300)
      .op(jvm::Op::Irem)
      .iconst(299)
      .branch(jvm::Op::IfIcmpne, NoNap);
  M.lconst(2).invokestatic("java/lang/Thread", "sleep", "(J)V");
  M.bind(NoNap);
  M.iinc(3, 1).branch(jvm::Op::Goto, Loop);
  M.bind(Done).op(jvm::Op::Return);
  return B.bytes();
}

/// Two shards, both serving the same classpath and bound to revive "jvm"
/// images — any shard is a valid migration target.
Cluster::Config migratableConfig(const std::vector<uint8_t> &Klass) {
  Cluster::Config Cfg;
  Cfg.Shards = 2;
  Cfg.ShardTemplate.Setup = [&Klass](Shard &S) {
    S.fs().mkdirp("/classes", [](std::optional<rt::ApiError> E) {
      ASSERT_FALSE(E.has_value());
    });
    S.fs().writeFile("/classes/Ticker.class", Klass,
                     [](std::optional<rt::ApiError> E) {
                       ASSERT_FALSE(E.has_value());
                     });
    jvm::registerJvmRestore(S.checkpoints());
  };
  return Cfg;
}

rt::proc::Pid spawnTicker(Shard &S) {
  rt::proc::ProcessTable::SpawnSpec Spec;
  Spec.Name = "java";
  Spec.Prog = jvm::makeJvmProgram({"Ticker", {}, jvm::JvmOptions()});
  return S.procs().spawn(std::move(Spec));
}

TEST(Cluster, LiveMigrationMovesARunningJvmGuest) {
  std::vector<uint8_t> Klass = tickerClassBytes(1200);

  // Baseline: the guest runs start-to-finish on shard 0, untouched.
  std::string Baseline;
  {
    Cluster Cl(chromeProfile(), migratableConfig(Klass));
    LockstepDriver Drv(Cl.fabric());
    Drv.run(10000000);
    rt::proc::Pid P = spawnTicker(*Cl.shard(0));
    Drv.run(10000000);
    rt::proc::Process *Pr = Cl.shard(0)->procs().find(P);
    ASSERT_NE(Pr, nullptr);
    Baseline = Pr->state().capturedStdout();
    ASSERT_FALSE(Baseline.empty());
  }

  // Migrated: same guest starts on shard 0; once it has produced some
  // output the balancer moves it to shard 1 mid-run.
  Cluster Cl(chromeProfile(), migratableConfig(Klass));
  LockstepDriver Drv(Cl.fabric());
  Drv.run(10000000);
  Shard *Src = Cl.shard(0);
  rt::proc::Pid P = spawnTicker(*Src);

  Balancer::MigrationResult MR;
  bool HaveResult = false;
  bool Requested = false;
  std::function<void()> Probe = [&] {
    if (Requested)
      return;
    rt::proc::Process *Pr = Src->procs().find(P);
    ASSERT_NE(Pr, nullptr);
    if (!Pr->alive())
      return; // Finished before the threshold; asserts below will fail.
    if (Pr->state().capturedStdout().size() >= 500) {
      Requested = true;
      EXPECT_TRUE(Cl.migrateProcess(
          0, 1, P, [&](const Balancer::MigrationResult &R) {
            MR = R;
            HaveResult = true;
          }));
      return;
    }
    // Resume lane: guest slices run there and it outranks Timer, so a
    // Timer-lane probe would starve until the guest exits.
    browser::TimerHandle H = Src->env().loop().postTimer(
        kernel::Lane::Resume, [&Probe] { Probe(); }, browser::usToNs(50));
    (void)H;
  };
  Probe();
  auto Rep = Drv.run(10000000);
  ASSERT_LT(Rep.Rounds, 10000000u) << "cluster never quiesced";

  ASSERT_TRUE(HaveResult) << "migration result never arrived";
  ASSERT_TRUE(MR.Ok) << MR.Error;
  EXPECT_EQ(MR.SrcShard, 0u);
  EXPECT_EQ(MR.DstShard, 1u);
  EXPECT_GT(MR.BlobBytes, 0u);
  EXPECT_GT(MR.CaptureUs, 0u);
  EXPECT_GT(MR.RestoreUs, 0u);
  EXPECT_EQ(Cl.balancer().migrationsDone(), 1u);

  // The local copy died at the checkpoint instant, by signal; its stdout
  // froze there (reaped records stay addressable).
  rt::proc::Process *SrcPr = Src->procs().find(P);
  ASSERT_NE(SrcPr, nullptr);
  EXPECT_FALSE(SrcPr->alive());
  EXPECT_TRUE(SrcPr->signaled());
  std::string Prefix = SrcPr->state().capturedStdout();
  ASSERT_FALSE(Prefix.empty());
  ASSERT_LT(Prefix.size(), Baseline.size());

  // The revived copy finished on shard 1; the reassembled stream is
  // bit-identical to the uninterrupted baseline.
  rt::proc::Process *DstPr = Cl.shard(1)->procs().find(MR.NewPid);
  ASSERT_NE(DstPr, nullptr);
  EXPECT_EQ(DstPr->exitCode(), 0);
  EXPECT_EQ(Prefix + DstPr->state().capturedStdout(), Baseline);
}

/// class Ticker — print 1, park in a 60 s sleep, print 2. While the guest
/// is asleep its wake-up lives in a host closure, so checkpointReady
/// returns EAGAIN on every attempt: the retry-cap path's worst case.
std::vector<uint8_t> sleeperClassBytes() {
  jvm::ClassBuilder B("Ticker");
  jvm::MethodBuilder &M = B.method(jvm::AccPublic | jvm::AccStatic, "main",
                                   "([Ljava/lang/String;)V");
  M.getstatic("java/lang/System", "out", "Ljava/io/PrintStream;");
  M.iconst(1).invokevirtual("java/io/PrintStream", "println", "(I)V");
  M.lconst(60000).invokestatic("java/lang/Thread", "sleep", "(J)V");
  M.getstatic("java/lang/System", "out", "Ljava/io/PrintStream;");
  M.iconst(2).invokevirtual("java/io/PrintStream", "println", "(I)V");
  M.op(jvm::Op::Return);
  return B.bytes();
}

TEST(Cluster, MigrationRetryCapGivesUpOnNonQuiescentGuest) {
  std::vector<uint8_t> Klass = sleeperClassBytes();
  Cluster::Config Cfg = migratableConfig(Klass);
  Cfg.MigrateRetryCap = 5;
  Cluster Cl(chromeProfile(), Cfg);
  LockstepDriver Drv(Cl.fabric());
  Drv.run(10000000);
  Shard *Src = Cl.shard(0);
  rt::proc::Pid P = spawnTicker(*Src);

  // Request the migration only once the guest is provably inside its
  // 60 s sleep: stdout has the first line AND one virtual millisecond has
  // passed since (printing costs far less virtual compute than that, so
  // the only way the clock advanced is the guest blocking on the timer).
  Balancer::MigrationResult MR;
  bool HaveResult = false;
  bool Requested = false;
  std::function<void()> Probe = [&] {
    if (Requested)
      return;
    rt::proc::Process *Pr = Src->procs().find(P);
    ASSERT_NE(Pr, nullptr);
    if (Pr->state().capturedStdout().empty()) {
      browser::TimerHandle H = Src->env().loop().postTimer(
          kernel::Lane::Resume, [&Probe] { Probe(); }, browser::usToNs(50));
      (void)H;
      return;
    }
    Requested = true;
    browser::TimerHandle H = Src->env().loop().postTimer(
        kernel::Lane::Timer,
        [&] {
          EXPECT_TRUE(Cl.migrateProcess(
              0, 1, P, [&](const Balancer::MigrationResult &R) {
                MR = R;
                HaveResult = true;
              }));
        },
        browser::usToNs(1000));
    (void)H;
  };
  Probe();
  auto Rep = Drv.run(10000000);
  ASSERT_LT(Rep.Rounds, 10000000u) << "cluster never quiesced";

  // The source exhausted its cap and reported failure instead of
  // spinning forever; every retry is visible on the shard's registry.
  ASSERT_TRUE(HaveResult) << "migration result never arrived";
  EXPECT_FALSE(MR.Ok);
  EXPECT_NE(MR.Error.find("not quiescent"), std::string::npos) << MR.Error;
  EXPECT_EQ(
      Src->env().metrics().counter("cluster.migrate_retries").value(), 5u);
  EXPECT_EQ(Cl.balancer().migrationsDone(), 0u);

  // The guest was untouched by the failed attempt: it woke on the source
  // shard, printed its second line, and exited normally.
  rt::proc::Process *Pr = Src->procs().find(P);
  ASSERT_NE(Pr, nullptr);
  EXPECT_FALSE(Pr->alive());
  EXPECT_EQ(Pr->exitCode(), 0);
  EXPECT_EQ(Pr->state().capturedStdout(), "1\n2\n");
}

TEST(Cluster, MigrationFailuresReportCleanly) {
  Cluster::Config Cfg;
  Cfg.Shards = 2;
  Cluster Cl(chromeProfile(), Cfg);
  LockstepDriver Drv(Cl.fabric());
  Drv.run(10000000);

  // Bad endpoints are rejected synchronously.
  auto Nop = [](const Balancer::MigrationResult &) {};
  EXPECT_FALSE(Cl.migrateProcess(0, 0, 2, Nop)) << "same shard";
  EXPECT_FALSE(Cl.migrateProcess(0, 7, 2, Nop)) << "unknown destination";
  EXPECT_FALSE(Cl.migrateProcess(7, 1, 2, Nop)) << "unknown source";

  // A missing pid fails on the source shard and reports back Ok=false.
  Balancer::MigrationResult MR;
  bool HaveResult = false;
  EXPECT_TRUE(Cl.migrateProcess(0, 1, 999,
                                [&](const Balancer::MigrationResult &R) {
                                  MR = R;
                                  HaveResult = true;
                                }));
  Drv.run(10000000);
  ASSERT_TRUE(HaveResult);
  EXPECT_FALSE(MR.Ok);
  EXPECT_NE(MR.Error.find("ESRCH"), std::string::npos) << MR.Error;
  EXPECT_EQ(Cl.balancer().migrationsDone(), 0u);
  EXPECT_EQ(
      Cl.balancer().env().metrics().counter("balancer.migration_failures")
          .value(),
      1u);
}

} // namespace
