//===- tests/doppio/cont_test.cpp -----------------------------------------==//
//
// The continuation substrate (src/doppio/cont/, DESIGN.md §16): one-shot
// accounting and misuse, the versioned wire form with ResumerRegistry
// rebinding, the snapshot Writer/Reader, and the payoff built on top of
// them — JVM checkpoint/restore round trips, mid-run, on every browser
// profile, at the jvm layer and through the process table.
//
// Registered under `ctest -L cont`.
//
//===----------------------------------------------------------------------===//

#include "doppio/backends/in_memory.h"
#include "doppio/cont/continuation.h"
#include "doppio/cont/snapshot.h"
#include "doppio/fs.h"
#include "doppio/proc/checkpoint.h"
#include "doppio/proc/programs.h"
#include "jvm/checkpoint.h"
#include "jvm/classfile/builder.h"
#include "jvm/jvm.h"
#include "jvm/proc_program.h"

#include "gtest/gtest.h"

using namespace doppio;
using namespace doppio::rt;
namespace proc = doppio::rt::proc;

namespace {

//===----------------------------------------------------------------------===//
// One-shot accounting
//===----------------------------------------------------------------------===//

struct CellRig {
  browser::VirtualClock Clock;
  obs::Registry Reg{Clock};
  cont::Cells C{cont::Cells::resolve(Reg)};
};

TEST(ContAccounting, CaptureResumeFeedsTheSharedCells) {
  CellRig R;
  int Ran = 0;
  Continuation K = Continuation::capture(R.C, [&] { ++Ran; }, "test", 7);
  EXPECT_TRUE(K.armed());
  EXPECT_STREQ(K.origin(), "test");
  EXPECT_EQ(K.promptId(), 7u);
  EXPECT_EQ(R.C.Captured->value(), 1u);
  EXPECT_EQ(R.C.Live->value(), 1);
  K.resume();
  EXPECT_EQ(Ran, 1);
  EXPECT_FALSE(K.armed());
  EXPECT_EQ(R.C.Resumed->value(), 1u);
  EXPECT_EQ(R.C.Live->value(), 0);
  EXPECT_EQ(R.C.Dropped->value(), 0u);
}

TEST(ContAccounting, DroppingAnArmedContinuationCountsALeak) {
  CellRig R;
  {
    Continuation K = Continuation::capture(R.C, [] {}, "leaky");
    EXPECT_TRUE(K.armed());
  }
  EXPECT_EQ(R.C.Dropped->value(), 1u);
  EXPECT_EQ(R.C.Resumed->value(), 0u);
  EXPECT_EQ(R.C.Live->value(), 0);
}

TEST(ContAccounting, MoveTransfersTheOneShot) {
  CellRig R;
  int Ran = 0;
  Continuation A = Continuation::capture(R.C, [&] { ++Ran; });
  Continuation B = std::move(A);
  EXPECT_FALSE(A.armed()); // NOLINT(bugprone-use-after-move): the contract.
  EXPECT_TRUE(B.armed());
  B.resume();
  EXPECT_EQ(Ran, 1);
  // One capture, one resume, no drop — the move is invisible to the cells.
  EXPECT_EQ(R.C.Captured->value(), 1u);
  EXPECT_EQ(R.C.Resumed->value(), 1u);
  EXPECT_EQ(R.C.Dropped->value(), 0u);
}

TEST(ContAccounting, ValueCarryingResumeDeliversTheValue) {
  CellRig R;
  std::string Got;
  ContinuationOf<std::string> K = ContinuationOf<std::string>::capture(
      R.C, [&](std::string V) { Got = std::move(V); }, "pipe");
  K.resume("forty-two");
  EXPECT_EQ(Got, "forty-two");
  EXPECT_EQ(R.C.Resumed->value(), 1u);
}

using ContOneShotDeathTest = ::testing::Test;

TEST(ContOneShotDeathTest, DoubleResumeAsserts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        CellRig R;
        Continuation K = Continuation::capture(R.C, [] {});
        K.resume();
        K.resume();
      },
      "resumed twice");
}

//===----------------------------------------------------------------------===//
// Wire form + ResumerRegistry
//===----------------------------------------------------------------------===//

TEST(ContWire, SerializeRebindResumeRoundTrip) {
  CellRig Src;
  Continuation K = Continuation::capture(Src.C, [] {}, "guest");
  K.setDescriptor("jvm-frames", {1, 2, 3, 4});
  ASSERT_TRUE(K.serializable());
  std::vector<uint8_t> Wire = K.serialize();
  ASSERT_FALSE(Wire.empty());
  K.resume(); // The source-side entry still fires normally.

  // Destination tab: rebind the tag to a factory that rebuilds the entry
  // from the shipped state bytes.
  CellRig Dst;
  ResumerRegistry Reg(Dst.Reg);
  std::vector<uint8_t> SeenState;
  int Ran = 0;
  Reg.bind("jvm-frames", [&](const std::vector<uint8_t> &State) {
    SeenState = State;
    return Continuation::capture(Reg.cells(), [&] { ++Ran; }, "restored");
  });
  std::optional<Continuation> R = Continuation::deserialize(Wire, Reg);
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(SeenState, (std::vector<uint8_t>{1, 2, 3, 4}));
  EXPECT_TRUE(R->armed());
  R->resume();
  EXPECT_EQ(Ran, 1);
  EXPECT_EQ(Dst.C.Resumed->value(), 1u);
}

TEST(ContWire, UnknownTagAndCorruptWireAreRejected) {
  CellRig Src;
  Continuation K = Continuation::capture(Src.C, [] {}, "guest");
  K.setDescriptor("nobody-binds-this", {9});
  std::vector<uint8_t> Wire = K.serialize();
  K.resume();

  CellRig Dst;
  ResumerRegistry Reg(Dst.Reg);
  EXPECT_FALSE(Continuation::deserialize(Wire, Reg).has_value());

  Reg.bind("nobody-binds-this", [&](const std::vector<uint8_t> &) {
    return Continuation::capture(Reg.cells(), [] {});
  });
  EXPECT_TRUE(Continuation::deserialize(Wire, Reg).has_value());
  // Truncation and corruption fail cleanly, never crash.
  for (size_t Cut = 0; Cut < Wire.size(); ++Cut) {
    std::vector<uint8_t> Trunc(Wire.begin(), Wire.begin() + Cut);
    EXPECT_FALSE(Continuation::deserialize(Trunc, Reg).has_value()) << Cut;
  }
  std::vector<uint8_t> BadMagic = Wire;
  BadMagic[0] ^= 0xff;
  EXPECT_FALSE(Continuation::deserialize(BadMagic, Reg).has_value());
}

TEST(ContWire, UnarmedOrDescriptorlessContinuationsDoNotSerialize) {
  CellRig R;
  Continuation Plain = Continuation::capture(R.C, [] {});
  EXPECT_FALSE(Plain.serializable());
  EXPECT_TRUE(Plain.serialize().empty());
  Plain.resume();

  Continuation Tagged = Continuation::capture(R.C, [] {});
  Tagged.setDescriptor("t", {});
  Tagged.resume();
  EXPECT_TRUE(Tagged.serialize().empty()) << "resumed = nothing left to ship";
}

//===----------------------------------------------------------------------===//
// snap::Writer / snap::Reader
//===----------------------------------------------------------------------===//

TEST(Snapshot, WriterReaderRoundTripAndBoundsChecks) {
  snap::Writer W(0x54455354, 3);
  W.u8(7);
  W.u32(0xdeadbeef);
  W.u64(1ull << 40);
  W.i64(-42);
  W.str("hello");
  W.bytes({1, 2, 3});
  std::vector<uint8_t> B = W.take();

  snap::Reader R(B, 0x54455354, 3);
  EXPECT_EQ(R.u8(), 7);
  EXPECT_EQ(R.u32(), 0xdeadbeefu);
  EXPECT_EQ(R.u64(), 1ull << 40);
  EXPECT_EQ(R.i64(), -42);
  EXPECT_EQ(R.str(), "hello");
  EXPECT_EQ(R.bytes(), (std::vector<uint8_t>{1, 2, 3}));
  EXPECT_TRUE(R.ok());
  EXPECT_TRUE(R.atEnd());

  // Wrong magic / version: sticky failure, zero values ever after.
  snap::Reader Bad(B, 0x55555555, 3);
  EXPECT_FALSE(Bad.ok());
  EXPECT_EQ(Bad.u32(), 0u);
  snap::Reader Ver(B, 0x54455354, 4);
  EXPECT_FALSE(Ver.ok());

  // Truncated at every length: ok() goes false, never out-of-bounds.
  for (size_t Cut = 0; Cut < B.size(); ++Cut) {
    std::vector<uint8_t> T(B.begin(), B.begin() + Cut);
    snap::Reader Rt(T, 0x54455354, 3);
    Rt.u8();
    Rt.u32();
    Rt.u64();
    Rt.i64();
    Rt.str();
    Rt.bytes();
    EXPECT_FALSE(Rt.ok() && Rt.atEnd()) << Cut;
  }
}

//===----------------------------------------------------------------------===//
// JVM checkpoint/restore
//===----------------------------------------------------------------------===//

/// class Ticker { public static void main(String[] a) {
///   long s = 1;
///   for (int i = 0; i < n; i++) {
///     s = s * 1103515245L + i;
///     int t = 0;
///     for (int k = 0; k < 200; k++) t = t * 31 + k;
///     System.out.println((int)(s % 1000000L) ^ t);
///   } } }
///
/// Prints one deterministic line per outer iteration, so a mid-run
/// checkpoint genuinely splits the output stream; the long arithmetic
/// exercises the software-long Value round trip.
std::vector<uint8_t> tickerClassBytes(int N) {
  jvm::ClassBuilder B("Ticker");
  jvm::MethodBuilder &M = B.method(jvm::AccPublic | jvm::AccStatic, "main",
                                   "([Ljava/lang/String;)V");
  jvm::MethodBuilder::Label Loop = M.newLabel(), Done = M.newLabel();
  jvm::MethodBuilder::Label KLoop = M.newLabel(), KDone = M.newLabel();
  M.lconst(1).lstore(1);
  M.iconst(0).istore(3);
  M.bind(Loop).iload(3).iconst(N).branch(jvm::Op::IfIcmpge, Done);
  M.lload(1)
      .lconst(1103515245)
      .op(jvm::Op::Lmul)
      .iload(3)
      .op(jvm::Op::I2l)
      .op(jvm::Op::Ladd)
      .lstore(1);
  M.iconst(0).istore(4);
  M.iconst(0).istore(5);
  M.bind(KLoop).iload(5).iconst(200).branch(jvm::Op::IfIcmpge, KDone);
  M.iload(4)
      .iconst(31)
      .op(jvm::Op::Imul)
      .iload(5)
      .op(jvm::Op::Iadd)
      .istore(4);
  M.iinc(5, 1).branch(jvm::Op::Goto, KLoop).bind(KDone);
  M.getstatic("java/lang/System", "out", "Ljava/io/PrintStream;");
  M.lload(1)
      .lconst(1000000)
      .op(jvm::Op::Lrem)
      .op(jvm::Op::L2i)
      .iload(4)
      .op(jvm::Op::Ixor)
      .invokevirtual("java/io/PrintStream", "println", "(I)V");
  M.iinc(3, 1).branch(jvm::Op::Goto, Loop);
  M.bind(Done).op(jvm::Op::Return);
  return B.bytes();
}

/// One browser tab hosting a JVM over a seeded in-memory /classes.
struct JvmRig {
  explicit JvmRig(const browser::Profile &P) : Env(P) {
    auto RootB = std::make_unique<fs::InMemoryBackend>(Env);
    Root = RootB.get();
    Fs = std::make_unique<fs::FileSystem>(Env, Proc, std::move(RootB));
  }

  browser::BrowserEnv Env;
  rt::Process Proc;
  fs::InMemoryBackend *Root = nullptr;
  std::unique_ptr<fs::FileSystem> Fs;
};

/// Arms a repeating virtual timer that captures the first checkpoint that
/// succeeds once \p MinOutput bytes of stdout exist; the source then runs
/// on to completion untouched.
struct MidRunCapture {
  std::vector<uint8_t> Image;
  std::string Prefix;
  uint64_t Attempts = 0;

  void arm(JvmRig &R, jvm::Jvm &Vm, size_t MinOutput) {
    Try = [this, &R, &Vm, MinOutput] {
      if (!Image.empty())
        return;
      ++Attempts;
      if (R.Proc.capturedStdout().size() >= MinOutput &&
          jvm::checkpointReady(Vm)) {
        ErrorOr<std::vector<uint8_t>> S = jvm::serializeJvm(Vm);
        ASSERT_TRUE(S.ok()) << (S.ok() ? "" : S.error().message());
        Image = std::move(*S);
        Prefix = R.Proc.capturedStdout();
        return;
      }
      rearm(R);
    };
    rearm(R);
  }

private:
  void rearm(JvmRig &R) {
    // Resume lane, not Timer: green-thread slices run on Resume, which
    // strictly outranks Timer, so a compute-bound guest would starve a
    // Timer-lane probe until it exits. On the same lane, due times
    // interleave the probe between slices.
    browser::TimerHandle H = R.Env.loop().postTimer(
        kernel::Lane::Resume, [this] { Try(); }, browser::usToNs(50));
    (void)H; // Destruction does not cancel; the next fire re-arms.
  }
  std::function<void()> Try;
};

TEST(JvmCheckpoint, MidRunRoundTripSplitsOutputOnAllProfiles) {
  for (const browser::Profile &P : browser::allProfiles()) {
    SCOPED_TRACE(P.Name);
    // Sized to span several 10 ms scheduler slices: the only mid-run
    // quiescent points are between slices, so a program that fits in one
    // slice can never be captured mid-stream.
    std::vector<uint8_t> Klass = tickerClassBytes(3000);

    // Source: run Ticker, capture mid-stream, then finish normally. The
    // full source output is the baseline the split must reassemble.
    JvmRig Src(P);
    ASSERT_TRUE(Src.Root->seedFile("/classes/Ticker.class", Klass));
    jvm::Jvm VmA(Src.Env, *Src.Fs, Src.Proc, jvm::JvmOptions());
    int ExitA = -1;
    VmA.runMain("Ticker", {}, [&](int C) { ExitA = C; });
    MidRunCapture Cap;
    Cap.arm(Src, VmA, /*MinOutput=*/8);
    Src.Env.loop().run();
    ASSERT_EQ(ExitA, 0);
    std::string Baseline = Src.Proc.capturedStdout();
    ASSERT_FALSE(Cap.Image.empty()) << "never found a quiescent point";
    ASSERT_FALSE(Cap.Prefix.empty());
    ASSERT_LT(Cap.Prefix.size(), Baseline.size())
        << "capture landed after the run finished";

    // Destination: a fresh tab, fresh fs, fresh VM; revive and finish.
    JvmRig Dst(P);
    ASSERT_TRUE(Dst.Root->seedFile("/classes/Ticker.class", Klass));
    jvm::Jvm VmB(Dst.Env, *Dst.Fs, Dst.Proc, jvm::JvmOptions());
    int ExitB = -1;
    bool RestoreOk = false;
    jvm::restoreJvm(VmB, Cap.Image, [&](int C) { ExitB = C; },
                    [&](ErrorOr<bool> R) { RestoreOk = R.ok(); });
    Dst.Env.loop().run();
    EXPECT_TRUE(RestoreOk);
    EXPECT_EQ(ExitB, 0);
    // The reassembled stream is bit-identical to the uninterrupted run.
    EXPECT_EQ(Cap.Prefix + Dst.Proc.capturedStdout(), Baseline);
  }
}

/// class Naps { public static void main(String[] a) {
///   System.out.println(1); Thread.sleep(5L); System.out.println(2); } }
std::vector<uint8_t> napsClassBytes() {
  jvm::ClassBuilder B("Naps");
  jvm::MethodBuilder &M = B.method(jvm::AccPublic | jvm::AccStatic, "main",
                                   "([Ljava/lang/String;)V");
  M.getstatic("java/lang/System", "out", "Ljava/io/PrintStream;")
      .iconst(1)
      .invokevirtual("java/io/PrintStream", "println", "(I)V")
      .lconst(5)
      .invokestatic("java/lang/Thread", "sleep", "(J)V")
      .getstatic("java/lang/System", "out", "Ljava/io/PrintStream;")
      .iconst(2)
      .invokevirtual("java/io/PrintStream", "println", "(I)V")
      .op(jvm::Op::Return);
  return B.bytes();
}

TEST(JvmCheckpoint, NotQuiescentAndCorruptImagesAreRefusedCleanly) {
  JvmRig Src(browser::chromeProfile());
  ASSERT_TRUE(
      Src.Root->seedFile("/classes/Ticker.class", tickerClassBytes(4)));
  ASSERT_TRUE(Src.Root->seedFile("/classes/Naps.class", napsClassBytes()));
  // A thread blocked in Thread.sleep has its wake-up inside a host timer
  // closure — never a serializable state, so the checkpoint is refused
  // with EAGAIN until the nap ends (a migration caller just retries).
  {
    JvmRig Nap(browser::chromeProfile());
    ASSERT_TRUE(
        Nap.Root->seedFile("/classes/Naps.class", napsClassBytes()));
    jvm::Jvm NapVm(Nap.Env, *Nap.Fs, Nap.Proc, jvm::JvmOptions());
    bool Exited = false;
    NapVm.runMain("Naps", {}, [&](int) { Exited = true; });
    bool SawRefusal = false;
    std::function<void()> Probe = [&] {
      if (SawRefusal || Exited)
        return;
      std::string Why;
      if (!jvm::checkpointReady(NapVm, &Why)) {
        EXPECT_FALSE(Why.empty());
        ErrorOr<std::vector<uint8_t>> R = jvm::serializeJvm(NapVm);
        ASSERT_FALSE(R.ok());
        EXPECT_EQ(R.error().Code, Errno::Again);
        SawRefusal = true;
        return;
      }
      browser::TimerHandle H = Nap.Env.loop().postTimer(
          kernel::Lane::Timer, [&] { Probe(); }, browser::usToNs(20));
      (void)H;
    };
    Probe();
    Nap.Env.loop().run();
    EXPECT_TRUE(SawRefusal) << "sleep never made the VM non-quiescent";
    EXPECT_EQ(Nap.Proc.capturedStdout(), "1\n2\n");
  }

  jvm::Jvm Vm(Src.Env, *Src.Fs, Src.Proc, jvm::JvmOptions());
  Vm.runMain("Ticker", {}, [](int) {});
  Src.Env.loop().run();

  // A finished VM checkpoints fine; a truncated image restores to Io.
  ErrorOr<std::vector<uint8_t>> Done = jvm::serializeJvm(Vm);
  ASSERT_TRUE(Done.ok());
  for (size_t Cut : {size_t{0}, size_t{6}, Done->size() / 2}) {
    JvmRig Dst(browser::chromeProfile());
    ASSERT_TRUE(
        Dst.Root->seedFile("/classes/Ticker.class", tickerClassBytes(4)));
    jvm::Jvm VmB(Dst.Env, *Dst.Fs, Dst.Proc, jvm::JvmOptions());
    std::vector<uint8_t> Trunc(Done->begin(), Done->begin() + Cut);
    bool Failed = false;
    jvm::restoreJvm(VmB, Trunc, [](int) {},
                    [&](ErrorOr<bool> Res) { Failed = !Res.ok(); });
    Dst.Env.loop().run();
    EXPECT_TRUE(Failed) << "cut at " << Cut;
  }
}

//===----------------------------------------------------------------------===//
// Process-table checkpoint/restore
//===----------------------------------------------------------------------===//

TEST(ProcCheckpoint, JvmProcessRoundTripsThroughTheProcessTable) {
  const browser::Profile &P = browser::chromeProfile();
  std::vector<uint8_t> Klass = tickerClassBytes(3000);

  // Source table: a java process; capture its blob mid-run via the
  // proc-layer API, then let it finish for the baseline.
  JvmRig Src(P);
  ASSERT_TRUE(Src.Root->seedFile("/classes/Ticker.class", Klass));
  proc::ProcessTable TableA(Src.Env, *Src.Fs);
  proc::ProcessTable::SpawnSpec SA;
  SA.Name = "java";
  SA.Prog = jvm::makeJvmProgram({"Ticker", {}, jvm::JvmOptions()});
  proc::Pid PA = TableA.spawn(std::move(SA));
  ASSERT_GT(PA, 0);

  std::vector<uint8_t> Blob;
  std::string Prefix;
  std::function<void()> Try = [&] {
    if (!Blob.empty())
      return;
    proc::Process *Pr = TableA.find(PA);
    ASSERT_NE(Pr, nullptr);
    if (!Pr->alive())
      return; // Ran to completion before a capture landed: test fails below.
    ErrorOr<std::vector<uint8_t>> R = proc::checkpointProcess(TableA, PA);
    if (R.ok() && Pr->state().capturedStdout().size() >= 8) {
      Blob = std::move(*R);
      Prefix = Pr->state().capturedStdout();
      return;
    }
    if (!R.ok()) {
      EXPECT_EQ(R.error().Code, Errno::Again) << R.error().message();
    }
    browser::TimerHandle H = Src.Env.loop().postTimer(
        kernel::Lane::Resume, [&] { Try(); }, browser::usToNs(50));
    (void)H;
  };
  Try();
  Src.Env.loop().run();
  ASSERT_FALSE(Blob.empty());
  proc::Process *PrA = TableA.find(PA);
  ASSERT_NE(PrA, nullptr);
  std::string Baseline = PrA->state().capturedStdout();
  ASSERT_LT(Prefix.size(), Baseline.size());

  // Destination table: revive through the registry binding for "jvm".
  JvmRig Dst(P);
  ASSERT_TRUE(Dst.Root->seedFile("/classes/Ticker.class", Klass));
  proc::ProcessTable TableB(Dst.Env, *Dst.Fs);
  proc::CheckpointRegistry Reg;
  jvm::registerJvmRestore(Reg);
  ErrorOr<proc::Pid> PB = proc::restoreProcess(TableB, Blob, Reg);
  ASSERT_TRUE(PB.ok()) << (PB.ok() ? "" : PB.error().message());
  Dst.Env.loop().run();
  proc::Process *PrB = TableB.find(*PB);
  ASSERT_NE(PrB, nullptr);
  EXPECT_EQ(Prefix + PrB->state().capturedStdout(), Baseline);

  // An unbound kind is refused, not crashed.
  proc::CheckpointRegistry Empty;
  JvmRig Dst2(P);
  proc::ProcessTable TableC(Dst2.Env, *Dst2.Fs);
  ErrorOr<proc::Pid> Bad = proc::restoreProcess(TableC, Blob, Empty);
  ASSERT_FALSE(Bad.ok());
  EXPECT_EQ(Bad.error().Code, Errno::NotSup);
}

TEST(ProcCheckpoint, NonCheckpointableProcessesAreRefused) {
  JvmRig R(browser::chromeProfile());
  proc::ProcessTable Table(R.Env, *R.Fs);
  proc::ProgramRegistry Progs;
  proc::installCorePrograms(Progs);

  // Unknown pid.
  ErrorOr<std::vector<uint8_t>> Gone = proc::checkpointProcess(Table, 999);
  ASSERT_FALSE(Gone.ok());
  EXPECT_EQ(Gone.error().Code, Errno::Srch);

  // A bare context (no program) and a native program: ENOTSUP.
  proc::ProcessTable::SpawnSpec Bare;
  Bare.Name = "sh";
  proc::Pid Sh = Table.spawn(std::move(Bare));
  ErrorOr<std::vector<uint8_t>> NoProg = proc::checkpointProcess(Table, Sh);
  ASSERT_FALSE(NoProg.ok());
  EXPECT_EQ(NoProg.error().Code, Errno::NotSup);

  proc::ProcessTable::SpawnSpec Echo;
  Echo.Name = "echo";
  Echo.Parent = Sh;
  Echo.Prog = Progs.create({"echo", "hi"});
  proc::Pid Ep = Table.spawn(std::move(Echo));
  ErrorOr<std::vector<uint8_t>> Native = proc::checkpointProcess(Table, Ep);
  ASSERT_FALSE(Native.ok());
  EXPECT_EQ(Native.error().Code, Errno::NotSup);
  R.Env.loop().run();
}

} // namespace
