//===- tests/doppio/sockets_test.cpp --------------------------------------==//
//
// Tests for §5.3: the Unix-style socket API over WebSockets, talking to an
// unmodified TCP service through the websockify bridge.
//
//===----------------------------------------------------------------------===//

#include "doppio/sockets.h"

#include "gtest/gtest.h"

using namespace doppio;
using namespace doppio::rt;
using namespace doppio::browser;

namespace {

std::vector<uint8_t> bytesOf(const std::string &S) {
  return std::vector<uint8_t>(S.begin(), S.end());
}

/// An unmodified line-oriented TCP service: reverses each message.
void startReverseServer(SimNet &Net, uint16_t Port) {
  Net.listen(Port, [](TcpConnection &C) {
    C.setOnData([Conn = &C](const std::vector<uint8_t> &D) {
      std::vector<uint8_t> Reversed(D.rbegin(), D.rend());
      Conn->send(Reversed);
    });
  });
}

struct Rig {
  Rig(const Profile &P) : Env(P), Proxy(Env.net(), 8080, 9090) {
    startReverseServer(Env.net(), 9090);
  }
  BrowserEnv Env;
  WebsockifyProxy Proxy;
};

TEST(DoppioSocket, ConnectSendRecv) {
  Rig R(chromeProfile());
  DoppioSocket Sock(R.Env);
  std::string Got;
  Sock.connect(8080, [&](std::optional<ApiError> E) {
    ASSERT_FALSE(E.has_value());
    Sock.send(bytesOf("hello"), [](std::optional<ApiError>) {});
    Sock.recv([&](ErrorOr<std::vector<uint8_t>> Msg) {
      ASSERT_TRUE(Msg.ok());
      Got.assign(Msg->begin(), Msg->end());
    });
  });
  R.Env.loop().run();
  EXPECT_EQ(Got, "olleh");
  EXPECT_EQ(Sock.bytesSent(), 5u);
}

TEST(DoppioSocket, RecvBeforeDataArrivesCompletesLater) {
  Rig R(chromeProfile());
  DoppioSocket Sock(R.Env);
  int Completed = 0;
  Sock.connect(8080, [&](std::optional<ApiError> E) {
    ASSERT_FALSE(E.has_value());
    // recv first, send afterwards: the pending recv completes on arrival.
    Sock.recv([&](ErrorOr<std::vector<uint8_t>> Msg) {
      ASSERT_TRUE(Msg.ok());
      EXPECT_EQ(std::string(Msg->begin(), Msg->end()), "ba");
      ++Completed;
    });
    Sock.send(bytesOf("ab"), [](std::optional<ApiError>) {});
  });
  R.Env.loop().run();
  EXPECT_EQ(Completed, 1);
}

TEST(DoppioSocket, ConnectionRefused) {
  BrowserEnv Env(chromeProfile());
  DoppioSocket Sock(Env);
  std::optional<ApiError> Err;
  Sock.connect(4444, [&](std::optional<ApiError> E) { Err = E; });
  Env.loop().run();
  ASSERT_TRUE(Err.has_value());
  EXPECT_EQ(Err->Code, Errno::ConnRefused);
  EXPECT_FALSE(Sock.isConnected());
}

TEST(DoppioSocket, SendWithoutConnectIsEnotconn) {
  BrowserEnv Env(chromeProfile());
  DoppioSocket Sock(Env);
  std::optional<ApiError> Err;
  Sock.send(bytesOf("x"), [&](std::optional<ApiError> E) { Err = E; });
  ASSERT_TRUE(Err.has_value());
  EXPECT_EQ(Err->Code, Errno::NotConn);
}

TEST(DoppioSocket, CloseDeliversEofToPendingRecv) {
  Rig R(chromeProfile());
  DoppioSocket Sock(R.Env);
  bool SawEof = false;
  Sock.connect(8080, [&](std::optional<ApiError> E) {
    ASSERT_FALSE(E.has_value());
    Sock.recv([&](ErrorOr<std::vector<uint8_t>> Msg) {
      ASSERT_TRUE(Msg.ok());
      SawEof = Msg->empty();
    });
    Sock.close();
  });
  R.Env.loop().run();
  EXPECT_TRUE(SawEof);
}

TEST(DoppioSocket, Ie8GoesThroughFlashShim) {
  Rig R(ie8Profile());
  DoppioSocket Sock(R.Env);
  std::string Got;
  Sock.connect(8080, [&](std::optional<ApiError> E) {
    ASSERT_FALSE(E.has_value());
    Sock.send(bytesOf("ie8"), [](std::optional<ApiError>) {});
    Sock.recv([&](ErrorOr<std::vector<uint8_t>> Msg) {
      Got.assign(Msg->begin(), Msg->end());
    });
  });
  R.Env.loop().run();
  EXPECT_EQ(Got, "8ei");
  EXPECT_TRUE(Sock.usedFlashShim());
}

TEST(DoppioSocket, RemoteCloseDuringPendingRecvDeliversEof) {
  BrowserEnv Env(chromeProfile());
  WebsockifyProxy Proxy(Env.net(), 8080, 9090);
  // A service that hangs up as soon as it hears from us — the client's
  // already-pending recv must complete with EOF, not dangle forever.
  Env.net().listen(9090, [](TcpConnection &C) {
    C.setOnData(
        [Conn = &C](const std::vector<uint8_t> &) { Conn->close(); });
  });
  DoppioSocket Sock(Env);
  int Recvs = 0;
  bool SawEof = false;
  Sock.connect(8080, [&](std::optional<ApiError> E) {
    ASSERT_FALSE(E.has_value());
    Sock.recv([&](ErrorOr<std::vector<uint8_t>> Msg) {
      ASSERT_TRUE(Msg.ok());
      ++Recvs;
      SawEof = Msg->empty();
    });
    Sock.send(bytesOf("bye"), [](std::optional<ApiError>) {});
  });
  Env.loop().run();
  EXPECT_EQ(Recvs, 1);
  EXPECT_TRUE(SawEof);
  EXPECT_FALSE(Sock.isConnected());
}

TEST(DoppioSocket, MultipleMessagesQueueInOrder) {
  Rig R(chromeProfile());
  DoppioSocket Sock(R.Env);
  std::vector<std::string> Messages;
  Sock.connect(8080, [&](std::optional<ApiError> E) {
    ASSERT_FALSE(E.has_value());
    Sock.send(bytesOf("one"), [](std::optional<ApiError>) {});
    Sock.send(bytesOf("two"), [](std::optional<ApiError>) {});
    Sock.send(bytesOf("three"), [](std::optional<ApiError>) {});
  });
  R.Env.loop().run();
  for (int I = 0; I != 3; ++I)
    Sock.recv([&](ErrorOr<std::vector<uint8_t>> Msg) {
      Messages.emplace_back(Msg->begin(), Msg->end());
    });
  EXPECT_EQ(Messages,
            (std::vector<std::string>{"eno", "owt", "eerht"}));
}

} // namespace
