//===- tests/doppio/heap_test.cpp -----------------------------------------==//
//
// Tests for the first-fit unmanaged heap (§5.2): allocation placement,
// coalescing, copy-in/copy-out little-endian data access, and randomized
// allocator invariants.
//
//===----------------------------------------------------------------------===//

#include "doppio/heap.h"

#include "gtest/gtest.h"

#include <map>
#include <random>

using namespace doppio;
using namespace doppio::rt;
using namespace doppio::browser;

namespace {

TEST(Heap, MallocReturnsNonNullDistinctBlocks) {
  BrowserEnv Env(chromeProfile());
  UnmanagedHeap Heap(Env, 4096);
  UnmanagedHeap::Addr A = Heap.malloc(16);
  UnmanagedHeap::Addr B = Heap.malloc(16);
  ASSERT_NE(A, 0u);
  ASSERT_NE(B, 0u);
  EXPECT_NE(A, B);
  EXPECT_GE(B, A + 16);
  EXPECT_EQ(Heap.allocationCount(), 2u);
  EXPECT_TRUE(Heap.checkInvariants());
}

TEST(Heap, FirstFitReusesEarliestHole) {
  BrowserEnv Env(chromeProfile());
  UnmanagedHeap Heap(Env, 4096);
  UnmanagedHeap::Addr A = Heap.malloc(64);
  UnmanagedHeap::Addr B = Heap.malloc(64);
  UnmanagedHeap::Addr C = Heap.malloc(64);
  (void)B;
  Heap.free(A);
  // The first hole (where A lived) satisfies the next small request.
  UnmanagedHeap::Addr D = Heap.malloc(32);
  EXPECT_EQ(D, A);
  EXPECT_LT(D, C);
  EXPECT_TRUE(Heap.checkInvariants());
}

TEST(Heap, ExhaustionReturnsNull) {
  BrowserEnv Env(chromeProfile());
  UnmanagedHeap Heap(Env, 256);
  EXPECT_EQ(Heap.malloc(10000), 0u);
  UnmanagedHeap::Addr A = Heap.malloc(128);
  EXPECT_NE(A, 0u);
  EXPECT_EQ(Heap.malloc(200), 0u);
  Heap.free(A);
  EXPECT_NE(Heap.malloc(128), 0u);
}

TEST(Heap, FreeCoalescesNeighbors) {
  BrowserEnv Env(chromeProfile());
  UnmanagedHeap Heap(Env, 4096);
  UnmanagedHeap::Addr A = Heap.malloc(32);
  UnmanagedHeap::Addr B = Heap.malloc(32);
  UnmanagedHeap::Addr C = Heap.malloc(32);
  UnmanagedHeap::Addr Tail = Heap.malloc(32); // Prevents merging into the
  (void)Tail;                                 // trailing free space.
  Heap.free(A);
  Heap.free(C);
  EXPECT_EQ(Heap.freeBlockCount(), 3u); // A-hole, C-hole, tail space.
  Heap.free(B);
  // A+B+C coalesce into one hole.
  EXPECT_EQ(Heap.freeBlockCount(), 2u);
  EXPECT_TRUE(Heap.checkInvariants());
  // The coalesced hole fits an allocation larger than any single piece.
  UnmanagedHeap::Addr Big = Heap.malloc(100);
  EXPECT_EQ(Big, A);
}

TEST(Heap, FreeNullIsNoOp) {
  BrowserEnv Env(chromeProfile());
  UnmanagedHeap Heap(Env, 256);
  Heap.free(0);
  EXPECT_TRUE(Heap.checkInvariants());
}

TEST(Heap, ZeroByteMallocStillAllocates) {
  BrowserEnv Env(chromeProfile());
  UnmanagedHeap Heap(Env, 256);
  UnmanagedHeap::Addr A = Heap.malloc(0);
  EXPECT_NE(A, 0u);
  Heap.free(A);
}

TEST(Heap, LittleEndianLayout) {
  // §5.2: data is stored little endian to match typed arrays.
  BrowserEnv Env(chromeProfile());
  UnmanagedHeap Heap(Env, 256);
  UnmanagedHeap::Addr A = Heap.malloc(8);
  Heap.writeInt32(A, 0x11223344);
  EXPECT_EQ(Heap.readInt8(A), 0x44);
  EXPECT_EQ(Heap.readInt8(A + 1), 0x33);
  EXPECT_EQ(Heap.readInt8(A + 2), 0x22);
  EXPECT_EQ(Heap.readInt8(A + 3), 0x11);
}

TEST(Heap, ScalarRoundTrips) {
  BrowserEnv Env(chromeProfile());
  UnmanagedHeap Heap(Env, 1024);
  UnmanagedHeap::Addr A = Heap.malloc(64);
  Heap.writeInt8(A, -5);
  EXPECT_EQ(Heap.readInt8(A), -5);
  Heap.writeInt16(A + 2, -30000);
  EXPECT_EQ(Heap.readInt16(A + 2), -30000);
  Heap.writeInt32(A + 4, -2000000000);
  EXPECT_EQ(Heap.readInt32(A + 4), -2000000000);
  Heap.writeInt64(A + 8, -0x123456789ABCDEF0ll);
  EXPECT_EQ(Heap.readInt64(A + 8), -0x123456789ABCDEF0ll);
  Heap.writeFloat(A + 16, 2.5f);
  EXPECT_EQ(Heap.readFloat(A + 16), 2.5f);
  Heap.writeDouble(A + 24, -1e300);
  EXPECT_EQ(Heap.readDouble(A + 24), -1e300);
}

TEST(Heap, UnalignedByteAccess) {
  BrowserEnv Env(chromeProfile());
  UnmanagedHeap Heap(Env, 256);
  UnmanagedHeap::Addr A = Heap.malloc(16);
  uint8_t Src[5] = {1, 2, 3, 4, 5};
  Heap.writeBytes(A + 3, Src, 5); // Straddles word boundaries.
  uint8_t Dst[5] = {};
  Heap.readBytes(A + 3, Dst, 5);
  for (int I = 0; I != 5; ++I)
    EXPECT_EQ(Dst[I], Src[I]);
}

TEST(Heap, CopyOutSemantics) {
  // §5.2: heap data is copied in and out; later source mutation must not
  // affect stored bytes.
  BrowserEnv Env(chromeProfile());
  UnmanagedHeap Heap(Env, 256);
  UnmanagedHeap::Addr A = Heap.malloc(4);
  uint8_t Src[4] = {9, 9, 9, 9};
  Heap.writeBytes(A, Src, 4);
  Src[0] = 0;
  uint8_t Out[4];
  Heap.readBytes(A, Out, 4);
  EXPECT_EQ(Out[0], 9);
}

TEST(Heap, BackingFollowsProfile) {
  BrowserEnv Chrome(chromeProfile());
  UnmanagedHeap Fast(Chrome, 1024);
  EXPECT_TRUE(Fast.usesTypedArray());
  EXPECT_EQ(Chrome.liveTypedArrayBytes(), Fast.sizeBytes());
  BrowserEnv Ie8(ie8Profile());
  UnmanagedHeap Slow(Ie8, 1024);
  EXPECT_FALSE(Slow.usesTypedArray());
  EXPECT_EQ(Ie8.liveTypedArrayBytes(), 0u);
}

TEST(Heap, NumberArrayHeapChargesMore) {
  BrowserEnv Chrome(chromeProfile());
  BrowserEnv Ie8(ie8Profile());
  UnmanagedHeap Fast(Chrome, 8192), Slow(Ie8, 8192);
  UnmanagedHeap::Addr A = Fast.malloc(4096), B = Slow.malloc(4096);
  std::vector<uint8_t> Data(4096, 7);
  uint64_t T0 = Chrome.clock().nowNs();
  Fast.writeBytes(A, Data.data(), Data.size());
  uint64_t FastCost = Chrome.clock().nowNs() - T0;
  uint64_t T1 = Ie8.clock().nowNs();
  Slow.writeBytes(B, Data.data(), Data.size());
  uint64_t SlowCost = Ie8.clock().nowNs() - T1;
  EXPECT_GT(SlowCost, FastCost);
}

// Property: randomized alloc/free keeps the allocator consistent and
// data intact.
class HeapProperty : public ::testing::TestWithParam<uint32_t> {};

TEST_P(HeapProperty, RandomAllocFreeKeepsInvariants) {
  BrowserEnv Env(chromeProfile());
  UnmanagedHeap Heap(Env, 64 * 1024);
  std::mt19937 Rng(GetParam());
  std::map<UnmanagedHeap::Addr, std::pair<uint32_t, uint8_t>> Live;
  for (int Step = 0; Step != 600; ++Step) {
    bool DoAlloc = Live.empty() || (Rng() % 3) != 0;
    if (DoAlloc) {
      uint32_t Size = 1 + Rng() % 400;
      UnmanagedHeap::Addr A = Heap.malloc(Size);
      if (A == 0)
        continue; // Full: acceptable.
      uint8_t Tag = static_cast<uint8_t>(Rng());
      std::vector<uint8_t> Payload(Size, Tag);
      Heap.writeBytes(A, Payload.data(), Size);
      // No overlap with any live allocation.
      for (const auto &[Addr, Info] : Live) {
        bool Disjoint = A + Size <= Addr || Addr + Info.first <= A;
        ASSERT_TRUE(Disjoint) << "overlapping allocations";
      }
      Live[A] = {Size, Tag};
    } else {
      auto It = Live.begin();
      std::advance(It, Rng() % Live.size());
      // Contents must be intact before the block dies.
      std::vector<uint8_t> Out(It->second.first);
      Heap.readBytes(It->first, Out.data(), Out.size());
      for (uint8_t Byte : Out)
        ASSERT_EQ(Byte, It->second.second) << "clobbered allocation";
      Heap.free(It->first);
      Live.erase(It);
    }
    ASSERT_TRUE(Heap.checkInvariants()) << "step " << Step;
  }
  for (const auto &[Addr, Info] : Live)
    Heap.free(Addr);
  EXPECT_EQ(Heap.allocationCount(), 0u);
  EXPECT_EQ(Heap.freeBlockCount(), 1u) << "everything coalesced back";
  EXPECT_TRUE(Heap.checkInvariants());
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeapProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u,
                                           34u));

} // namespace
