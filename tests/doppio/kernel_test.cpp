//===- tests/doppio/kernel_test.cpp ---------------------------------------==//
//
// Tests for the unified scheduling kernel: lane priority, FIFO-within-lane
// ordering, the (DueNs, Seq) timer min-heap, cancellation tokens, cancelled
// timer reaping, the trace ring buffer, and the exported counters. Run with
// `ctest -L kernel`.
//
//===----------------------------------------------------------------------===//

#include "doppio/kernel/kernel.h"

#include "browser/env.h"

#include "gtest/gtest.h"

#include <string>
#include <vector>

using namespace doppio;
using namespace doppio::kernel;

namespace {

/// Drains the kernel the way the event-loop facade does, recording each
/// dispatch so traces and counters are populated.
void drain(Kernel &K, browser::VirtualClock &Clock) {
  while (auto W = K.next()) {
    uint64_t Start = Clock.nowNs();
    W->Fn();
    K.noteDispatched(*W, Start, Clock.nowNs());
  }
}

TEST(Kernel, LanesDrainInStrictPriorityOrder) {
  browser::VirtualClock Clock;
  Kernel K(Clock);
  std::vector<std::string> Order;
  // Posted in reverse-priority order; dispatch must follow lane priority.
  K.post(Lane::Background, [&] { Order.push_back("background"); });
  K.post(Lane::Timer, [&] { Order.push_back("timer"); });
  K.post(Lane::Resume, [&] { Order.push_back("resume"); });
  K.post(Lane::IoCompletion, [&] { Order.push_back("io"); });
  K.post(Lane::Input, [&] { Order.push_back("input"); });
  drain(K, Clock);
  EXPECT_EQ(Order, (std::vector<std::string>{"input", "io", "resume",
                                             "timer", "background"}));
}

TEST(Kernel, QueuedInputBeatsPendingBackgroundCompletions) {
  // The acceptance scenario: a flood of background completions is already
  // queued when an input event arrives — the input still dispatches first.
  browser::VirtualClock Clock;
  Kernel K(Clock);
  std::vector<std::string> Order;
  for (int I = 0; I < 100; ++I)
    K.post(Lane::Background, [&] { Order.push_back("completion"); });
  K.post(Lane::Input, [&] { Order.push_back("input"); });
  drain(K, Clock);
  ASSERT_EQ(Order.size(), 101u);
  EXPECT_EQ(Order.front(), "input");
}

TEST(Kernel, FifoWithinLane) {
  browser::VirtualClock Clock;
  Kernel K(Clock);
  std::vector<int> Order;
  for (int I = 0; I < 5; ++I)
    K.post(Lane::Resume, [&Order, I] { Order.push_back(I); });
  drain(K, Clock);
  EXPECT_EQ(Order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Kernel, TimersFireInDueOrderThenInsertionOrder) {
  browser::VirtualClock Clock;
  Kernel K(Clock);
  std::vector<int> Order;
  K.postAfter(Lane::Timer, [&] { Order.push_back(1); }, browser::msToNs(20));
  K.postAfter(Lane::Timer, [&] { Order.push_back(2); }, browser::msToNs(10));
  K.postAfter(Lane::Timer, [&] { Order.push_back(3); }, browser::msToNs(10));
  drain(K, Clock);
  EXPECT_EQ(Order, (std::vector<int>{2, 3, 1}));
}

TEST(Kernel, IdleGapsAdvanceTheVirtualClock) {
  browser::VirtualClock Clock;
  Kernel K(Clock);
  uint64_t FiredAt = 0;
  K.postAfter(Lane::Timer, [&] { FiredAt = Clock.nowNs(); },
              browser::msToNs(50));
  drain(K, Clock);
  EXPECT_EQ(FiredAt, browser::msToNs(50));
}

TEST(Kernel, CancelledTokenWorkNeverRuns) {
  browser::VirtualClock Clock;
  Kernel K(Clock);
  CancelSource Src;
  bool CancelledRan = false;
  bool PlainRan = false;
  K.post(Lane::Resume, [&] { CancelledRan = true; }, Src.token());
  K.post(Lane::Resume, [&] { PlainRan = true; });
  Src.cancel();
  drain(K, Clock);
  EXPECT_FALSE(CancelledRan);
  EXPECT_TRUE(PlainRan);
  EXPECT_EQ(K.counters().Lanes[size_t(Lane::Resume)].CancelledSkipped, 1u);
  EXPECT_EQ(K.counters().Lanes[size_t(Lane::Resume)].Dispatched, 1u);
}

TEST(Kernel, CancelTokenCoversTimers) {
  browser::VirtualClock Clock;
  Kernel K(Clock);
  CancelSource Src;
  bool Ran = false;
  K.postAfter(Lane::Timer, [&] { Ran = true; }, browser::msToNs(5),
              Src.token());
  K.postAfter(Lane::Timer, [] {}, browser::msToNs(10));
  Src.cancel();
  drain(K, Clock);
  EXPECT_FALSE(Ran);
}

TEST(Kernel, CancelTimerByHandle) {
  browser::VirtualClock Clock;
  Kernel K(Clock);
  bool Ran = false;
  uint64_t H = K.postAfter(Lane::Timer, [&] { Ran = true; },
                           browser::msToNs(10));
  EXPECT_TRUE(K.cancelTimer(H));
  EXPECT_FALSE(K.cancelTimer(H)) << "second cancel is a no-op";
  EXPECT_FALSE(K.cancelTimer(9999)) << "unknown handle is a no-op";
  drain(K, Clock);
  EXPECT_FALSE(Ran);
  EXPECT_EQ(K.counters().TimersCancelled, 1u);
}

TEST(Kernel, CancelledEntriesDoNotAccumulate) {
  // The clearTimeout regression (satellite): the old event loop kept
  // Cancelled entries in its timer vector until their due time passed —
  // a server arming and cancelling far-future timers grew without bound.
  // The kernel reaps on promotion and compacts when cancelled entries
  // outnumber live ones.
  browser::VirtualClock Clock;
  Kernel K(Clock);
  for (int I = 0; I < 10000; ++I) {
    // Far-future due times: the old implementation never discarded these.
    uint64_t H = K.postAfter(Lane::Timer, [] {},
                             browser::msToNs(1000 + I));
    EXPECT_TRUE(K.cancelTimer(H));
  }
  EXPECT_EQ(K.pendingTimers(), 0u);
  EXPECT_LT(K.cancelledTimers(), 64u)
      << "lazy deletion must be bounded by compaction";
  EXPECT_GE(K.counters().HeapCompactions, 1u);
  EXPECT_TRUE(K.idle());
  // And the loop terminates immediately: no spinning over dead timers.
  EXPECT_FALSE(K.next().has_value());
}

TEST(Kernel, MixedCancelledAndLiveTimersStayOrdered) {
  browser::VirtualClock Clock;
  Kernel K(Clock);
  std::vector<int> Order;
  std::vector<uint64_t> ToCancel;
  for (int I = 0; I < 100; ++I) {
    uint64_t H = K.postAfter(Lane::Timer, [&Order, I] { Order.push_back(I); },
                             browser::msToNs(1 + I));
    if (I % 2)
      ToCancel.push_back(H);
  }
  for (uint64_t H : ToCancel)
    K.cancelTimer(H);
  drain(K, Clock);
  ASSERT_EQ(Order.size(), 50u);
  for (size_t I = 0; I + 1 < Order.size(); ++I) {
    EXPECT_LT(Order[I], Order[I + 1]);
    EXPECT_EQ(Order[I] % 2, 0);
  }
}

TEST(Kernel, TraceRecordsQueueDelayAndRunTime) {
  browser::VirtualClock Clock;
  Kernel K(Clock);
  // A 10 ms event queued ahead of a 1 ms event: the second entry must
  // show 10 ms of queue delay and 1 ms of run time.
  K.post(Lane::Background, [&] { Clock.chargeNs(browser::msToNs(10)); });
  K.post(Lane::Background, [&] { Clock.chargeNs(browser::msToNs(1)); });
  drain(K, Clock);
  std::vector<TraceEntry> T = K.trace().snapshot();
  ASSERT_EQ(T.size(), 2u);
  EXPECT_EQ(T[0].QueueDelayNs, 0u);
  EXPECT_EQ(T[0].RunNs, browser::msToNs(10));
  EXPECT_EQ(T[1].QueueDelayNs, browser::msToNs(10));
  EXPECT_EQ(T[1].RunNs, browser::msToNs(1));
  EXPECT_EQ(T[1].StartNs, T[1].ReadyNs + T[1].QueueDelayNs);
  EXPECT_EQ(T[0].L, Lane::Background);
  EXPECT_LT(T[0].Id, T[1].Id);
}

TEST(Kernel, TraceRingRetainsLast4096Dispatches) {
  browser::VirtualClock Clock;
  Kernel K(Clock);
  constexpr int Total = 5000;
  for (int I = 0; I < Total; ++I)
    K.post(Lane::Background, [] {});
  drain(K, Clock);
  const TraceRing &T = K.trace();
  EXPECT_EQ(T.capacity(), Kernel::DefaultTraceCapacity);
  EXPECT_GE(T.capacity(), 4096u);
  EXPECT_EQ(T.recorded(), uint64_t(Total));
  std::vector<TraceEntry> Snap = T.snapshot();
  ASSERT_EQ(Snap.size(), 4096u);
  // Oldest-first, contiguous, ending at the final dispatch.
  for (size_t I = 0; I + 1 < Snap.size(); ++I)
    EXPECT_EQ(Snap[I].Id + 1, Snap[I + 1].Id);
  EXPECT_EQ(Snap.back().Id, K.counters().totalDispatched());
}

TEST(Kernel, CountersAggregatePerLane) {
  browser::VirtualClock Clock;
  Kernel K(Clock);
  K.post(Lane::Input, [&] { Clock.chargeNs(browser::usToNs(100)); });
  K.post(Lane::Input, [&] { Clock.chargeNs(browser::usToNs(300)); });
  K.postAfter(Lane::Timer, [] {}, browser::msToNs(1));
  drain(K, Clock);
  const Counters &C = K.counters();
  EXPECT_EQ(C.Lanes[size_t(Lane::Input)].Posted, 2u);
  EXPECT_EQ(C.Lanes[size_t(Lane::Input)].Dispatched, 2u);
  EXPECT_EQ(C.Lanes[size_t(Lane::Input)].TotalRunNs, browser::usToNs(400));
  EXPECT_EQ(C.Lanes[size_t(Lane::Input)].MaxRunNs, browser::usToNs(300));
  EXPECT_EQ(C.Lanes[size_t(Lane::Input)].MaxQueueDelayNs,
            browser::usToNs(100));
  EXPECT_EQ(C.Lanes[size_t(Lane::Timer)].Posted, 1u);
  EXPECT_EQ(C.TimersScheduled, 1u);
  EXPECT_EQ(C.totalDispatched(), 3u);
  EXPECT_STREQ(laneName(Lane::Input), "input");
  EXPECT_STREQ(laneName(Lane::Background), "background");
}

TEST(Kernel, CancelSourceResetRearms) {
  browser::VirtualClock Clock;
  Kernel K(Clock);
  CancelSource Src;
  bool OldRan = false, NewRan = false;
  K.post(Lane::Resume, [&] { OldRan = true; }, Src.token());
  Src.cancel();
  Src.reset();
  K.post(Lane::Resume, [&] { NewRan = true; }, Src.token());
  drain(K, Clock);
  EXPECT_FALSE(OldRan) << "pre-reset tokens stay cancelled";
  EXPECT_TRUE(NewRan) << "post-reset tokens are fresh";
  EXPECT_FALSE(CancelToken().attached());
  EXPECT_TRUE(Src.token().attached());
}

// --- Facade integration: the browser event loop over kernel lanes. ------===//

TEST(EventLoopFacade, ClearTimeoutReapsFarFutureTimers) {
  // Regression for the satellite bug at the EventLoop level: clearTimeout
  // used to leave Cancelled entries in the timer vector until their due
  // time arrived; with kernel handles they are reaped eagerly.
  browser::BrowserEnv Env(browser::chromeProfile());
  for (int I = 0; I < 10000; ++I) {
    uint64_t H = Env.loop().setTimeout([] {}, browser::msToNs(100000 + I));
    Env.loop().clearTimeout(H);
  }
  const kernel::Kernel &K = Env.loop().kernel();
  EXPECT_EQ(K.pendingTimers(), 0u);
  EXPECT_LT(K.cancelledTimers(), 64u);
  uint64_t Before = Env.clock().nowNs();
  Env.loop().run(); // Must return immediately, not spin to t=100s.
  EXPECT_EQ(Env.clock().nowNs(), Before);
}

TEST(EventLoopFacade, InputLanePreemptsQueuedBackgroundTasks) {
  browser::BrowserEnv Env(browser::chromeProfile());
  std::vector<std::string> Order;
  for (int I = 0; I < 10; ++I)
    Env.loop().enqueueTask([&] { Order.push_back("task"); });
  Env.loop().enqueueTask([&] { Order.push_back("input"); },
                         browser::EventKind::Input);
  Env.loop().run();
  ASSERT_EQ(Order.size(), 11u);
  EXPECT_EQ(Order.front(), "input");
}

TEST(EventLoopFacade, StatsShapePreservedAndTraceExported) {
  browser::BrowserEnv Env(browser::chromeProfile());
  Env.loop().enqueueTask(
      [&] { Env.clock().chargeNs(browser::msToNs(10)); });
  Env.loop().run();
  const browser::EventLoop::Stats &S = Env.loop().stats();
  EXPECT_EQ(S.EventsRun, 1u);
  EXPECT_EQ(S.MaxEventNs, browser::msToNs(10));
  EXPECT_EQ(S.TotalEventNs, browser::msToNs(10));
  EXPECT_EQ(S.WatchdogKills, 0u);
  // Every facade dispatch reaches the kernel trace.
  EXPECT_EQ(Env.loop().kernel().trace().recorded(), 1u);
  EXPECT_EQ(Env.loop().kernel().counters().totalDispatched(), 1u);
}

TEST(EventLoopFacade, PostAfterWithTokenSkipsCancelledWork) {
  browser::BrowserEnv Env(browser::chromeProfile());
  kernel::CancelSource Src;
  bool Ran = false;
  Env.loop().postAfter(kernel::Lane::Timer, [&] { Ran = true; },
                       browser::msToNs(1), Src.token());
  Src.cancel();
  Env.loop().run();
  EXPECT_FALSE(Ran);
}

} // namespace
