//===- tests/doppio/obs_test.cpp ------------------------------------------==//
//
// Tests for the observability subsystem (src/doppio/obs/): instrument
// determinism on the virtual clock, registry naming and enumeration,
// causal span propagation through kernel hops, the exposition formats,
// and the doppiod `metrics` handler round-trip over the frame codec.
//
//===----------------------------------------------------------------------===//

#include "doppio/backends/in_memory.h"
#include "doppio/fs.h"
#include "doppio/obs/exposition.h"
#include "doppio/obs/registry.h"
#include "doppio/server/client.h"
#include "doppio/server/handlers.h"
#include "doppio/server/server.h"

#include "gtest/gtest.h"

using namespace doppio;
using namespace doppio::rt;
using namespace doppio::browser;

namespace {

std::vector<uint8_t> bytesOf(const std::string &S) {
  return std::vector<uint8_t>(S.begin(), S.end());
}

//===----------------------------------------------------------------------===//
// Instruments
//===----------------------------------------------------------------------===//

TEST(Instruments, CounterAndGaugeBasics) {
  obs::Counter C;
  EXPECT_EQ(C.value(), 0u);
  C.inc();
  C.inc(41);
  EXPECT_EQ(C.value(), 42u);
  C.reset();
  EXPECT_EQ(C.value(), 0u);

  obs::Gauge G;
  G.set(7);
  G.add(5);
  G.sub(2);
  EXPECT_EQ(G.value(), 10);
  G.noteMax(3); // Below: no change.
  EXPECT_EQ(G.value(), 10);
  G.noteMax(25);
  EXPECT_EQ(G.value(), 25);
}

TEST(Instruments, HistogramExactPercentilesMatchLegacyMath) {
  obs::Histogram H;
  std::vector<uint64_t> Values{50000, 10000, 40000, 20000, 30000};
  for (uint64_t V : Values)
    H.record(V);
  EXPECT_EQ(H.count(), 5u);
  EXPECT_EQ(H.sumNs(), 150000u);
  EXPECT_EQ(H.maxNs(), 50000u);
  // KeepSamples default: percentile() is the exact nearest-rank result,
  // bit-identical to what the fig6/fig7 harnesses always computed.
  EXPECT_EQ(H.percentile(50.0), obs::percentileNs(Values, 50.0));
  EXPECT_EQ(H.percentile(99.0), obs::percentileNs(Values, 99.0));
  EXPECT_EQ(H.samples(), Values);
}

TEST(Instruments, HistogramBucketsAreCumulativeAndCoverEverything) {
  obs::Histogram H(obs::Histogram::Options{/*KeepSamples=*/false});
  H.record(500);            // < 1us: first bucket.
  H.record(3000);           // ~3us.
  H.record(1ull << 40);     // Far beyond the last finite bound: +Inf bucket.
  EXPECT_TRUE(H.samples().empty());
  EXPECT_EQ(H.count(), 3u);
  uint64_t Total = 0;
  for (uint64_t B : H.buckets())
    Total += B;
  EXPECT_EQ(Total, 3u); // Buckets are per-bucket counts; nothing dropped.
  // Bounds are monotonically increasing and end at +Inf.
  for (size_t I = 1; I < obs::Histogram::NumBuckets; ++I)
    EXPECT_GT(obs::Histogram::bucketBoundNs(I),
              obs::Histogram::bucketBoundNs(I - 1));
  EXPECT_EQ(obs::Histogram::bucketBoundNs(obs::Histogram::NumBuckets - 1),
            UINT64_MAX);
  // Without samples, percentile degrades to the bucket upper bound.
  EXPECT_EQ(H.percentile(50.0), obs::Histogram::bucketBoundNs(2));
}

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

TEST(Registry, CellsAreCreatedOnFirstUseWithStableReferences) {
  VirtualClock Clock;
  obs::Registry Reg(Clock);
  obs::Counter &A = Reg.counter("x.count");
  A.inc(3);
  EXPECT_TRUE(Reg.hasCounter("x.count"));
  EXPECT_FALSE(Reg.hasCounter("x.other"));
  // Same name, same cell — and creating more cells must not move it.
  for (int I = 0; I < 100; ++I)
    Reg.counter("x.filler" + std::to_string(I));
  EXPECT_EQ(&Reg.counter("x.count"), &A);
  EXPECT_EQ(A.value(), 3u);
  EXPECT_EQ(Reg.instrumentCount(), 101u);
}

TEST(Registry, ClaimPrefixDisambiguatesInstances) {
  VirtualClock Clock;
  obs::Registry Reg(Clock);
  EXPECT_EQ(Reg.claimPrefix("server"), "server");
  EXPECT_EQ(Reg.claimPrefix("server"), "server2");
  EXPECT_EQ(Reg.claimPrefix("server"), "server3");
  EXPECT_EQ(Reg.claimPrefix("fs"), "fs");
}

TEST(Registry, EnumerationIsNameSortedAndDeterministic) {
  VirtualClock Clock;
  obs::Registry Reg(Clock);
  Reg.counter("zeta");
  Reg.counter("alpha");
  Reg.counter("mid");
  std::vector<std::string> Names;
  Reg.forEachCounter(
      [&](const std::string &N, const obs::Counter &) { Names.push_back(N); });
  EXPECT_EQ(Names, (std::vector<std::string>{"alpha", "mid", "zeta"}));
}

TEST(Registry, ResetAllZeroesCellsButKeepsThem) {
  VirtualClock Clock;
  obs::Registry Reg(Clock);
  obs::Counter &C = Reg.counter("c");
  obs::Gauge &G = Reg.gauge("g");
  obs::Histogram &H = Reg.histogram("h");
  C.inc(5);
  G.set(-3);
  H.record(1000);
  Reg.spans().end(Reg.spans().begin("op"));
  Reg.resetAll();
  EXPECT_EQ(C.value(), 0u);
  EXPECT_EQ(G.value(), 0);
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(Reg.spans().finished(), 0u);
  EXPECT_TRUE(Reg.spans().recent().empty());
  EXPECT_EQ(&Reg.counter("c"), &C); // Same cell after reset.
}

//===----------------------------------------------------------------------===//
// Spans
//===----------------------------------------------------------------------===//

TEST(Spans, DeterministicOnVirtualClock) {
  VirtualClock Clock;
  obs::SpanStore S(Clock);
  Clock.chargeNs(100);
  obs::SpanId Id = S.begin("op");
  Clock.chargeNs(250);
  S.end(Id);
  ASSERT_EQ(S.recent().size(), 1u);
  const obs::Span &Sp = S.recent().back();
  EXPECT_EQ(Sp.Name, "op");
  EXPECT_EQ(Sp.StartNs, 100u);
  EXPECT_EQ(Sp.EndNs, 350u);
  EXPECT_EQ(Sp.durationNs(), 250u);
  EXPECT_EQ(Sp.Parent, 0u);
}

TEST(Spans, ScopeNestsAndRestores) {
  VirtualClock Clock;
  obs::SpanStore S(Clock);
  EXPECT_EQ(S.current(), 0u);
  obs::SpanId Outer = S.begin("outer");
  {
    obs::SpanStore::Scope A(S, Outer);
    EXPECT_EQ(S.current(), Outer);
    obs::SpanId Inner = S.begin("inner"); // Parented under Outer.
    {
      obs::SpanStore::Scope B(S, Inner);
      EXPECT_EQ(S.current(), Inner);
    }
    EXPECT_EQ(S.current(), Outer);
    S.end(Inner);
  }
  EXPECT_EQ(S.current(), 0u);
  S.end(Outer);
  ASSERT_EQ(S.recent().size(), 2u);
  EXPECT_EQ(S.recent()[0].Name, "inner");
  EXPECT_EQ(S.recent()[0].Parent, Outer);
}

TEST(Spans, RetentionIsBounded) {
  VirtualClock Clock;
  obs::SpanStore S(Clock, /*Retain=*/4);
  for (int I = 0; I < 10; ++I)
    S.end(S.begin("op" + std::to_string(I)));
  EXPECT_EQ(S.recent().size(), 4u);
  EXPECT_EQ(S.recent().front().Name, "op6"); // Oldest surviving.
  EXPECT_EQ(S.finished(), 10u);              // Totals keep counting.
}

TEST(Spans, IdPropagatesThroughAKernelHop) {
  BrowserEnv Env(chromeProfile());
  obs::SpanStore &Spans = Env.metrics().spans();
  obs::SpanId Root = Spans.begin("root");
  obs::SpanId Child = 0;
  {
    // Root is current while the work is *posted*; the kernel stamps it on
    // the work item, and the loop restores it around the dispatch.
    obs::SpanStore::Scope Scope(Spans, Root);
    Env.loop().post(kernel::Lane::Background, [&] {
      EXPECT_EQ(Spans.current(), Root);
      Child = Spans.begin("child");
      Spans.end(Child);
    });
  }
  EXPECT_EQ(Spans.current(), 0u); // Not current outside the scope...
  Env.loop().run();               // ...yet the hop still carries it.
  Spans.end(Root);
  ASSERT_NE(Child, 0u);
  ASSERT_EQ(Spans.recent().size(), 2u);
  EXPECT_EQ(Spans.recent()[0].Name, "child");
  EXPECT_EQ(Spans.recent()[0].Parent, Root);
}

TEST(Spans, KernelQueueDelayIsAttributedToTheOpenSpan) {
  BrowserEnv Env(chromeProfile());
  obs::SpanStore &Spans = Env.metrics().spans();
  obs::SpanId Root = Spans.begin("root");
  // First event charges 5us of virtual time; the span's event, enqueued
  // at t=0 behind it, therefore waits 5us in the lane.
  Env.loop().post(kernel::Lane::Background,
                  [&] { Env.clock().chargeNs(5000); });
  {
    obs::SpanStore::Scope Scope(Spans, Root);
    Env.loop().post(kernel::Lane::Background, [] {});
  }
  Env.loop().run();
  const obs::Span *Open = Spans.findOpen(Root);
  ASSERT_NE(Open, nullptr);
  EXPECT_EQ(Open->QueueDelayNs, 5000u);
  Spans.end(Root);
  // Once ended, late queue-delay reports are dropped.
  Spans.addQueueDelay(Root, 999);
  EXPECT_EQ(Spans.recent().back().QueueDelayNs, 5000u);
}

//===----------------------------------------------------------------------===//
// Legacy views are registry-backed
//===----------------------------------------------------------------------===//

TEST(Views, LoopStatsAndKernelCountersComeFromTheRegistry) {
  BrowserEnv Env(chromeProfile());
  Env.loop().post(kernel::Lane::Background,
                  [&] { Env.clock().chargeNs(1000); });
  Env.loop().run();
  EventLoop::Stats S = Env.loop().stats();
  EXPECT_EQ(S.EventsRun, 1u);
  EXPECT_EQ(S.TotalEventNs, 1000u);
  EXPECT_EQ(S.EventsRun, Env.metrics().counter("loop.events_run").value());
  kernel::Counters K = Env.loop().kernel().counters();
  EXPECT_EQ(K.Lanes[static_cast<size_t>(kernel::Lane::Background)].Dispatched,
            1u);
}

//===----------------------------------------------------------------------===//
// Exposition
//===----------------------------------------------------------------------===//

TEST(Exposition, PrometheusCarriesEveryInstrumentKind) {
  VirtualClock Clock;
  obs::Registry Reg(Clock);
  Reg.counter("kernel.lane.input.posted").inc(3);
  Reg.gauge("server.active").set(2);
  Reg.histogram("fs.op_ns").record(2000);
  std::string Text = obs::renderPrometheus(Reg);
  EXPECT_NE(Text.find("doppio_kernel_lane_input_posted 3"), std::string::npos);
  EXPECT_NE(Text.find("doppio_server_active 2"), std::string::npos);
  EXPECT_NE(Text.find("doppio_fs_op_ns_count 1"), std::string::npos);
  EXPECT_NE(Text.find("doppio_fs_op_ns_bucket"), std::string::npos);
  EXPECT_NE(Text.find("le=\"+Inf\""), std::string::npos);
  EXPECT_NE(Text.find("doppio_spans_started 0"), std::string::npos);
}

TEST(Exposition, JsonCarriesSpansWithParentLinks) {
  VirtualClock Clock;
  obs::Registry Reg(Clock);
  obs::SpanId Root = Reg.spans().begin("client.req");
  obs::SpanId Child = Reg.spans().beginChildOf("server.req.echo", Root);
  Reg.spans().end(Child);
  Reg.spans().end(Root);
  std::string Json = obs::renderJson(Reg);
  EXPECT_NE(Json.find("\"spans\""), std::string::npos);
  EXPECT_NE(Json.find("\"client.req\""), std::string::npos);
  EXPECT_NE(Json.find("\"server.req.echo\""), std::string::npos);
  EXPECT_NE(Json.find("\"parent\": " + std::to_string(Root)),
            std::string::npos);
}

//===----------------------------------------------------------------------===//
// doppiod metrics handler
//===----------------------------------------------------------------------===//

/// One browser hosting a doppiod with the metrics handler installed.
struct MetricsRig {
  MetricsRig() : Env(chromeProfile()) {
    auto Root = std::make_unique<fs::InMemoryBackend>(Env);
    Root->seedFile("/srv/hello.txt", bytesOf("hello"));
    Fs = std::make_unique<fs::FileSystem>(Env, Proc, std::move(Root));
    server::Server::Config Cfg;
    Cfg.Port = 7000;
    Srv = std::make_unique<server::Server>(Env, Cfg);
    server::installDefaultHandlers(Srv->router(), *Fs, &Env.metrics());
    EXPECT_TRUE(Srv->start());
  }

  BrowserEnv Env;
  Process Proc;
  std::unique_ptr<fs::FileSystem> Fs;
  std::unique_ptr<server::Server> Srv;
};

TEST(MetricsHandler, ServesPrometheusTextOverTheFrameCodec) {
  MetricsRig R;
  server::FrameClient C(R.Env.net());
  std::string Text;
  C.connect(7000, [&](bool Ok) {
    ASSERT_TRUE(Ok);
    // One real request first (scraping only after its response, so the
    // scrape is guaranteed to cover the completed traffic).
    C.request("file", bytesOf("/srv/hello.txt"),
              [&](server::frame::Response Resp) {
                EXPECT_EQ(Resp.S, server::frame::Status::Ok);
                C.request("metrics", {}, [&](server::frame::Response M) {
                  ASSERT_EQ(M.S, server::frame::Status::Ok);
                  Text = M.text();
                  C.close();
                });
              });
  });
  R.Env.loop().run();
  // The exposition covers kernel lanes, fs ops, and server requests.
  EXPECT_NE(Text.find("doppio_kernel_lane_"), std::string::npos);
  EXPECT_NE(Text.find("doppio_fs_ops"), std::string::npos);
  EXPECT_NE(Text.find("doppio_server_requests_served"), std::string::npos);
  EXPECT_NE(Text.find("doppio_loop_events_run"), std::string::npos);
}

TEST(MetricsHandler, JsonScrapeShowsEndToEndSpans) {
  MetricsRig R;
  server::FrameClient C(R.Env.net());
  std::string Json;
  C.connect(7000, [&](bool Ok) {
    ASSERT_TRUE(Ok);
    C.request("file", bytesOf("/srv/hello.txt"),
              [&](server::frame::Response Resp) {
                EXPECT_EQ(Resp.S, server::frame::Status::Ok);
                C.request("metrics", bytesOf("json"),
                          [&](server::frame::Response M) {
                            ASSERT_EQ(M.S, server::frame::Status::Ok);
                            Json = M.text();
                            C.close();
                          });
              });
  });
  R.Env.loop().run();
  // The file request produced a server span with the fs span beneath it —
  // at least one end-to-end sample in the scrape.
  EXPECT_NE(Json.find("\"server.req.file\""), std::string::npos);
  EXPECT_NE(Json.find("\"fs.readFile\""), std::string::npos);
  EXPECT_NE(Json.find("\"queue_delay_ns\""), std::string::npos);
  // And the fs span is parented under the server request span.
  const obs::SpanStore &Spans = R.Env.metrics().spans();
  obs::SpanId ServerSpan = 0;
  for (const obs::Span &Sp : Spans.recent())
    if (Sp.Name == "server.req.file")
      ServerSpan = Sp.Id;
  ASSERT_NE(ServerSpan, 0u);
  bool FsUnderServer = false;
  for (const obs::Span &Sp : Spans.recent())
    if (Sp.Name == "fs.readFile" && Sp.Parent == ServerSpan)
      FsUnderServer = true;
  EXPECT_TRUE(FsUnderServer);
}

TEST(MetricsHandler, UnknownFormatIsBadRequest) {
  MetricsRig R;
  server::FrameClient C(R.Env.net());
  server::frame::Status Got = server::frame::Status::Ok;
  C.connect(7000, [&](bool Ok) {
    ASSERT_TRUE(Ok);
    C.request("metrics", bytesOf("xml"), [&](server::frame::Response Resp) {
      Got = Resp.S;
      C.close();
    });
  });
  R.Env.loop().run();
  EXPECT_EQ(Got, server::frame::Status::BadRequest);
}

} // namespace
