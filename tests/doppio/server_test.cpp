//===- tests/doppio/server_test.cpp ---------------------------------------==//
//
// Tests for doppiod (src/doppio/server/): the frame codec, listen/accept
// sockets with backlog semantics, the request router and stock handlers,
// connection-cap backpressure, idle reaping, pipelined response ordering,
// graceful shutdown, the traffic generator, and the §5.3 integration —
// a DoppioSocket client reaching doppiod through the websockify bridge.
//
//===----------------------------------------------------------------------===//

#include "doppio/backends/in_memory.h"
#include "doppio/fs.h"
#include "doppio/server/client.h"
#include "doppio/server/handlers.h"
#include "doppio/server/server.h"
#include "doppio/sockets.h"
#include "workloads/traffic.h"

#include "gtest/gtest.h"

using namespace doppio;
using namespace doppio::rt;
using namespace doppio::rt::server;
using namespace doppio::browser;

namespace {

std::vector<uint8_t> bytesOf(const std::string &S) {
  return std::vector<uint8_t>(S.begin(), S.end());
}

//===----------------------------------------------------------------------===//
// Frame codec
//===----------------------------------------------------------------------===//

TEST(Frame, RoundTripsThroughBytewiseDelivery) {
  std::vector<uint8_t> Wire = frame::encode(bytesOf("payload"));
  EXPECT_EQ(Wire.size(), frame::HeaderBytes + 7);
  frame::Decoder D;
  // Worst-case chunking: one byte at a time.
  for (uint8_t B : Wire) {
    EXPECT_FALSE(D.next().has_value());
    D.feed({B});
  }
  auto Out = D.next();
  ASSERT_TRUE(Out.has_value());
  EXPECT_EQ(*Out, bytesOf("payload"));
  EXPECT_FALSE(D.next().has_value());
  EXPECT_EQ(D.bufferedBytes(), 0u);
}

TEST(Frame, CoalescedFramesDecodeInOrder) {
  std::vector<uint8_t> Wire = frame::encode(bytesOf("one"));
  std::vector<uint8_t> Two = frame::encode(bytesOf("two"));
  Wire.insert(Wire.end(), Two.begin(), Two.end());
  frame::Decoder D;
  D.feed(Wire);
  auto A = D.next();
  auto B = D.next();
  ASSERT_TRUE(A && B);
  EXPECT_EQ(*A, bytesOf("one"));
  EXPECT_EQ(*B, bytesOf("two"));
}

TEST(Frame, OversizedLengthPrefixCorruptsTheStream) {
  frame::Decoder D;
  D.feed({0xff, 0xff, 0xff, 0xff});
  EXPECT_FALSE(D.next().has_value());
  EXPECT_TRUE(D.corrupted());
  // Corruption is terminal: even a valid frame afterwards stays stuck.
  D.feed(frame::encode(bytesOf("x")));
  EXPECT_FALSE(D.next().has_value());
}

TEST(Frame, RequestRoundTripAndRejects) {
  frame::Request R{"stat", bytesOf("/tmp/x")};
  auto Back = frame::decodeRequest(frame::encodeRequest(R));
  ASSERT_TRUE(Back.has_value());
  EXPECT_EQ(Back->Handler, "stat");
  EXPECT_EQ(Back->Body, bytesOf("/tmp/x"));

  EXPECT_FALSE(frame::decodeRequest({}).has_value());
  EXPECT_FALSE(frame::decodeRequest({0}).has_value()); // Empty name.
  EXPECT_FALSE(frame::decodeRequest({5, 'a', 'b'}).has_value()); // Short.
}

TEST(Frame, ResponseRoundTripAndRejects) {
  frame::Response R{frame::Status::Error, bytesOf("ENOENT")};
  auto Back = frame::decodeResponse(frame::encodeResponse(R));
  ASSERT_TRUE(Back.has_value());
  EXPECT_EQ(Back->S, frame::Status::Error);
  EXPECT_EQ(Back->text(), "ENOENT");

  EXPECT_FALSE(frame::decodeResponse({}).has_value());
  EXPECT_FALSE(frame::decodeResponse({42, 'x'}).has_value()); // Bad status.
}

TEST(Stats, PercentileNearestRank) {
  // The one percentile implementation, shared via obs (satellite fold).
  EXPECT_EQ(obs::percentileNs({}, 50.0), 0u);
  std::vector<uint64_t> S{50, 10, 40, 20, 30};
  EXPECT_EQ(obs::percentileNs(S, 50.0), 30u);
  EXPECT_EQ(obs::percentileNs(S, 99.0), 50u);
  EXPECT_EQ(obs::percentileNs(S, 0.0), 10u);
}

//===----------------------------------------------------------------------===//
// ServerSocket
//===----------------------------------------------------------------------===//

TEST(ServerSocket, BacklogOverflowRefusesConnects) {
  BrowserEnv Env(chromeProfile());
  ServerSocket Sock(Env.net());
  ASSERT_TRUE(Sock.listen(7000, 2));
  int Accepted = 0, RefusedAtClient = 0;
  for (int I = 0; I < 4; ++I)
    Env.net().connect(7000, [&](TcpConnection *C) {
      C ? ++Accepted : ++RefusedAtClient;
    });
  Env.loop().run();
  // Nothing called accept(): two fit the backlog, two bounce.
  EXPECT_EQ(Accepted, 2);
  EXPECT_EQ(RefusedAtClient, 2);
  EXPECT_EQ(Sock.backlogDepth(), 2u);
  EXPECT_EQ(Sock.refused(), 2u);
}

TEST(ServerSocket, AcceptDrainsTheQueueInArrivalOrder) {
  BrowserEnv Env(chromeProfile());
  ServerSocket Sock(Env.net());
  ASSERT_TRUE(Sock.listen(7000, 8));
  std::vector<TcpConnection *> Clients(3, nullptr);
  for (int I = 0; I < 3; ++I)
    Env.net().connect(7000, [&, I](TcpConnection *C) { Clients[I] = C; });
  Env.loop().run();
  ASSERT_EQ(Sock.backlogDepth(), 3u);
  // Tag each queued connection by sending from its client, then accept.
  std::vector<std::string> Order;
  for (int I = 0; I < 3; ++I)
    Clients[I]->send(bytesOf("c" + std::to_string(I)));
  for (int I = 0; I < 3; ++I)
    Sock.accept([&](TcpConnection *C) {
      ASSERT_NE(C, nullptr);
      C->setOnData([&](const std::vector<uint8_t> &D) {
        Order.emplace_back(D.begin(), D.end());
      });
    });
  Env.loop().run();
  EXPECT_EQ(Order, (std::vector<std::string>{"c0", "c1", "c2"}));
}

TEST(ServerSocket, ParkedAcceptCompletesOnArrival) {
  BrowserEnv Env(chromeProfile());
  ServerSocket Sock(Env.net());
  ASSERT_TRUE(Sock.listen(7000, 4));
  bool Got = false;
  Sock.accept([&](TcpConnection *C) { Got = (C != nullptr); });
  Env.net().connect(7000, [](TcpConnection *C) { ASSERT_NE(C, nullptr); });
  Env.loop().run();
  EXPECT_TRUE(Got);
}

TEST(ServerSocket, CloseRefusesQueuedAndCompletesParkedWithNull) {
  BrowserEnv Env(chromeProfile());
  ServerSocket Sock(Env.net());
  ASSERT_TRUE(Sock.listen(7000, 4));
  bool ClientClosed = false;
  Env.net().connect(7000, [&](TcpConnection *C) {
    ASSERT_NE(C, nullptr);
    C->setOnClose([&] { ClientClosed = true; });
  });
  Env.loop().run();
  ASSERT_EQ(Sock.backlogDepth(), 1u);
  bool ParkedGotNull = false;
  Sock.close();
  Sock.accept([&](TcpConnection *C) { ParkedGotNull = (C == nullptr); });
  Env.loop().run();
  EXPECT_TRUE(ParkedGotNull);
  EXPECT_TRUE(ClientClosed);
  EXPECT_FALSE(Env.net().isListening(7000));
  EXPECT_EQ(Sock.refused(), 1u);
}

TEST(ServerSocket, PortConflictFailsListen) {
  BrowserEnv Env(chromeProfile());
  ServerSocket A(Env.net()), B(Env.net());
  EXPECT_TRUE(A.listen(7000, 1));
  EXPECT_FALSE(B.listen(7000, 1));
  A.close();
  EXPECT_TRUE(B.listen(7000, 1));
}

//===----------------------------------------------------------------------===//
// Server
//===----------------------------------------------------------------------===//

Server::Config testConfig() {
  Server::Config Cfg;
  Cfg.Port = 7000;
  Cfg.Backlog = 8;
  Cfg.MaxConnections = 32;
  Cfg.IdleTimeoutNs = browser::msToNs(500);
  return Cfg;
}

/// One browser hosting a doppiod with a seeded file system.
struct ServerRig {
  explicit ServerRig(Server::Config Cfg = testConfig())
      : Env(chromeProfile()) {
    auto Root = std::make_unique<fs::InMemoryBackend>(Env);
    Root->seedFile("/srv/hello.txt", bytesOf("hello from doppio fs"));
    Fs = std::make_unique<fs::FileSystem>(Env, Proc, std::move(Root));
    Srv = std::make_unique<Server>(Env, Cfg);
    installDefaultHandlers(Srv->router(), *Fs, &Env.metrics());
    EXPECT_TRUE(Srv->start());
  }

  BrowserEnv Env;
  Process Proc;
  std::unique_ptr<fs::FileSystem> Fs;
  std::unique_ptr<Server> Srv;
};

TEST(Server, EchoRoundTrip) {
  ServerRig R;
  FrameClient C(R.Env.net());
  std::string Got;
  C.connect(7000, [&](bool Ok) {
    ASSERT_TRUE(Ok);
    C.request("echo", bytesOf("ping"), [&](frame::Response Resp) {
      EXPECT_EQ(Resp.S, frame::Status::Ok);
      Got = Resp.text();
      C.close();
    });
  });
  R.Env.loop().run();
  EXPECT_EQ(Got, "ping");
  ServerStats S = R.Srv->stats();
  EXPECT_EQ(S.Accepted, 1u);
  EXPECT_EQ(S.RequestsServed, 1u);
  EXPECT_EQ(S.RequestErrors, 0u);
  EXPECT_GT(S.BytesIn, 0u);
  EXPECT_GT(S.BytesOut, 0u);
  ASSERT_EQ(S.ServiceNs.size(), 1u);
}

TEST(Server, StatAndFileHandlersServeTheFs) {
  ServerRig R;
  FrameClient C(R.Env.net());
  std::string StatLine, FileBody, MissingErr;
  C.connect(7000, [&](bool Ok) {
    ASSERT_TRUE(Ok);
    C.request("stat", bytesOf("/srv/hello.txt"),
              [&](frame::Response Resp) { StatLine = Resp.text(); });
    C.request("file", bytesOf("/srv/hello.txt"),
              [&](frame::Response Resp) {
                EXPECT_EQ(Resp.S, frame::Status::Ok);
                FileBody = Resp.text();
              });
    C.request("file", bytesOf("/srv/missing"), [&](frame::Response Resp) {
      EXPECT_EQ(Resp.S, frame::Status::Error);
      MissingErr = Resp.text();
      C.close();
    });
  });
  R.Env.loop().run();
  EXPECT_EQ(StatLine, "file 20");
  EXPECT_EQ(FileBody, "hello from doppio fs");
  EXPECT_NE(MissingErr.find("ENOENT"), std::string::npos);
}

TEST(Server, UnknownHandlerAnswersNoHandler) {
  ServerRig R;
  FrameClient C(R.Env.net());
  frame::Response Got;
  C.connect(7000, [&](bool Ok) {
    ASSERT_TRUE(Ok);
    C.request("bogus", {}, [&](frame::Response Resp) {
      Got = std::move(Resp);
      C.close();
    });
  });
  R.Env.loop().run();
  EXPECT_EQ(Got.S, frame::Status::NoHandler);
  EXPECT_EQ(Got.text(), "bogus");
  // The connection survives an unknown handler (only protocol corruption
  // kills it).
  EXPECT_EQ(R.Srv->stats().RequestErrors, 1u);
}

TEST(Server, MalformedRequestAnswersBadRequest) {
  ServerRig R;
  // Raw connection: a well-formed frame whose payload is not a request.
  frame::Decoder D;
  std::optional<frame::Response> Got;
  R.Env.net().connect(7000, [&](TcpConnection *C) {
    ASSERT_NE(C, nullptr);
    C->setOnData([&D, &Got](const std::vector<uint8_t> &Bytes) {
      D.feed(Bytes);
      if (auto Payload = D.next())
        Got = frame::decodeResponse(*Payload);
    });
    C->send(frame::encode({})); // Empty payload: no handler name.
  });
  R.Env.loop().run();
  ASSERT_TRUE(Got.has_value());
  EXPECT_EQ(Got->S, frame::Status::BadRequest);
}

TEST(Server, CorruptStreamClosesTheConnection) {
  ServerRig R;
  bool Closed = false;
  R.Env.net().connect(7000, [&](TcpConnection *C) {
    ASSERT_NE(C, nullptr);
    C->setOnClose([&] { Closed = true; });
    C->send({0xff, 0xff, 0xff, 0xff}); // 4 GiB length prefix.
  });
  R.Env.loop().run();
  EXPECT_TRUE(Closed);
  EXPECT_EQ(R.Srv->stats().Active, 0u);
}

TEST(Server, PipelinedResponsesKeepRequestOrder) {
  ServerRig R;
  // "slow" completes long after "echo" would; the wire protocol has no
  // request ids, so the server must still respond in request order.
  R.Srv->router().handle(
      "slow", [&R](const frame::Request &, Router::RespondFn Respond) {
        R.Env.loop().scheduleAfter(
            [Respond = std::move(Respond)] {
              Respond(frame::Status::Ok, bytesOf("slow-done"));
            },
            browser::msToNs(10));
      });
  FrameClient C(R.Env.net());
  std::vector<std::string> Replies;
  C.connect(7000, [&](bool Ok) {
    ASSERT_TRUE(Ok);
    C.request("slow", {}, [&](frame::Response Resp) {
      Replies.push_back(Resp.text());
    });
    C.request("echo", bytesOf("fast"), [&](frame::Response Resp) {
      Replies.push_back(Resp.text());
      C.close();
    });
  });
  R.Env.loop().run();
  EXPECT_EQ(Replies,
            (std::vector<std::string>{"slow-done", "fast"}));
}

TEST(Server, ConnectionCapBackpressuresIntoBacklogAndRefusal) {
  Server::Config Cfg = testConfig();
  Cfg.MaxConnections = 2;
  Cfg.Backlog = 1;
  ServerRig R(Cfg);
  // Four clients: two accepted, one parked in the backlog, one refused.
  std::vector<std::unique_ptr<FrameClient>> Clients;
  int Connected = 0, ConnRefused = 0;
  std::string ThirdReply;
  for (int I = 0; I < 4; ++I)
    Clients.push_back(std::make_unique<FrameClient>(R.Env.net()));
  for (int I = 0; I < 4; ++I) {
    FrameClient &C = *Clients[I];
    R.Env.loop().scheduleAfter(
        [&, I] {
          C.connect(7000, [&, I](bool Ok) {
            Ok ? ++Connected : ++ConnRefused;
            if (!Ok)
              return;
            if (I == 2)
              // Queued behind the cap: this request is served only after
              // a slot frees up.
              C.request("echo", bytesOf("third"),
                        [&](frame::Response Resp) {
                          ThirdReply = Resp.text();
                          C.close();
                        });
          });
        },
        browser::usToNs(100) * (I + 1));
  }
  // Free a slot well after all four connects settled.
  R.Env.loop().scheduleAfter([&] { Clients[0]->close(); },
                             browser::msToNs(20));
  R.Env.loop().scheduleAfter([&] { Clients[1]->close(); },
                             browser::msToNs(30));
  R.Env.loop().run();
  EXPECT_EQ(Connected, 3); // Fabric-level accepts: 2 active + 1 queued.
  EXPECT_EQ(ConnRefused, 1);
  EXPECT_EQ(ThirdReply, "third");
  ServerStats S = R.Srv->stats();
  EXPECT_EQ(S.Accepted, 3u);
  EXPECT_EQ(S.Refused, 1u);
}

TEST(Server, IdleConnectionsAreReaped) {
  Server::Config Cfg = testConfig();
  Cfg.IdleTimeoutNs = browser::msToNs(5);
  ServerRig R(Cfg);
  FrameClient C(R.Env.net());
  bool ServerHungUp = false;
  C.setOnClose([&] { ServerHungUp = true; });
  C.connect(7000, [&](bool Ok) {
    ASSERT_TRUE(Ok);
    C.request("echo", bytesOf("x"), [](frame::Response) {});
    // ... then go quiet: the idle sweep should hang up on us, and the
    // loop must still terminate (the sweep disarms with no connections).
  });
  R.Env.loop().run();
  EXPECT_TRUE(ServerHungUp);
  ServerStats S = R.Srv->stats();
  EXPECT_EQ(S.IdleClosed, 1u);
  EXPECT_EQ(S.Active, 0u);
  EXPECT_EQ(S.RequestsServed, 1u);
}

TEST(Server, GracefulShutdownDrainsInFlightAndRefusesNewcomers) {
  ServerRig R;
  R.Srv->router().handle(
      "slow", [&R](const frame::Request &, Router::RespondFn Respond) {
        R.Env.loop().scheduleAfter(
            [Respond = std::move(Respond)] {
              Respond(frame::Status::Ok, bytesOf("drained-reply"));
            },
            browser::msToNs(10));
      });
  FrameClient A(R.Env.net());
  std::vector<std::string> Events;
  A.setOnClose([&] { Events.push_back("close"); });
  A.connect(7000, [&](bool Ok) {
    ASSERT_TRUE(Ok);
    A.request("slow", {}, [&](frame::Response Resp) {
      EXPECT_EQ(Resp.S, frame::Status::Ok);
      Events.push_back("reply:" + Resp.text());
    });
  });
  // Shut down while the slow request is in flight.
  R.Env.loop().scheduleAfter(
      [&] { R.Srv->shutdown([&] { Events.push_back("drained"); }); },
      browser::msToNs(2));
  // A latecomer during the drain is refused outright.
  FrameClient B(R.Env.net());
  bool LateRefused = false;
  R.Env.loop().scheduleAfter(
      [&] { B.connect(7000, [&](bool Ok) { LateRefused = !Ok; }); },
      browser::msToNs(4));
  R.Env.loop().run();
  // The server drains the moment its last response is on the wire; the
  // client sees that reply one network latency later, and the FIN only
  // after it (data-before-FIN). So: drained, then reply, then close.
  ASSERT_EQ(Events.size(), 3u);
  EXPECT_EQ(Events[0], "drained");
  EXPECT_EQ(Events[1], "reply:drained-reply");
  EXPECT_EQ(Events[2], "close");
  EXPECT_TRUE(LateRefused);
  EXPECT_FALSE(R.Srv->isRunning());
  EXPECT_EQ(R.Srv->stats().Active, 0u);
}

TEST(Server, ShutdownWhenIdleCompletesImmediately) {
  ServerRig R;
  bool Drained = false;
  R.Srv->shutdown([&] { Drained = true; });
  EXPECT_TRUE(Drained);
  R.Env.loop().run();
  EXPECT_EQ(R.Srv->stats().Active, 0u);
}

TEST(Server, ShutdownCancelsIdleSweepLeavingZeroPendingWork) {
  // A drained server must leave zero pending kernel work — including the
  // idle-sweep timer, which is armed the moment a connection exists. With
  // a 10-virtual-minute sweep, an uncancelled timer would idle the clock
  // all the way forward before the loop could finish.
  Server::Config Cfg = testConfig();
  Cfg.IdleTimeoutNs = browser::msToNs(600000);
  ServerRig R(Cfg);
  FrameClient C(R.Env.net());
  bool Drained = false;
  C.connect(7000, [&](bool Ok) {
    ASSERT_TRUE(Ok);
    C.request("echo", bytesOf("x"), [&](frame::Response Resp) {
      EXPECT_EQ(Resp.S, frame::Status::Ok);
      R.Srv->shutdown([&] { Drained = true; });
    });
  });
  R.Env.loop().run();
  EXPECT_TRUE(Drained);
  EXPECT_FALSE(R.Env.loop().nextEligibleNs().has_value());
  EXPECT_LT(R.Env.clock().nowNs(), Cfg.IdleTimeoutNs);
}

TEST(Server, DestroyWithArmedSweepLeavesZeroPendingWork) {
  // Abrupt teardown (the cluster's kill-shard path): destroying the
  // server with the sweep armed must cancel it, not leave a pending fire
  // that captures a dead `this`.
  Server::Config Cfg = testConfig();
  Cfg.IdleTimeoutNs = browser::msToNs(600000);
  ServerRig R(Cfg);
  FrameClient C(R.Env.net());
  C.connect(7000, [&](bool Ok) {
    ASSERT_TRUE(Ok);
    C.request("echo", bytesOf("x"), [&](frame::Response Resp) {
      EXPECT_EQ(Resp.S, frame::Status::Ok);
      C.close();
      R.Srv.reset();
    });
  });
  R.Env.loop().run();
  EXPECT_FALSE(R.Env.loop().nextEligibleNs().has_value());
  EXPECT_LT(R.Env.clock().nowNs(), Cfg.IdleTimeoutNs);
}

TEST(Server, ShutdownDuringDrainChainsCompletions) {
  ServerRig R;
  R.Srv->router().handle(
      "slow", [&R](const frame::Request &, Router::RespondFn Respond) {
        R.Env.loop().scheduleAfter(
            [Respond = std::move(Respond)] {
              Respond(frame::Status::Ok, {});
            },
            browser::msToNs(10));
      });
  FrameClient C(R.Env.net());
  C.connect(7000, [&](bool Ok) {
    ASSERT_TRUE(Ok);
    C.request("slow", {}, [](frame::Response) {});
  });
  std::vector<int> Fired;
  R.Env.loop().scheduleAfter(
      [&] { R.Srv->shutdown([&] { Fired.push_back(1); }); },
      browser::msToNs(2));
  // A second shutdown mid-drain joins the first: both callbacks fire once
  // the drain actually completes, in order.
  R.Env.loop().scheduleAfter(
      [&] { R.Srv->shutdown([&] { Fired.push_back(2); }); },
      browser::msToNs(4));
  R.Env.loop().run();
  EXPECT_EQ(Fired, (std::vector<int>{1, 2}));
  // And on a stopped server, shutdown completes immediately.
  bool Immediate = false;
  R.Srv->shutdown([&] { Immediate = true; });
  EXPECT_TRUE(Immediate);
}

//===----------------------------------------------------------------------===//
// Traffic generator and the §5.3 client stack
//===----------------------------------------------------------------------===//

TEST(Traffic, GeneratorCompletesAllRequestsAndDrains) {
  ServerRig R;
  workloads::TrafficConfig Cfg;
  Cfg.Port = 7000;
  Cfg.Clients = 5;
  Cfg.RequestsPerClient = 10;
  Cfg.Handler = "echo";
  Cfg.Bodies = {bytesOf("a"), bytesOf("bb")};
  workloads::TrafficGen Gen(R.Env, Cfg);
  bool Drained = false;
  Gen.start([&] { R.Srv->shutdown([&] { Drained = true; }); });
  R.Env.loop().run();
  const workloads::TrafficReport &Rep = Gen.report();
  EXPECT_TRUE(Gen.finished());
  EXPECT_EQ(Rep.Completed, 50u);
  EXPECT_EQ(Rep.Errors, 0u);
  EXPECT_EQ(Rep.ConnectFailures, 0u);
  EXPECT_EQ(Rep.LatenciesNs.size(), 50u);
  EXPECT_GT(Rep.requestsPerSecond(), 0.0);
  EXPECT_GE(Rep.p99Ns(), Rep.p50Ns());
  EXPECT_TRUE(Drained);
  ServerStats S = R.Srv->stats();
  EXPECT_EQ(S.Accepted, 5u);
  EXPECT_EQ(S.RequestsServed, 50u);
  EXPECT_EQ(S.Active, 0u);
  // Everything the server ever owned is gone from the fabric too.
  EXPECT_EQ(R.Env.net().liveConnections(), 0u);
}

TEST(Server, DoppioSocketReachesDoppiodThroughWebsockify) {
  // The full §5.3 client stack against the in-runtime server: DoppioSocket
  // -> WebSocket -> websockify bridge -> TCP -> doppiod. The guest frames
  // its request with the same codec; the server cannot tell it from a
  // native client.
  ServerRig R;
  WebsockifyProxy Proxy(R.Env.net(), 8080, 7000);
  DoppioSocket Sock(R.Env);
  frame::Decoder D;
  std::optional<frame::Response> Got;
  std::function<void()> RecvLoop = [&] {
    Sock.recv([&](ErrorOr<std::vector<uint8_t>> Msg) {
      ASSERT_TRUE(Msg.ok());
      if (Msg->empty())
        return; // EOF.
      D.feed(*Msg);
      if (auto Payload = D.next()) {
        Got = frame::decodeResponse(*Payload);
        Sock.close();
        return;
      }
      RecvLoop();
    });
  };
  Sock.connect(8080, [&](std::optional<ApiError> E) {
    ASSERT_FALSE(E.has_value());
    frame::Request Req{"file", bytesOf("/srv/hello.txt")};
    Sock.send(frame::encode(frame::encodeRequest(Req)),
              [](std::optional<ApiError>) {});
    RecvLoop();
  });
  R.Env.loop().run();
  ASSERT_TRUE(Got.has_value());
  EXPECT_EQ(Got->S, frame::Status::Ok);
  EXPECT_EQ(Got->text(), "hello from doppio fs");
  EXPECT_EQ(R.Srv->stats().RequestsServed, 1u);
}

} // namespace
