//===- tests/jvm/opcode_edge_test.cpp -------------------------------------==//
//
// Edge-of-the-instruction-set tests: the rarely-generated opcodes (jsr/
// ret, goto_w, the dup2 family over category-2 values, wide iinc), numeric
// conversion corner cases (NaN, clamping), and float comparison NaN
// variants — in both execution modes.
//
//===----------------------------------------------------------------------===//

#include "jvm_test_util.h"

#include "gtest/gtest.h"

#include <cmath>

using namespace doppio;
using namespace doppio::jvm;
using namespace doppio::testutil;

namespace {

MethodBuilder &mainOf(ClassBuilder &B) {
  return B.method(AccPublic | AccStatic, "main",
                  "([Ljava/lang/String;)V");
}

void printlnInt(MethodBuilder &M) {
  M.getstatic("java/lang/System", "out", "Ljava/io/PrintStream;")
      .op(Op::Swap)
      .invokevirtual("java/io/PrintStream", "println", "(I)V");
}

class EdgeModes : public ::testing::TestWithParam<ExecutionMode> {};

TEST_P(EdgeModes, JsrRetSubroutine) {
  // The finally-block pattern of pre-Java-6 compilers: call a subroutine
  // twice via jsr; it returns through ret.
  JvmRig Rig(GetParam());
  ClassBuilder B("Main");
  MethodBuilder &M = mainOf(B);
  MethodBuilder::Label Sub = M.newLabel(), After1 = M.newLabel(),
                       AfterAll = M.newLabel();
  // counter in local 1; subroutine adds 10.
  M.iconst(0).istore(1);
  M.branch(Op::Jsr, Sub).bind(After1).branch(Op::Jsr, Sub)
      .branch(Op::Goto, AfterAll);
  M.bind(Sub)
      .astore(2) // Return address into local 2.
      .iload(1)
      .iconst(10)
      .op(Op::Iadd)
      .istore(1)
      .retLocal(2);
  M.bind(AfterAll).iload(1);
  printlnInt(M);
  M.op(Op::Return);
  Rig.addClass(B);
  EXPECT_EQ(Rig.run("Main"), 0);
  EXPECT_EQ(Rig.out(), "20\n");
}

TEST_P(EdgeModes, WideGotoAndJsr) {
  JvmRig Rig(GetParam());
  ClassBuilder B("Main");
  MethodBuilder &M = mainOf(B);
  MethodBuilder::Label Target = M.newLabel(), Sub = M.newLabel(),
                       End = M.newLabel();
  M.branch(Op::GotoW, Target);
  // Subroutine: stores 5 into local 2 (side effects only; jsr
  // subroutines must leave the stack as they found it).
  M.bind(Sub).astore(1).iconst(5).istore(2).retLocal(1);
  M.bind(Target).branch(Op::JsrW, Sub).iload(2);
  printlnInt(M);
  M.bind(End).op(Op::Return);
  Rig.addClass(B);
  EXPECT_EQ(Rig.run("Main"), 0);
  EXPECT_EQ(Rig.out(), "5\n");
}

TEST_P(EdgeModes, Dup2FamilyOverLongs) {
  JvmRig Rig(GetParam());
  ClassBuilder B("Main");
  MethodBuilder &M = mainOf(B);
  // dup2 over a long: (J) -> (J, J); add them: 2*J.
  M.lconst(21).op(Op::Dup2).op(Op::Ladd).op(Op::L2i);
  printlnInt(M);
  // dup2_x1 with an int under a long: 7, 100L -> 100L, 7, 100L.
  // Consume the top copy with l2i, add: 7 + 100 = 107; the buried long
  // copy proves the reordering happened.
  M.iconst(7).lconst(100).op(Op::Dup2X1).op(Op::L2i).op(Op::Iadd);
  printlnInt(M);
  M.op(Op::Pop2); // The reordered long underneath.
  M.op(Op::Return);
  Rig.addClass(B);
  EXPECT_EQ(Rig.run("Main"), 0);
  EXPECT_EQ(Rig.out(), "42\n107\n");
}

TEST_P(EdgeModes, WideIincAndManyLocals) {
  JvmRig Rig(GetParam());
  ClassBuilder B("Main");
  MethodBuilder &M = mainOf(B);
  M.iconst(1000).istore(300); // Wide istore.
  M.iinc(300, 100);           // Narrow iinc on a wide slot -> wide iinc.
  M.iinc(5, 2000);            // Wide iinc via large delta.
  M.iload(300);
  printlnInt(M);
  M.iload(5);
  printlnInt(M);
  M.op(Op::Return);
  Rig.addClass(B);
  EXPECT_EQ(Rig.run("Main"), 0);
  EXPECT_EQ(Rig.out(), "1100\n2000\n");
}

TEST_P(EdgeModes, ConversionCornerCases) {
  JvmRig Rig(GetParam());
  ClassBuilder B("Main");
  MethodBuilder &M = mainOf(B);
  // (int) NaN == 0.
  M.dconst(std::nan("")).op(Op::D2i);
  printlnInt(M);
  // (int) 1e18 clamps to MAX_VALUE.
  M.dconst(1e18).op(Op::D2i);
  printlnInt(M);
  // (long) -1e30 clamps to MIN_VALUE; (MIN >>> 32) narrows to
  // 0x80000000, printed as the signed int MIN_VALUE.
  M.dconst(-1e30).op(Op::D2l).iconst(32).op(Op::Lushr).op(Op::L2i);
  printlnInt(M);
  // i2b sign-extends: (byte)200 == -56.
  M.iconst(200).op(Op::I2b);
  printlnInt(M);
  // i2c zero-extends: (char)-1 == 65535.
  M.iconst(-1).op(Op::I2c);
  printlnInt(M);
  // i2s: (short)70000 == 4464.
  M.iconst(70000).op(Op::I2s);
  printlnInt(M);
  M.op(Op::Return);
  Rig.addClass(B);
  EXPECT_EQ(Rig.run("Main"), 0);
  EXPECT_EQ(Rig.out(),
            "0\n2147483647\n-2147483648\n-56\n65535\n4464\n");
}

TEST_P(EdgeModes, FloatNaNComparisonVariants) {
  // fcmpl pushes -1 on NaN, fcmpg pushes +1: this is how javac compiles
  // < vs > so that NaN fails every comparison.
  JvmRig Rig(GetParam());
  ClassBuilder B("Main");
  MethodBuilder &M = mainOf(B);
  M.fconst(std::nanf("")).fconst(1.0f).op(Op::Fcmpl);
  printlnInt(M);
  M.fconst(std::nanf("")).fconst(1.0f).op(Op::Fcmpg);
  printlnInt(M);
  M.dconst(std::nan("")).dconst(1.0).op(Op::Dcmpl);
  printlnInt(M);
  M.dconst(std::nan("")).dconst(1.0).op(Op::Dcmpg);
  printlnInt(M);
  M.op(Op::Return);
  Rig.addClass(B);
  EXPECT_EQ(Rig.run("Main"), 0);
  EXPECT_EQ(Rig.out(), "-1\n1\n-1\n1\n");
}

TEST_P(EdgeModes, NegativeArrayAndDivisionOverflow) {
  JvmRig Rig(GetParam());
  ClassBuilder B("Main");
  MethodBuilder &M = mainOf(B);
  MethodBuilder::Label Start = M.newLabel(), End = M.newLabel(),
                       H = M.newLabel(), After = M.newLabel();
  M.bind(Start)
      .iconst(-3)
      .newarray(ArrayType::Int)
      .op(Op::Pop)
      .bind(End)
      .branch(Op::Goto, After)
      .bind(H)
      .op(Op::Pop)
      .iconst(11);
  printlnInt(M);
  M.bind(After);
  // MIN_VALUE / -1 wraps (no exception).
  M.iconst(INT32_MIN).iconst(-1).op(Op::Idiv);
  printlnInt(M);
  M.iconst(INT32_MIN).iconst(-1).op(Op::Irem);
  printlnInt(M);
  // Long MIN / -1 also wraps.
  M.lconst(INT64_MIN).lconst(-1).op(Op::Ldiv).iconst(63).op(Op::Lushr)
      .op(Op::L2i);
  printlnInt(M);
  M.op(Op::Return).handler(Start, End, H,
                           "java/lang/NegativeArraySizeException");
  Rig.addClass(B);
  EXPECT_EQ(Rig.run("Main"), 0);
  EXPECT_EQ(Rig.out(), "11\n-2147483648\n0\n1\n");
}

TEST_P(EdgeModes, LookupswitchWithNegativeKeys) {
  JvmRig Rig(GetParam());
  ClassBuilder B("Main");
  MethodBuilder &Pick = B.method(AccPublic | AccStatic, "pick", "(I)I");
  MethodBuilder::Label A = Pick.newLabel(), C = Pick.newLabel(),
                       D = Pick.newLabel();
  Pick.iload(0).lookupswitch(D, {{INT32_MIN, A}, {0, C}});
  Pick.bind(A).iconst(1).op(Op::Ireturn);
  Pick.bind(C).iconst(2).op(Op::Ireturn);
  Pick.bind(D).iconst(3).op(Op::Ireturn);
  MethodBuilder &M = mainOf(B);
  for (int32_t V : {INT32_MIN, 0, 5}) {
    M.iconst(V).invokestatic("Main", "pick", "(I)I");
    printlnInt(M);
  }
  M.op(Op::Return);
  Rig.addClass(B);
  EXPECT_EQ(Rig.run("Main"), 0);
  EXPECT_EQ(Rig.out(), "1\n2\n3\n");
}

TEST_P(EdgeModes, StringCharAtOutOfBoundsThrows) {
  JvmRig Rig(GetParam());
  ClassBuilder B("Main");
  MethodBuilder &M = mainOf(B);
  MethodBuilder::Label Start = M.newLabel(), End = M.newLabel(),
                       H = M.newLabel(), After = M.newLabel();
  M.bind(Start)
      .ldcString("abc")
      .iconst(9)
      .invokevirtual("java/lang/String", "charAt", "(I)C")
      .op(Op::Pop)
      .bind(End)
      .branch(Op::Goto, After)
      .bind(H)
      .op(Op::Pop)
      .iconst(-1);
  printlnInt(M);
  M.bind(After).op(Op::Return).handler(
      Start, End, H, "java/lang/StringIndexOutOfBoundsException");
  Rig.addClass(B);
  EXPECT_EQ(Rig.run("Main"), 0);
  EXPECT_EQ(Rig.out(), "-1\n");
}

INSTANTIATE_TEST_SUITE_P(Modes, EdgeModes,
                         ::testing::Values(ExecutionMode::DoppioJS,
                                           ExecutionMode::NativeHotspot),
                         [](const auto &Info) {
                           return std::string(
                               executionModeName(Info.param));
                         });

} // namespace
