//===- tests/jvm/fstrace_test.cpp -----------------------------------------==//
//
// Guards the §7.3 trace statistics that EXPERIMENTS.md reports, and the
// replay machinery the Figure 6 harness depends on.
//
//===----------------------------------------------------------------------===//

#include "workloads/fstrace.h"

#include "doppio/backends/in_memory.h"

#include "gtest/gtest.h"

using namespace doppio;
using namespace doppio::rt;
using namespace doppio::workloads;

namespace {

TEST(FsTrace, MatchesThePaperStatistics) {
  FsTrace T = makeJavacTrace();
  // §7.3: 3185 operations, 1560 unique files, over 10.5 MB read, ~97 KB
  // written.
  EXPECT_EQ(T.Ops.size(), 3185u);
  EXPECT_EQ(T.uniqueFiles(), 1560u);
  EXPECT_GE(T.ExpectedReadBytes, 10u * 1024 * 1024 + 512 * 1024);
  EXPECT_NEAR(static_cast<double>(T.ExpectedWriteBytes), 97.0 * 1024,
              2048.0);
}

TEST(FsTrace, TraceIsDeterministic) {
  FsTrace A = makeJavacTrace();
  FsTrace B = makeJavacTrace();
  ASSERT_EQ(A.Ops.size(), B.Ops.size());
  for (size_t I = 0; I != A.Ops.size(); ++I) {
    EXPECT_EQ(A.Ops[I].Path, B.Ops[I].Path);
    EXPECT_EQ(static_cast<int>(A.Ops[I].K), static_cast<int>(B.Ops[I].K));
  }
}

TEST(FsTrace, ReplaysWithoutErrors) {
  browser::BrowserEnv Env(browser::chromeProfile());
  Process Proc;
  fs::FileSystem Fs(Env, Proc,
                    std::make_unique<fs::InMemoryBackend>(Env));
  Suspender Susp(Env);
  FsTrace T = makeJavacTrace();
  ReplayStats S;
  bool Done = false;
  replayTrace(T, Fs, Env, Susp, [&](ReplayStats R) {
    S = R;
    Done = true;
  });
  ASSERT_TRUE(Done);
  EXPECT_EQ(S.Errors, 0u);
  EXPECT_EQ(S.Operations, T.Ops.size());
  EXPECT_EQ(S.BytesRead, T.ExpectedReadBytes);
  EXPECT_EQ(S.BytesWritten, T.ExpectedWriteBytes);
  EXPECT_GT(S.VirtualNs, 0u);
  // Every blocking call resumed through the suspender.
  EXPECT_GE(Susp.resumptionCount(), T.Ops.size());
}

TEST(FsTrace, ResumptionMechanismDominatesPerBrowserCost) {
  // The Figure 6 inversion in miniature: IE10's setImmediate makes the
  // same trace cheaper than Chrome's sendMessage path.
  auto ReplayNs = [](const browser::Profile &P) {
    browser::BrowserEnv Env(P);
    Process Proc;
    fs::FileSystem Fs(Env, Proc,
                      std::make_unique<fs::InMemoryBackend>(Env));
    Suspender Susp(Env);
    FsTrace T = makeJavacTrace();
    uint64_t Out = 0;
    replayTrace(T, Fs, Env, Susp,
                [&Out](ReplayStats R) { Out = R.VirtualNs; });
    return Out;
  };
  uint64_t Chrome = ReplayNs(browser::chromeProfile());
  uint64_t Ie10 = ReplayNs(browser::ie10Profile());
  uint64_t Ie8 = ReplayNs(browser::ie8Profile());
  EXPECT_LT(Ie10, Chrome) << "setImmediate beats sendMessage (§4.4)";
  EXPECT_GT(Ie8, 10 * Chrome) << "the 4 ms setTimeout clamp per call";
}

} // namespace
