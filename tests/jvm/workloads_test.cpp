//===- tests/jvm/workloads_test.cpp ---------------------------------------==//
//
// The §7.1 completeness claim in miniature: every benchmark workload runs
// unmodified to completion, and the DoppioJS system produces byte-for-byte
// the same output as the HotSpot-interpreter baseline (differential
// testing), on every browser profile.
//
//===----------------------------------------------------------------------===//

#include "workloads/workloads.h"

#include "jvm_test_util.h"

#include "gtest/gtest.h"

using namespace doppio;
using namespace doppio::jvm;
using namespace doppio::testutil;
using namespace doppio::workloads;

namespace {

/// Runs \p W in the given mode/browser; returns (exit code, stdout).
std::pair<int, std::string> runWorkload(const Workload &W,
                                        ExecutionMode Mode,
                                        const browser::Profile &P) {
  JvmRig Rig(Mode, P);
  publish(W, Rig.Env.server());
  int Code = Rig.run(W.MainClass, W.Args);
  EXPECT_EQ(Rig.err(), "") << W.Name;
  return {Code, Rig.out()};
}

struct NamedWorkload {
  const char *Name;
  Workload (*Make)();
};

Workload smallRecursive() { return makeRecursive(14, 5); }
Workload smallBinaryTrees() { return makeBinaryTrees(6); }
Workload smallNQueens() { return makeNQueens(6); }
Workload smallDeltaBlue() { return makeDeltaBlue(20, 10); }
Workload smallPiDigits() { return makePiDigits(30); }
Workload smallClassDump() { return makeClassDump(8); }
Workload smallMiniCompile() { return makeMiniCompile(4); }

class WorkloadDifferential
    : public ::testing::TestWithParam<NamedWorkload> {};

TEST_P(WorkloadDifferential, SameOutputInBothModes) {
  Workload W = GetParam().Make();
  auto [CodeJs, OutJs] =
      runWorkload(W, ExecutionMode::DoppioJS, browser::chromeProfile());
  auto [CodeNative, OutNative] = runWorkload(
      W, ExecutionMode::NativeHotspot, browser::chromeProfile());
  EXPECT_EQ(CodeJs, 0);
  EXPECT_EQ(CodeNative, 0);
  EXPECT_EQ(OutJs, OutNative) << W.Name;
  EXPECT_FALSE(OutJs.empty());
}

TEST_P(WorkloadDifferential, RunsOnEveryBrowser) {
  // §7.1: "DoppioJVM is able to successfully execute all of these
  // applications to completion" across the browsers.
  Workload W = GetParam().Make();
  std::string Reference;
  for (const browser::Profile &P : browser::allProfiles()) {
    auto [Code, Out] = runWorkload(W, ExecutionMode::DoppioJS, P);
    EXPECT_EQ(Code, 0) << W.Name << " on " << P.Name;
    if (Reference.empty())
      Reference = Out;
    else
      EXPECT_EQ(Out, Reference) << W.Name << " on " << P.Name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    All, WorkloadDifferential,
    ::testing::Values(NamedWorkload{"recursive", smallRecursive},
                      NamedWorkload{"binarytrees", smallBinaryTrees},
                      NamedWorkload{"nqueens", smallNQueens},
                      NamedWorkload{"deltablue", smallDeltaBlue},
                      NamedWorkload{"pidigits", smallPiDigits},
                      NamedWorkload{"classdump", smallClassDump},
                      NamedWorkload{"minicompile", smallMiniCompile}),
    [](const auto &Info) { return std::string(Info.param.Name); });

TEST(WorkloadOutputs, KnownAnswers) {
  // fib(14) = 377; tak(15,10,5) = 6? — verify against golden values.
  auto [C1, Recursive] = runWorkload(
      makeRecursive(14, 5), ExecutionMode::NativeHotspot,
      browser::chromeProfile());
  EXPECT_EQ(C1, 0);
  EXPECT_EQ(Recursive.substr(0, 4), "377\n");
  // nqueens(6) = 4 solutions, nqueens(8) = 92.
  auto [C2, Q6] = runWorkload(makeNQueens(6), ExecutionMode::NativeHotspot,
                              browser::chromeProfile());
  EXPECT_EQ(C2, 0);
  EXPECT_EQ(Q6, "4\n");
  auto [C3, Q8] = runWorkload(makeNQueens(8), ExecutionMode::NativeHotspot,
                              browser::chromeProfile());
  EXPECT_EQ(C3, 0);
  EXPECT_EQ(Q8, "92\n");
}

TEST(WorkloadOutputs, PiDigitsAreCorrect) {
  auto [Code, Out] = runWorkload(makePiDigits(25),
                                 ExecutionMode::NativeHotspot,
                                 browser::chromeProfile());
  EXPECT_EQ(Code, 0);
  EXPECT_EQ(Out.substr(0, 25), "3141592653589793238462643");
}

TEST(WorkloadOutputs, ClassDumpParsesEveryFile) {
  Workload W = makeClassDump(8);
  JvmRig Rig(ExecutionMode::NativeHotspot);
  publish(W, Rig.Env.server());
  EXPECT_EQ(Rig.run(W.MainClass), 0);
  // No "bad magic" lines; summary file lists all 8 entries.
  EXPECT_EQ(Rig.out().find("bad magic"), std::string::npos);
  std::string Summary = Rig.fileText("/data/classdump.out");
  int Lines = 0;
  for (char C : Summary)
    Lines += C == '\n';
  EXPECT_EQ(Lines, 8);
  EXPECT_NE(Summary.find("Gen0.class cp="), std::string::npos);
}

TEST(WorkloadOutputs, MiniCompileWritesBuildArtifacts) {
  Workload W = makeMiniCompile(4);
  JvmRig Rig(ExecutionMode::NativeHotspot);
  publish(W, Rig.Env.server());
  EXPECT_EQ(Rig.run(W.MainClass), 0);
  for (int I = 0; I != 4; ++I) {
    std::string OutFile =
        Rig.fileText("/data/build/Gen" + std::to_string(I) + ".src.out");
    EXPECT_EQ(OutFile.substr(0, 7), "tokens=") << I;
  }
}

TEST(WorkloadOutputs, ClassDumpIsFileHeavy) {
  // The javap analog's profile: many files, many reads (the Figure 6
  // trace source and the Safari-leak trigger).
  Workload W = makeClassDump(30);
  JvmRig Rig(ExecutionMode::DoppioJS);
  publish(W, Rig.Env.server());
  EXPECT_EQ(Rig.run(W.MainClass), 0);
  EXPECT_GE(Rig.Fs->stats().UniqueFilesTouched, 30u);
  EXPECT_GT(Rig.Fs->stats().BytesRead, 1000u);
  EXPECT_GT(Rig.Fs->stats().BytesWritten, 100u);
}

} // namespace
