//===- tests/jvm/verifier_test.cpp ----------------------------------------==//
//
// Structural verifier and disassembler tests: every class this repository
// synthesizes verifies cleanly; targeted corruptions are caught with
// specific diagnostics; malformed classes are rejected by the loader.
//
//===----------------------------------------------------------------------===//

#include "jvm/classfile/disasm.h"
#include "jvm/classfile/verifier.h"
#include "workloads/workloads.h"

#include "jvm_test_util.h"

#include "gtest/gtest.h"

using namespace doppio;
using namespace doppio::jvm;
using namespace doppio::testutil;

namespace {

/// A healthy class with branches, a switch, and a handler.
ClassFile healthyClass() {
  ClassBuilder B("v/Healthy");
  B.addDefaultConstructor();
  MethodBuilder &M = B.method(AccPublic | AccStatic, "f", "(I)I");
  MethodBuilder::Label L0 = M.newLabel(), L1 = M.newLabel(),
                       Def = M.newLabel(), Start = M.newLabel(),
                       End = M.newLabel(), H = M.newLabel();
  M.bind(Start)
      .iload(0)
      .tableswitch(Def, 0, {L0, L1})
      .bind(L0)
      .iconst(10)
      .op(Op::Ireturn)
      .bind(L1)
      .iconst(1)
      .iconst(0)
      .op(Op::Idiv)
      .op(Op::Ireturn)
      .bind(End)
      .bind(Def)
      .iconst(-1)
      .op(Op::Ireturn)
      .bind(H)
      .op(Op::Pop)
      .iconst(-2)
      .op(Op::Ireturn)
      .handler(Start, End, H, "java/lang/ArithmeticException");
  return B.build();
}

TEST(Verifier, AcceptsHealthyClasses) {
  std::vector<VerifyError> Errors = verifyClass(healthyClass());
  EXPECT_TRUE(Errors.empty()) << Errors.front().str();
}

TEST(Verifier, AcceptsEveryWorkloadClass) {
  using namespace doppio::workloads;
  for (Workload (*Make)() :
       {+[] { return makeRecursive(10, 4); },
        +[] { return makeBinaryTrees(4); }, +[] { return makeNQueens(5); },
        +[] { return makeDeltaBlue(8, 4); },
        +[] { return makePiDigits(10); },
        +[] { return makeClassDump(2); },
        +[] { return makeMiniCompile(2); }}) {
    Workload W = Make();
    for (const auto &[Name, Bytes] : W.Classes) {
      auto Cf = readClassFile(Bytes);
      ASSERT_TRUE(Cf.ok()) << Name;
      std::vector<VerifyError> Errors = verifyClass(*Cf);
      EXPECT_TRUE(Errors.empty())
          << Name << ": " << Errors.front().str();
    }
  }
}

/// Finds the first error message containing \p Needle.
bool hasError(const std::vector<VerifyError> &Errors,
              const std::string &Needle) {
  for (const VerifyError &E : Errors)
    if (E.str().find(Needle) != std::string::npos)
      return true;
  return false;
}

/// Builds f(I)I = { iload_0; ireturn } and applies \p Corrupt to its code.
ClassFile corrupted(const std::function<void(std::vector<uint8_t> &)>
                        &Corrupt) {
  ClassBuilder B("v/Bad");
  MethodBuilder &M = B.method(AccPublic | AccStatic, "f", "(I)I");
  M.iload(0).iconst(1).op(Op::Iadd).op(Op::Ireturn);
  ClassFile Cf = B.build();
  for (MemberInfo &Member : Cf.Methods)
    if (Member.Name == "f")
      Corrupt(Member.Code->Bytecode);
  return Cf;
}

TEST(Verifier, RejectsIllegalOpcode) {
  ClassFile Cf = corrupted([](std::vector<uint8_t> &Code) {
    Code[0] = 0xBA; // invokedynamic: not in spec 2.
  });
  EXPECT_TRUE(hasError(verifyClass(Cf), "illegal opcode"));
}

TEST(Verifier, RejectsTruncatedInstruction) {
  ClassFile Cf = corrupted([](std::vector<uint8_t> &Code) {
    Code.back() = 0x12; // ldc with its operand byte missing.
  });
  EXPECT_FALSE(verifyClass(Cf).empty());
}

TEST(Verifier, RejectsFallOffEnd) {
  ClassFile Cf = corrupted([](std::vector<uint8_t> &Code) {
    Code.back() = 0x00; // Replace ireturn with nop.
  });
  EXPECT_TRUE(hasError(verifyClass(Cf), "fall off the end"));
}

TEST(Verifier, RejectsBranchIntoOperands) {
  ClassBuilder B("v/BadBranch");
  MethodBuilder &M = B.method(AccPublic | AccStatic, "f", "()I");
  MethodBuilder::Label L = M.newLabel();
  M.iconst(0).branch(Op::Ifeq, L).iconst(200).op(Op::Ireturn).bind(L)
      .iconst(1).op(Op::Ireturn);
  ClassFile Cf = B.build();
  for (MemberInfo &Member : Cf.Methods) {
    if (Member.Name != "f")
      continue;
    // Redirect the branch into the middle of the sipush operand.
    Member.Code->Bytecode[2] = 0;
    Member.Code->Bytecode[3] = 5;
  }
  EXPECT_TRUE(hasError(verifyClass(Cf), "instruction boundary"));
}

TEST(Verifier, RejectsOutOfRangeLocals) {
  ClassFile Cf = corrupted([](std::vector<uint8_t> &Code) {
    Code[0] = 0x15; // iload ...
    Code[1] = 200;  // ... of a slot far beyond max_locals (1).
  });
  EXPECT_TRUE(hasError(verifyClass(Cf), "max_locals"));
}

TEST(Verifier, RejectsWrongConstantTag) {
  ClassBuilder B("v/BadLdc");
  MethodBuilder &M = B.method(AccPublic | AccStatic, "f", "()I");
  M.ldcString("text").op(Op::Pop).iconst(0).op(Op::Ireturn);
  ClassFile Cf = B.build();
  for (MemberInfo &Member : Cf.Methods)
    if (Member.Name == "f")
      Member.Code->Bytecode[0] = 0x14; // ldc2_w wants Long/Double.
  // The ldc index byte now reads as half of ldc2_w's u2 — either a bad
  // index or a wrong tag; both must be caught.
  EXPECT_FALSE(verifyClass(Cf).empty());
}

TEST(Verifier, RejectsBodylessMethod) {
  ClassFile Cf;
  Cf.ThisClass = "v/NoBody";
  Cf.SuperClass = "java/lang/Object";
  MemberInfo M;
  M.AccessFlags = AccPublic;
  M.Name = "f";
  M.Descriptor = "()V";
  Cf.Methods.push_back(M);
  EXPECT_TRUE(hasError(verifyClass(Cf), "without code"));
}

TEST(Verifier, LoaderRejectsCorruptClassFiles) {
  // End to end: a corrupt class served over the web must be refused at
  // load time and surface as NoClassDefFoundError (§6.4 + verifier).
  JvmRig Rig(ExecutionMode::DoppioJS);
  ClassFile Bad = corrupted(
      [](std::vector<uint8_t> &Code) { Code.back() = 0x00; });
  Rig.addClassBytes("v/Bad", writeClassFile(Bad));
  ClassBuilder Main("Main");
  MethodBuilder &M =
      Main.method(AccPublic | AccStatic, "main", "([Ljava/lang/String;)V");
  M.iconst(1)
      .invokestatic("v/Bad", "f", "(I)I")
      .op(Op::Pop)
      .op(Op::Return);
  Rig.addClass(Main);
  EXPECT_EQ(Rig.run("Main"), 1);
  EXPECT_NE(Rig.err().find("NoClassDefFoundError"), std::string::npos);
}

//===--------------------------------------------------------------------===//
// Disassembler
//===--------------------------------------------------------------------===//

TEST(Disassembler, ListsInstructionsWithResolvedConstants) {
  ClassFile Cf = healthyClass();
  std::string Text = disassembleClass(Cf);
  EXPECT_NE(Text.find("class v/Healthy extends java/lang/Object"),
            std::string::npos);
  EXPECT_NE(Text.find("Tableswitch"), std::string::npos);
  EXPECT_NE(Text.find("Idiv"), std::string::npos);
  EXPECT_NE(Text.find("catch ["), std::string::npos);
  EXPECT_NE(Text.find("java/lang/ArithmeticException"), std::string::npos);
}

TEST(Disassembler, ResolvesMemberAndStringConstants) {
  ClassBuilder B("v/Show");
  MethodBuilder &M = B.method(AccPublic | AccStatic, "go", "()V");
  M.getstatic("java/lang/System", "out", "Ljava/io/PrintStream;")
      .ldcString("hi there")
      .invokevirtual("java/io/PrintStream", "println",
                     "(Ljava/lang/String;)V")
      .op(Op::Return);
  std::string Text = disassembleClass(B.build());
  EXPECT_NE(Text.find("java/lang/System.out:Ljava/io/PrintStream;"),
            std::string::npos);
  EXPECT_NE(Text.find("String \"hi there\""), std::string::npos);
  EXPECT_NE(Text.find("java/io/PrintStream.println"), std::string::npos);
}

TEST(Disassembler, InstructionLengthHandlesVariableForms) {
  ClassFile Cf = healthyClass();
  const MemberInfo *F = Cf.findMethod("f", "(I)I");
  ASSERT_NE(F, nullptr);
  const std::vector<uint8_t> &Code = F->Code->Bytecode;
  // Walking by instructionLength must exactly cover the code array.
  uint32_t Pc = 0;
  int Count = 0;
  while (Pc < Code.size()) {
    uint32_t Len = instructionLength(Code, Pc);
    ASSERT_GT(Len, 0u) << "at pc " << Pc;
    Pc += Len;
    ++Count;
  }
  EXPECT_EQ(Pc, Code.size());
  EXPECT_GT(Count, 8);
}

TEST(Disassembler, RoundTripThroughWriterStaysReadable) {
  using namespace doppio::workloads;
  Workload W = makeRecursive(5, 3);
  auto Parsed = readClassFile(W.Classes[0].second);
  ASSERT_TRUE(Parsed.ok());
  std::string Text = disassembleClass(*Parsed);
  EXPECT_NE(Text.find("fib(I)I"), std::string::npos);
  EXPECT_NE(Text.find("tak(III)I"), std::string::npos);
  EXPECT_NE(Text.find("Invokestatic"), std::string::npos);
}

} // namespace
