//===- tests/jvm/dataflow_test.cpp ----------------------------------------==//
//
// Dataflow verifier tests (dataflow.h): forged methods are rejected with
// exact pc + diagnostic; every workload method analyzes clean; the loader
// threads the per-method Verified bit through; and check-elided execution
// is observably identical to guarded execution.
//
//===----------------------------------------------------------------------===//

#include "jvm/classfile/dataflow.h"
#include "jvm/classfile/disasm.h"
#include "jvm/classfile/verifier.h"
#include "jvm/classloader.h"
#include "jvm/klass.h"
#include "workloads/workloads.h"

#include "jvm_test_util.h"

#include "gtest/gtest.h"

#include <functional>

using namespace doppio;
using namespace doppio::jvm;
using namespace doppio::testutil;

namespace {

/// Builds a one-method class and analyzes that method.
MethodDataflow analyzeForged(
    const std::string &Desc,
    const std::function<void(MethodBuilder &)> &Forge) {
  ClassBuilder B("t/Forged");
  MethodBuilder &M = B.method(AccPublic | AccStatic, "f", Desc);
  Forge(M);
  ClassFile Cf = B.build();
  const MemberInfo *Target = Cf.findMethod("f", Desc);
  EXPECT_NE(Target, nullptr);
  return analyzeMethodDataflow(Cf, *Target);
}

//===--------------------------------------------------------------------===//
// Negative cases: each forged body must produce exactly the documented
// diagnostic, at the exact pc, with the right severity class.
//===--------------------------------------------------------------------===//

struct NegativeCase {
  const char *Name;
  const char *Desc;
  /// Emits the body; returns the pc the diagnostic must point at.
  std::function<uint32_t(MethodBuilder &)> Forge;
  const char *Message;
  bool MonitorOnly;
};

std::vector<NegativeCase> negativeCases() {
  return {
      {"stack-underflow", "()V",
       [](MethodBuilder &M) {
         M.rawOp(Op::Pop).rawOp(Op::Return);
         return 0u;
       },
       "stack underflow", false},

      {"stack-overflow", "()V",
       [](MethodBuilder &M) {
         // Two pushes against a forged max_stack of 1.
         M.iconst(0).iconst(0).rawOp(Op::Pop).rawOp(Op::Pop)
             .rawOp(Op::Return)
             .overrideMaxStack(1);
         return 1u; // The second iconst_0.
       },
       "stack overflow beyond max_stack 1", false},

      {"stack-type-confusion", "()I",
       [](MethodBuilder &M) {
         M.iconst(0).rawOp(Op::Arraylength).rawOp(Op::Ireturn);
         return 1u;
       },
       "expected reference on stack, found int", false},

      {"two-slot-split", "()V",
       [](MethodBuilder &M) {
         M.lconst(0).rawOp(Op::Pop).rawOp(Op::Return);
         return 1u; // pop on the long's trailing slot.
       },
       "pop splits a two-slot value on the stack", false},

      {"local-type-confusion", "(F)V",
       [](MethodBuilder &M) {
         // iload of the float parameter in slot 0.
         M.rawOp(Op::Iload0).rawOp(Op::Pop).rawOp(Op::Return)
             .overrideMaxStack(1)
             .overrideMaxLocals(1);
         return 0u;
       },
       "local 0 holds float but iload needs int", false},

      {"local-out-of-range", "()V",
       [](MethodBuilder &M) {
         M.rawOp(Op::Iload).rawU1(7).rawOp(Op::Pop).rawOp(Op::Return)
             .overrideMaxStack(1)
             .overrideMaxLocals(1);
         return 0u;
       },
       "local 7 exceeds max_locals 1", false},

      {"return-type-mismatch", "()I",
       [](MethodBuilder &M) {
         M.rawOp(Op::Return);
         return 0u;
       },
       "return in a method returning I", false},

      {"monitorexit-unheld", "(Ljava/lang/Object;)V",
       [](MethodBuilder &M) {
         M.aload(0).rawOp(Op::Monitorexit).rawOp(Op::Return);
         return 1u;
       },
       "monitorexit with no monitor held", true},

      {"return-holding-monitor", "(Ljava/lang/Object;)V",
       [](MethodBuilder &M) {
         M.aload(0).rawOp(Op::Monitorenter).rawOp(Op::Return);
         return 2u;
       },
       "returns while 1 monitor(s) still held", true},
  };
}

TEST(Dataflow, RejectsForgedBodiesWithExactDiagnostics) {
  for (const NegativeCase &C : negativeCases()) {
    uint32_t ExpectedPc = 0;
    MethodDataflow Flow = analyzeForged(
        C.Desc, [&](MethodBuilder &M) { ExpectedPc = C.Forge(M); });
    SCOPED_TRACE(C.Name);
    EXPECT_FALSE(Flow.Ok);
    ASSERT_FALSE(Flow.Errors.empty());
    const VerifyError &E = Flow.Errors.front();
    EXPECT_EQ(E.Pc, ExpectedPc);
    EXPECT_EQ(E.Message, C.Message);
    EXPECT_EQ(E.MonitorOnly, C.MonitorOnly);
    EXPECT_EQ(E.Method, std::string("f") + C.Desc);
  }
}

TEST(Dataflow, RejectsInconsistentMergeAtExactPc) {
  // One branch leaves an int on the stack, the other a float; the merge
  // point is diagnosed at the join pc with both types named.
  ClassBuilder B("t/BadMerge");
  MethodBuilder &M = B.method(AccPublic | AccStatic, "f", "(I)F");
  MethodBuilder::Label L1 = M.newLabel(), L2 = M.newLabel();
  M.iload(0).branch(Op::Ifeq, L1).iconst(3).branch(Op::Goto, L2).bind(L1)
      .fconst(1.0f);
  uint32_t MergePc = static_cast<uint32_t>(M.codeSize());
  M.bind(L2).rawOp(Op::Freturn);
  ClassFile Cf = B.build();
  MethodDataflow Flow = analyzeMethodDataflow(Cf, Cf.Methods.front());
  EXPECT_FALSE(Flow.Ok);
  ASSERT_FALSE(Flow.Errors.empty());
  // The lower-pc path (goto, carrying the int) reaches the join first in
  // the deterministic worklist, so the diagnostic reads "(int vs float)".
  EXPECT_EQ(Flow.Errors.front().Pc, MergePc);
  EXPECT_EQ(Flow.Errors.front().Message,
            "stack type mismatch at merge slot 0 (int vs float)");
}

TEST(Dataflow, MonitorDiagnosticsDoNotRejectTheClass) {
  ClassBuilder B("t/Mon");
  B.addDefaultConstructor();
  MethodBuilder &M =
      B.method(AccPublic | AccStatic, "hold", "(Ljava/lang/Object;)V");
  M.aload(0).rawOp(Op::Monitorenter).rawOp(Op::Return);
  ClassFile Cf = B.build();
  std::vector<VerifyError> Errors = verifyClass(Cf);
  ASSERT_FALSE(Errors.empty());
  for (const VerifyError &E : Errors)
    EXPECT_TRUE(E.MonitorOnly) << E.str();
  EXPECT_FALSE(rejectsClass(Errors));
}

TEST(Dataflow, HardErrorsRejectTheClass) {
  ClassBuilder B("t/Under");
  MethodBuilder &M = B.method(AccPublic | AccStatic, "f", "()V");
  M.rawOp(Op::Pop).rawOp(Op::Return);
  std::vector<VerifyError> Errors = verifyClass(B.build());
  ASSERT_FALSE(Errors.empty());
  EXPECT_TRUE(rejectsClass(Errors));
  EXPECT_EQ(Errors.front().str(), "f()V @0: stack underflow");
}

//===--------------------------------------------------------------------===//
// Positive cases
//===--------------------------------------------------------------------===//

TEST(Dataflow, EveryWorkloadMethodAnalyzesClean) {
  using namespace doppio::workloads;
  for (Workload (*Make)() :
       {+[] { return makeRecursive(10, 4); },
        +[] { return makeBinaryTrees(4); }, +[] { return makeNQueens(5); },
        +[] { return makeDeltaBlue(8, 4); },
        +[] { return makePiDigits(10); },
        +[] { return makeClassDump(2); },
        +[] { return makeMiniCompile(2); }}) {
    Workload W = Make();
    for (const auto &[Name, Bytes] : W.Classes) {
      auto Cf = readClassFile(Bytes);
      ASSERT_TRUE(Cf.ok()) << Name;
      for (const MemberInfo &M : Cf->Methods) {
        if (!M.Code)
          continue;
        MethodDataflow Flow = analyzeMethodDataflow(*Cf, M);
        EXPECT_TRUE(Flow.Ok)
            << Name << " " << M.Name << M.Descriptor << ": "
            << (Flow.Errors.empty() ? std::string("<no diagnostic>")
                                    : Flow.Errors.front().str());
        // The fixpoint reached the entry point at minimum.
        EXPECT_FALSE(Flow.In.empty()) << Name << " " << M.Name;
        EXPECT_EQ(Flow.In.begin()->first, 0u);
      }
    }
  }
}

TEST(Dataflow, EntryStateTypesParametersSlotExactly) {
  ClassBuilder B("t/Entry");
  MethodBuilder &M = B.method(AccPublic | AccStatic, "f", "(IJF)V");
  M.op(Op::Return);
  ClassFile Cf = B.build();
  MethodDataflow Flow = analyzeMethodDataflow(Cf, Cf.Methods.front());
  ASSERT_TRUE(Flow.Ok);
  ASSERT_TRUE(Flow.In.count(0));
  const FrameState &Entry = Flow.In.at(0);
  ASSERT_GE(Entry.Locals.size(), 4u); // int + long (2 slots) + float.
  EXPECT_EQ(Entry.Locals[0], VType::Int);
  EXPECT_EQ(Entry.Locals[1], VType::Long);
  EXPECT_EQ(Entry.Locals[2], VType::LongHi);
  EXPECT_EQ(Entry.Locals[3], VType::Float);
  EXPECT_TRUE(Entry.Stack.empty());
  EXPECT_EQ(Entry.MonitorDepth, 0);
}

TEST(Dataflow, DisassemblerAnnotatesInferredStates) {
  ClassBuilder B("t/Annot");
  MethodBuilder &M = B.method(AccPublic | AccStatic, "f", "(I)I");
  M.iload(0).lconst(7).op(Op::Pop2).op(Op::Ireturn)
      .rawOp(Op::Return); // Dead code past the return.
  ClassFile Cf = B.build();
  const MemberInfo &Target = Cf.Methods.front();
  MethodDataflow Flow = analyzeMethodDataflow(Cf, Target);
  ASSERT_TRUE(Flow.Ok);
  std::string Text = disassembleMethod(Cf, Target, &Flow);
  // Entry state: empty stack; after lconst the stack holds the int plus
  // the two-slot long ("I J=").
  EXPECT_NE(Text.find("; []"), std::string::npos) << Text;
  EXPECT_NE(Text.find("[I J=]"), std::string::npos) << Text;
  EXPECT_NE(Text.find("<unreachable>"), std::string::npos) << Text;
}

//===--------------------------------------------------------------------===//
// Loader integration: Verified bit, rejection, and MonitorOnly demotion.
//===--------------------------------------------------------------------===//

TEST(Dataflow, LoaderRejectsDataflowInvalidClass) {
  JvmRig Rig(ExecutionMode::DoppioJS);
  ClassBuilder Bad("t/Under");
  Bad.method(AccPublic | AccStatic, "f", "()V")
      .rawOp(Op::Pop)
      .rawOp(Op::Return);
  Rig.addClassBytes("t/Under", Bad.bytes());
  ClassBuilder Main("Main");
  Main.method(AccPublic | AccStatic, "main", "([Ljava/lang/String;)V")
      .invokestatic("t/Under", "f", "()V")
      .op(Op::Return);
  Rig.addClass(Main);
  EXPECT_EQ(Rig.run("Main"), 1);
  EXPECT_NE(Rig.err().find("NoClassDefFoundError"), std::string::npos)
      << Rig.err();
  EXPECT_NE(Rig.err().find("t/Under"), std::string::npos) << Rig.err();
}

TEST(Dataflow, LoaderMarksVerifiedAndDemotesMonitorOnly) {
  JvmRig Rig(ExecutionMode::DoppioJS);
  // t/Mon.hold leaks a monitor (MonitorOnly diagnostic): the class still
  // loads, but that one method runs guarded.
  ClassBuilder Mon("t/Mon");
  Mon.method(AccPublic | AccStatic, "hold", "(Ljava/lang/Object;)V")
      .aload(0)
      .rawOp(Op::Monitorenter)
      .rawOp(Op::Return);
  Mon.method(AccPublic | AccStatic, "clean", "(I)I")
      .iload(0)
      .op(Op::Ireturn);
  Rig.addClassBytes("t/Mon", Mon.bytes());
  ClassBuilder Main("Main");
  Main.method(AccPublic | AccStatic, "main", "([Ljava/lang/String;)V")
      .anew("java/lang/Object")
      .op(Op::Dup)
      .invokespecial("java/lang/Object", "<init>", "()V")
      .invokestatic("t/Mon", "hold", "(Ljava/lang/Object;)V")
      .iconst(5)
      .invokestatic("t/Mon", "clean", "(I)I")
      .op(Op::Pop)
      .op(Op::Return);
  Rig.addClass(Main);
  ASSERT_EQ(Rig.run("Main"), 0) << Rig.err();

  Klass *MonK = Rig.vm().loader().lookup("t/Mon");
  ASSERT_NE(MonK, nullptr);
  for (const auto &M : MonK->Methods) {
    if (M->key() == "hold(Ljava/lang/Object;)V")
      EXPECT_FALSE(M->Verified);
    if (M->key() == "clean(I)I")
      EXPECT_TRUE(M->Verified);
  }
  Klass *MainK = Rig.vm().loader().lookup("Main");
  ASSERT_NE(MainK, nullptr);
  for (const auto &M : MainK->Methods)
    if (M->key() == "main([Ljava/lang/String;)V")
      EXPECT_TRUE(M->Verified);
}

//===--------------------------------------------------------------------===//
// Check-elision differential: trusted and guarded execution must be
// observably identical on real programs.
//===--------------------------------------------------------------------===//

TEST(Dataflow, ElisionOnAndOffProduceIdenticalRuns) {
  using namespace doppio::workloads;
  for (Workload (*Make)() : {+[] { return makeRecursive(8, 4); },
                             +[] { return makePiDigits(12); }}) {
    Workload W = Make();
    std::string Outs[2];
    int Exits[2];
    for (int Trust = 0; Trust != 2; ++Trust) {
      JvmRig Rig(ExecutionMode::DoppioJS);
      workloads::publish(W, Rig.Env.server());
      Rig.Options.Exec.TrustVerifier = Trust == 1;
      Exits[Trust] = Rig.run(W.MainClass, W.Args);
      Outs[Trust] = Rig.out();
    }
    EXPECT_EQ(Exits[0], Exits[1]) << W.Name;
    EXPECT_EQ(Outs[0], Outs[1]) << W.Name;
    EXPECT_FALSE(Outs[1].empty()) << W.Name;
  }
}

TEST(Dataflow, TrustVerifierEnvOverrideIsHonored) {
  // DOPPIO_JVM_TRUST_VERIFIER=0 forces guarded execution even with the
  // default options.
  setenv("DOPPIO_JVM_TRUST_VERIFIER", "0", 1);
  {
    JvmRig Rig(ExecutionMode::DoppioJS);
    EXPECT_FALSE(Rig.vm().trustVerifier());
  }
  unsetenv("DOPPIO_JVM_TRUST_VERIFIER");
  {
    JvmRig Rig(ExecutionMode::DoppioJS);
    EXPECT_TRUE(Rig.vm().trustVerifier());
  }
}

} // namespace
