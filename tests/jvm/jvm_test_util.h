//===- tests/jvm/jvm_test_util.h - Test rig for DoppioJVM --------*- C++ -*-==//
//
// A complete simulated deployment for JVM tests: class files produced by
// the assembler are published on the simulated web server; the file system
// mounts an XHR backend at /classes (lazy class downloads, §6.4) over an
// in-memory root; the JVM runs inside the browser environment in either
// execution mode.
//
//===----------------------------------------------------------------------===//

#ifndef DOPPIO_TESTS_JVM_JVM_TEST_UTIL_H
#define DOPPIO_TESTS_JVM_JVM_TEST_UTIL_H

#include "doppio/backends/in_memory.h"
#include "doppio/backends/mountable.h"
#include "doppio/backends/xhr_fs.h"
#include "doppio/fs.h"
#include "jvm/interpreter.h"
#include "jvm/jvm.h"

#include <memory>
#include <string>

namespace doppio {
namespace testutil {

class JvmRig {
public:
  explicit JvmRig(jvm::ExecutionMode Mode,
                  const browser::Profile &P = browser::chromeProfile())
      : Env(P), Mode(Mode) {}

  /// Publishes a class on the web server's /classes tree.
  void addClass(jvm::ClassBuilder &B) {
    Env.server().addFile("/classes/" + B.name() + ".class", B.bytes());
  }

  void addClassBytes(const std::string &Name, std::vector<uint8_t> Bytes) {
    Env.server().addFile("/classes/" + Name + ".class", std::move(Bytes));
  }

  /// The file system and VM, constructed on first use (after all classes
  /// are published, since the XHR index is built at mount time).
  jvm::Jvm &vm() {
    if (!TheVm) {
      auto RootBackend = std::make_unique<rt::fs::InMemoryBackend>(Env);
      Root = RootBackend.get();
      auto Mounted = std::make_unique<rt::fs::MountableFileSystem>(
          std::move(RootBackend));
      Mounted->mount("/classes",
                     std::make_unique<rt::fs::XhrBackend>(Env, "/classes"));
      // Read-only program inputs (game assets, class libraries to dump)
      // are served from the origin server; /data stays writable.
      Mounted->mount("/srv",
                     std::make_unique<rt::fs::XhrBackend>(Env, "/srv"));
      Fs = std::make_unique<rt::fs::FileSystem>(Env, Proc,
                                                std::move(Mounted));
      Options.Mode = Mode;
      TheVm = std::make_unique<jvm::Jvm>(Env, *Fs, Proc, Options);
    }
    return *TheVm;
  }

  /// Runs main and returns the exit code (asserting the loop drained).
  int run(const std::string &MainClass,
          const std::vector<std::string> &Args = {}) {
    return vm().runMainToCompletion(MainClass, Args);
  }

  const std::string &out() { return Proc.capturedStdout(); }
  const std::string &err() { return Proc.capturedStderr(); }

  /// Seeds a file in the in-memory root (program input data).
  void seedFile(const std::string &Path, const std::string &Text) {
    vm();
    Root->seedFile(Path, std::vector<uint8_t>(Text.begin(), Text.end()));
  }

  std::string fileText(const std::string &Path) {
    vm();
    const std::vector<uint8_t> *B = Root->contents(Path);
    return B ? std::string(B->begin(), B->end()) : "<missing>";
  }

  browser::BrowserEnv Env;
  rt::Process Proc;
  jvm::ExecutionMode Mode;
  /// Construction options; adjust before the first vm()/run() call (Mode
  /// is overwritten from the constructor argument).
  jvm::JvmOptions Options;
  std::unique_ptr<rt::fs::FileSystem> Fs;
  rt::fs::InMemoryBackend *Root = nullptr;
  std::unique_ptr<jvm::Jvm> TheVm;
};

} // namespace testutil
} // namespace doppio

#endif // DOPPIO_TESTS_JVM_JVM_TEST_UTIL_H
