//===- tests/jvm/analysis_test.cpp ----------------------------------------==//
//
// The suspend-placement analysis (jvm/classfile/analysis.h, DESIGN.md
// §17): CFG/loop structure, proof statuses on every degrade shape the
// pass must refuse (jsr/ret, irreducible loops, exception- and
// fall-through-carried cycles), and the run-time differential — the
// three SuspendCheckMode settings must produce bit-identical output
// while Placed mode executes a fraction of Everywhere's checks and
// never exceeds the proven bound.
//
//===----------------------------------------------------------------------===//

#include "jvm_test_util.h"

#include "jvm/classfile/analysis.h"
#include "workloads/workloads.h"

#include "gtest/gtest.h"

using namespace doppio;
using namespace doppio::jvm;
using namespace doppio::testutil;

namespace {

/// Builds a class with one static method "m()V" assembled by \p Body and
/// returns the analysis of that method.
template <typename Fn> MethodAnalysis analyzeBuilt(Fn Body) {
  ClassBuilder B("A");
  MethodBuilder &M = B.method(AccPublic | AccStatic, "m", "()V");
  Body(M);
  ClassFile Cf = B.build();
  for (const MemberInfo &Mi : Cf.Methods)
    if (Mi.Name == "m")
      return analyzeMethod(Cf, Mi);
  return MethodAnalysis();
}

//===----------------------------------------------------------------------===//
// Proof structure
//===----------------------------------------------------------------------===//

TEST(Analysis, StraightLineProves) {
  MethodAnalysis A = analyzeBuilt([](MethodBuilder &M) {
    M.iconst(1).istore(0).iinc(0, 41).op(Op::Return);
  });
  ASSERT_EQ(A.Status, AnalysisStatus::Proved) << A.Detail;
  EXPECT_EQ(A.Blocks.size(), 1u);
  EXPECT_TRUE(A.Loops.empty());
  EXPECT_EQ(A.KeptBranchSites, 0u);
  // The whole method is one span, terminated by the return's check.
  EXPECT_EQ(A.BoundK, 4u);
}

TEST(Analysis, CountedLoopKeepsOnlyTheBackEdge) {
  MethodAnalysis A = analyzeBuilt([](MethodBuilder &M) {
    MethodBuilder::Label Loop = M.newLabel(), Done = M.newLabel();
    M.iconst(100).istore(0);
    M.bind(Loop).iload(0).branch(Op::Ifle, Done); // Forward exit: elided.
    M.iinc(0, -1).branch(Op::Goto, Loop);         // Back edge: kept.
    M.bind(Done).op(Op::Return);
  });
  ASSERT_EQ(A.Status, AnalysisStatus::Proved) << A.Detail;
  ASSERT_EQ(A.Loops.size(), 1u);
  EXPECT_EQ(A.Loops[0].Depth, 1u);
  EXPECT_EQ(A.KeptBranchSites, 1u);
  EXPECT_EQ(A.ElidedBranchSites, 1u);
  // The kept bit sits on the goto (the loop's only back-edge branch).
  uint32_t Kept = 0;
  for (size_t Pc = 0; Pc != A.KeepCheck.size(); ++Pc)
    if (A.KeepCheck[Pc])
      ++Kept;
  EXPECT_EQ(Kept, 1u);
  // One iteration of the loop is the longest check-free path.
  EXPECT_GT(A.BoundK, 0u);
  EXPECT_LE(A.BoundK, 10u);
}

TEST(Analysis, NestedLoopsNestDepths) {
  MethodAnalysis A = analyzeBuilt([](MethodBuilder &M) {
    MethodBuilder::Label OuterLoop = M.newLabel(), OuterDone = M.newLabel();
    MethodBuilder::Label InnerLoop = M.newLabel(), InnerDone = M.newLabel();
    M.iconst(10).istore(0);
    M.bind(OuterLoop).iload(0).branch(Op::Ifle, OuterDone);
    M.iconst(10).istore(1);
    M.bind(InnerLoop).iload(1).branch(Op::Ifle, InnerDone);
    M.iinc(1, -1).branch(Op::Goto, InnerLoop);
    M.bind(InnerDone).iinc(0, -1).branch(Op::Goto, OuterLoop);
    M.bind(OuterDone).op(Op::Return);
  });
  ASSERT_EQ(A.Status, AnalysisStatus::Proved) << A.Detail;
  ASSERT_EQ(A.Loops.size(), 2u);
  // Loops are sorted by header pc: outer first, inner nested inside it.
  EXPECT_EQ(A.Loops[0].Depth, 1u);
  EXPECT_EQ(A.Loops[1].Depth, 2u);
  EXPECT_EQ(A.KeptBranchSites, 2u);
  EXPECT_GT(A.Loops[0].BodyBlocks.size(), A.Loops[1].BodyBlocks.size());
}

TEST(Analysis, UnreachableCodeIsCountedNotFatal) {
  MethodAnalysis A = analyzeBuilt([](MethodBuilder &M) {
    MethodBuilder::Label Live = M.newLabel();
    M.branch(Op::Goto, Live);
    M.iconst(1).istore(0); // Dead: jumped over, never entered.
    M.bind(Live).op(Op::Return);
  });
  ASSERT_EQ(A.Status, AnalysisStatus::Proved) << A.Detail;
  EXPECT_GT(A.UnreachableBlocks, 0u);
}

//===----------------------------------------------------------------------===//
// Degrade shapes: the pass must refuse, never misprove
//===----------------------------------------------------------------------===//

TEST(Analysis, IrreducibleLoopDegrades) {
  // Entry jumps into the middle of a cycle, so the cycle has two entries
  // and its retreating edge's target dominates nothing.
  MethodAnalysis A = analyzeBuilt([](MethodBuilder &M) {
    MethodBuilder::Label L1 = M.newLabel(), L2 = M.newLabel();
    M.iconst(10).istore(0);
    M.iload(0).branch(Op::Ifne, L2); // Into the middle of the cycle.
    M.bind(L1).iinc(0, -1);
    M.bind(L2).iload(0).branch(Op::Ifgt, L1); // Retreating, undominated.
    M.op(Op::Return);
  });
  EXPECT_EQ(A.Status, AnalysisStatus::Irreducible) << A.Detail;
  EXPECT_FALSE(A.Detail.empty());
}

TEST(Analysis, FallthroughBackEdgeDegrades) {
  // The loop-closing edge is straight-line fall-through (the block ends
  // in iinc, not a branch): there is no branch site to instrument.
  MethodAnalysis A = analyzeBuilt([](MethodBuilder &M) {
    MethodBuilder::Label Body = M.newLabel(), Header = M.newLabel();
    M.iconst(10).istore(0);
    M.branch(Op::Goto, Header);
    M.bind(Body).iinc(0, -1); // Falls through into the header: back edge.
    M.bind(Header).iload(0).branch(Op::Ifgt, Body);
    M.op(Op::Return);
  });
  EXPECT_EQ(A.Status, AnalysisStatus::FallthroughBackEdge) << A.Detail;
}

TEST(Analysis, JsrRetDegrades) {
  // jsr/ret subroutines: return addresses are data; the static CFG is
  // incomplete, so no placement claim may be made (degrade, never
  // miscount).
  MethodAnalysis A = analyzeBuilt([](MethodBuilder &M) {
    MethodBuilder::Label Sub = M.newLabel(), After = M.newLabel();
    M.branch(Op::Jsr, Sub);
    M.bind(After).op(Op::Return);
    M.bind(Sub).astore(0);
    M.retLocal(0);
  });
  EXPECT_EQ(A.Status, AnalysisStatus::JsrRet) << A.Detail;
}

TEST(Analysis, ExceptionCarriedCycleDegrades) {
  // The only path back to the loop head is the exception edge
  // (athrow -> handler at an already-visited pc): no branch anchors the
  // iteration, so the proof refuses.
  MethodAnalysis A = analyzeBuilt([](MethodBuilder &M) {
    MethodBuilder::Label Head = M.newLabel(), Done = M.newLabel();
    MethodBuilder::Label TryStart = M.newLabel(), TryEnd = M.newLabel();
    M.iconst(3).istore(0);
    M.aconstNull(); // Both entries to Head carry one ref on the stack.
    M.bind(Head).op(Op::Pop);
    M.iload(0).branch(Op::Ifle, Done); // Forward exit.
    M.iinc(0, -1);
    M.bind(TryStart);
    M.anew("java/lang/RuntimeException")
        .op(Op::Dup)
        .invokespecial("java/lang/RuntimeException", "<init>", "()V")
        .op(Op::Athrow);
    M.bind(TryEnd);
    M.handler(TryStart, TryEnd, Head, "java/lang/RuntimeException");
    M.bind(Done).op(Op::Return);
  });
  EXPECT_EQ(A.Status, AnalysisStatus::ExceptionBackEdge) << A.Detail;
}

TEST(Analysis, UnverifiedCodeMakesNoClaim) {
  // Same bytes as a provable loop, but the verifier verdict is negative:
  // decoded boundaries cannot be trusted, so no placement claim.
  ClassBuilder B("A");
  MethodBuilder &M = B.method(AccPublic | AccStatic, "m", "()V");
  MethodBuilder::Label Loop = M.newLabel(), Done = M.newLabel();
  M.iconst(3).istore(0);
  M.bind(Loop).iload(0).branch(Op::Ifle, Done);
  M.iinc(0, -1).branch(Op::Goto, Loop);
  M.bind(Done).op(Op::Return);
  ClassFile Cf = B.build();
  for (const MemberInfo &Mi : Cf.Methods)
    if (Mi.Name == "m") {
      MethodAnalysis A =
          analyzeCode(Mi.Code->Bytecode, Mi.Code->Handlers,
                      /*Verified=*/false);
      EXPECT_EQ(A.Status, AnalysisStatus::Unverified);
    }
}

//===----------------------------------------------------------------------===//
// Run-time differential: modes agree on output, disagree on check count
//===----------------------------------------------------------------------===//

struct ModeRun {
  int Exit;
  std::string Out;
  uint64_t Executed;
  uint64_t Elided;
  uint64_t MaxSpan;
  uint64_t ProvenBound;
};

ModeRun runWorkload(const workloads::Workload &W, SuspendCheckMode Mode) {
  JvmRig Rig(ExecutionMode::DoppioJS);
  workloads::publish(W, Rig.Env.server());
  Rig.Options.Exec.SuspendChecks = Mode;
  ModeRun R;
  R.Exit = Rig.run(W.MainClass, W.Args);
  R.Out = Rig.out();
  R.Executed = Rig.vm().suspendChecksExecuted();
  R.Elided = Rig.vm().suspendChecksElided();
  R.MaxSpan = Rig.vm().stats().MaxOpsBetweenChecks;
  R.ProvenBound = Rig.vm().loader().provenBoundMax();
  return R;
}

TEST(Analysis, ModesAgreeOnOutputAndPlacedElides) {
  std::vector<workloads::Workload> All = workloads::figure3Workloads();
  All.push_back(workloads::makeDeltaBlue(20, 40));
  All.push_back(workloads::makePiDigits(60));
  for (const workloads::Workload &W : All) {
    SCOPED_TRACE(W.Name);
    ModeRun Call = runWorkload(W, SuspendCheckMode::CallBoundary);
    ModeRun Every = runWorkload(W, SuspendCheckMode::Everywhere);
    ModeRun Placed = runWorkload(W, SuspendCheckMode::Placed);
    ASSERT_EQ(Call.Exit, 0);
    // Placement is invisible to the guest: all three modes produce
    // bit-identical output.
    EXPECT_EQ(Every.Exit, Call.Exit);
    EXPECT_EQ(Placed.Exit, Call.Exit);
    EXPECT_EQ(Every.Out, Call.Out);
    EXPECT_EQ(Placed.Out, Call.Out);
    // Placed executes a fraction of the naive baseline's checks and
    // visibly elides branch-site checks. Call-heavy workloads keep their
    // call-boundary checks in every mode, so the floor there is 3x; the
    // loop-heavy micros that fig4 gates must clear 5x.
    EXPECT_GT(Placed.Elided, 0u);
    EXPECT_GE(Every.Executed, Placed.Executed * 3)
        << "placed mode should cut dynamic checks by at least 3x";
    if (W.Name == "deltablue" || W.Name == "pidigits") {
      EXPECT_GE(Every.Executed, Placed.Executed * 5)
          << "loop-heavy micro should cut dynamic checks by at least 5x";
    }
    // The dynamic between-checks high-water mark respects the largest
    // statically proven bound (the assert in Jvm::noteSuspendCheckExecuted
    // backs this at every single check; this is the end-of-run view).
    ASSERT_GT(Placed.ProvenBound, 0u);
    EXPECT_LE(Placed.MaxSpan, Placed.ProvenBound);
  }
}

} // namespace
