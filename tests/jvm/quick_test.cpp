//===- tests/jvm/quick_test.cpp -------------------------------------------==//
//
// Quickening, threaded dispatch, and inline caches (DESIGN.md §18), plus
// the ExecProfile surface that gates them:
//
//  - ExecProfile presets, the shared spec parser, and env overrides.
//  - Differential runs: every builtin workload under the `baseline` and
//    `quick` profiles must produce bit-identical output — the profiles
//    may only trade host speed and virtual cost, never behavior.
//  - Mid-run checkpoint/restore and a live cluster migration of a guest
//    whose bytecode has been rewritten in place to _quick forms: the
//    DPCP/JPRG images must stay valid (pc stability + fresh-class
//    restore make quickening invisible to the serializer).
//
// Registered under `ctest -L quick`.
//
//===----------------------------------------------------------------------===//

#include "doppio/backends/in_memory.h"
#include "doppio/cluster/cluster.h"
#include "jvm/checkpoint.h"
#include "jvm/classfile/builder.h"
#include "jvm/exec_profile.h"
#include "jvm/jvm.h"
#include "jvm/proc_program.h"
#include "workloads/workloads.h"

#include "jvm_test_util.h"

#include "gtest/gtest.h"

using namespace doppio;
using namespace doppio::jvm;
using doppio::testutil::JvmRig;

namespace {

//===----------------------------------------------------------------------===//
// ExecProfile: presets, parser, env override
//===----------------------------------------------------------------------===//

TEST(ExecProfileApi, PresetsCarryTheirKnobs) {
  ExecProfile B = ExecProfile::baseline();
  EXPECT_FALSE(B.TrustVerifier);
  EXPECT_EQ(B.SuspendChecks, SuspendCheckMode::CallBoundary);
  EXPECT_FALSE(B.Quicken);
  EXPECT_FALSE(B.InlineCaches);

  ExecProfile V = ExecProfile::verified();
  EXPECT_TRUE(V.TrustVerifier);
  EXPECT_FALSE(V.Quicken);

  ExecProfile P = ExecProfile::placed();
  EXPECT_EQ(P.SuspendChecks, SuspendCheckMode::Placed);

  ExecProfile Q = ExecProfile::quick();
  EXPECT_TRUE(Q.TrustVerifier);
  EXPECT_TRUE(Q.Quicken);
  EXPECT_TRUE(Q.InlineCaches);
}

TEST(ExecProfileApi, ParserAcceptsPresetsAndOverrides) {
  ExecProfile P;
  ASSERT_TRUE(ExecProfile::parse("quick", P));
  EXPECT_TRUE(P.Quicken);
  EXPECT_EQ(P.Name, "quick");

  ASSERT_TRUE(ExecProfile::parse("placed,trust=0", P));
  EXPECT_EQ(P.SuspendChecks, SuspendCheckMode::Placed);
  EXPECT_FALSE(P.TrustVerifier);

  ASSERT_TRUE(
      ExecProfile::parse("trust=1,suspend=everywhere,quicken=1,ic=0", P));
  EXPECT_TRUE(P.TrustVerifier);
  EXPECT_EQ(P.SuspendChecks, SuspendCheckMode::Everywhere);
  EXPECT_TRUE(P.Quicken);
  EXPECT_FALSE(P.InlineCaches);

  std::string Err;
  EXPECT_FALSE(ExecProfile::parse("warp9", P, &Err));
  EXPECT_FALSE(Err.empty());
  EXPECT_FALSE(ExecProfile::parse("quick,tempo=3", P, &Err));
}

TEST(ExecProfileApi, EnvOverrideSelectsQuickProfile) {
  ASSERT_EQ(setenv("DOPPIO_JVM_PROFILE", "quick", 1), 0);
  JvmRig Rig(ExecutionMode::DoppioJS);
  EXPECT_TRUE(Rig.vm().profile().Quicken);
  EXPECT_TRUE(Rig.vm().profile().InlineCaches);
  ASSERT_EQ(unsetenv("DOPPIO_JVM_PROFILE"), 0);
}

TEST(ExecProfileApi, BackCompatShimsReflectTheProfile) {
  JvmRig Rig(ExecutionMode::DoppioJS);
  Rig.Options.Exec = ExecProfile::placed();
  Rig.Options.Exec.TrustVerifier = false;
  EXPECT_FALSE(Rig.vm().trustVerifier());
  EXPECT_EQ(Rig.vm().suspendCheckMode(), SuspendCheckMode::Placed);
}

//===----------------------------------------------------------------------===//
// Differential: builtin workloads, baseline vs quick
//===----------------------------------------------------------------------===//

struct ProfiledRun {
  int Exit;
  std::string Out;
  uint64_t QuickenedSites;
  uint64_t IcHits;
  uint64_t IcMisses;
};

ProfiledRun runUnder(const workloads::Workload &W, const ExecProfile &P) {
  JvmRig Rig(ExecutionMode::DoppioJS);
  workloads::publish(W, Rig.Env.server());
  Rig.Options.Exec = P;
  ProfiledRun R;
  R.Exit = Rig.run(W.MainClass, W.Args);
  R.Out = Rig.out();
  R.QuickenedSites = Rig.vm().stats().QuickenedSites;
  R.IcHits = Rig.vm().icHits();
  R.IcMisses = Rig.vm().icMisses();
  return R;
}

TEST(QuickDifferential, AllBuiltinWorkloadsBitIdentical) {
  using namespace doppio::workloads;
  // Every builtin workload, sized to finish quickly but still cover the
  // opcode surface (field access, invokes, allocation, ldc, casts, long
  // math, string building, fs traffic).
  std::vector<Workload> Ws;
  Ws.push_back(makeRecursive(12, 5));
  Ws.push_back(makeBinaryTrees(6));
  Ws.push_back(makeNQueens(6));
  Ws.push_back(makeDeltaBlue(20, 40));
  Ws.push_back(makePiDigits(40));
  Ws.push_back(makeClassDump(6));
  Ws.push_back(makeMiniCompile(4));
  for (const Workload &W : Ws) {
    SCOPED_TRACE(W.Name);
    ProfiledRun Base = runUnder(W, ExecProfile::baseline());
    ProfiledRun Quick = runUnder(W, ExecProfile::quick());
    EXPECT_EQ(Base.Exit, Quick.Exit);
    EXPECT_EQ(Base.Out, Quick.Out);
    EXPECT_FALSE(Quick.Out.empty());
    // The baseline must not quicken; the quick run must actually have
    // rewritten sites (every workload resolves fields/methods/constants).
    EXPECT_EQ(Base.QuickenedSites, 0u);
    EXPECT_GT(Quick.QuickenedSites, 0u);
  }
}

TEST(QuickDifferential, InlineCachesHitOnFieldHeavyWorkload) {
  using namespace doppio::workloads;
  // DeltaBlue is constraint-graph pointer chasing: the same getfield
  // sites see the same klass over and over, so a monomorphic cache must
  // convert nearly all of the dictionary lookups into cell hits.
  ProfiledRun Quick = runUnder(makeDeltaBlue(20, 40), ExecProfile::quick());
  EXPECT_EQ(Quick.Exit, 0);
  EXPECT_GT(Quick.IcHits, 0u);
  // DeltaBlue has genuinely polymorphic constraint sites that thrash a
  // monomorphic cache, so demand a solid majority of hits, not purity.
  EXPECT_GT(Quick.IcHits, Quick.IcMisses * 3)
      << "the cache should absorb most dictionary lookups";
}

TEST(QuickDifferential, QuickeningCutsTheVirtualCpuBill) {
  using namespace doppio::workloads;
  // Full fig4 size: on a small run the constant costs (class loading
  // over XHR, allocation) swamp the dispatch bill this test measures.
  Workload W = makeDeltaBlue(60, 400);
  uint64_t CpuNs[2];
  int Idx = 0;
  for (const ExecProfile &P :
       {ExecProfile::baseline(), ExecProfile::quick()}) {
    JvmRig Rig(ExecutionMode::DoppioJS);
    workloads::publish(W, Rig.Env.server());
    Rig.Options.Exec = P;
    ASSERT_EQ(Rig.run(W.MainClass, W.Args), 0);
    CpuNs[Idx++] = Rig.Env.clock().nowNs() -
                   Rig.vm().suspender().totalSuspendedNs();
  }
  // QuickOpCostNs (24) vs OpCostNs (64) per dispatched bytecode: the
  // quick bill must land at most 1/2 of baseline on this int/field
  // workload (the gate the fig4 trajectory tracks).
  EXPECT_LT(CpuNs[1] * 2, CpuNs[0]);
}

//===----------------------------------------------------------------------===//
// Checkpoint/restore and migration of a quickened guest
//===----------------------------------------------------------------------===//

/// Same Ticker as cont_test/fig8: one deterministic println per
/// iteration, long arithmetic, an inner int loop — enough reuse that the
/// hot sites quicken and the getstatic/invokevirtual ICs warm up.
std::vector<uint8_t> tickerClassBytes(int N) {
  ClassBuilder B("Ticker");
  MethodBuilder &M =
      B.method(AccPublic | AccStatic, "main", "([Ljava/lang/String;)V");
  MethodBuilder::Label Loop = M.newLabel(), Done = M.newLabel();
  MethodBuilder::Label KLoop = M.newLabel(), KDone = M.newLabel();
  M.lconst(1).lstore(1);
  M.iconst(0).istore(3);
  M.bind(Loop).iload(3).iconst(N).branch(Op::IfIcmpge, Done);
  M.lload(1)
      .lconst(1103515245)
      .op(Op::Lmul)
      .iload(3)
      .op(Op::I2l)
      .op(Op::Ladd)
      .lstore(1);
  M.iconst(0).istore(4);
  M.iconst(0).istore(5);
  M.bind(KLoop).iload(5).iconst(200).branch(Op::IfIcmpge, KDone);
  M.iload(4).iconst(31).op(Op::Imul).iload(5).op(Op::Iadd).istore(4);
  M.iinc(5, 1).branch(Op::Goto, KLoop).bind(KDone);
  M.getstatic("java/lang/System", "out", "Ljava/io/PrintStream;");
  M.lload(1)
      .lconst(1000000)
      .op(Op::Lrem)
      .op(Op::L2i)
      .iload(4)
      .op(Op::Ixor)
      .invokevirtual("java/io/PrintStream", "println", "(I)V");
  M.iinc(3, 1).branch(Op::Goto, Loop);
  M.bind(Done).op(Op::Return);
  return B.bytes();
}

/// One browser tab hosting a JVM over a seeded in-memory /classes.
struct TabRig {
  explicit TabRig(const browser::Profile &P) : Env(P) {
    auto RootB = std::make_unique<rt::fs::InMemoryBackend>(Env);
    Root = RootB.get();
    Fs = std::make_unique<rt::fs::FileSystem>(Env, Proc, std::move(RootB));
  }

  browser::BrowserEnv Env;
  rt::Process Proc;
  rt::fs::InMemoryBackend *Root = nullptr;
  std::unique_ptr<rt::fs::FileSystem> Fs;
};

JvmOptions quickOptions() {
  JvmOptions O;
  O.Exec = ExecProfile::quick();
  return O;
}

TEST(QuickCheckpoint, MidRunRoundTripOfAQuickenedGuest) {
  std::vector<uint8_t> Klass = tickerClassBytes(3000);

  // Source: run under the quick profile, capture mid-stream once the
  // bytecode has demonstrably been rewritten in place, finish normally.
  TabRig Src(browser::chromeProfile());
  ASSERT_TRUE(Src.Root->seedFile("/classes/Ticker.class", Klass));
  Jvm VmA(Src.Env, *Src.Fs, Src.Proc, quickOptions());
  int ExitA = -1;
  VmA.runMain("Ticker", {}, [&](int C) { ExitA = C; });

  std::vector<uint8_t> Image;
  std::string Prefix;
  std::function<void()> Try = [&] {
    if (!Image.empty())
      return;
    if (Src.Proc.capturedStdout().size() >= 8 && checkpointReady(VmA)) {
      rt::ErrorOr<std::vector<uint8_t>> S = serializeJvm(VmA);
      ASSERT_TRUE(S.ok()) << (S.ok() ? "" : S.error().message());
      Image = std::move(*S);
      Prefix = Src.Proc.capturedStdout();
      // The capture happened while quickened code was live.
      EXPECT_GT(VmA.stats().QuickenedSites, 0u);
      return;
    }
    // Resume lane: guest slices run there and it outranks Timer, so a
    // Timer-lane probe would starve until the guest exits.
    browser::TimerHandle H = Src.Env.loop().postTimer(
        kernel::Lane::Resume, [&Try] { Try(); }, browser::usToNs(50));
    (void)H;
  };
  Try();
  Src.Env.loop().run();
  ASSERT_EQ(ExitA, 0);
  std::string Baseline = Src.Proc.capturedStdout();
  ASSERT_FALSE(Image.empty()) << "never found a quiescent point";
  ASSERT_LT(Prefix.size(), Baseline.size());

  // Destination: fresh tab, fresh fs, fresh VM, same quick profile. The
  // restore reloads classes from the classpath (unquickened) and the
  // revived frames re-quicken as they run — pc stability makes the saved
  // frame pcs valid either way.
  TabRig Dst(browser::chromeProfile());
  ASSERT_TRUE(Dst.Root->seedFile("/classes/Ticker.class", Klass));
  Jvm VmB(Dst.Env, *Dst.Fs, Dst.Proc, quickOptions());
  int ExitB = -1;
  bool RestoreOk = false;
  restoreJvm(VmB, Image, [&](int C) { ExitB = C; },
             [&](rt::ErrorOr<bool> R) { RestoreOk = R.ok(); });
  Dst.Env.loop().run();
  EXPECT_TRUE(RestoreOk);
  EXPECT_EQ(ExitB, 0);
  EXPECT_EQ(Prefix + Dst.Proc.capturedStdout(), Baseline);
  EXPECT_GT(VmB.stats().QuickenedSites, 0u)
      << "the revived guest should re-quicken its hot sites";
}

TEST(QuickCluster, LiveMigrationMovesAQuickenedGuest) {
  using namespace doppio::cluster;
  // Ticker variant with naps so lockstep rounds stay short enough for the
  // Migrate frame to land mid-run (same shape as fig8_migrate.cpp).
  std::vector<uint8_t> Klass = [] {
    ClassBuilder B("Ticker");
    MethodBuilder &M =
        B.method(AccPublic | AccStatic, "main", "([Ljava/lang/String;)V");
    MethodBuilder::Label Loop = M.newLabel(), Done = M.newLabel();
    M.lconst(1).lstore(1);
    M.iconst(0).istore(3);
    M.bind(Loop).iload(3).iconst(1200).branch(Op::IfIcmpge, Done);
    M.lload(1)
        .lconst(1103515245)
        .op(Op::Lmul)
        .iload(3)
        .op(Op::I2l)
        .op(Op::Ladd)
        .lstore(1);
    M.getstatic("java/lang/System", "out", "Ljava/io/PrintStream;");
    M.lload(1)
        .lconst(1000000)
        .op(Op::Lrem)
        .op(Op::L2i)
        .invokevirtual("java/io/PrintStream", "println", "(I)V");
    MethodBuilder::Label NoNap = M.newLabel();
    M.iload(3)
        .iconst(300)
        .op(Op::Irem)
        .iconst(299)
        .branch(Op::IfIcmpne, NoNap);
    M.lconst(2).invokestatic("java/lang/Thread", "sleep", "(J)V");
    M.bind(NoNap);
    M.iinc(3, 1).branch(Op::Goto, Loop);
    M.bind(Done).op(Op::Return);
    return B.bytes();
  }();

  Cluster::Config Cfg;
  Cfg.Shards = 2;
  Cfg.ShardTemplate.Setup = [&Klass](Shard &S) {
    S.fs().mkdirp("/classes", [](std::optional<rt::ApiError> E) {
      ASSERT_FALSE(E.has_value());
    });
    S.fs().writeFile("/classes/Ticker.class", Klass,
                     [](std::optional<rt::ApiError> E) {
                       ASSERT_FALSE(E.has_value());
                     });
    registerJvmRestore(S.checkpoints());
  };
  auto SpawnQuickTicker = [](Shard &S) {
    rt::proc::ProcessTable::SpawnSpec Spec;
    Spec.Name = "java";
    Spec.Prog = makeJvmProgram({"Ticker", {}, quickOptions()});
    return S.procs().spawn(std::move(Spec));
  };

  // Baseline: the quickened guest runs start-to-finish on shard 0.
  std::string Baseline;
  {
    Cluster Cl(browser::chromeProfile(), Cfg);
    LockstepDriver Drv(Cl.fabric());
    Drv.run(10000000);
    rt::proc::Pid P = SpawnQuickTicker(*Cl.shard(0));
    Drv.run(10000000);
    rt::proc::Process *Pr = Cl.shard(0)->procs().find(P);
    ASSERT_NE(Pr, nullptr);
    Baseline = Pr->state().capturedStdout();
    ASSERT_FALSE(Baseline.empty());
  }

  // Migrated: same guest starts on shard 0, moves to shard 1 mid-run.
  // The JPRG image carries the quick ExecProfile, so the revived copy
  // resumes under the same profile it checkpointed with.
  Cluster Cl(browser::chromeProfile(), Cfg);
  LockstepDriver Drv(Cl.fabric());
  Drv.run(10000000);
  Shard *Src = Cl.shard(0);
  rt::proc::Pid P = SpawnQuickTicker(*Src);

  Balancer::MigrationResult MR;
  bool HaveResult = false;
  bool Requested = false;
  std::function<void()> Probe = [&] {
    if (Requested)
      return;
    rt::proc::Process *Pr = Src->procs().find(P);
    ASSERT_NE(Pr, nullptr);
    if (!Pr->alive())
      return;
    if (Pr->state().capturedStdout().size() >= 500) {
      Requested = true;
      EXPECT_TRUE(
          Cl.migrateProcess(0, 1, P, [&](const Balancer::MigrationResult &R) {
            MR = R;
            HaveResult = true;
          }));
      return;
    }
    browser::TimerHandle H = Src->env().loop().postTimer(
        kernel::Lane::Resume, [&Probe] { Probe(); }, browser::usToNs(50));
    (void)H;
  };
  Probe();
  auto Rep = Drv.run(10000000);
  ASSERT_LT(Rep.Rounds, 10000000u) << "cluster never quiesced";

  ASSERT_TRUE(HaveResult) << "migration result never arrived";
  ASSERT_TRUE(MR.Ok) << MR.Error;
  rt::proc::Process *SrcPr = Src->procs().find(P);
  ASSERT_NE(SrcPr, nullptr);
  EXPECT_FALSE(SrcPr->alive());
  std::string Prefix = SrcPr->state().capturedStdout();
  ASSERT_FALSE(Prefix.empty());
  ASSERT_LT(Prefix.size(), Baseline.size());

  rt::proc::Process *DstPr = Cl.shard(1)->procs().find(MR.NewPid);
  ASSERT_NE(DstPr, nullptr);
  EXPECT_EQ(DstPr->exitCode(), 0);
  EXPECT_EQ(Prefix + DstPr->state().capturedStdout(), Baseline);
}

} // namespace
