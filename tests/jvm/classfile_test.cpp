//===- tests/jvm/classfile_test.cpp ---------------------------------------==//
//
// Tests for the class-file toolchain: opcode metadata (all 201
// instructions, §6), descriptor parsing, constant-pool interning, and the
// assembler -> writer -> reader round trip that the class loader path
// depends on (§6.4).
//
//===----------------------------------------------------------------------===//

#include "jvm/classfile/builder.h"
#include "jvm/classfile/classfile.h"
#include "jvm/classfile/descriptor.h"
#include "jvm/classfile/opcodes.h"

#include "gtest/gtest.h"

using namespace doppio;
using namespace doppio::jvm;

namespace {

TEST(Opcodes, ExactlyTwoHundredOne) {
  // "DoppioJVM implements all 201 bytecode instructions specified in the
  // second edition of the Java Virtual Machine Specification" (§6).
  EXPECT_EQ(opcodeCount(), 201);
}

TEST(Opcodes, MetadataSpotChecks) {
  EXPECT_STREQ(opcodeName(0x00), "Nop");
  EXPECT_STREQ(opcodeName(0xb6), "Invokevirtual");
  EXPECT_STREQ(opcodeName(0xc9), "JsrW");
  EXPECT_STREQ(opcodeName(0xba), "<illegal>"); // invokedynamic is post-spec-2.
  EXPECT_STREQ(opcodeName(0xff), "<illegal>");
  EXPECT_EQ(opcodeOperandBytes(0x10), 1);  // bipush
  EXPECT_EQ(opcodeOperandBytes(0x11), 2);  // sipush
  EXPECT_EQ(opcodeOperandBytes(0xaa), -1); // tableswitch
  EXPECT_EQ(opcodeOperandBytes(0xc4), -1); // wide
  EXPECT_EQ(opcodeOperandBytes(0xb9), 4);  // invokeinterface
  EXPECT_EQ(opcodeOperandBytes(0xba), -2); // illegal
  EXPECT_TRUE(isLegalOpcode(0xc9));
  EXPECT_FALSE(isLegalOpcode(0xca));
}

TEST(Descriptor, ParseMethodDescriptors) {
  auto D = desc::parseMethod("(I[JLjava/lang/String;)V");
  ASSERT_TRUE(D.has_value());
  ASSERT_EQ(D->Params.size(), 3u);
  EXPECT_EQ(D->Params[0], "I");
  EXPECT_EQ(D->Params[1], "[J");
  EXPECT_EQ(D->Params[2], "Ljava/lang/String;");
  EXPECT_EQ(D->Ret, "V");
  EXPECT_EQ(desc::paramSlots(*D), 1 + 1 + 1) << "[J is a reference";

  auto E = desc::parseMethod("()D");
  ASSERT_TRUE(E.has_value());
  EXPECT_TRUE(E->Params.empty());
  EXPECT_EQ(desc::slotSize(E->Ret), 2);

  EXPECT_FALSE(desc::parseMethod("I)V").has_value());
  EXPECT_FALSE(desc::parseMethod("(Q)V").has_value());
  EXPECT_FALSE(desc::parseMethod("(I)").has_value());
  EXPECT_FALSE(desc::parseMethod("(I)VV").has_value());
  EXPECT_FALSE(desc::parseMethod("(Ljava/lang/String)V").has_value());
}

TEST(Descriptor, SlotSizesAndNames) {
  EXPECT_EQ(desc::slotSize("J"), 2);
  EXPECT_EQ(desc::slotSize("D"), 2);
  EXPECT_EQ(desc::slotSize("I"), 1);
  EXPECT_EQ(desc::slotSize("Lx/Y;"), 1);
  EXPECT_EQ(desc::slotSize("V"), 0);
  EXPECT_EQ(desc::toClassName("Ljava/lang/String;"), "java/lang/String");
  EXPECT_EQ(desc::toClassName("[I"), "[I");
  EXPECT_EQ(desc::toFieldDesc("java/lang/String"), "Ljava/lang/String;");
  EXPECT_EQ(desc::toFieldDesc("[I"), "[I");
  EXPECT_TRUE(desc::isArray("[I"));
  EXPECT_TRUE(desc::isReference("[I"));
  EXPECT_TRUE(desc::isReference("Lx;"));
  EXPECT_FALSE(desc::isReference("I"));
}

TEST(ConstantPool, InterningDeduplicates) {
  ConstantPool Pool;
  uint16_t A = Pool.addUtf8("hello");
  uint16_t B = Pool.addUtf8("hello");
  EXPECT_EQ(A, B);
  uint16_t C1 = Pool.addClass("java/lang/Object");
  uint16_t C2 = Pool.addClass("java/lang/Object");
  EXPECT_EQ(C1, C2);
  uint16_t M = Pool.addMethodref("A", "m", "()V");
  EXPECT_EQ(M, Pool.addMethodref("A", "m", "()V"));
  auto Ref = Pool.memberRef(M);
  EXPECT_EQ(Ref.ClassName, "A");
  EXPECT_EQ(Ref.Name, "m");
  EXPECT_EQ(Ref.Descriptor, "()V");
}

TEST(ConstantPool, LongsOccupyTwoSlots) {
  ConstantPool Pool;
  uint16_t L = Pool.addLong(42);
  uint16_t Next = Pool.addUtf8("after");
  EXPECT_EQ(Next, L + 2) << "long must take two constant pool slots";
}

TEST(Builder, RoundTripSimpleClass) {
  ClassBuilder B("demo/Adder");
  B.addField(AccPrivate, "total", "I");
  B.addDefaultConstructor();
  MethodBuilder &Add = B.method(AccPublic | AccStatic, "add", "(II)I");
  Add.iload(0).iload(1).op(Op::Iadd).op(Op::Ireturn);
  std::vector<uint8_t> Bytes = B.bytes();
  // Magic number.
  ASSERT_GE(Bytes.size(), 4u);
  EXPECT_EQ(Bytes[0], 0xCA);
  EXPECT_EQ(Bytes[1], 0xFE);
  EXPECT_EQ(Bytes[2], 0xBA);
  EXPECT_EQ(Bytes[3], 0xBE);

  auto Parsed = readClassFile(Bytes);
  ASSERT_TRUE(Parsed.ok()) << Parsed.error().message();
  EXPECT_EQ(Parsed->ThisClass, "demo/Adder");
  EXPECT_EQ(Parsed->SuperClass, "java/lang/Object");
  ASSERT_EQ(Parsed->Fields.size(), 1u);
  EXPECT_EQ(Parsed->Fields[0].Name, "total");
  ASSERT_EQ(Parsed->Methods.size(), 2u);
  const MemberInfo *Add2 = Parsed->findMethod("add", "(II)I");
  ASSERT_NE(Add2, nullptr);
  ASSERT_TRUE(Add2->Code.has_value());
  EXPECT_EQ(Add2->Code->MaxLocals, 2);
  EXPECT_EQ(Add2->Code->MaxStack, 2);
  // iload_0 iload_1 iadd ireturn
  EXPECT_EQ(Add2->Code->Bytecode,
            (std::vector<uint8_t>{0x1a, 0x1b, 0x60, 0xac}));
}

TEST(Builder, ComputesMaxStackAcrossBranches) {
  ClassBuilder B("demo/Branchy");
  MethodBuilder &M = B.method(AccPublic | AccStatic, "f", "(I)I");
  MethodBuilder::Label Else = M.newLabel(), End = M.newLabel();
  M.iload(0)
      .branch(Op::Ifeq, Else)
      .iconst(1)
      .iconst(2)
      .iconst(3)
      .op(Op::Iadd)
      .op(Op::Iadd)
      .branch(Op::Goto, End)
      .bind(Else)
      .iconst(0)
      .iconst(0)
      .op(Op::Iadd)
      .bind(End)
      .op(Op::Ireturn);
  ClassFile Cf = B.build();
  const MemberInfo *F = Cf.findMethod("f", "(I)I");
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(F->Code->MaxStack, 3);
}

TEST(Builder, LongsAndDoublesUseTwoSlots) {
  ClassBuilder B("demo/Wide");
  MethodBuilder &M = B.method(AccPublic | AccStatic, "f", "(JD)J");
  M.lload(0).dload(2).op(Op::D2l).op(Op::Ladd).op(Op::Lreturn);
  ClassFile Cf = B.build();
  const MemberInfo *F = Cf.findMethod("f", "(JD)J");
  EXPECT_EQ(F->Code->MaxLocals, 4);
  EXPECT_EQ(F->Code->MaxStack, 4);
}

TEST(Builder, WideLocalIndexesUseWidePrefix) {
  ClassBuilder B("demo/ManyLocals");
  MethodBuilder &M = B.method(AccPublic | AccStatic, "f", "()I");
  M.iconst(7).istore(300).iload(300).op(Op::Ireturn);
  ClassFile Cf = B.build();
  const MemberInfo *F = Cf.findMethod("f", "()I");
  EXPECT_EQ(F->Code->MaxLocals, 301);
  // bipush 7 (2 bytes), wide istore, wide iload, ireturn.
  const std::vector<uint8_t> &Code = F->Code->Bytecode;
  EXPECT_EQ(Code[0], 0x10); // bipush
  EXPECT_EQ(Code[2], 0xc4); // wide
  EXPECT_EQ(Code[3], 0x36); // istore
}

TEST(Builder, ExceptionHandlersRoundTrip) {
  ClassBuilder B("demo/Catchy");
  MethodBuilder &M = B.method(AccPublic | AccStatic, "f", "()I");
  MethodBuilder::Label Start = M.newLabel(), End = M.newLabel(),
                       Handler = M.newLabel();
  M.bind(Start)
      .iconst(1)
      .iconst(0)
      .op(Op::Idiv)
      .op(Op::Ireturn)
      .bind(End)
      .bind(Handler)
      .op(Op::Pop)
      .iconst(-1)
      .op(Op::Ireturn)
      .handler(Start, End, Handler, "java/lang/ArithmeticException");
  std::vector<uint8_t> Bytes = B.bytes();
  auto Parsed = readClassFile(Bytes);
  ASSERT_TRUE(Parsed.ok());
  const MemberInfo *F = Parsed->findMethod("f", "()I");
  ASSERT_EQ(F->Code->Handlers.size(), 1u);
  const ExceptionHandler &H = F->Code->Handlers[0];
  EXPECT_EQ(H.StartPc, 0);
  EXPECT_GT(H.HandlerPc, H.StartPc);
  EXPECT_EQ(Parsed->Pool.className(H.CatchType),
            "java/lang/ArithmeticException");
}

TEST(Builder, ConstantsChooseCompactEncodings) {
  ClassBuilder B("demo/Consts");
  MethodBuilder &M = B.method(AccPublic | AccStatic, "f", "()V");
  M.iconst(3)      // iconst_3 (1 byte)
      .op(Op::Pop)
      .iconst(100) // bipush (2 bytes)
      .op(Op::Pop)
      .iconst(30000) // sipush (3 bytes)
      .op(Op::Pop)
      .iconst(100000) // ldc (2 bytes)
      .op(Op::Pop)
      .op(Op::Return);
  ClassFile Cf = B.build();
  const std::vector<uint8_t> &Code =
      Cf.findMethod("f", "()V")->Code->Bytecode;
  EXPECT_EQ(Code[0], 0x06); // iconst_3
  EXPECT_EQ(Code[2], 0x10); // bipush
  EXPECT_EQ(Code[5], 0x11); // sipush
  EXPECT_EQ(Code[9], 0x12); // ldc
}

TEST(Reader, RejectsGarbage) {
  EXPECT_FALSE(readClassFile({1, 2, 3, 4}).ok());
  EXPECT_FALSE(readClassFile({0xCA, 0xFE, 0xBA, 0xBE}).ok());
  std::vector<uint8_t> Truncated = ClassBuilder("demo/T").bytes();
  Truncated.resize(Truncated.size() / 2);
  EXPECT_FALSE(readClassFile(Truncated).ok());
}

TEST(Reader, InterfaceFlagsSurvive) {
  ClassBuilder B("demo/Iface");
  B.setAccess(AccPublic | AccInterface | AccAbstract);
  B.abstractMethod(AccPublic, "poke", "()V");
  auto Parsed = readClassFile(B.bytes());
  ASSERT_TRUE(Parsed.ok());
  EXPECT_TRUE(Parsed->AccessFlags & AccInterface);
  EXPECT_TRUE(Parsed->Methods[0].AccessFlags & AccAbstract);
  EXPECT_FALSE(Parsed->Methods[0].Code.has_value());
}

TEST(Reader, TableswitchSurvivesRoundTrip) {
  ClassBuilder B("demo/Sw");
  MethodBuilder &M = B.method(AccPublic | AccStatic, "f", "(I)I");
  MethodBuilder::Label C0 = M.newLabel(), C1 = M.newLabel(),
                       Def = M.newLabel();
  M.iload(0)
      .tableswitch(Def, 0, {C0, C1})
      .bind(C0)
      .iconst(100)
      .op(Op::Ireturn)
      .bind(C1)
      .iconst(200)
      .op(Op::Ireturn)
      .bind(Def)
      .iconst(-1)
      .op(Op::Ireturn);
  auto Parsed = readClassFile(B.bytes());
  ASSERT_TRUE(Parsed.ok());
  EXPECT_NE(Parsed->findMethod("f", "(I)I"), nullptr);
}

} // namespace
