//===- tests/jvm/threads_test.cpp -----------------------------------------==//
//
// JVM multithreading over the Doppio thread pool (§4.3/§6.2): thread
// start/join, synchronized methods and blocks, wait/notify, sleep, and the
// responsiveness guarantee of automatic event segmentation (§4.1).
//
//===----------------------------------------------------------------------===//

#include "jvm_test_util.h"

#include "gtest/gtest.h"

using namespace doppio;
using namespace doppio::jvm;
using namespace doppio::testutil;

namespace {

const char *Out = "Ljava/io/PrintStream;";

MethodBuilder &mainOf(ClassBuilder &B) {
  return B.method(AccPublic | AccStatic, "main",
                  "([Ljava/lang/String;)V");
}

void printlnInt(MethodBuilder &M) {
  M.getstatic("java/lang/System", "out", Out)
      .op(Op::Swap)
      .invokevirtual("java/io/PrintStream", "println", "(I)V");
}

/// Builds: class Worker extends Thread { Counter c; int n;
///           void run() { for (i=0;i<n;i++) c.inc(); } }
/// and: class Counter { int v; synchronized void inc(){v++;}
///                      int get(){return v;} }
void addCounterClasses(JvmRig &Rig) {
  ClassBuilder Counter("Counter");
  Counter.addField(AccPrivate, "v", "I");
  Counter.addDefaultConstructor();
  MethodBuilder &Inc =
      Counter.method(AccPublic | AccSynchronized, "inc", "()V");
  Inc.aload(0)
      .aload(0)
      .getfield("Counter", "v", "I")
      .iconst(1)
      .op(Op::Iadd)
      .putfield("Counter", "v", "I")
      .op(Op::Return);
  MethodBuilder &Get = Counter.method(AccPublic, "get", "()I");
  Get.aload(0).getfield("Counter", "v", "I").op(Op::Ireturn);
  Rig.addClass(Counter);

  ClassBuilder Worker("Worker", "java/lang/Thread");
  Worker.addField(AccPublic, "c", "LCounter;");
  Worker.addField(AccPublic, "n", "I");
  Worker.addDefaultConstructor();
  MethodBuilder &Run = Worker.method(AccPublic, "run", "()V");
  MethodBuilder::Label Loop = Run.newLabel(), Done = Run.newLabel();
  Run.iconst(0)
      .istore(1)
      .bind(Loop)
      .iload(1)
      .aload(0)
      .getfield("Worker", "n", "I")
      .branch(Op::IfIcmpge, Done)
      .aload(0)
      .getfield("Worker", "c", "LCounter;")
      .invokevirtual("Counter", "inc", "()V")
      .iinc(1, 1)
      .branch(Op::Goto, Loop)
      .bind(Done)
      .op(Op::Return);
  Rig.addClass(Worker);
}

class ThreadModes : public ::testing::TestWithParam<ExecutionMode> {};

TEST_P(ThreadModes, TwoThreadsIncrementSharedCounter) {
  JvmRig Rig(GetParam());
  addCounterClasses(Rig);
  ClassBuilder B("Main");
  MethodBuilder &M = mainOf(B);
  // Counter c = new Counter();
  M.anew("Counter")
      .op(Op::Dup)
      .invokespecial("Counter", "<init>", "()V")
      .astore(1);
  // Two workers, 500 increments each.
  for (int Slot : {2, 3}) {
    M.anew("Worker")
        .op(Op::Dup)
        .invokespecial("Worker", "<init>", "()V")
        .astore(Slot)
        .aload(Slot)
        .aload(1)
        .putfield("Worker", "c", "LCounter;")
        .aload(Slot)
        .iconst(500)
        .putfield("Worker", "n", "I")
        .aload(Slot)
        .invokevirtual("java/lang/Thread", "start", "()V");
  }
  M.aload(2).invokevirtual("java/lang/Thread", "join", "()V");
  M.aload(3).invokevirtual("java/lang/Thread", "join", "()V");
  M.aload(1).invokevirtual("Counter", "get", "()I");
  printlnInt(M);
  M.op(Op::Return);
  Rig.addClass(B);
  EXPECT_EQ(Rig.run("Main"), 0);
  EXPECT_EQ(Rig.out(), "1000\n");
}

TEST_P(ThreadModes, JoinWaitsForCompletion) {
  // Worker sets a flag; main joins then reads: never sees the old value.
  JvmRig Rig(GetParam());
  ClassBuilder Flag("Flag");
  Flag.addField(AccPublic, "v", "I");
  Flag.addDefaultConstructor();
  Rig.addClass(Flag);
  ClassBuilder Setter("Setter", "java/lang/Thread");
  Setter.addField(AccPublic, "f", "LFlag;");
  Setter.addDefaultConstructor();
  MethodBuilder &Run = Setter.method(AccPublic, "run", "()V");
  // Sleep a little, then set.
  Run.lconst(20)
      .invokestatic("java/lang/Thread", "sleep", "(J)V")
      .aload(0)
      .getfield("Setter", "f", "LFlag;")
      .iconst(123)
      .putfield("Flag", "v", "I")
      .op(Op::Return);
  Rig.addClass(Setter);
  ClassBuilder B("Main");
  MethodBuilder &M = mainOf(B);
  M.anew("Flag")
      .op(Op::Dup)
      .invokespecial("Flag", "<init>", "()V")
      .astore(1)
      .anew("Setter")
      .op(Op::Dup)
      .invokespecial("Setter", "<init>", "()V")
      .astore(2)
      .aload(2)
      .aload(1)
      .putfield("Setter", "f", "LFlag;")
      .aload(2)
      .invokevirtual("java/lang/Thread", "start", "()V")
      .aload(2)
      .invokevirtual("java/lang/Thread", "join", "()V")
      .aload(1)
      .getfield("Flag", "v", "I");
  printlnInt(M);
  M.op(Op::Return);
  Rig.addClass(B);
  EXPECT_EQ(Rig.run("Main"), 0);
  EXPECT_EQ(Rig.out(), "123\n");
}

TEST_P(ThreadModes, RunnableTargetThread) {
  JvmRig Rig(GetParam());
  ClassBuilder Task("Task");
  Task.addInterface("java/lang/Runnable");
  Task.addDefaultConstructor();
  MethodBuilder &Run = Task.method(AccPublic, "run", "()V");
  Run.getstatic("java/lang/System", "out", Out)
      .ldcString("task ran")
      .invokevirtual("java/io/PrintStream", "println",
                     "(Ljava/lang/String;)V")
      .op(Op::Return);
  Rig.addClass(Task);
  ClassBuilder B("Main");
  MethodBuilder &M = mainOf(B);
  M.anew("java/lang/Thread")
      .op(Op::Dup)
      .anew("Task")
      .op(Op::Dup)
      .invokespecial("Task", "<init>", "()V")
      .invokespecial("java/lang/Thread", "<init>",
                     "(Ljava/lang/Runnable;)V")
      .astore(1)
      .aload(1)
      .invokevirtual("java/lang/Thread", "start", "()V")
      .aload(1)
      .invokevirtual("java/lang/Thread", "join", "()V")
      .op(Op::Return);
  Rig.addClass(B);
  EXPECT_EQ(Rig.run("Main"), 0);
  EXPECT_EQ(Rig.out(), "task ran\n");
}

TEST_P(ThreadModes, StartingTwiceThrows) {
  JvmRig Rig(GetParam());
  ClassBuilder B("Main");
  MethodBuilder &M = mainOf(B);
  MethodBuilder::Label Start = M.newLabel(), End = M.newLabel(),
                       Handler = M.newLabel(), After = M.newLabel();
  M.anew("java/lang/Thread")
      .op(Op::Dup)
      .invokespecial("java/lang/Thread", "<init>", "()V")
      .astore(1)
      .aload(1)
      .invokevirtual("java/lang/Thread", "start", "()V")
      .bind(Start)
      .aload(1)
      .invokevirtual("java/lang/Thread", "start", "()V")
      .bind(End)
      .branch(Op::Goto, After)
      .bind(Handler)
      .op(Op::Pop)
      .iconst(2);
  printlnInt(M);
  M.bind(After).op(Op::Return).handler(
      Start, End, Handler, "java/lang/IllegalThreadStateException");
  Rig.addClass(B);
  EXPECT_EQ(Rig.run("Main"), 0);
  EXPECT_EQ(Rig.out(), "2\n");
}

TEST_P(ThreadModes, WaitNotifyProducerConsumer) {
  JvmRig Rig(GetParam());
  // class Box { int value; int full;
  //   synchronized void put(int v) { while (full != 0) wait();
  //                                   value = v; full = 1; notifyAll(); }
  //   synchronized int take() { while (full == 0) wait();
  //                              full = 0; notifyAll(); return value; } }
  ClassBuilder Box("Box");
  Box.addField(AccPrivate, "value", "I");
  Box.addField(AccPrivate, "full", "I");
  Box.addDefaultConstructor();
  {
    MethodBuilder &Put =
        Box.method(AccPublic | AccSynchronized, "put", "(I)V");
    MethodBuilder::Label Check = Put.newLabel(), Ready = Put.newLabel();
    Put.bind(Check)
        .aload(0)
        .getfield("Box", "full", "I")
        .branch(Op::Ifeq, Ready)
        .aload(0)
        .invokevirtual("java/lang/Object", "wait", "()V")
        .branch(Op::Goto, Check)
        .bind(Ready)
        .aload(0)
        .iload(1)
        .putfield("Box", "value", "I")
        .aload(0)
        .iconst(1)
        .putfield("Box", "full", "I")
        .aload(0)
        .invokevirtual("java/lang/Object", "notifyAll", "()V")
        .op(Op::Return);
  }
  {
    MethodBuilder &Take =
        Box.method(AccPublic | AccSynchronized, "take", "()I");
    MethodBuilder::Label Check = Take.newLabel(), Ready = Take.newLabel();
    Take.bind(Check)
        .aload(0)
        .getfield("Box", "full", "I")
        .branch(Op::Ifne, Ready)
        .aload(0)
        .invokevirtual("java/lang/Object", "wait", "()V")
        .branch(Op::Goto, Check)
        .bind(Ready)
        .aload(0)
        .iconst(0)
        .putfield("Box", "full", "I")
        .aload(0)
        .invokevirtual("java/lang/Object", "notifyAll", "()V")
        .aload(0)
        .getfield("Box", "value", "I")
        .op(Op::Ireturn);
  }
  Rig.addClass(Box);
  // class Producer extends Thread { Box b; void run() {
  //   for (i = 1; i <= 5; i++) b.put(i * 10); } }
  ClassBuilder Producer("Producer", "java/lang/Thread");
  Producer.addField(AccPublic, "b", "LBox;");
  Producer.addDefaultConstructor();
  {
    MethodBuilder &Run = Producer.method(AccPublic, "run", "()V");
    MethodBuilder::Label Loop = Run.newLabel(), Done = Run.newLabel();
    Run.iconst(1)
        .istore(1)
        .bind(Loop)
        .iload(1)
        .iconst(5)
        .branch(Op::IfIcmpgt, Done)
        .aload(0)
        .getfield("Producer", "b", "LBox;")
        .iload(1)
        .iconst(10)
        .op(Op::Imul)
        .invokevirtual("Box", "put", "(I)V")
        .iinc(1, 1)
        .branch(Op::Goto, Loop)
        .bind(Done)
        .op(Op::Return);
  }
  Rig.addClass(Producer);
  // main: start producer; take 5 values; print their sum (10+..+50=150).
  ClassBuilder B("Main");
  MethodBuilder &M = mainOf(B);
  MethodBuilder::Label Loop = M.newLabel(), Done = M.newLabel();
  M.anew("Box")
      .op(Op::Dup)
      .invokespecial("Box", "<init>", "()V")
      .astore(1)
      .anew("Producer")
      .op(Op::Dup)
      .invokespecial("Producer", "<init>", "()V")
      .astore(2)
      .aload(2)
      .aload(1)
      .putfield("Producer", "b", "LBox;")
      .aload(2)
      .invokevirtual("java/lang/Thread", "start", "()V")
      .iconst(0)
      .istore(3) // sum
      .iconst(0)
      .istore(4) // i
      .bind(Loop)
      .iload(4)
      .iconst(5)
      .branch(Op::IfIcmpge, Done)
      .iload(3)
      .aload(1)
      .invokevirtual("Box", "take", "()I")
      .op(Op::Iadd)
      .istore(3)
      .iinc(4, 1)
      .branch(Op::Goto, Loop)
      .bind(Done)
      .iload(3);
  printlnInt(M);
  M.op(Op::Return);
  Rig.addClass(B);
  EXPECT_EQ(Rig.run("Main"), 0);
  EXPECT_EQ(Rig.out(), "150\n");
}

TEST_P(ThreadModes, MonitorEnterExitInstructions) {
  // Explicit monitorenter/monitorexit around a critical section.
  JvmRig Rig(GetParam());
  ClassBuilder B("Main");
  MethodBuilder &M = mainOf(B);
  M.anew("java/lang/Object")
      .op(Op::Dup)
      .invokespecial("java/lang/Object", "<init>", "()V")
      .astore(1)
      .aload(1)
      .op(Op::Monitorenter)
      .aload(1)
      .op(Op::Monitorenter) // Reentrant.
      .iconst(5);
  printlnInt(M);
  M.aload(1)
      .op(Op::Monitorexit)
      .aload(1)
      .op(Op::Monitorexit)
      .op(Op::Return);
  Rig.addClass(B);
  EXPECT_EQ(Rig.run("Main"), 0);
  EXPECT_EQ(Rig.out(), "5\n");
}

TEST_P(ThreadModes, UnownedMonitorExitThrows) {
  JvmRig Rig(GetParam());
  ClassBuilder B("Main");
  MethodBuilder &M = mainOf(B);
  MethodBuilder::Label Start = M.newLabel(), End = M.newLabel(),
                       Handler = M.newLabel(), After = M.newLabel();
  M.anew("java/lang/Object")
      .op(Op::Dup)
      .invokespecial("java/lang/Object", "<init>", "()V")
      .astore(1)
      .bind(Start)
      .aload(1)
      .op(Op::Monitorexit)
      .bind(End)
      .branch(Op::Goto, After)
      .bind(Handler)
      .op(Op::Pop)
      .iconst(1);
  printlnInt(M);
  M.bind(After).op(Op::Return).handler(
      Start, End, Handler, "java/lang/IllegalMonitorStateException");
  Rig.addClass(B);
  EXPECT_EQ(Rig.run("Main"), 0);
  EXPECT_EQ(Rig.out(), "1\n");
}

INSTANTIATE_TEST_SUITE_P(Modes, ThreadModes,
                         ::testing::Values(ExecutionMode::DoppioJS,
                                           ExecutionMode::NativeHotspot),
                         [](const auto &Info) {
                           return std::string(
                               executionModeName(Info.param));
                         });

//===--------------------------------------------------------------------===//
// Segmentation & responsiveness (§4.1/§6.1) — DoppioJS mode only.
//===--------------------------------------------------------------------===//

TEST(Segmentation, LongJvmComputationKeepsPageResponsive) {
  JvmRig Rig(ExecutionMode::DoppioJS);
  ClassBuilder B("Main");
  MethodBuilder &M = mainOf(B);
  // A tight ~2M-iteration loop calling a method each time (the call
  // boundary carries the suspend check, §6.1).
  MethodBuilder &Tick = B.method(AccPublic | AccStatic, "tick", "(I)I");
  Tick.iload(0).iconst(1).op(Op::Iadd).op(Op::Ireturn);
  MethodBuilder::Label Loop = M.newLabel(), Done = M.newLabel();
  M.iconst(0).istore(1);
  M.bind(Loop)
      .iload(1)
      .iconst(2000000)
      .branch(Op::IfIcmpge, Done)
      .iload(1)
      .invokestatic("Main", "tick", "(I)I")
      .istore(1)
      .branch(Op::Goto, Loop)
      .bind(Done)
      .iload(1);
  printlnInt(M);
  M.op(Op::Return);
  Rig.addClass(B);
  // Synthetic user input throughout the run.
  for (int I = 1; I <= 20; ++I)
    Rig.Env.loop().setTimeout([] {}, browser::msToNs(40) * I,
                              browser::EventKind::Input);
  EXPECT_EQ(Rig.run("Main"), 0);
  EXPECT_EQ(Rig.out(), "2000000\n");
  EXPECT_FALSE(Rig.Env.loop().watchdogFired())
      << "event segmentation must keep every event short (§4.1)";
  EXPECT_GT(Rig.vm().stats().SuspendYields, 5u);
  EXPECT_LT(Rig.Env.loop().stats().MaxInputLatencyNs, browser::msToNs(60))
      << "user input must not wait behind the computation";
}

TEST(Segmentation, NativeModeNeverSuspends) {
  JvmRig Rig(ExecutionMode::NativeHotspot);
  ClassBuilder B("Main");
  MethodBuilder &Tick = B.method(AccPublic | AccStatic, "tick", "(I)I");
  Tick.iload(0).iconst(1).op(Op::Iadd).op(Op::Ireturn);
  MethodBuilder &M = mainOf(B);
  MethodBuilder::Label Loop = M.newLabel(), Done = M.newLabel();
  M.iconst(0).istore(1);
  M.bind(Loop)
      .iload(1)
      .iconst(100000)
      .branch(Op::IfIcmpge, Done)
      .iload(1)
      .invokestatic("Main", "tick", "(I)I")
      .istore(1)
      .branch(Op::Goto, Loop)
      .bind(Done)
      .iload(1);
  printlnInt(M);
  M.op(Op::Return);
  Rig.addClass(B);
  EXPECT_EQ(Rig.run("Main"), 0);
  EXPECT_EQ(Rig.vm().stats().SuspendYields, 0u);
}

TEST(Segmentation, SuspensionTimeIsSmallFractionOnChrome) {
  // Figure 5's headline: <2% of runtime suspended in Chrome.
  JvmRig Rig(ExecutionMode::DoppioJS);
  ClassBuilder B("Main");
  MethodBuilder &Tick = B.method(AccPublic | AccStatic, "tick", "(I)I");
  Tick.iload(0).iconst(1).op(Op::Iadd).op(Op::Ireturn);
  MethodBuilder &M = mainOf(B);
  MethodBuilder::Label Loop = M.newLabel(), Done = M.newLabel();
  M.iconst(0).istore(1);
  M.bind(Loop)
      .iload(1)
      .iconst(1000000)
      .branch(Op::IfIcmpge, Done)
      .iload(1)
      .invokestatic("Main", "tick", "(I)I")
      .istore(1)
      .branch(Op::Goto, Loop)
      .bind(Done)
      .op(Op::Return);
  Rig.addClass(B);
  EXPECT_EQ(Rig.run("Main"), 0);
  uint64_t Suspended = Rig.vm().suspender().totalSuspendedNs();
  uint64_t Total = Rig.Env.clock().nowNs();
  ASSERT_GT(Total, 0u);
  double Fraction = static_cast<double>(Suspended) /
                    static_cast<double>(Total);
  EXPECT_LT(Fraction, 0.02)
      << "sendMessage resumption keeps suspension under 2% (§7.1)";
  EXPECT_GT(Rig.vm().suspender().resumptionCount(), 0u);
}

} // namespace
