//===- tests/jvm/long64_test.cpp ------------------------------------------==//
//
// Differential tests of the software 64-bit integers (§8) against the
// hardware int64 the NativeHotspot baseline uses: on every operation and a
// seeded sweep of operands, both must agree bit-for-bit.
//
//===----------------------------------------------------------------------===//

#include "jvm/long64.h"

#include "gtest/gtest.h"

#include <limits>
#include <random>

using namespace doppio;
using namespace doppio::jvm;

namespace {

const int64_t Interesting[] = {
    0,
    1,
    -1,
    2,
    -2,
    42,
    -1000000,
    0x7FFFFFFF,
    -0x80000000ll,
    0x100000000ll,
    -0x100000000ll,
    0x123456789ABCDEFll,
    -0x123456789ABCDEFll,
    std::numeric_limits<int64_t>::max(),
    std::numeric_limits<int64_t>::min(),
    std::numeric_limits<int64_t>::min() + 1,
};

TEST(Long64, BitsRoundTrip) {
  for (int64_t V : Interesting)
    EXPECT_EQ(Long64::fromBits(V).bits(), V);
}

TEST(Long64, FromInt32SignExtends) {
  EXPECT_EQ(Long64::fromInt32(-1).bits(), -1);
  EXPECT_EQ(Long64::fromInt32(INT32_MIN).bits(),
            static_cast<int64_t>(INT32_MIN));
  EXPECT_EQ(Long64::fromInt32(12345).bits(), 12345);
}

TEST(Long64, ToInt32Truncates) {
  EXPECT_EQ(Long64::fromBits(0x1FFFFFFFFll).toInt32(), -1);
  EXPECT_EQ(Long64::fromBits(0x100000000ll).toInt32(), 0);
}

TEST(Long64, DoubleConversions) {
  EXPECT_DOUBLE_EQ(Long64::fromBits(1000000).toDouble(), 1e6);
  EXPECT_DOUBLE_EQ(Long64::fromBits(-1000000).toDouble(), -1e6);
  EXPECT_EQ(Long64::fromDouble(1e6).bits(), 1000000);
  EXPECT_EQ(Long64::fromDouble(-1.5).bits(), -1);
  EXPECT_EQ(Long64::fromDouble(std::nan("")).bits(), 0);
  EXPECT_EQ(Long64::fromDouble(1e300).bits(),
            std::numeric_limits<int64_t>::max());
  EXPECT_EQ(Long64::fromDouble(-1e300).bits(),
            std::numeric_limits<int64_t>::min());
  EXPECT_DOUBLE_EQ(Long64::fromBits(INT64_MIN).toDouble(),
                   -9223372036854775808.0);
}

TEST(Long64, ExhaustiveOnInterestingPairs) {
  for (int64_t A : Interesting) {
    Long64 LA = Long64::fromBits(A);
    uint64_t UA = static_cast<uint64_t>(A);
    EXPECT_EQ(negLong(LA).bits(), static_cast<int64_t>(0 - UA)) << A;
    for (int64_t B : Interesting) {
      Long64 LB = Long64::fromBits(B);
      uint64_t UB = static_cast<uint64_t>(B);
      EXPECT_EQ(addLong(LA, LB).bits(), static_cast<int64_t>(UA + UB))
          << A << "+" << B;
      EXPECT_EQ(subLong(LA, LB).bits(), static_cast<int64_t>(UA - UB))
          << A << "-" << B;
      EXPECT_EQ(mulLong(LA, LB).bits(), static_cast<int64_t>(UA * UB))
          << A << "*" << B;
      EXPECT_EQ(andLong(LA, LB).bits(), A & B);
      EXPECT_EQ(orLong(LA, LB).bits(), A | B);
      EXPECT_EQ(xorLong(LA, LB).bits(), A ^ B);
      EXPECT_EQ(cmpLong(LA, LB), A < B ? -1 : (A > B ? 1 : 0))
          << A << "<=>" << B;
      EXPECT_EQ(eqLong(LA, LB), A == B);
      if (B != 0) {
        // JVM semantics: MIN / -1 wraps to MIN.
        int64_t Q = (A == INT64_MIN && B == -1) ? A : A / B;
        int64_t R = (A == INT64_MIN && B == -1) ? 0 : A % B;
        EXPECT_EQ(divLong(LA, LB).bits(), Q) << A << "/" << B;
        EXPECT_EQ(remLong(LA, LB).bits(), R) << A << "%" << B;
      }
    }
  }
}

TEST(Long64, ShiftsMatchHardware) {
  for (int64_t A : Interesting) {
    Long64 LA = Long64::fromBits(A);
    for (int32_t S : {0, 1, 5, 31, 32, 33, 63, 64, 65, -1}) {
      int32_t Masked = S & 63;
      EXPECT_EQ(shlLong(LA, S).bits(),
                static_cast<int64_t>(static_cast<uint64_t>(A) << Masked))
          << A << "<<" << S;
      EXPECT_EQ(shrLong(LA, S).bits(), A >> Masked) << A << ">>" << S;
      EXPECT_EQ(ushrLong(LA, S).bits(),
                static_cast<int64_t>(static_cast<uint64_t>(A) >> Masked))
          << A << ">>>" << S;
    }
  }
}

// Property sweep: random 64-bit operands.
class Long64Property : public ::testing::TestWithParam<uint32_t> {};

TEST_P(Long64Property, RandomDifferentialSweep) {
  std::mt19937_64 Rng(GetParam());
  for (int I = 0; I != 2000; ++I) {
    int64_t A = static_cast<int64_t>(Rng());
    int64_t B = static_cast<int64_t>(Rng());
    // Mix in small operands, where carries matter most.
    if (I % 3 == 0)
      B = static_cast<int32_t>(B);
    if (I % 5 == 0)
      A = static_cast<int16_t>(A);
    Long64 LA = Long64::fromBits(A), LB = Long64::fromBits(B);
    uint64_t UA = static_cast<uint64_t>(A), UB = static_cast<uint64_t>(B);
    ASSERT_EQ(addLong(LA, LB).bits(), static_cast<int64_t>(UA + UB));
    ASSERT_EQ(subLong(LA, LB).bits(), static_cast<int64_t>(UA - UB));
    ASSERT_EQ(mulLong(LA, LB).bits(), static_cast<int64_t>(UA * UB));
    if (B != 0 && !(A == INT64_MIN && B == -1)) {
      ASSERT_EQ(divLong(LA, LB).bits(), A / B);
      ASSERT_EQ(remLong(LA, LB).bits(), A % B);
    }
    ASSERT_EQ(cmpLong(LA, LB), A < B ? -1 : (A > B ? 1 : 0));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Long64Property,
                         ::testing::Values(11u, 22u, 33u, 44u));

} // namespace
