//===- tests/jvm/interpreter_test.cpp -------------------------------------==//
//
// End-to-end interpreter tests, parameterized over both execution modes
// (the paper's system and its HotSpot-interpreter baseline): identical
// observable behaviour is itself the §7.1 completeness claim in miniature.
//
//===----------------------------------------------------------------------===//

#include "jvm_test_util.h"

#include "gtest/gtest.h"

using namespace doppio;
using namespace doppio::jvm;
using namespace doppio::testutil;

namespace {

const char *PrintlnI = "(I)V";
const char *Out = "Ljava/io/PrintStream;";

/// Starts a main method builder that is expected to end with Return.
MethodBuilder &mainOf(ClassBuilder &B) {
  return B.method(AccPublic | AccStatic, "main",
                  "([Ljava/lang/String;)V");
}

/// Emits: System.out.println(<int on stack>).
void printlnInt(MethodBuilder &M) {
  // Stack: ..., value -> print it. getstatic pushes the stream, so swap.
  M.getstatic("java/lang/System", "out", Out)
      .op(Op::Swap)
      .invokevirtual("java/io/PrintStream", "println", PrintlnI);
}

class BothModes : public ::testing::TestWithParam<ExecutionMode> {};

TEST_P(BothModes, ArithmeticAndPrintln) {
  JvmRig Rig(GetParam());
  ClassBuilder B("Main");
  MethodBuilder &M = mainOf(B);
  M.iconst(6).iconst(7).op(Op::Imul);
  printlnInt(M);
  M.op(Op::Return);
  Rig.addClass(B);
  EXPECT_EQ(Rig.run("Main"), 0);
  EXPECT_EQ(Rig.out(), "42\n");
}

TEST_P(BothModes, IntegerOverflowWraps) {
  JvmRig Rig(GetParam());
  ClassBuilder B("Main");
  MethodBuilder &M = mainOf(B);
  M.iconst(INT32_MAX).iconst(1).op(Op::Iadd);
  printlnInt(M);
  M.iconst(INT32_MIN).iconst(-1).op(Op::Imul); // MIN * -1 wraps to MIN.
  printlnInt(M);
  M.iconst(123456789).iconst(987654321).op(Op::Imul);
  printlnInt(M);
  M.op(Op::Return);
  Rig.addClass(B);
  EXPECT_EQ(Rig.run("Main"), 0);
  EXPECT_EQ(Rig.out(), "-2147483648\n-2147483648\n-67153019\n");
}

TEST_P(BothModes, LoopsAndConditionals) {
  // Sum of 1..100 via a while loop.
  JvmRig Rig(GetParam());
  ClassBuilder B("Main");
  MethodBuilder &M = mainOf(B);
  MethodBuilder::Label Loop = M.newLabel(), Done = M.newLabel();
  M.iconst(0).istore(1); // sum
  M.iconst(1).istore(2); // i
  M.bind(Loop)
      .iload(2)
      .iconst(100)
      .branch(Op::IfIcmpgt, Done)
      .iload(1)
      .iload(2)
      .op(Op::Iadd)
      .istore(1)
      .iinc(2, 1)
      .branch(Op::Goto, Loop)
      .bind(Done)
      .iload(1);
  printlnInt(M);
  M.op(Op::Return);
  Rig.addClass(B);
  EXPECT_EQ(Rig.run("Main"), 0);
  EXPECT_EQ(Rig.out(), "5050\n");
}

TEST_P(BothModes, StaticMethodCallsAndRecursion) {
  // fib(15) = 610, doubly recursive.
  JvmRig Rig(GetParam());
  ClassBuilder B("Main");
  MethodBuilder &Fib = B.method(AccPublic | AccStatic, "fib", "(I)I");
  MethodBuilder::Label Recurse = Fib.newLabel();
  Fib.iload(0)
      .iconst(2)
      .branch(Op::IfIcmpge, Recurse)
      .iload(0)
      .op(Op::Ireturn)
      .bind(Recurse)
      .iload(0)
      .iconst(1)
      .op(Op::Isub)
      .invokestatic("Main", "fib", "(I)I")
      .iload(0)
      .iconst(2)
      .op(Op::Isub)
      .invokestatic("Main", "fib", "(I)I")
      .op(Op::Iadd)
      .op(Op::Ireturn);
  MethodBuilder &M = mainOf(B);
  M.iconst(15).invokestatic("Main", "fib", "(I)I");
  printlnInt(M);
  M.op(Op::Return);
  Rig.addClass(B);
  EXPECT_EQ(Rig.run("Main"), 0);
  EXPECT_EQ(Rig.out(), "610\n");
}

TEST_P(BothModes, LongArithmeticSoftwareVsHardware) {
  JvmRig Rig(GetParam());
  ClassBuilder B("Main");
  MethodBuilder &M = mainOf(B);
  auto PrintL = [&](MethodBuilder &MB) {
    MB.invokestatic("java/lang/Long", "toString",
                    "(J)Ljava/lang/String;")
        .getstatic("java/lang/System", "out", Out)
        .op(Op::Swap)
        .invokevirtual("java/io/PrintStream", "println",
                       "(Ljava/lang/String;)V");
  };
  M.lconst(123456789012345ll).lconst(987654321ll).op(Op::Ladd);
  PrintL(M);
  M.lconst(1ll << 40).lconst(3).op(Op::Lmul);
  PrintL(M);
  M.lconst(-1000000000000ll).lconst(7).op(Op::Ldiv);
  PrintL(M);
  M.lconst(-1000000000000ll).lconst(7).op(Op::Lrem);
  PrintL(M);
  M.lconst(1).iconst(62).op(Op::Lshl);
  PrintL(M);
  M.lconst(-8).iconst(1).op(Op::Lshr);
  PrintL(M);
  M.lconst(-8).iconst(1).op(Op::Lushr);
  PrintL(M);
  M.op(Op::Return);
  Rig.addClass(B);
  EXPECT_EQ(Rig.run("Main"), 0);
  EXPECT_EQ(Rig.out(), "123457776666666\n3298534883328\n-142857142857\n"
                       "-1\n4611686018427387904\n-4\n9223372036854775804\n");
}

TEST_P(BothModes, LongComparisonDrivesControlFlow) {
  JvmRig Rig(GetParam());
  ClassBuilder B("Main");
  MethodBuilder &M = mainOf(B);
  MethodBuilder::Label Less = M.newLabel(), End = M.newLabel();
  M.lconst(0x123456789ll)
      .lconst(0x123456790ll)
      .op(Op::Lcmp)
      .branch(Op::Iflt, Less)
      .iconst(0);
  printlnInt(M);
  M.branch(Op::Goto, End).bind(Less).iconst(1);
  printlnInt(M);
  M.bind(End).op(Op::Return);
  Rig.addClass(B);
  EXPECT_EQ(Rig.run("Main"), 0);
  EXPECT_EQ(Rig.out(), "1\n");
}

TEST_P(BothModes, FloatsAndDoubles) {
  JvmRig Rig(GetParam());
  ClassBuilder B("Main");
  MethodBuilder &M = mainOf(B);
  // (int)(2.5 * 4.0) == 10
  M.dconst(2.5).dconst(4.0).op(Op::Dmul).op(Op::D2i);
  printlnInt(M);
  // float comparison: 1.5f > 1.0f
  MethodBuilder::Label True1 = M.newLabel(), End1 = M.newLabel();
  M.fconst(1.5f)
      .fconst(1.0f)
      .op(Op::Fcmpl)
      .branch(Op::Ifgt, True1)
      .iconst(0)
      .branch(Op::Goto, End1)
      .bind(True1)
      .iconst(1)
      .bind(End1);
  printlnInt(M);
  // Math.sqrt(144.0) -> 12
  M.dconst(144.0)
      .invokestatic("java/lang/Math", "sqrt", "(D)D")
      .op(Op::D2i);
  printlnInt(M);
  M.op(Op::Return);
  Rig.addClass(B);
  EXPECT_EQ(Rig.run("Main"), 0);
  EXPECT_EQ(Rig.out(), "10\n1\n12\n");
}

TEST_P(BothModes, ArraysAndArraycopy) {
  JvmRig Rig(GetParam());
  ClassBuilder B("Main");
  MethodBuilder &M = mainOf(B);
  // int[] a = new int[5]; a[i] = i*i; sum
  MethodBuilder::Label Fill = M.newLabel(), Sum = M.newLabel(),
                       Done = M.newLabel();
  M.iconst(5).newarray(ArrayType::Int).astore(1);
  M.iconst(0).istore(2);
  M.bind(Fill)
      .iload(2)
      .iconst(5)
      .branch(Op::IfIcmpge, Sum)
      .aload(1)
      .iload(2)
      .iload(2)
      .iload(2)
      .op(Op::Imul)
      .op(Op::Iastore)
      .iinc(2, 1)
      .branch(Op::Goto, Fill);
  M.bind(Sum).iconst(0).istore(3).iconst(0).istore(2);
  MethodBuilder::Label Loop2 = M.newLabel();
  M.bind(Loop2)
      .iload(2)
      .aload(1)
      .op(Op::Arraylength)
      .branch(Op::IfIcmpge, Done)
      .iload(3)
      .aload(1)
      .iload(2)
      .op(Op::Iaload)
      .op(Op::Iadd)
      .istore(3)
      .iinc(2, 1)
      .branch(Op::Goto, Loop2);
  M.bind(Done).iload(3);
  printlnInt(M); // 0+1+4+9+16 = 30
  M.op(Op::Return);
  Rig.addClass(B);
  EXPECT_EQ(Rig.run("Main"), 0);
  EXPECT_EQ(Rig.out(), "30\n");
}

TEST_P(BothModes, MultiDimensionalArrays) {
  JvmRig Rig(GetParam());
  ClassBuilder B("Main");
  MethodBuilder &M = mainOf(B);
  // int[][] m = new int[3][4]; m[2][3] = 77; print m[2][3] and m[0][0].
  M.iconst(3).iconst(4).multianewarray("[[I", 2).astore(1);
  M.aload(1).iconst(2).op(Op::Aaload).iconst(3).iconst(77).op(Op::Iastore);
  M.aload(1).iconst(2).op(Op::Aaload).iconst(3).op(Op::Iaload);
  printlnInt(M);
  M.aload(1).iconst(0).op(Op::Aaload).iconst(0).op(Op::Iaload);
  printlnInt(M);
  M.op(Op::Return);
  Rig.addClass(B);
  EXPECT_EQ(Rig.run("Main"), 0);
  EXPECT_EQ(Rig.out(), "77\n0\n");
}

TEST_P(BothModes, ObjectsFieldsAndVirtualDispatch) {
  JvmRig Rig(GetParam());
  // class Animal { int legs() { return 4; } }
  ClassBuilder Animal("Animal");
  Animal.addDefaultConstructor();
  Animal.method(AccPublic, "legs", "()I").iconst(4).op(Op::Ireturn);
  // class Bird extends Animal { int legs() { return 2; } }
  ClassBuilder Bird("Bird", "Animal");
  Bird.addDefaultConstructor();
  Bird.method(AccPublic, "legs", "()I").iconst(2).op(Op::Ireturn);
  // main: Animal a = new Bird(); print a.legs() + new Animal().legs()
  ClassBuilder B("Main");
  MethodBuilder &M = mainOf(B);
  M.anew("Bird")
      .op(Op::Dup)
      .invokespecial("Bird", "<init>", "()V")
      .invokevirtual("Animal", "legs", "()I")
      .anew("Animal")
      .op(Op::Dup)
      .invokespecial("Animal", "<init>", "()V")
      .invokevirtual("Animal", "legs", "()I")
      .op(Op::Iadd);
  printlnInt(M);
  M.op(Op::Return);
  Rig.addClass(Animal);
  Rig.addClass(Bird);
  Rig.addClass(B);
  EXPECT_EQ(Rig.run("Main"), 0);
  EXPECT_EQ(Rig.out(), "6\n");
}

TEST_P(BothModes, InstanceFieldsAndCounters) {
  JvmRig Rig(GetParam());
  ClassBuilder Counter("Counter");
  Counter.addField(AccPrivate, "count", "I");
  Counter.addDefaultConstructor();
  MethodBuilder &Inc = Counter.method(AccPublic, "inc", "()V");
  Inc.aload(0)
      .aload(0)
      .getfield("Counter", "count", "I")
      .iconst(1)
      .op(Op::Iadd)
      .putfield("Counter", "count", "I")
      .op(Op::Return);
  MethodBuilder &Get = Counter.method(AccPublic, "get", "()I");
  Get.aload(0).getfield("Counter", "count", "I").op(Op::Ireturn);

  ClassBuilder B("Main");
  MethodBuilder &M = mainOf(B);
  MethodBuilder::Label Loop = M.newLabel(), Done = M.newLabel();
  M.anew("Counter")
      .op(Op::Dup)
      .invokespecial("Counter", "<init>", "()V")
      .astore(1)
      .iconst(0)
      .istore(2)
      .bind(Loop)
      .iload(2)
      .iconst(10)
      .branch(Op::IfIcmpge, Done)
      .aload(1)
      .invokevirtual("Counter", "inc", "()V")
      .iinc(2, 1)
      .branch(Op::Goto, Loop)
      .bind(Done)
      .aload(1)
      .invokevirtual("Counter", "get", "()I");
  printlnInt(M);
  M.op(Op::Return);
  Rig.addClass(Counter);
  Rig.addClass(B);
  EXPECT_EQ(Rig.run("Main"), 0);
  EXPECT_EQ(Rig.out(), "10\n");
}

TEST_P(BothModes, InterfacesAndInvokeinterface) {
  JvmRig Rig(GetParam());
  ClassBuilder Shape("Shape");
  Shape.setAccess(AccPublic | AccInterface | AccAbstract);
  Shape.abstractMethod(AccPublic, "area", "()I");
  ClassBuilder Square("Square");
  Square.addInterface("Shape");
  Square.addField(AccPrivate, "side", "I");
  Square.addDefaultConstructor();
  MethodBuilder &SetSide = Square.method(AccPublic, "setSide", "(I)V");
  SetSide.aload(0).iload(1).putfield("Square", "side", "I").op(Op::Return);
  MethodBuilder &Area = Square.method(AccPublic, "area", "()I");
  Area.aload(0)
      .getfield("Square", "side", "I")
      .aload(0)
      .getfield("Square", "side", "I")
      .op(Op::Imul)
      .op(Op::Ireturn);
  ClassBuilder B("Main");
  MethodBuilder &M = mainOf(B);
  M.anew("Square")
      .op(Op::Dup)
      .invokespecial("Square", "<init>", "()V")
      .astore(1)
      .aload(1)
      .iconst(9)
      .invokevirtual("Square", "setSide", "(I)V")
      .aload(1)
      .invokeinterface("Shape", "area", "()I");
  printlnInt(M);
  // instanceof through the interface.
  M.aload(1).instanceOf("Shape");
  printlnInt(M);
  M.op(Op::Return);
  Rig.addClass(Shape);
  Rig.addClass(Square);
  Rig.addClass(B);
  EXPECT_EQ(Rig.run("Main"), 0);
  EXPECT_EQ(Rig.out(), "81\n1\n");
}

TEST_P(BothModes, StaticFieldsAndClinit) {
  JvmRig Rig(GetParam());
  ClassBuilder Config("Config");
  Config.addField(AccPublic | AccStatic, "magic", "I");
  MethodBuilder &Clinit =
      Config.method(AccStatic, "<clinit>", "()V");
  Clinit.iconst(1234)
      .putstatic("Config", "magic", "I")
      .getstatic("java/lang/System", "out", Out)
      .ldcString("clinit ran")
      .invokevirtual("java/io/PrintStream", "println",
                     "(Ljava/lang/String;)V")
      .op(Op::Return);
  ClassBuilder B("Main");
  MethodBuilder &M = mainOf(B);
  // Two reads: <clinit> must run exactly once.
  M.getstatic("Config", "magic", "I");
  printlnInt(M);
  M.getstatic("Config", "magic", "I");
  printlnInt(M);
  M.op(Op::Return);
  Rig.addClass(Config);
  Rig.addClass(B);
  EXPECT_EQ(Rig.run("Main"), 0);
  EXPECT_EQ(Rig.out(), "clinit ran\n1234\n1234\n");
}

TEST_P(BothModes, StringsAndStringBuilder) {
  JvmRig Rig(GetParam());
  ClassBuilder B("Main");
  MethodBuilder &M = mainOf(B);
  const char *SB = "Ljava/lang/StringBuilder;";
  M.anew("java/lang/StringBuilder")
      .op(Op::Dup)
      .invokespecial("java/lang/StringBuilder", "<init>", "()V")
      .ldcString("x=")
      .invokevirtual("java/lang/StringBuilder", "append",
                     ("(Ljava/lang/String;)" + std::string(SB)))
      .iconst(42)
      .invokevirtual("java/lang/StringBuilder", "append",
                     ("(I)" + std::string(SB)))
      .ldcString(", y=")
      .invokevirtual("java/lang/StringBuilder", "append",
                     ("(Ljava/lang/String;)" + std::string(SB)))
      .dconst(1.5)
      .invokevirtual("java/lang/StringBuilder", "append",
                     ("(D)" + std::string(SB)))
      .invokevirtual("java/lang/StringBuilder", "toString",
                     "()Ljava/lang/String;")
      .getstatic("java/lang/System", "out", Out)
      .op(Op::Swap)
      .invokevirtual("java/io/PrintStream", "println",
                     "(Ljava/lang/String;)V");
  // String methods: length, charAt, substring, equals, intern identity.
  M.ldcString("doppio")
      .invokevirtual("java/lang/String", "length", "()I");
  printlnInt(M);
  M.ldcString("doppio")
      .iconst(1)
      .invokevirtual("java/lang/String", "charAt", "(I)C");
  printlnInt(M); // 'o' = 111
  M.ldcString("breaking the barrier")
      .iconst(9)
      .iconst(12)
      .invokevirtual("java/lang/String", "substring",
                     "(II)Ljava/lang/String;")
      .ldcString("the")
      .invokevirtual("java/lang/String", "equals",
                     "(Ljava/lang/Object;)Z");
  printlnInt(M);
  M.op(Op::Return);
  Rig.addClass(B);
  EXPECT_EQ(Rig.run("Main"), 0);
  EXPECT_EQ(Rig.out(), "x=42, y=1.500000\n6\n111\n1\n");
}

TEST_P(BothModes, ExceptionsCaughtBySubtype) {
  JvmRig Rig(GetParam());
  ClassBuilder B("Main");
  MethodBuilder &M = mainOf(B);
  MethodBuilder::Label Start = M.newLabel(), End = M.newLabel(),
                       Handler = M.newLabel(), After = M.newLabel();
  M.bind(Start)
      .iconst(10)
      .iconst(0)
      .op(Op::Idiv) // Throws ArithmeticException.
      .op(Op::Pop)
      .bind(End)
      .branch(Op::Goto, After)
      .bind(Handler) // Catches java/lang/Exception (a supertype).
      .invokevirtual("java/lang/Throwable", "getMessage",
                     "()Ljava/lang/String;")
      .getstatic("java/lang/System", "out", Out)
      .op(Op::Swap)
      .invokevirtual("java/io/PrintStream", "println",
                     "(Ljava/lang/String;)V")
      .bind(After)
      .op(Op::Return)
      .handler(Start, End, Handler, "java/lang/Exception");
  Rig.addClass(B);
  EXPECT_EQ(Rig.run("Main"), 0);
  EXPECT_EQ(Rig.out(), "/ by zero\n");
}

TEST_P(BothModes, ExceptionsUnwindAcrossFrames) {
  JvmRig Rig(GetParam());
  ClassBuilder B("Main");
  // thrower(): throws ArrayIndexOutOfBounds deep in a call chain.
  MethodBuilder &Deep = B.method(AccPublic | AccStatic, "deep", "()I");
  Deep.iconst(1)
      .newarray(ArrayType::Int)
      .iconst(5)
      .op(Op::Iaload)
      .op(Op::Ireturn);
  MethodBuilder &Mid = B.method(AccPublic | AccStatic, "mid", "()I");
  Mid.invokestatic("Main", "deep", "()I").op(Op::Ireturn);
  MethodBuilder &M = mainOf(B);
  MethodBuilder::Label Start = M.newLabel(), End = M.newLabel(),
                       Handler = M.newLabel(), After = M.newLabel();
  M.bind(Start)
      .invokestatic("Main", "mid", "()I")
      .op(Op::Pop)
      .bind(End)
      .branch(Op::Goto, After)
      .bind(Handler)
      .op(Op::Pop)
      .iconst(-7);
  printlnInt(M);
  M.bind(After).op(Op::Return).handler(
      Start, End, Handler, "java/lang/ArrayIndexOutOfBoundsException");
  Rig.addClass(B);
  EXPECT_EQ(Rig.run("Main"), 0);
  EXPECT_EQ(Rig.out(), "-7\n");
}

TEST_P(BothModes, UserThrownExceptionsWithAthrow) {
  JvmRig Rig(GetParam());
  ClassBuilder B("Main");
  MethodBuilder &M = mainOf(B);
  MethodBuilder::Label Start = M.newLabel(), End = M.newLabel(),
                       Handler = M.newLabel(), After = M.newLabel();
  M.bind(Start)
      .anew("java/lang/IllegalStateException")
      .op(Op::Dup)
      .ldcString("custom failure")
      .invokespecial("java/lang/IllegalStateException", "<init>",
                     "(Ljava/lang/String;)V")
      .op(Op::Athrow)
      .bind(End)
      .bind(Handler)
      .invokevirtual("java/lang/Throwable", "getMessage",
                     "()Ljava/lang/String;")
      .getstatic("java/lang/System", "out", Out)
      .op(Op::Swap)
      .invokevirtual("java/io/PrintStream", "println",
                     "(Ljava/lang/String;)V")
      .bind(After)
      .op(Op::Return)
      .handler(Start, End, Handler, "java/lang/IllegalStateException");
  Rig.addClass(B);
  EXPECT_EQ(Rig.run("Main"), 0);
  EXPECT_EQ(Rig.out(), "custom failure\n");
}

TEST_P(BothModes, UncaughtExceptionExitsWithError) {
  JvmRig Rig(GetParam());
  ClassBuilder B("Main");
  MethodBuilder &M = mainOf(B);
  M.aconstNull()
      .invokevirtual("java/lang/Object", "hashCode", "()I")
      .op(Op::Pop)
      .op(Op::Return);
  Rig.addClass(B);
  EXPECT_EQ(Rig.run("Main"), 1);
  EXPECT_NE(Rig.err().find("java/lang/NullPointerException"),
            std::string::npos);
  EXPECT_NE(Rig.err().find("Main.main"), std::string::npos)
      << "stack trace should name the frame (§6.1)";
}

TEST_P(BothModes, CheckcastAndClassCastException) {
  JvmRig Rig(GetParam());
  ClassBuilder A("A");
  A.addDefaultConstructor();
  ClassBuilder C("C");
  C.addDefaultConstructor();
  ClassBuilder B("Main");
  MethodBuilder &M = mainOf(B);
  MethodBuilder::Label Start = M.newLabel(), End = M.newLabel(),
                       Handler = M.newLabel(), After = M.newLabel();
  M.bind(Start)
      .anew("A")
      .op(Op::Dup)
      .invokespecial("A", "<init>", "()V")
      .checkcast("C") // Throws: A is not a C.
      .op(Op::Pop)
      .bind(End)
      .branch(Op::Goto, After)
      .bind(Handler)
      .op(Op::Pop)
      .iconst(99);
  printlnInt(M);
  M.bind(After).op(Op::Return).handler(Start, End, Handler,
                                       "java/lang/ClassCastException");
  Rig.addClass(A);
  Rig.addClass(C);
  Rig.addClass(B);
  EXPECT_EQ(Rig.run("Main"), 0);
  EXPECT_EQ(Rig.out(), "99\n");
}

TEST_P(BothModes, SwitchStatements) {
  JvmRig Rig(GetParam());
  ClassBuilder B("Main");
  MethodBuilder &Pick = B.method(AccPublic | AccStatic, "pick", "(I)I");
  MethodBuilder::Label C0 = Pick.newLabel(), C1 = Pick.newLabel(),
                       C2 = Pick.newLabel(), Def = Pick.newLabel();
  Pick.iload(0).tableswitch(Def, 0, {C0, C1, C2});
  Pick.bind(C0).iconst(100).op(Op::Ireturn);
  Pick.bind(C1).iconst(200).op(Op::Ireturn);
  Pick.bind(C2).iconst(300).op(Op::Ireturn);
  Pick.bind(Def).iconst(-1).op(Op::Ireturn);
  MethodBuilder &Look =
      B.method(AccPublic | AccStatic, "look", "(I)I");
  MethodBuilder::Label L1 = Look.newLabel(), L2 = Look.newLabel(),
                       LD = Look.newLabel();
  Look.iload(0).lookupswitch(LD, {{-5, L1}, {1000, L2}});
  Look.bind(L1).iconst(11).op(Op::Ireturn);
  Look.bind(L2).iconst(22).op(Op::Ireturn);
  Look.bind(LD).iconst(0).op(Op::Ireturn);
  MethodBuilder &M = mainOf(B);
  for (int I = -1; I <= 3; ++I) {
    M.iconst(I).invokestatic("Main", "pick", "(I)I");
    printlnInt(M);
  }
  for (int V : {-5, 1000, 7}) {
    M.iconst(V).invokestatic("Main", "look", "(I)I");
    printlnInt(M);
  }
  M.op(Op::Return);
  Rig.addClass(B);
  EXPECT_EQ(Rig.run("Main"), 0);
  EXPECT_EQ(Rig.out(), "-1\n100\n200\n300\n-1\n11\n22\n0\n");
}

TEST_P(BothModes, LazyClassLoadingThroughXhrFs) {
  // §6.4: classes download on first reference, not eagerly.
  JvmRig Rig(GetParam());
  ClassBuilder Helper("util/Helper");
  Helper.addDefaultConstructor();
  Helper.method(AccPublic | AccStatic, "seven", "()I")
      .iconst(7)
      .op(Op::Ireturn);
  ClassBuilder Unused("util/Unused");
  Unused.addDefaultConstructor();
  ClassBuilder B("Main");
  MethodBuilder &M = mainOf(B);
  M.invokestatic("util/Helper", "seven", "()I");
  printlnInt(M);
  M.op(Op::Return);
  Rig.addClass(Helper);
  Rig.addClass(Unused);
  Rig.addClass(B);
  EXPECT_EQ(Rig.run("Main"), 0);
  EXPECT_EQ(Rig.out(), "7\n");
  // Main + Helper were fetched; Unused was not.
  EXPECT_EQ(Rig.vm().loader().fileLoads(), 2u);
  EXPECT_EQ(Rig.vm().loader().lookup("util/Unused"), nullptr);
}

TEST_P(BothModes, MissingClassIsNoClassDefFoundError) {
  JvmRig Rig(GetParam());
  ClassBuilder B("Main");
  MethodBuilder &M = mainOf(B);
  M.invokestatic("does/not/Exist", "f", "()I").op(Op::Pop).op(Op::Return);
  Rig.addClass(B);
  EXPECT_EQ(Rig.run("Main"), 1);
  EXPECT_NE(Rig.err().find("NoClassDefFoundError"), std::string::npos);
}

TEST_P(BothModes, SystemExitStopsProgram) {
  JvmRig Rig(GetParam());
  ClassBuilder B("Main");
  MethodBuilder &M = mainOf(B);
  M.iconst(1);
  printlnInt(M);
  M.iconst(42).invokestatic("java/lang/System", "exit", "(I)V");
  M.iconst(2); // Never reached.
  printlnInt(M);
  M.op(Op::Return);
  Rig.addClass(B);
  EXPECT_EQ(Rig.run("Main"), 42);
  EXPECT_EQ(Rig.out(), "1\n");
}

TEST_P(BothModes, CommandLineArguments) {
  JvmRig Rig(GetParam());
  ClassBuilder B("Main");
  MethodBuilder &M = mainOf(B);
  // print args.length, then args[1].
  M.aload(0).op(Op::Arraylength);
  printlnInt(M);
  M.aload(0)
      .iconst(1)
      .op(Op::Aaload)
      .checkcast("java/lang/String")
      .getstatic("java/lang/System", "out", Out)
      .op(Op::Swap)
      .invokevirtual("java/io/PrintStream", "println",
                     "(Ljava/lang/String;)V")
      .op(Op::Return);
  Rig.addClass(B);
  EXPECT_EQ(Rig.run("Main", {"alpha", "beta"}), 0);
  EXPECT_EQ(Rig.out(), "2\nbeta\n");
}

TEST_P(BothModes, FileIoThroughBlockingBridge) {
  // §6.3: file natives retain synchronous JVM semantics over the
  // asynchronous Doppio fs.
  JvmRig Rig(GetParam());
  ClassBuilder B("Main");
  MethodBuilder &M = mainOf(B);
  M.ldcString("/data/input.txt")
      .invokestatic("doppio/io/Files", "readString",
                    "(Ljava/lang/String;)Ljava/lang/String;")
      .astore(1)
      .getstatic("java/lang/System", "out", Out)
      .aload(1)
      .invokevirtual("java/io/PrintStream", "println",
                     "(Ljava/lang/String;)V");
  M.ldcString("/data/output.txt")
      .aload(1)
      .ldcString(" (copied)")
      .invokevirtual("java/lang/String", "concat",
                     "(Ljava/lang/String;)Ljava/lang/String;")
      .invokestatic("doppio/io/Files", "writeString",
                    "(Ljava/lang/String;Ljava/lang/String;)V");
  M.ldcString("/data/input.txt")
      .invokestatic("doppio/io/Files", "size", "(Ljava/lang/String;)I");
  printlnInt(M);
  M.op(Op::Return);
  Rig.addClass(B);
  Rig.seedFile("/data/input.txt", "hello from the fs");
  EXPECT_EQ(Rig.run("Main"), 0);
  EXPECT_EQ(Rig.out(), "hello from the fs\n17\n");
  EXPECT_EQ(Rig.fileText("/data/output.txt"),
            "hello from the fs (copied)");
}

TEST_P(BothModes, MissingFileThrowsIoException) {
  JvmRig Rig(GetParam());
  ClassBuilder B("Main");
  MethodBuilder &M = mainOf(B);
  MethodBuilder::Label Start = M.newLabel(), End = M.newLabel(),
                       Handler = M.newLabel(), After = M.newLabel();
  M.bind(Start)
      .ldcString("/missing")
      .invokestatic("doppio/io/Files", "readAllBytes",
                    "(Ljava/lang/String;)[B")
      .op(Op::Pop)
      .bind(End)
      .branch(Op::Goto, After)
      .bind(Handler)
      .op(Op::Pop)
      .iconst(404);
  printlnInt(M);
  M.bind(After).op(Op::Return).handler(Start, End, Handler,
                                       "java/io/IOException");
  Rig.addClass(B);
  EXPECT_EQ(Rig.run("Main"), 0);
  EXPECT_EQ(Rig.out(), "404\n");
}

TEST_P(BothModes, StdinReadLineOverAsyncKeyboard) {
  // The paper's §3.2 motivating example: synchronous console input.
  JvmRig Rig(GetParam());
  ClassBuilder B("Main");
  MethodBuilder &M = mainOf(B);
  M.getstatic("java/lang/System", "out", Out)
      .ldcString("Please enter your name: ")
      .invokevirtual("java/io/PrintStream", "print",
                     "(Ljava/lang/String;)V");
  M.invokestatic("doppio/Stdin", "readLine", "()Ljava/lang/String;")
      .astore(1)
      .getstatic("java/lang/System", "out", Out)
      .ldcString("Your name is ")
      .aload(1)
      .invokevirtual("java/lang/String", "concat",
                     "(Ljava/lang/String;)Ljava/lang/String;")
      .invokevirtual("java/io/PrintStream", "println",
                     "(Ljava/lang/String;)V")
      .op(Op::Return);
  Rig.addClass(B);
  Rig.vm(); // Materialize the process before pushing input.
  Rig.Proc.pushStdin("Ada Lovelace");
  EXPECT_EQ(Rig.run("Main"), 0);
  EXPECT_EQ(Rig.out(), "Please enter your name: Your name is Ada Lovelace\n");
}

TEST_P(BothModes, UnsafeUsesTheUnmanagedHeap) {
  // §6.5: sun.misc.Unsafe over the Doppio heap.
  JvmRig Rig(GetParam());
  ClassBuilder B("Main");
  MethodBuilder &M = mainOf(B);
  M.getstatic("sun/misc/Unsafe", "theUnsafe", "Lsun/misc/Unsafe;")
      .astore(1);
  // long addr = unsafe.allocateMemory(16);
  M.aload(1)
      .lconst(16)
      .invokevirtual("sun/misc/Unsafe", "allocateMemory", "(J)J")
      .lstore(2);
  // unsafe.putInt(addr, 0x01020304); endianness probe: getByte(addr).
  M.aload(1)
      .lload(2)
      .iconst(0x01020304)
      .invokevirtual("sun/misc/Unsafe", "putInt", "(JI)V");
  M.aload(1)
      .lload(2)
      .invokevirtual("sun/misc/Unsafe", "getByte", "(J)B");
  printlnInt(M); // 4: the heap is little endian (§5.2).
  M.aload(1)
      .lload(2)
      .invokevirtual("sun/misc/Unsafe", "getInt", "(J)I");
  printlnInt(M);
  M.aload(1)
      .lload(2)
      .invokevirtual("sun/misc/Unsafe", "freeMemory", "(J)V")
      .op(Op::Return);
  Rig.addClass(B);
  EXPECT_EQ(Rig.run("Main"), 0);
  EXPECT_EQ(Rig.out(), "4\n16909060\n");
  EXPECT_EQ(Rig.vm().heap().allocationCount(), 0u);
}

TEST_P(BothModes, JsEvalInterop) {
  // §6.8: eval returns the result coerced to a JVM String.
  JvmRig Rig(GetParam());
  ClassBuilder B("Main");
  MethodBuilder &M = mainOf(B);
  M.ldcString("1+2")
      .invokestatic("doppio/JS", "eval",
                    "(Ljava/lang/String;)Ljava/lang/String;")
      .getstatic("java/lang/System", "out", Out)
      .op(Op::Swap)
      .invokevirtual("java/io/PrintStream", "println",
                     "(Ljava/lang/String;)V")
      .op(Op::Return);
  Rig.addClass(B);
  Rig.vm().setJsEval([](const std::string &Src) {
    return Src == "1+2" ? "3" : "undefined";
  });
  EXPECT_EQ(Rig.run("Main"), 0);
  EXPECT_EQ(Rig.out(), "3\n");
}

INSTANTIATE_TEST_SUITE_P(Modes, BothModes,
                         ::testing::Values(ExecutionMode::DoppioJS,
                                           ExecutionMode::NativeHotspot),
                         [](const auto &Info) {
                           return std::string(
                               executionModeName(Info.param));
                         });

} // namespace
