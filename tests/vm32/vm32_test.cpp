//===- tests/vm32/vm32_test.cpp -------------------------------------------==//
//
// The §7.2 case study as tests: the same "compiled C++" game under plain
// Emscripten hosting (preloads, no saves, watchdog kills, frozen page)
// versus Doppio hosting (lazy assets, persistent saves, responsive page).
//
//===----------------------------------------------------------------------===//

#include "vm32/game.h"
#include "vm32/minivm.h"

#include "doppio/backends/in_memory.h"
#include "doppio/backends/kv_backend.h"
#include "doppio/backends/mountable.h"
#include "doppio/backends/xhr_fs.h"

#include "gtest/gtest.h"

using namespace doppio;
using namespace doppio::vm32;
using namespace doppio::browser;
using rt::fs::FileSystem;

namespace {

/// Deployment rig: assets on the web server, /srv mounted read-only over
/// XHR, /save mounted on localStorage, writable in-memory root.
struct GameRig {
  GameRig(const GameConfig &Config, const Profile &P = chromeProfile())
      : Env(P) {
    for (auto &[Path, Bytes] : makeGameAssets(Config))
      Env.server().addFile(Path, Bytes);
    auto Root = std::make_unique<rt::fs::InMemoryBackend>(Env);
    auto Mounted =
        std::make_unique<rt::fs::MountableFileSystem>(std::move(Root));
    Mounted->mount("/srv",
                   std::make_unique<rt::fs::XhrBackend>(Env, "/srv"));
    auto Saves = std::make_unique<rt::fs::KeyValueBackend>(
        Env, std::make_unique<rt::fs::LocalStorageKv>(Env));
    Saves->initialize([](std::optional<rt::ApiError>) {});
    Mounted->mount("/save", std::move(Saves));
    Fs = std::make_unique<FileSystem>(Env, Proc, std::move(Mounted));
  }

  /// Reads the save file as a fresh backend over the same localStorage
  /// would after a page reload.
  std::string savedProgress() {
    auto Reloaded = std::make_unique<rt::fs::KeyValueBackend>(
        Env, std::make_unique<rt::fs::LocalStorageKv>(Env));
    Reloaded->initialize([](std::optional<rt::ApiError>) {});
    Env.loop().run();
    std::string Out = "<missing>";
    rt::Process Tmp;
    FileSystem Fresh(Env, Tmp, std::move(Reloaded));
    Fresh.readFile("/progress.txt",
                   [&](rt::ErrorOr<std::vector<uint8_t>> R) {
                     if (R)
                       Out.assign(R->begin(), R->end());
                   });
    Env.loop().run();
    return Out;
  }

  BrowserEnv Env;
  rt::Process Proc;
  std::unique_ptr<FileSystem> Fs;
};

TEST(MiniVmCore, ArithmeticAndCalls) {
  GameConfig Config;
  GameRig Rig(Config);
  MProgram P;
  {
    MFunctionBuilder Sq("square", 1);
    Sq.emit(MOp::LoadLocal, 0)
        .emit(MOp::LoadLocal, 0)
        .emit(MOp::Mul)
        .emit(MOp::Ret);
    P.Functions.push_back(Sq.finish());
  }
  {
    MFunctionBuilder Main("main", 0);
    Main.emit(MOp::Push, 12)
        .emit(MOp::Call, 0, 1)
        .emit(MOp::Print)
        .emit(MOp::Push, 0)
        .emit(MOp::Halt);
    P.Functions.push_back(Main.finish());
    P.Entry = 1;
  }
  MiniVm Vm(Rig.Env, *Rig.Fs, P, HostMode::DoppioRt);
  Vm.start();
  Rig.Env.loop().run();
  EXPECT_EQ(Vm.status(), Vm32Status::Finished);
  EXPECT_EQ(Vm.consoleOutput(), "144\n");
}

TEST(MiniVmCore, LoopsAndBranches) {
  GameRig Rig(GameConfig{});
  MProgram P;
  MFunctionBuilder Main("main", 2); // 0=i 1=sum
  auto Loop = Main.newLabel(), Done = Main.newLabel();
  Main.emit(MOp::Push, 0)
      .emit(MOp::StoreLocal, 0)
      .emit(MOp::Push, 0)
      .emit(MOp::StoreLocal, 1)
      .bind(Loop)
      .emit(MOp::LoadLocal, 0)
      .emit(MOp::Push, 10)
      .emit(MOp::CmpLt)
      .jump(MOp::Jz, Done)
      .emit(MOp::LoadLocal, 1)
      .emit(MOp::LoadLocal, 0)
      .emit(MOp::Add)
      .emit(MOp::StoreLocal, 1)
      .emit(MOp::LoadLocal, 0)
      .emit(MOp::Push, 1)
      .emit(MOp::Add)
      .emit(MOp::StoreLocal, 0)
      .jump(MOp::Jmp, Loop)
      .bind(Done)
      .emit(MOp::LoadLocal, 1)
      .emit(MOp::Print)
      .emit(MOp::Push, 0)
      .emit(MOp::Halt);
  P.Functions.push_back(Main.finish());
  P.Entry = 0;
  MiniVm Vm(Rig.Env, *Rig.Fs, P, HostMode::DoppioRt);
  Vm.start();
  Rig.Env.loop().run();
  EXPECT_EQ(Vm.consoleOutput(), "45\n");
}

TEST(ShadowGame, DoppioModeCompletesWithSavesAndLazyAssets) {
  GameConfig Config;
  Config.Levels = 3;
  Config.FramesPerLevel = 400;
  GameRig Rig(Config);
  MiniVm Vm(Rig.Env, *Rig.Fs, buildShadowGame(Config), HostMode::DoppioRt);
  Vm.start();
  Rig.Env.loop().run();
  EXPECT_EQ(Vm.status(), Vm32Status::Finished)
      << Vm.faultReason();
  EXPECT_NE(Vm.consoleOutput().find("game over"), std::string::npos);
  EXPECT_EQ(Vm.stats().Frames, 3u * 400u);
  EXPECT_EQ(Vm.stats().AssetsLoaded, 3u);
  EXPECT_EQ(Vm.stats().AssetBytesPreloaded, 0u)
      << "Doppio mode downloads assets on demand (§7.2)";
  EXPECT_EQ(Vm.stats().SavesSucceeded, 3u);
  // The save survives a "page reload" (fresh backend over localStorage).
  EXPECT_EQ(Rig.savedProgress(), "3");
  EXPECT_FALSE(Rig.Env.loop().watchdogFired());
}

TEST(ShadowGame, EmscriptenModePreloadsEverythingAndCannotSave) {
  GameConfig Config;
  Config.Levels = 3;
  Config.FramesPerLevel = 50; // Short enough to dodge the watchdog.
  GameRig Rig(Config);
  MiniVm Vm(Rig.Env, *Rig.Fs, buildShadowGame(Config),
            HostMode::Emscripten);
  Vm.preloadAndRun(gameAssetPaths(Config));
  Rig.Env.loop().run();
  EXPECT_EQ(Vm.status(), Vm32Status::Finished) << Vm.faultReason();
  // Every asset byte was fetched before main ran (§7.2).
  EXPECT_EQ(Vm.stats().AssetBytesPreloaded,
            3u * static_cast<uint64_t>(Config.AssetBytes));
  // Saves were attempted but nothing persisted.
  EXPECT_EQ(Vm.stats().SavesAttempted, 3u);
  EXPECT_EQ(Vm.stats().SavesSucceeded, 0u);
  EXPECT_EQ(Rig.savedProgress(), "<missing>")
      << "Emscripten's MEMFS writes do not persist (§7.2)";
}

TEST(ShadowGame, EmscriptenModeGetsKilledByWatchdogOnLongRuns) {
  GameConfig Config;
  Config.Levels = 2;
  Config.FramesPerLevel = 40000; // ~6 s of virtual frame time per level.
  GameRig Rig(Config);
  MiniVm Vm(Rig.Env, *Rig.Fs, buildShadowGame(Config),
            HostMode::Emscripten);
  Vm.preloadAndRun(gameAssetPaths(Config));
  Rig.Env.loop().run();
  EXPECT_EQ(Vm.status(), Vm32Status::Killed)
      << "long-running Emscripten events hit the watchdog (§3.1)";
  EXPECT_LT(Vm.stats().Frames, 2u * 40000u);
  EXPECT_TRUE(Rig.Env.loop().watchdogFired());
}

TEST(ShadowGame, DoppioModeSurvivesTheSameLongRun) {
  GameConfig Config;
  Config.Levels = 2;
  Config.FramesPerLevel = 40000;
  GameRig Rig(Config);
  MiniVm Vm(Rig.Env, *Rig.Fs, buildShadowGame(Config), HostMode::DoppioRt);
  // Synthetic user input throughout.
  for (int I = 1; I <= 30; ++I)
    Rig.Env.loop().setTimeout([] {}, msToNs(300) * I, EventKind::Input);
  Vm.start();
  Rig.Env.loop().run();
  EXPECT_EQ(Vm.status(), Vm32Status::Finished) << Vm.faultReason();
  EXPECT_EQ(Vm.stats().Frames, 2u * 40000u);
  EXPECT_FALSE(Rig.Env.loop().watchdogFired());
  EXPECT_GT(Vm.stats().SuspendYields, 10u);
  EXPECT_LT(Rig.Env.loop().stats().MaxInputLatencyNs, msToNs(60))
      << "the page stays responsive under Doppio (§7.2)";
}

TEST(ShadowGame, BothModesComputeTheSameGameState) {
  GameConfig Config;
  Config.Levels = 2;
  Config.FramesPerLevel = 30;
  std::string OutEmscripten, OutDoppio;
  {
    GameRig Rig(Config);
    MiniVm Vm(Rig.Env, *Rig.Fs, buildShadowGame(Config),
              HostMode::Emscripten);
    Vm.preloadAndRun(gameAssetPaths(Config));
    Rig.Env.loop().run();
    EXPECT_EQ(Vm.status(), Vm32Status::Finished);
    OutEmscripten = Vm.consoleOutput();
  }
  {
    GameRig Rig(Config);
    MiniVm Vm(Rig.Env, *Rig.Fs, buildShadowGame(Config),
              HostMode::DoppioRt);
    Vm.start();
    Rig.Env.loop().run();
    EXPECT_EQ(Vm.status(), Vm32Status::Finished);
    OutDoppio = Vm.consoleOutput();
  }
  EXPECT_EQ(OutEmscripten, OutDoppio)
      << "Doppio hosts the unmodified program (§7.2)";
}

} // namespace
