//===- tests/browser/storage_test.cpp -------------------------------------==//
//
// Tests for the Table 2 storage mechanisms: quotas, synchrony, string
// validation, and IndexedDB's asynchronous delivery.
//
//===----------------------------------------------------------------------===//

#include "browser/env.h"

#include "gtest/gtest.h"

using namespace doppio;
using namespace doppio::browser;

namespace {

TEST(LocalStorage, SetGetRemove) {
  BrowserEnv Env(chromeProfile());
  LocalStorage &LS = Env.localStorage();
  EXPECT_EQ(LS.setItem("key", js::fromAscii("value")), StoreResult::Ok);
  auto Got = LS.getItem("key");
  ASSERT_TRUE(Got.has_value());
  EXPECT_EQ(js::toAscii(*Got), "value");
  LS.removeItem("key");
  EXPECT_FALSE(LS.getItem("key").has_value());
}

TEST(LocalStorage, OverwriteReplacesAndAdjustsUsage) {
  BrowserEnv Env(chromeProfile());
  LocalStorage &LS = Env.localStorage();
  LS.setItem("k", js::fromAscii(std::string(100, 'a')));
  uint64_t UsedBig = LS.usedBytes();
  LS.setItem("k", js::fromAscii("b"));
  EXPECT_LT(LS.usedBytes(), UsedBig);
  EXPECT_EQ(js::toAscii(*LS.getItem("k")), "b");
}

TEST(LocalStorage, FiveMegabyteQuota) {
  BrowserEnv Env(chromeProfile());
  LocalStorage &LS = Env.localStorage();
  EXPECT_EQ(LS.quotaBytes(), 5u << 20);
  // 2 MB of UTF-16 data = 1M code units; two fit, a third does not.
  js::String TwoMb(1u << 20, u'x');
  EXPECT_EQ(LS.setItem("a", TwoMb), StoreResult::Ok);
  EXPECT_EQ(LS.setItem("b", TwoMb), StoreResult::Ok);
  EXPECT_EQ(LS.setItem("c", TwoMb), StoreResult::QuotaExceeded);
  // The failed write must not corrupt existing data.
  EXPECT_TRUE(LS.getItem("a").has_value());
  EXPECT_FALSE(LS.getItem("c").has_value());
}

TEST(Cookies, FourKilobyteQuota) {
  BrowserEnv Env(chromeProfile());
  CookieJar &Jar = Env.cookies();
  EXPECT_EQ(Jar.quotaBytes(), 4096u);
  js::String ThreeKb(1536, u'x'); // 3 KB as UTF-16.
  EXPECT_EQ(Jar.setItem("a", ThreeKb), StoreResult::Ok);
  EXPECT_EQ(Jar.setItem("b", ThreeKb), StoreResult::QuotaExceeded);
}

TEST(LocalStorage, ValidatingBrowserRejectsLoneSurrogates) {
  // Opera validates strings (§5.1): the 2-bytes-per-char packed format
  // cannot be stored there.
  BrowserEnv Env(operaProfile());
  js::String Packed = {0xD800, 0x1234};
  EXPECT_EQ(Env.localStorage().setItem("k", Packed),
            StoreResult::InvalidString);
  // Chrome does not validate; the same bytes store fine.
  BrowserEnv Chrome(chromeProfile());
  EXPECT_EQ(Chrome.localStorage().setItem("k", Packed), StoreResult::Ok);
}

TEST(LocalStorage, KeysAndClear) {
  BrowserEnv Env(chromeProfile());
  LocalStorage &LS = Env.localStorage();
  LS.setItem("one", js::fromAscii("1"));
  LS.setItem("two", js::fromAscii("2"));
  EXPECT_EQ(LS.keys().size(), 2u);
  LS.clear();
  EXPECT_TRUE(LS.keys().empty());
  EXPECT_EQ(LS.usedBytes(), 0u);
}

TEST(LocalStorage, SynchronousWritesChargeTime) {
  BrowserEnv Env(chromeProfile());
  uint64_t Before = Env.clock().nowNs();
  Env.localStorage().setItem("k", js::fromAscii(std::string(4096, 'x')));
  EXPECT_GT(Env.clock().nowNs(), Before);
}

TEST(IndexedDB, AvailabilityMatchesTable2) {
  // Table 2: IndexedDB compatibility is under 50% of the market.
  int Supported = 0;
  for (const Profile &P : allProfiles()) {
    BrowserEnv Env(P);
    if (Env.indexedDB())
      ++Supported;
  }
  EXPECT_EQ(Supported, 3); // Chrome, Firefox, IE10.
}

TEST(IndexedDB, PutAndGetAreAsynchronous) {
  BrowserEnv Env(chromeProfile());
  IndexedDB *Db = Env.indexedDB();
  ASSERT_NE(Db, nullptr);
  bool PutDone = false;
  std::optional<std::vector<uint8_t>> Fetched;
  Db->put("file", {1, 2, 3}, [&](bool Ok) {
    EXPECT_TRUE(Ok);
    PutDone = true;
    Db->get("file", [&](std::optional<std::vector<uint8_t>> V) {
      Fetched = std::move(V);
    });
  });
  // Nothing has happened yet: results arrive only via the event loop.
  EXPECT_FALSE(PutDone);
  Env.loop().run();
  EXPECT_TRUE(PutDone);
  ASSERT_TRUE(Fetched.has_value());
  EXPECT_EQ(*Fetched, (std::vector<uint8_t>{1, 2, 3}));
}

TEST(IndexedDB, GetMissingKeyYieldsNullopt) {
  BrowserEnv Env(firefoxProfile());
  bool Called = false;
  Env.indexedDB()->get("missing",
                       [&](std::optional<std::vector<uint8_t>> V) {
                         EXPECT_FALSE(V.has_value());
                         Called = true;
                       });
  Env.loop().run();
  EXPECT_TRUE(Called);
}

TEST(IndexedDB, QuotaRejectsOversizedPut) {
  BrowserEnv Env(chromeProfile());
  IndexedDB *Db = Env.indexedDB();
  Db->setQuotaBytes(1024);
  bool Ok = true;
  Db->put("big", std::vector<uint8_t>(2048, 7), [&](bool R) { Ok = R; });
  Env.loop().run();
  EXPECT_FALSE(Ok);
  EXPECT_EQ(Db->usedBytes(), 0u);
}

TEST(IndexedDB, RemoveAndListKeys) {
  BrowserEnv Env(ie10Profile());
  IndexedDB *Db = Env.indexedDB();
  ASSERT_NE(Db, nullptr);
  Db->put("a", {1}, nullptr);
  Db->put("b", {2}, nullptr);
  Env.loop().run();
  Db->remove("a", nullptr);
  Env.loop().run();
  std::vector<std::string> Keys;
  Db->listKeys([&](std::vector<std::string> K) { Keys = std::move(K); });
  Env.loop().run();
  EXPECT_EQ(Keys, (std::vector<std::string>{"b"}));
}

} // namespace
