//===- tests/browser/event_loop_test.cpp ----------------------------------==//
//
// Tests for the simulated browser execution model (§3.1, §4.4): FIFO
// run-to-completion dispatch, timer clamping, the watchdog, and the
// message-channel / setImmediate resumption mechanisms.
//
//===----------------------------------------------------------------------===//

#include "browser/env.h"

#include "gtest/gtest.h"

#include <string>
#include <vector>

using namespace doppio;
using namespace doppio::browser;

namespace {

TEST(EventLoop, TasksRunInFifoOrder) {
  BrowserEnv Env(chromeProfile());
  std::vector<int> Order;
  Env.loop().enqueueTask([&] { Order.push_back(1); });
  Env.loop().enqueueTask([&] { Order.push_back(2); });
  Env.loop().enqueueTask([&] { Order.push_back(3); });
  Env.loop().run();
  EXPECT_EQ(Order, (std::vector<int>{1, 2, 3}));
}

TEST(EventLoop, EventsRunToCompletionBeforeLaterEvents) {
  BrowserEnv Env(chromeProfile());
  std::vector<int> Order;
  Env.loop().enqueueTask([&] {
    Env.loop().enqueueTask([&] { Order.push_back(2); });
    Order.push_back(1); // Runs before the nested task despite being queued
                        // after it: events are never preempted.
  });
  Env.loop().run();
  EXPECT_EQ(Order, (std::vector<int>{1, 2}));
}

TEST(EventLoop, SetTimeoutAppliesFourMillisecondClamp) {
  // §4.4: even with a requested delay of 0 the spec imposes >= 4 ms, which
  // is what makes setTimeout unacceptable for suspend-and-resume.
  BrowserEnv Env(chromeProfile());
  uint64_t FiredAt = 0;
  Env.loop().setTimeout([&] { FiredAt = Env.clock().nowNs(); },
                        /*DelayNs=*/0);
  Env.loop().run();
  EXPECT_GE(FiredAt, msToNs(4));
}

TEST(EventLoop, SetTimeoutHonorsLongerDelays) {
  BrowserEnv Env(chromeProfile());
  uint64_t FiredAt = 0;
  Env.loop().setTimeout([&] { FiredAt = Env.clock().nowNs(); }, msToNs(50));
  Env.loop().run();
  EXPECT_GE(FiredAt, msToNs(50));
  EXPECT_LT(FiredAt, msToNs(51));
}

TEST(EventLoop, TimersFireInDueOrderThenInsertionOrder) {
  BrowserEnv Env(chromeProfile());
  std::vector<int> Order;
  Env.loop().setTimeout([&] { Order.push_back(1); }, msToNs(20));
  Env.loop().setTimeout([&] { Order.push_back(2); }, msToNs(10));
  Env.loop().setTimeout([&] { Order.push_back(3); }, msToNs(10));
  Env.loop().run();
  EXPECT_EQ(Order, (std::vector<int>{2, 3, 1}));
}

TEST(EventLoop, ClearTimeoutCancels) {
  BrowserEnv Env(chromeProfile());
  bool Fired = false;
  uint64_t Handle =
      Env.loop().setTimeout([&] { Fired = true; }, msToNs(10));
  Env.loop().clearTimeout(Handle);
  Env.loop().run();
  EXPECT_FALSE(Fired);
}

TEST(EventLoop, ScheduleAfterIsNotClamped) {
  BrowserEnv Env(chromeProfile());
  uint64_t FiredAt = ~0ull;
  Env.loop().scheduleAfter([&] { FiredAt = Env.clock().nowNs(); },
                           usToNs(100));
  Env.loop().run();
  EXPECT_EQ(FiredAt, usToNs(100));
}

TEST(EventLoop, WatchdogFlagsLongEvents) {
  // §3.1: browsers stop scripts that block the page too long.
  BrowserEnv Env(chromeProfile());
  Env.loop().enqueueTask(
      [&] { Env.clock().chargeNs(Env.profile().WatchdogLimitNs + 1); });
  Env.loop().run();
  EXPECT_TRUE(Env.loop().watchdogFired());
  EXPECT_EQ(Env.loop().stats().WatchdogKills, 1u);
}

TEST(EventLoop, ShortEventsDoNotTripWatchdog) {
  BrowserEnv Env(chromeProfile());
  for (int I = 0; I != 100; ++I)
    Env.loop().enqueueTask([&] { Env.clock().chargeNs(msToNs(10)); });
  Env.loop().run();
  EXPECT_FALSE(Env.loop().watchdogFired());
  EXPECT_EQ(Env.loop().stats().EventsRun, 100u);
}

TEST(EventLoop, CurrentEventOverLimitIsVisibleToCooperativeCode) {
  BrowserEnv Env(chromeProfile());
  bool SawOverLimit = false;
  Env.loop().enqueueTask([&] {
    EXPECT_FALSE(Env.loop().currentEventOverLimit());
    Env.clock().chargeNs(Env.profile().WatchdogLimitNs + 1);
    SawOverLimit = Env.loop().currentEventOverLimit();
  });
  Env.loop().run();
  EXPECT_TRUE(SawOverLimit);
}

TEST(EventLoop, InputLatencyMeasuresQueuingDelay) {
  // A long-running event delays user input: the paper's responsiveness
  // problem (§3.1). Input due at t=10ms is dispatched only after the
  // 100 ms event finishes.
  BrowserEnv Env(chromeProfile());
  Env.loop().setTimeout([] {}, msToNs(10), EventKind::Input);
  Env.loop().enqueueTask([&] { Env.clock().chargeNs(msToNs(100)); });
  Env.loop().run();
  EXPECT_GE(Env.loop().stats().MaxInputLatencyNs, msToNs(89));
}

TEST(EventLoop, IdleInputIsDispatchedPromptly) {
  BrowserEnv Env(chromeProfile());
  for (int I = 1; I <= 5; ++I)
    Env.loop().setTimeout([&] { Env.clock().chargeNs(usToNs(100)); },
                          msToNs(10 * I), EventKind::Input);
  Env.loop().run();
  EXPECT_LE(Env.loop().stats().MaxInputLatencyNs, usToNs(500));
}

TEST(MessageChannel, DeliversAsEventOnModernBrowsers) {
  BrowserEnv Env(chromeProfile());
  std::vector<std::string> Order;
  Env.channel().setOnMessage(
      [&](const js::String &M) { Order.push_back(js::toAscii(M)); });
  Env.loop().enqueueTask([&] {
    Env.channel().post(js::fromAscii("resume-1"));
    Order.push_back("after-post");
  });
  Env.loop().run();
  ASSERT_EQ(Order.size(), 2u);
  // Asynchronous: the posting event finishes before the handler runs.
  EXPECT_EQ(Order[0], "after-post");
  EXPECT_EQ(Order[1], "resume-1");
  EXPECT_EQ(Env.channel().syncDispatchCount(), 0u);
}

TEST(MessageChannel, Ie8DispatchesSynchronously) {
  // §4.4: sendMessage is synchronous in IE8, so the handler runs inside
  // post() — before the posting event completes.
  BrowserEnv Env(ie8Profile());
  std::vector<std::string> Order;
  Env.channel().setOnMessage(
      [&](const js::String &M) { Order.push_back(js::toAscii(M)); });
  Env.loop().enqueueTask([&] {
    Env.channel().post(js::fromAscii("resume-1"));
    Order.push_back("after-post");
  });
  Env.loop().run();
  ASSERT_EQ(Order.size(), 2u);
  EXPECT_EQ(Order[0], "resume-1");
  EXPECT_EQ(Order[1], "after-post");
  EXPECT_EQ(Env.channel().syncDispatchCount(), 1u);
}

TEST(MessageChannel, MessageDeliveryBeatsTimeoutClamp) {
  // The entire reason Doppio prefers sendMessage (§4.4): it reaches the
  // back of the queue without the 4 ms timer clamp.
  BrowserEnv Env(chromeProfile());
  uint64_t MessageAt = 0, TimerAt = 0;
  Env.channel().setOnMessage(
      [&](const js::String &) { MessageAt = Env.clock().nowNs(); });
  Env.loop().enqueueTask([&] {
    Env.loop().setTimeout([&] { TimerAt = Env.clock().nowNs(); }, 0);
    Env.channel().post(js::fromAscii("m"));
  });
  Env.loop().run();
  EXPECT_LT(MessageAt, TimerAt);
}

TEST(SetImmediate, OnlyAvailableOnIe10) {
  for (const Profile &P : allProfiles()) {
    BrowserEnv Env(P);
    bool Ran = false;
    bool Accepted = Env.loop().trySetImmediate([&] { Ran = true; });
    Env.loop().run();
    EXPECT_EQ(Accepted, P.HasSetImmediate) << P.Name;
    EXPECT_EQ(Ran, P.HasSetImmediate) << P.Name;
  }
  EXPECT_TRUE(ie10Profile().HasSetImmediate);
  EXPECT_FALSE(chromeProfile().HasSetImmediate);
}

TEST(Profiles, MatchPaperFeatureMatrix) {
  EXPECT_FALSE(ie8Profile().HasTypedArrays);
  EXPECT_TRUE(ie8Profile().SendMessageSynchronous);
  EXPECT_FALSE(ie8Profile().HasWebSockets);
  EXPECT_TRUE(safariProfile().LeaksTypedArrays);
  EXPECT_TRUE(chromeProfile().HasIndexedDB);
  EXPECT_FALSE(safariProfile().HasIndexedDB);
  EXPECT_EQ(allProfiles().size(), 6u);
  EXPECT_NE(findProfile("opera"), nullptr);
  EXPECT_EQ(findProfile("netscape"), nullptr);
}

TEST(PagingModel, LeakedTypedArraysSlowSafariDown) {
  BrowserEnv Env(safariProfile());
  EXPECT_DOUBLE_EQ(Env.pagingMultiplier(), 1.0);
  Env.noteTypedArrayAlloc(Env.profile().MemoryPressureBytes + (64u << 20));
  Env.noteTypedArrayFree(Env.profile().MemoryPressureBytes + (64u << 20));
  // Freed, but Safari never reclaims typed arrays: pressure persists.
  EXPECT_GT(Env.pagingMultiplier(), 1.0);
  EXPECT_GT(Env.leakedTypedArrayBytes(), Env.profile().MemoryPressureBytes);
}

TEST(PagingModel, NonLeakingBrowsersReclaim) {
  BrowserEnv Env(chromeProfile());
  Env.noteTypedArrayAlloc(1ull << 30);
  Env.noteTypedArrayFree(1ull << 30);
  EXPECT_DOUBLE_EQ(Env.pagingMultiplier(), 1.0);
  EXPECT_EQ(Env.liveTypedArrayBytes(), 0u);
}

TEST(TimerHandle, DoubleCancelOnlyFirstPreventsAFire) {
  BrowserEnv Env(chromeProfile());
  bool Fired = false;
  TimerHandle H = Env.loop().postTimer(kernel::Lane::Timer,
                                       [&] { Fired = true; }, msToNs(5));
  EXPECT_TRUE(H.armed());
  EXPECT_TRUE(H.cancel());
  // The second cancel prevented nothing: it must say so.
  EXPECT_FALSE(H.cancel());
  EXPECT_FALSE(H.armed());
  Env.loop().run();
  EXPECT_FALSE(Fired);
  // And a third, after the loop drained, is still false.
  EXPECT_FALSE(H.cancel());
}

TEST(TimerHandle, CancelAfterFireReportsNothingPrevented) {
  BrowserEnv Env(chromeProfile());
  bool Fired = false;
  TimerHandle H = Env.loop().postTimer(kernel::Lane::Timer,
                                       [&] { Fired = true; }, msToNs(5));
  Env.loop().run();
  EXPECT_TRUE(Fired);
  // Still bound to its (spent) timer, but no longer armed.
  EXPECT_TRUE(static_cast<bool>(H));
  EXPECT_FALSE(H.armed());
  EXPECT_FALSE(H.cancel());
}

TEST(TimerHandle, MoveAssignmentReleasesOldHandleWithoutCancelling) {
  BrowserEnv Env(chromeProfile());
  bool FiredA = false;
  bool FiredB = false;
  TimerHandle A = Env.loop().postTimer(kernel::Lane::Timer,
                                       [&] { FiredA = true; }, msToNs(5));
  TimerHandle B = Env.loop().postTimer(kernel::Lane::Timer,
                                       [&] { FiredB = true; }, msToNs(10));
  uint64_t IdB = B.id();
  // Overwriting A releases its timer — released, not cancelled: dropping
  // a handle lets the timer fire (the documented non-owning-destructor
  // semantics).
  A = std::move(B);
  EXPECT_EQ(A.id(), IdB);
  EXPECT_TRUE(A.armed());
  EXPECT_FALSE(B.armed()); // NOLINT(bugprone-use-after-move): moved-from
                           // handles must report disarmed, that's the API.
  EXPECT_FALSE(B.cancel());
  // A now controls B's timer: cancelling it stops B's callback while the
  // released one still fires.
  EXPECT_TRUE(A.cancel());
  Env.loop().run();
  EXPECT_TRUE(FiredA);
  EXPECT_FALSE(FiredB);
}

} // namespace
