//===- tests/browser/simnet_test.cpp --------------------------------------==//
//
// Tests for the simulated TCP fabric: connection lifetime (closed pairs
// are reaped, not accumulated), refusal paths (no listener, unlisten with
// a connect in flight, listener closing inside accept), and the ordering
// guarantees servers rely on — FIFO data delivery and FIN-after-data.
//
//===----------------------------------------------------------------------===//

#include "browser/env.h"
#include "browser/simnet.h"

#include "gtest/gtest.h"

using namespace doppio;
using namespace doppio::browser;

namespace {

std::vector<uint8_t> bytesOf(const std::string &S) {
  return std::vector<uint8_t>(S.begin(), S.end());
}

TEST(SimNet, ConnectToUnlistenedPortIsRefused) {
  BrowserEnv Env(chromeProfile());
  bool Called = false;
  Env.net().connect(4444, [&](TcpConnection *C) {
    Called = true;
    EXPECT_EQ(C, nullptr);
  });
  Env.loop().run();
  EXPECT_TRUE(Called);
  EXPECT_EQ(Env.net().liveConnections(), 0u);
}

TEST(SimNet, UnlistenWithConnectInFlightRefuses) {
  BrowserEnv Env(chromeProfile());
  Env.net().listen(7000, [](TcpConnection &) { FAIL() << "accepted"; });
  bool Refused = false;
  Env.net().connect(7000,
                    [&](TcpConnection *C) { Refused = (C == nullptr); });
  // The connect is in flight (it completes as a later event); pulling the
  // listener now must refuse it, not accept into a dead port.
  Env.net().unlisten(7000);
  EXPECT_FALSE(Env.net().isListening(7000));
  Env.loop().run();
  EXPECT_TRUE(Refused);
}

TEST(SimNet, ListenerClosingInAcceptRefusesTheConnect) {
  BrowserEnv Env(chromeProfile());
  // A listener that closes the server side inside accept (doppiod's
  // backlog-overflow path) turns the connect into ECONNREFUSED.
  Env.net().listen(7000, [](TcpConnection &C) { C.close(); });
  bool Refused = false;
  Env.net().connect(7000,
                    [&](TcpConnection *C) { Refused = (C == nullptr); });
  Env.loop().run();
  EXPECT_TRUE(Refused);
  EXPECT_EQ(Env.net().liveConnections(), 0u);
}

TEST(SimNet, ClosedPairsAreReaped) {
  BrowserEnv Env(chromeProfile());
  bool ServerSawClose = false;
  Env.net().listen(7000, [&](TcpConnection &C) {
    // The pointer dies with the reap, so observe the close by event, the
    // way every long-lived holder has to.
    C.setOnClose([&] { ServerSawClose = true; });
  });
  Env.net().connect(7000, [&](TcpConnection *C) {
    ASSERT_NE(C, nullptr);
    C->send(bytesOf("ping"));
    C->close();
  });
  Env.loop().run();
  EXPECT_TRUE(ServerSawClose);
  // Regression: a long-running fabric must not accumulate dead pairs.
  EXPECT_EQ(Env.net().liveConnections(), 0u);
  EXPECT_EQ(Env.net().totalConnections(), 1u);
}

TEST(SimNet, HalfClosedPairIsNotReaped) {
  BrowserEnv Env(chromeProfile());
  Env.net().listen(7000, [](TcpConnection &) {});
  TcpConnection *Client = nullptr;
  Env.net().connect(7000, [&](TcpConnection *C) { Client = C; });
  Env.loop().run();
  ASSERT_NE(Client, nullptr);
  EXPECT_EQ(Env.net().liveConnections(), 2u);
  EXPECT_EQ(Env.net().reapClosed(), 0u);
  Client->close();
  Env.loop().run();
  EXPECT_EQ(Env.net().liveConnections(), 0u);
}

TEST(SimNet, DataDeliveryIsFifoAcrossMessageSizes) {
  BrowserEnv Env(chromeProfile());
  // A large message's per-byte latency must not let a later small message
  // overtake it (TCP byte-stream ordering).
  std::vector<std::string> Got;
  Env.net().listen(7000, [&](TcpConnection &C) {
    C.setOnData([&](const std::vector<uint8_t> &D) {
      Got.emplace_back(D.begin(), D.end());
    });
  });
  Env.net().connect(7000, [&](TcpConnection *C) {
    ASSERT_NE(C, nullptr);
    C->send(std::vector<uint8_t>(1u << 20, 'A')); // ~4ms of wire time.
    C->send(bytesOf("tail"));
    C->close();
  });
  Env.loop().run();
  ASSERT_EQ(Got.size(), 2u);
  EXPECT_EQ(Got[0].size(), 1u << 20);
  EXPECT_EQ(Got[1], "tail");
}

TEST(SimNet, CloseIsOrderedAfterInFlightData) {
  BrowserEnv Env(chromeProfile());
  // FIN semantics: send-then-close must deliver the data before the close
  // handler fires — graceful server shutdown depends on it.
  std::vector<std::string> Events;
  Env.net().listen(7000, [&](TcpConnection &C) {
    C.setOnData([&](const std::vector<uint8_t> &D) {
      Events.emplace_back(D.begin(), D.end());
    });
    C.setOnClose([&] { Events.emplace_back("<close>"); });
  });
  Env.net().connect(7000, [&](TcpConnection *C) {
    ASSERT_NE(C, nullptr);
    C->send(std::vector<uint8_t>(1u << 20, 'B'));
    C->close();
  });
  Env.loop().run();
  ASSERT_EQ(Events.size(), 2u);
  EXPECT_EQ(Events[0].size(), 1u << 20);
  EXPECT_EQ(Events[1], "<close>");
  EXPECT_EQ(Env.net().liveConnections(), 0u);
}

TEST(SimNet, ManyConnectionsDoNotAccumulate) {
  BrowserEnv Env(chromeProfile());
  uint64_t Served = 0;
  Env.net().listen(7000, [&](TcpConnection &C) {
    C.setOnData([&Served, Conn = &C](const std::vector<uint8_t> &D) {
      ++Served;
      Conn->send(D);
      Conn->close();
    });
  });
  for (int I = 0; I < 50; ++I)
    Env.net().connect(7000, [](TcpConnection *C) {
      ASSERT_NE(C, nullptr);
      C->send(bytesOf("hi"));
      C->setOnClose(nullptr);
    });
  Env.loop().run();
  EXPECT_EQ(Served, 50u);
  EXPECT_EQ(Env.net().totalConnections(), 50u);
  // The server closed each connection after replying; once the events
  // drain, the fabric holds nothing.
  EXPECT_EQ(Env.net().liveConnections(), 0u);
}

} // namespace
