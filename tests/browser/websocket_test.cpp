//===- tests/browser/websocket_test.cpp -----------------------------------==//
//
// Tests for §5.3: WebSocket framing, the upgrade handshake, outgoing-only
// connections, the websockify TCP bridge, and the Flash fallback shim.
//
//===----------------------------------------------------------------------===//

#include "browser/env.h"
#include "browser/websocket.h"

#include "gtest/gtest.h"

using namespace doppio;
using namespace doppio::browser;

namespace {

std::vector<uint8_t> bytesOf(const std::string &S) {
  return std::vector<uint8_t>(S.begin(), S.end());
}

TEST(WsFrame, EncodeDecodeRoundTripUnmasked) {
  for (size_t Len : {0ul, 1ul, 125ul, 126ul, 65535ul, 65536ul, 100000ul}) {
    wsframe::Frame F;
    F.Op = wsframe::Opcode::Binary;
    F.Payload.resize(Len);
    for (size_t I = 0; I != Len; ++I)
      F.Payload[I] = static_cast<uint8_t>(I * 7);
    wsframe::Decoder D;
    D.feed(wsframe::encode(F, std::nullopt));
    auto Out = D.next();
    ASSERT_TRUE(Out.has_value()) << "len " << Len;
    EXPECT_EQ(Out->Payload, F.Payload);
    EXPECT_EQ(Out->Op, wsframe::Opcode::Binary);
    EXPECT_FALSE(D.next().has_value());
  }
}

TEST(WsFrame, MaskedFramesDecodeToOriginalPayload) {
  wsframe::Frame F;
  F.Op = wsframe::Opcode::Binary;
  F.Payload = {0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x42};
  std::vector<uint8_t> Wire = wsframe::encode(F, 0x12345678u);
  // Masked payload must differ on the wire.
  EXPECT_NE(std::vector<uint8_t>(Wire.end() - 6, Wire.end()), F.Payload);
  wsframe::Decoder D;
  D.feed(Wire);
  auto Out = D.next();
  ASSERT_TRUE(Out.has_value());
  EXPECT_EQ(Out->Payload, F.Payload);
}

TEST(WsFrame, DecoderHandlesPartialAndCoalescedInput) {
  wsframe::Frame A, B;
  A.Op = wsframe::Opcode::Binary;
  A.Payload = bytesOf("first");
  B.Op = wsframe::Opcode::Text;
  B.Payload = bytesOf("second");
  std::vector<uint8_t> Wire = wsframe::encode(A, std::nullopt);
  std::vector<uint8_t> WireB = wsframe::encode(B, std::nullopt);
  Wire.insert(Wire.end(), WireB.begin(), WireB.end());
  wsframe::Decoder D;
  // Feed one byte at a time; frames appear exactly when complete.
  int Seen = 0;
  for (uint8_t Byte : Wire) {
    D.feed({Byte});
    while (auto F = D.next()) {
      if (Seen == 0)
        EXPECT_EQ(F->Payload, A.Payload);
      else
        EXPECT_EQ(F->Payload, B.Payload);
      ++Seen;
    }
  }
  EXPECT_EQ(Seen, 2);
}

TEST(SimNet, ConnectionRefusedWhenNoListener) {
  BrowserEnv Env(chromeProfile());
  bool Called = false;
  Env.net().connect(9999, [&](TcpConnection *C) {
    EXPECT_EQ(C, nullptr);
    Called = true;
  });
  Env.loop().run();
  EXPECT_TRUE(Called);
}

TEST(SimNet, DuplexByteStream) {
  BrowserEnv Env(chromeProfile());
  std::string ServerGot, ClientGot;
  Env.net().listen(7, [&](TcpConnection &C) {
    C.setOnData([&, Conn = &C](const std::vector<uint8_t> &D) {
      ServerGot.append(D.begin(), D.end());
      Conn->send(bytesOf("pong"));
    });
  });
  Env.net().connect(7, [&](TcpConnection *C) {
    ASSERT_NE(C, nullptr);
    C->setOnData([&](const std::vector<uint8_t> &D) {
      ClientGot.append(D.begin(), D.end());
    });
    C->send(bytesOf("ping"));
  });
  Env.loop().run();
  EXPECT_EQ(ServerGot, "ping");
  EXPECT_EQ(ClientGot, "pong");
}

/// Starts a trivial native TCP echo service on \p Port.
static void startEchoServer(SimNet &Net, uint16_t Port) {
  Net.listen(Port, [](TcpConnection &C) {
    C.setOnData([Conn = &C](const std::vector<uint8_t> &D) {
      Conn->send(D); // Echo.
    });
  });
}

TEST(WebSocket, HandshakeAndEchoThroughWebsockify) {
  // The full §5.3 pipeline: browser WebSocket -> websockify -> plain TCP
  // echo server, and back.
  BrowserEnv Env(chromeProfile());
  startEchoServer(Env.net(), 2000);
  WebsockifyProxy Proxy(Env.net(), 1000, 2000);
  WebSocketClient Ws(Env.net(), Env.profile());
  std::vector<uint8_t> Got;
  bool Opened = false;
  Ws.setOnMessage([&](std::vector<uint8_t> M) { Got = std::move(M); });
  Ws.connect(1000, [&](bool Ok) {
    Opened = Ok;
    ASSERT_TRUE(Ok);
    Ws.sendBinary({10, 20, 30});
  });
  Env.loop().run();
  EXPECT_TRUE(Opened);
  EXPECT_EQ(Got, (std::vector<uint8_t>{10, 20, 30}));
  EXPECT_EQ(Proxy.bridgedConnections(), 1u);
  EXPECT_FALSE(Ws.usedFlashShim());
}

TEST(WebSocket, ConnectToDeadPortFails) {
  BrowserEnv Env(chromeProfile());
  WebSocketClient Ws(Env.net(), Env.profile());
  bool Result = true;
  Ws.connect(4242, [&](bool Ok) { Result = Ok; });
  Env.loop().run();
  EXPECT_FALSE(Result);
}

TEST(WebSocket, Ie8UsesFlashShim) {
  // IE8 lacks WebSockets; Websockify's JS library falls back to a Flash
  // applet proxy (§5.3). Functionally identical, slower to connect.
  BrowserEnv Env(ie8Profile());
  startEchoServer(Env.net(), 2000);
  WebsockifyProxy Proxy(Env.net(), 1000, 2000);
  WebSocketClient Ws(Env.net(), Env.profile());
  std::vector<uint8_t> Got;
  Ws.setOnMessage([&](std::vector<uint8_t> M) { Got = std::move(M); });
  Ws.connect(1000, [&](bool Ok) {
    ASSERT_TRUE(Ok);
    Ws.sendBinary({1, 2});
  });
  Env.loop().run();
  EXPECT_EQ(Got, (std::vector<uint8_t>{1, 2}));
  EXPECT_TRUE(Ws.usedFlashShim());
}

TEST(WebSocket, LargeMessageSurvivesBridge) {
  BrowserEnv Env(chromeProfile());
  startEchoServer(Env.net(), 2000);
  WebsockifyProxy Proxy(Env.net(), 1000, 2000);
  WebSocketClient Ws(Env.net(), Env.profile());
  std::vector<uint8_t> Payload(200000);
  for (size_t I = 0; I != Payload.size(); ++I)
    Payload[I] = static_cast<uint8_t>(I * 31);
  std::vector<uint8_t> Got;
  Ws.setOnMessage([&](std::vector<uint8_t> M) {
    Got.insert(Got.end(), M.begin(), M.end());
  });
  Ws.connect(1000, [&](bool Ok) {
    ASSERT_TRUE(Ok);
    Ws.sendBinary(Payload);
  });
  Env.loop().run();
  EXPECT_EQ(Got, Payload);
}

} // namespace
