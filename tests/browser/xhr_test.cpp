//===- tests/browser/xhr_test.cpp -----------------------------------------==//

#include "browser/env.h"

#include "gtest/gtest.h"

using namespace doppio;
using namespace doppio::browser;

namespace {

std::vector<uint8_t> bytesOf(const std::string &S) {
  return std::vector<uint8_t>(S.begin(), S.end());
}

TEST(Xhr, DownloadsExistingFileAsynchronously) {
  BrowserEnv Env(chromeProfile());
  Env.server().addFile("/classes/Main.class", bytesOf("CAFEBABE"));
  bool Done = false;
  Env.xhr().get("/classes/Main.class", [&](Xhr::Response R) {
    EXPECT_EQ(R.Status, 200);
    EXPECT_EQ(R.Body, bytesOf("CAFEBABE"));
    EXPECT_EQ(R.Transport, XhrTransport::TypedArray);
    Done = true;
  });
  EXPECT_FALSE(Done) << "XHR must not complete synchronously (§3.2)";
  Env.loop().run();
  EXPECT_TRUE(Done);
}

TEST(Xhr, MissingFileIs404) {
  BrowserEnv Env(chromeProfile());
  int Status = 0;
  Env.xhr().get("/nope", [&](Xhr::Response R) { Status = R.Status; });
  Env.loop().run();
  EXPECT_EQ(Status, 404);
}

TEST(Xhr, Ie8ReceivesBinaryAsString) {
  // §5.1: browsers without typed arrays can only download binary data as a
  // JavaScript string.
  BrowserEnv Env(ie8Profile());
  Env.server().addFile("/data.bin", {0, 1, 2, 255});
  XhrTransport Transport = XhrTransport::TypedArray;
  std::vector<uint8_t> Body;
  Env.xhr().get("/data.bin", [&](Xhr::Response R) {
    Transport = R.Transport;
    Body = R.Body;
  });
  Env.loop().run();
  EXPECT_EQ(Transport, XhrTransport::BinaryString);
  EXPECT_EQ(Body, (std::vector<uint8_t>{0, 1, 2, 255}));
}

TEST(Xhr, LargerFilesTakeLonger) {
  BrowserEnv Env(chromeProfile());
  Env.server().addFile("/small", std::vector<uint8_t>(64, 1));
  Env.server().addFile("/large", std::vector<uint8_t>(1 << 20, 1));
  uint64_t SmallAt = 0, LargeAt = 0;
  Env.xhr().get("/small", [&](Xhr::Response) {
    SmallAt = Env.clock().nowNs();
  });
  Env.xhr().get("/large", [&](Xhr::Response) {
    LargeAt = Env.clock().nowNs();
  });
  Env.loop().run();
  EXPECT_LT(SmallAt, LargeAt);
}

TEST(Xhr, TracksTrafficStatistics) {
  BrowserEnv Env(chromeProfile());
  Env.server().addFile("/a", std::vector<uint8_t>(100, 1));
  Env.xhr().get("/a", [](Xhr::Response) {});
  Env.xhr().get("/a", [](Xhr::Response) {});
  Env.loop().run();
  EXPECT_EQ(Env.xhr().requestCount(), 2u);
  EXPECT_EQ(Env.xhr().bytesTransferred(), 200u);
}

TEST(StaticServer, ListsByPrefix) {
  StaticServer Server;
  Server.addFile("/cls/A.class", {});
  Server.addFile("/cls/B.class", {});
  Server.addFile("/src/A.java", {});
  auto Classes = Server.list("/cls/");
  ASSERT_EQ(Classes.size(), 2u);
  EXPECT_EQ(Classes[0], "/cls/A.class");
  EXPECT_EQ(Classes[1], "/cls/B.class");
  EXPECT_EQ(Server.list("/none/").size(), 0u);
  EXPECT_EQ(Server.fileCount(), 3u);
}

} // namespace
