//===- tests/browser/js_string_test.cpp -----------------------------------==//

#include "browser/js_string.h"

#include "gtest/gtest.h"

using namespace doppio;

namespace {

TEST(JsString, AsciiRoundTrip) {
  std::string Text = "Hello, Doppio! 0123\t\n";
  EXPECT_EQ(js::toAscii(js::fromAscii(Text)), Text);
}

TEST(JsString, FromAsciiHandlesHighBytes) {
  std::string Bytes;
  for (int I = 0; I != 256; ++I)
    Bytes.push_back(static_cast<char>(I));
  js::String S = js::fromAscii(Bytes);
  ASSERT_EQ(S.size(), 256u);
  for (int I = 0; I != 256; ++I)
    EXPECT_EQ(S[I], static_cast<char16_t>(I));
  EXPECT_EQ(js::toAscii(S), Bytes);
}

TEST(JsString, ByteSizeIsTwoPerCodeUnit) {
  EXPECT_EQ(js::byteSize(js::fromAscii("abcd")), 8u);
  EXPECT_EQ(js::byteSize(js::String()), 0u);
}

TEST(JsString, ValidatesWellFormedUtf16) {
  EXPECT_TRUE(js::isValidUtf16(js::fromAscii("plain ascii")));
  // A surrogate pair (U+1F600) is valid.
  js::String Pair = {0xD83D, 0xDE00};
  EXPECT_TRUE(js::isValidUtf16(Pair));
  // BMP characters around the surrogate range are valid.
  js::String Bmp = {0xD7FF, 0xE000, 0xFFFF};
  EXPECT_TRUE(js::isValidUtf16(Bmp));
}

TEST(JsString, RejectsLoneSurrogates) {
  // These are exactly the 2-byte sequences §5.1 says are not valid UTF-16;
  // validating browsers refuse them, forcing the 1-byte-per-char fallback.
  js::String LoneHigh = {0xD800};
  EXPECT_FALSE(js::isValidUtf16(LoneHigh));
  js::String LoneLow = {0xDC00};
  EXPECT_FALSE(js::isValidUtf16(LoneLow));
  js::String HighThenChar = {0xD800, u'a'};
  EXPECT_FALSE(js::isValidUtf16(HighThenChar));
  js::String Reversed = {0xDC00, 0xD800};
  EXPECT_FALSE(js::isValidUtf16(Reversed));
}

TEST(JsString, SurrogateClassifiers) {
  EXPECT_TRUE(js::isHighSurrogate(0xD800));
  EXPECT_TRUE(js::isHighSurrogate(0xDBFF));
  EXPECT_FALSE(js::isHighSurrogate(0xDC00));
  EXPECT_TRUE(js::isLowSurrogate(0xDC00));
  EXPECT_TRUE(js::isLowSurrogate(0xDFFF));
  EXPECT_FALSE(js::isLowSurrogate(0xD800));
  EXPECT_FALSE(js::isHighSurrogate(u'a'));
  EXPECT_FALSE(js::isLowSurrogate(u'a'));
}

} // namespace
